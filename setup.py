"""Setup shim for environments without the wheel package.

``pip install -e . --no-build-isolation`` uses the legacy develop path via
this file when PEP 660 editable wheels are unavailable offline.
"""

from setuptools import setup

setup()
