"""Output feedback: run the servo loop from its encoder alone.

The paper's rig measures the shaft angle with a quadrature encoder; the
angular velocity is not sensed directly.  This example designs a
Luenberger observer for the angle-only measurement, closes the TT-mode
loop over the *estimated* state (certainty equivalence), and compares
the settling time against the full-state-feedback ideal.

Run with::

    python examples/output_feedback.py
"""

import numpy as np

from repro.control import (
    ContinuousStateSpace,
    design_mode_controller,
    design_observer_poles,
    discretize_with_delay,
    servo_rig,
)


def main() -> None:
    base = servo_rig()
    h = base.period

    # Angle-only output model for the observer.
    encoder_model = ContinuousStateSpace(
        a=base.model.a, b=base.model.b, c=np.array([[1.0, 0.0]]), name="servo-encoder"
    )
    plant = discretize_with_delay(encoder_model, period=h, delay=0.0)
    observer = design_observer_poles(plant, poles=[0.25, 0.3])
    controller = design_mode_controller(
        base.model, period=h, delay=0.0, q=base.q, r=base.r
    )

    def simulate(use_observer: bool, steps: int = 200) -> float:
        x = base.disturbance.copy()
        xhat = np.zeros(2)  # the observer starts ignorant
        u_prev = np.zeros(1)
        settle = None
        for k in range(steps):
            norm = float(np.hypot(x[0], x[1]))
            if norm <= base.threshold and settle is None:
                settle = k * h
            elif norm > base.threshold:
                settle = None
            state_for_control = xhat if use_observer else x
            u = controller.control(state_for_control, u_prev)
            y = plant.c @ x
            xhat = observer.update(xhat, u, u_prev, y)
            x = plant.phi @ x + plant.gamma0 @ u + plant.gamma1 @ u_prev
            u_prev = u
        return settle if settle is not None else float("inf")

    ideal = simulate(use_observer=False)
    observed = simulate(use_observer=True)
    print(f"full-state feedback settling time : {ideal:.2f} s")
    print(f"observer-based feedback settling  : {observed:.2f} s")
    print(
        "observer overhead                 : "
        f"{observed - ideal:+.2f} s (estimation transient)"
    )
    assert observed < float("inf"), "observer loop failed to settle"


if __name__ == "__main__":
    main()
