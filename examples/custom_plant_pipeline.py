"""Bring your own plant: characterise a custom system and check whether it
can share a TT slot with the paper's applications.

This walks the full pipeline a downstream user would follow:

1. describe a continuous-time plant (here: a pitch-axis actuator),
2. design the TT- and ET-mode controllers,
3. measure the dwell/wait relation and fit the conservative models,
4. derive the Table-I-style timing parameters, and
5. run the schedulability analysis against existing applications.

Run with::

    python examples/custom_plant_pipeline.py
"""

import numpy as np

from repro import (
    PAPER_TABLE_I,
    AnalyzedApplication,
    ContinuousStateSpace,
    analyze_application,
    characterize_application,
    design_switched_application,
)


def main() -> None:
    # 1. A lightly damped second-order actuator (position, velocity).
    plant = ContinuousStateSpace(
        a=np.array([[0.0, 1.0], [-4.0, -0.8]]),
        b=np.array([[0.0], [2.5]]),
        name="pitch-actuator",
    )

    # 2. Both mode controllers: TT with a 0.7 ms deterministic delay, ET
    #    designed for the full-period worst case.
    period = 0.020
    app = design_switched_application(
        name="pitch-actuator",
        plant=plant,
        period=period,
        et_delay=period,
        tt_delay=0.0007,
        q=np.diag([8.0, 0.4]),
        r=np.array([[0.5]]),
        threshold=0.05,
    )

    # 3-4. Characterise from a unit step disturbance on the position.
    result = characterize_application(
        app,
        x0=np.array([1.0, 0.0]),
        deadline=5.0,
        min_inter_arrival=30.0,
        wait_step=1,
    )
    params = result.params
    print("derived timing parameters:")
    print(f"  xi_TT   = {params.xi_tt:.3f} s")
    print(f"  xi_ET   = {params.xi_et:.3f} s")
    print(f"  xi_M    = {params.xi_m:.3f} s at k_p = {params.k_p:.3f} s")
    print(f"  xi'_M   = {params.xi_m_mono:.3f} s (conservative monotonic)")

    # 5. Can it share a slot with the paper's C3 and C6?
    mine = AnalyzedApplication(params=params, dwell_model=result.non_monotonic_model)
    sharers = [
        AnalyzedApplication.from_params(p)
        for p in PAPER_TABLE_I
        if p.name in ("C3", "C6")
    ]
    analysis = analyze_application(mine, sharers)
    print(
        f"\nsharing a TT slot with C3 and C6: worst response "
        f"{analysis.worst_response:.3f} s vs deadline {analysis.deadline} s "
        f"-> schedulable: {analysis.schedulable}"
    )
    for sharer in sharers:
        others = [mine] + [s for s in sharers if s is not sharer]
        check = analyze_application(sharer, others)
        print(
            f"  {sharer.name} re-checked with the newcomer: "
            f"{check.worst_response:.3f} s vs {check.deadline} s "
            f"-> {check.schedulable}"
        )


if __name__ == "__main__":
    main()
