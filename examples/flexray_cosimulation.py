"""Run the paper's Figure 5 scenario: six automotive control applications
on one FlexRay bus with dynamically shared TT slots.

The applications are designed and characterised from physical plant
models, packed onto the minimum number of TT slots with the paper's
non-monotonic analysis, and co-simulated over a cycle-accurate FlexRay
model with all disturbances hitting at t = 0.

Run with::

    python examples/flexray_cosimulation.py
"""

from repro.experiments import run_fig5, run_simulation_allocation, simulation_applications


def main() -> None:
    print("designing and characterising the six case-study applications...")
    apps = simulation_applications(wait_step=2)

    comparison = run_simulation_allocation(applications=apps)
    print()
    print(comparison.report())

    print()
    print("co-simulating over the FlexRay bus (all disturbances at t = 0)...")
    result = run_fig5(applications=apps)
    print(result.report(plots=True))

    verdict = "ALL DEADLINES MET" if result.all_deadlines_met() else "DEADLINE MISSED"
    print(f"\n=> {verdict}")


if __name__ == "__main__":
    main()
