"""Characterise the servo rig: the paper's Figure 3 experiment, end to end.

Builds the simulated servo testbed (inverted stick on a torque-limited
servo motor, h = 20 ms, TT delay 0.7 ms, ET delay 20 ms, Eth = 0.1,
45-degree disturbance), sweeps the ET-to-TT switch instant, fits the
conservative PWL dwell models, and prints the Figure 3 / Figure 4
artefacts.

Run with::

    python examples/servo_characterization.py
"""

from repro.experiments import run_fig3, run_fig4


def main() -> None:
    fig3 = run_fig3(wait_step=4)
    print(fig3.report())
    print()

    fig4 = run_fig4(curve=fig3.curve)
    print(fig4.report())
    print()

    model = fig4.non_monotonic
    print("fitted two-segment model breakpoints (wait, dwell):")
    for wait, dwell in model.breakpoints:
        print(f"  ({wait:.3f}s, {dwell:.3f}s)")
    print(
        "safety check: model dominates every measured sample ->",
        model.dominates(fig3.curve),
    )


if __name__ == "__main__":
    main()
