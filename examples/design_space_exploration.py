"""Design-space exploration: how robust is the slot allocation?

A system integrator wants to know more than one allocation: how close do
the deadlines sit to the slot-count cliffs, which heuristic packs best,
and how many applications could the bus absorb?  This example sweeps the
deadline-tightness factor over the paper's Table I set, compares the
allocation heuristics, finds the critical tightness by bisection, and
checks the result against the FlexRay bus's static-segment capacity.

Run with::

    python examples/design_space_exploration.py
"""

from repro import PAPER_TABLE_I, make_analyzed, paper_bus_config
from repro.core.allocation import (
    best_fit_allocation,
    first_fit_allocation,
    optimal_allocation,
    worst_fit_allocation,
)
from repro.core.sensitivity import (
    critical_scale,
    deadline_sensitivity,
    static_segment_usage,
)
from repro.experiments.reporting import format_table


def main() -> None:
    # 1. Deadline-tightness sweep under both dwell models.
    scales = [0.5, 0.7, 0.85, 1.0, 1.25, 1.5, 2.0, 3.0]
    points = deadline_sensitivity(PAPER_TABLE_I, scales)
    rows = [
        [
            p.scale,
            p.slots_non_monotonic if p.slots_non_monotonic is not None else "infeasible",
            p.slots_monotonic if p.slots_monotonic is not None else "infeasible",
        ]
        for p in points
    ]
    print("Deadline-tightness sweep (scale 1.0 = the paper's deadlines)")
    print(format_table(["scale", "slots (non-monotonic)", "slots (monotonic)"], rows))

    # 2. The critical tightness: below this, some deadline is unreachable.
    critical = critical_scale(PAPER_TABLE_I)
    print(f"\ncritical tightness factor: {critical:.3f} "
          "(deadlines any tighter are infeasible even with dedicated slots)")

    # 3. Heuristic comparison at the paper's deadlines.
    apps = make_analyzed(PAPER_TABLE_I, "non-monotonic")
    heuristics = {
        "first-fit (paper)": first_fit_allocation,
        "best-fit": best_fit_allocation,
        "worst-fit": worst_fit_allocation,
        "exhaustive optimum": optimal_allocation,
    }
    rows = []
    for label, allocate in heuristics.items():
        result = allocate(apps)
        rows.append([label, result.slot_count,
                     " | ".join(",".join(s) for s in result.slot_names)])
    print("\nHeuristic comparison")
    print(format_table(["heuristic", "slots", "contents"], rows))

    # 4. Does it fit the paper's bus (10 static slots)?
    bus = paper_bus_config()
    usage = static_segment_usage(
        first_fit_allocation(apps).slot_count, bus.static_slots
    )
    print(
        f"\nstatic-segment usage: {usage.slots_used}/{usage.slots_available} slots "
        f"({100 * usage.fraction:.0f}%) -> fits: {usage.fits}"
    )


if __name__ == "__main__":
    main()
