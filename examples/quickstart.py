"""Quickstart: reproduce the paper's Section V case study via the
scenario pipeline.

One declarative :class:`repro.Scenario` describes the whole design
chain; :class:`repro.DesignStudy` executes it as named stages and
returns a structured, JSON-serializable :class:`repro.StudyResult`.
The registry already knows the paper's setups, so reproducing the
headline result — 3 shared TT slots with the non-monotonic dwell model
against 5 with the conservative monotonic one (+67 %) — is three lines.

Run with::

    python examples/quickstart.py
"""

from repro import DesignStudy, StudyResult, get_scenario, run_many


def main() -> None:
    # 1. Run the paper's Table I scenario through the full pipeline.
    study = DesignStudy(get_scenario("paper-table1")).run()
    print(study.summary())

    # 2. Compare against prior work's conservative monotonic model.
    monotonic = DesignStudy(get_scenario("paper-table1-monotonic")).run()
    extra = monotonic.slot_count / study.slot_count - 1.0
    print(
        f"\nnon-monotonic model : {study.slot_count} TT slots"
        f"\nmonotonic model     : {monotonic.slot_count} TT slots"
        f"\nmonotonic model needs {100 * extra:.0f}% more TT slots"
    )

    # 3. Results are data: JSON out, JSON back in, losslessly.
    wire = study.to_json()
    restored = StudyResult.from_json(wire)
    assert restored == study
    allocation = restored.artifact("allocate")
    print(f"\nslot contents (from JSON): {allocation['slots']}")

    # 4. Batch mode: sweep variants in parallel with a shared dwell cache.
    sweep = run_many(
        [
            get_scenario("paper-table1-optimal"),
            get_scenario("paper-table1-dedicated"),
            get_scenario("paper-table1-fixed-point"),
        ]
    )
    for result in sweep:
        print(f"{result.scenario.name:28s} -> {result.slot_count} TT slots")


if __name__ == "__main__":
    main()
