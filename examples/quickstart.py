"""Quickstart: reproduce the paper's Section V case study in a few lines.

The six Table I applications are packed onto shared FlexRay TT slots
twice — once with the paper's non-monotonic dwell model and once with
prior work's conservative monotonic model — and the resource usage is
compared.  Expected output: 3 slots vs 5 slots (+67 %).

Run with::

    python examples/quickstart.py
"""

from repro import (
    PAPER_TABLE_I,
    analyze_application,
    compare_resource_usage,
    first_fit_allocation,
    make_analyzed,
)


def main() -> None:
    # 1. Wrap the Table I timing parameters with each dwell-model shape.
    non_monotonic = make_analyzed(PAPER_TABLE_I, "non-monotonic")
    monotonic = make_analyzed(PAPER_TABLE_I, "conservative-monotonic")

    # 2. Pack applications onto the minimum number of shared TT slots.
    alloc_nm = first_fit_allocation(non_monotonic)
    alloc_mono = first_fit_allocation(monotonic)

    print("non-monotonic model :", alloc_nm.slot_names)
    print("monotonic model     :", alloc_mono.slot_names)
    extra = compare_resource_usage(alloc_nm, alloc_mono)
    print(f"monotonic model needs {100 * extra:.0f}% more TT slots")

    # 3. Inspect one worst-case analysis: C6 sharing a slot with C3.
    by_name = {app.name: app for app in non_monotonic}
    result = analyze_application(by_name["C6"], [by_name["C3"]])
    print(
        f"C6 sharing with C3: max wait {result.max_wait:.3f}s, "
        f"worst response {result.worst_response:.3f}s "
        f"(deadline {result.deadline}s, schedulable={result.schedulable})"
    )


if __name__ == "__main__":
    main()
