"""Property-based tests for the FlexRay dynamic-segment arbitration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flexray.dynamic_segment import DynamicSegment
from repro.flexray.frame import FrameSpec, Message
from repro.flexray.params import paper_bus_config
from repro.flexray.timing import worst_case_et_delay


@st.composite
def message_batches(draw):
    """A batch of pending messages with distinct frame IDs, all released
    before the first dynamic segment."""
    count = draw(st.integers(min_value=1, max_value=12))
    ids = draw(
        st.lists(
            st.integers(min_value=1, max_value=60),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    sizes = draw(
        st.lists(
            st.integers(min_value=16, max_value=2048),
            min_size=count,
            max_size=count,
        )
    )
    return [
        Message(spec=FrameSpec(frame_id=i, payload_bits=s), release_time=0.0)
        for i, s in zip(ids, sizes)
    ]


class TestDynamicSegmentProperties:
    @given(batch=message_batches())
    @settings(max_examples=100, deadline=None)
    def test_deliveries_within_segment_window(self, batch):
        cfg = paper_bus_config()
        segment = DynamicSegment(config=cfg)
        for message in batch:
            segment.enqueue(message)
        delivered = segment.run_cycle(0)
        start = cfg.dynamic_segment_start(0)
        end = cfg.cycle_start(1)
        for message in delivered:
            assert start < message.delivery_time <= end + 1e-12

    @given(batch=message_batches())
    @settings(max_examples=100, deadline=None)
    def test_delivery_order_follows_frame_ids(self, batch):
        segment = DynamicSegment(config=paper_bus_config())
        for message in batch:
            segment.enqueue(message)
        delivered = segment.run_cycle(0)
        ids = [m.spec.frame_id for m in delivered]
        assert ids == sorted(ids)

    @given(batch=message_batches())
    @settings(max_examples=100, deadline=None)
    def test_transmissions_never_overlap(self, batch):
        cfg = paper_bus_config()
        segment = DynamicSegment(config=cfg)
        for message in batch:
            segment.enqueue(message)
        delivered = segment.run_cycle(0)
        previous_end = cfg.dynamic_segment_start(0)
        for message in delivered:
            slots = message.spec.minislots_needed(cfg.minislot_length, segment.bit_time)
            start = message.delivery_time - slots * cfg.minislot_length
            assert start >= previous_end - 1e-12
            previous_end = message.delivery_time

    @given(batch=message_batches())
    @settings(max_examples=100, deadline=None)
    def test_every_message_eventually_delivered_or_oversized(self, batch):
        cfg = paper_bus_config()
        segment = DynamicSegment(config=cfg)
        for message in batch:
            segment.enqueue(message)
        for cycle in range(64):
            segment.run_cycle(cycle)
            if segment.pending() == 0:
                break
        for message in batch:
            own = message.spec.minislots_needed(cfg.minislot_length, segment.bit_time)
            if own <= cfg.minislots:
                assert message.delivered, f"frame {message.spec.frame_id} stuck"
            else:
                assert not message.delivered  # physically impossible frame

    @given(batch=message_batches())
    @settings(max_examples=60, deadline=None)
    def test_analytical_bound_dominates_simulation(self, batch):
        cfg = paper_bus_config()
        specs = [m.spec for m in batch]
        segment = DynamicSegment(config=cfg)
        for message in batch:
            segment.enqueue(message)
        for cycle in range(64):
            segment.run_cycle(cycle)
            if segment.pending() == 0:
                break
        for message in batch:
            own = message.spec.minislots_needed(cfg.minislot_length, segment.bit_time)
            if not message.delivered or own > cfg.minislots:
                continue
            others = [s for s in specs if s is not message.spec]
            try:
                bound = worst_case_et_delay(message.spec, others, cfg)
            except ValueError:
                continue  # structurally overloaded: no bound claimed
            assert message.latency <= bound.worst_latency + 1e-12
