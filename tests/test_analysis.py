"""Unit tests for repro.control.analysis."""

import numpy as np
import pytest

from repro.control.analysis import (
    SettlingError,
    norm_trajectory,
    settle_index,
    settling_time,
    transient_profile,
)


class TestSettleIndex:
    def test_all_below_returns_zero(self):
        assert settle_index(np.array([0.05, 0.01]), threshold=0.1) == 0

    def test_basic_crossing(self):
        norms = np.array([1.0, 0.5, 0.2, 0.05, 0.01])
        assert settle_index(norms, threshold=0.1) == 3

    def test_recrossing_moves_settle_later(self):
        norms = np.array([1.0, 0.05, 0.2, 0.05, 0.01])
        assert settle_index(norms, threshold=0.1) == 3

    def test_ends_above_returns_none(self):
        norms = np.array([1.0, 0.5, 0.2])
        assert settle_index(norms, threshold=0.1) is None


class TestSettlingTime:
    def test_scalar_geometric_decay(self):
        # norm(k) = 0.5^k; first k with 0.5^k <= 0.1 is k = 4 (0.0625).
        t = settling_time(np.array([[0.5]]), [1.0], threshold=0.1, period=1.0)
        assert t == pytest.approx(4.0)

    def test_period_scales_result(self):
        t1 = settling_time(np.array([[0.5]]), [1.0], threshold=0.1, period=1.0)
        t2 = settling_time(np.array([[0.5]]), [1.0], threshold=0.1, period=0.02)
        assert t2 == pytest.approx(t1 * 0.02)

    def test_already_settled_state(self, stable_second_order):
        t = settling_time(stable_second_order, [0.01, 0.0], threshold=0.1)
        assert t == 0.0

    def test_norm_selector_restricts_monitoring(self, stable_second_order):
        # Monitor only the first state; second state is large but ignored.
        selector = np.array([[1.0, 0.0]])
        t_full = settling_time(stable_second_order, [0.0, 5.0], threshold=0.1)
        t_selected = settling_time(
            stable_second_order, [0.0, 5.0], threshold=0.1, norm_selector=selector
        )
        assert t_selected <= t_full

    def test_unstable_matrix_raises(self):
        with pytest.raises(SettlingError, match="Schur"):
            settling_time(np.array([[1.01]]), [1.0], threshold=0.1)

    def test_transient_growth_handled(self):
        # Strong Jordan-type transient growth must not fool the search.
        a = np.array([[0.9, 10.0], [0.0, 0.9]])
        t = settling_time(a, [0.0, 1.0], threshold=0.1, period=1.0)
        norms = norm_trajectory(a, [0.0, 1.0], int(t) + 2)
        assert np.all(norms[int(t):] <= 0.1 + 1e-12)
        assert np.max(norms) > 1.0  # the transient really grew


class TestNormTrajectory:
    def test_length_and_start(self, stable_second_order):
        norms = norm_trajectory(stable_second_order, [3.0, 4.0], steps=5)
        assert norms.shape == (6,)
        assert norms[0] == pytest.approx(5.0)


class TestTransientProfile:
    def test_monotone_decay_profile(self):
        profile = transient_profile(np.array([[0.5]]), [1.0], threshold=0.1)
        assert profile.monotone
        assert profile.peak_norm == pytest.approx(1.0)
        assert profile.peak_time == 0.0

    def test_non_monotone_detected(self):
        a = np.array([[0.9, 5.0], [0.0, 0.9]])
        profile = transient_profile(a, [0.0, 1.0], threshold=0.05)
        assert not profile.monotone
        assert profile.peak_time > 0.0
        assert profile.peak_norm > 1.0
