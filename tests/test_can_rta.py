"""Unit tests for the CAN response-time analysis baseline."""

import pytest

from repro.baselines.can_rta import (
    CanMessage,
    analyze_message_set,
    bus_utilization,
    worst_case_response_time,
)


def msg(name, priority, period=0.01, transmission=0.001, **kwargs):
    return CanMessage(
        name=name, period=period, transmission=transmission, priority=priority, **kwargs
    )


class TestWorstCaseResponseTime:
    def test_alone_is_own_transmission(self):
        result = worst_case_response_time(msg("A", priority=1), [])
        assert result.response_time == pytest.approx(0.001)
        assert result.schedulable

    def test_blocking_from_lower_priority(self):
        subject = msg("A", priority=1)
        blocker = msg("B", priority=2, transmission=0.003)
        result = worst_case_response_time(subject, [blocker])
        assert result.queuing_delay == pytest.approx(0.003)
        assert result.response_time == pytest.approx(0.004)

    def test_interference_from_higher_priority(self):
        subject = msg("B", priority=2, period=0.02)
        interferer = msg("A", priority=1, period=0.005, transmission=0.002)
        result = worst_case_response_time(subject, [interferer])
        # At least one interference hit before transmission.
        assert result.queuing_delay >= 0.002

    def test_overload_reported_unschedulable(self):
        subject = msg("C", priority=3, period=0.01, transmission=0.002)
        hogs = [
            msg("A", priority=1, period=0.004, transmission=0.002),
            msg("B", priority=2, period=0.004, transmission=0.002),
        ]
        result = worst_case_response_time(subject, hogs)
        assert not result.schedulable

    def test_fixed_point_property(self):
        subject = msg("B", priority=2, period=0.05)
        interferer = msg("A", priority=1, period=0.007, transmission=0.002)
        result = worst_case_response_time(subject, [interferer])
        if result.schedulable:
            import math

            rhs = math.ceil(result.queuing_delay / 0.007 + 1e-12) * 0.002
            assert result.queuing_delay == pytest.approx(rhs)

    def test_jitter_increases_interference(self):
        subject = msg("B", priority=2, period=0.05)
        calm = msg("A", priority=1, period=0.0021, transmission=0.002)
        jittery = msg("A", priority=1, period=0.0021, transmission=0.002, jitter=0.0009)
        r_calm = worst_case_response_time(subject, [calm])
        r_jittery = worst_case_response_time(subject, [jittery])
        assert r_jittery.response_time >= r_calm.response_time


class TestMessageSet:
    def test_analyze_all(self):
        messages = [msg(f"M{i}", priority=i, period=0.02) for i in range(1, 5)]
        results = analyze_message_set(messages)
        assert len(results) == 4
        # Lowest priority has the largest response.
        responses = {r.name: r.response_time for r in results}
        assert responses["M4"] >= responses["M1"]

    def test_bus_utilization(self):
        messages = [
            msg("A", priority=1, period=0.01, transmission=0.002),
            msg("B", priority=2, period=0.02, transmission=0.002),
        ]
        assert bus_utilization(messages) == pytest.approx(0.3)

    def test_deadline_defaults_to_period(self):
        m = msg("A", priority=1, period=0.015)
        assert m.effective_deadline == 0.015
        explicit = msg("A", priority=1, deadline=0.008)
        assert explicit.effective_deadline == 0.008
