"""Conformance kit over every bundled network backend (ISSUE 9).

``check_network_model`` is the executable form of the frozen backend
contract; this suite runs it against each bundled backend family —
explicitly constructed *and* registry-built — so any protocol drift
fails here before a co-simulation silently diverges.  A deliberately
broken model proves the kit actually rejects violations.
"""

import dataclasses

import pytest

from repro.flexray import FlexRayBus, paper_bus_config
from repro.sim.network import (
    AnalyticNetwork,
    CanBusNetwork,
    ConformanceError,
    FlexRayNetwork,
    GilbertElliottLoss,
    IIDLoss,
    LossyNetwork,
    build_network,
    check_network_model,
    network_names,
)

FACTORIES = {
    "analytic": lambda: AnalyticNetwork(),
    "flexray": lambda: FlexRayNetwork(bus=FlexRayBus(config=paper_bus_config())),
    "flexray-lossy": lambda: FlexRayNetwork(
        bus=FlexRayBus(config=paper_bus_config()), loss_rate=0.3, loss_seed=7
    ),
    "can": lambda: CanBusNetwork(),
    "can-iid-loss": lambda: LossyNetwork(
        inner=CanBusNetwork(), loss=IIDLoss(rate=0.25, seed=11)
    ),
    "can-gilbert-elliott": lambda: LossyNetwork(
        inner=CanBusNetwork(), loss=GilbertElliottLoss(seed=3)
    ),
    "analytic-lossy": lambda: LossyNetwork(
        inner=AnalyticNetwork(), loss=IIDLoss(rate=0.5, seed=1)
    ),
}


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_bundled_backend_conforms(name):
    check_network_model(FACTORIES[name])


@pytest.mark.parametrize("name", sorted(network_names()))
def test_registry_built_backend_conforms(name):
    """Every registered backend passes as the registry builds it."""
    check_network_model(lambda: build_network(name, seed=0))


@pytest.mark.parametrize("name", sorted(network_names()))
def test_registry_built_lossy_backend_conforms(name):
    """The registry's ``loss_rate`` knob also yields conformant models
    (analytic documents ignoring it; flexray/can wire up IID loss)."""
    check_network_model(lambda: build_network(name, loss_rate=0.2, seed=5))


class _DroppedSubmission(AnalyticNetwork):
    """Broken on purpose: reports deliveries for a message never sent."""

    def event_advance(self, time):
        deliveries = super().event_advance(time)
        return [
            dataclasses.replace(d, release_time=d.release_time + 1.0)
            for d in deliveries
        ]


class _TimeTravel(AnalyticNetwork):
    """Broken on purpose: delivers before the submission's release."""

    def event_advance(self, time):
        deliveries = super().event_advance(time)
        return [
            dataclasses.replace(d, delivery_time=d.release_time - 1.0)
            for d in deliveries
        ]


class _StickyReset(AnalyticNetwork):
    """Broken on purpose: ``reset`` leaves delivered counts behind, and
    the pending queue replays stale messages after rewind."""

    def reset(self):
        pass  # never clears _pending / delivered


@pytest.mark.parametrize(
    "broken", [_DroppedSubmission, _TimeTravel, _StickyReset]
)
def test_kit_rejects_broken_models(broken):
    with pytest.raises(ConformanceError):
        check_network_model(lambda: broken())


def test_kit_rejects_missing_surface():
    class NotANetwork:
        pass

    with pytest.raises(ConformanceError, match="implements"):
        check_network_model(lambda: NotANetwork())


def test_kit_requires_fresh_instances():
    shared = AnalyticNetwork()
    with pytest.raises(ConformanceError, match="fresh"):
        check_network_model(lambda: shared)
