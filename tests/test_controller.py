"""Unit tests for repro.control.controller."""

import numpy as np
import pytest

from repro.control.controller import (
    design_mode_controller,
    design_switched_application,
)
from repro.control.plants import servo_rig
from repro.utils.linalg import is_schur_stable


@pytest.fixture(scope="module")
def plant():
    return servo_rig()


@pytest.fixture(scope="module")
def application(plant):
    return design_switched_application(
        name="servo",
        plant=plant.model,
        period=plant.period,
        et_delay=plant.period,
        tt_delay=0.0007,
        q=plant.q,
        r=plant.r,
        threshold=plant.threshold,
    )


class TestDesignModeController:
    def test_stabilizes_unstable_plant(self, plant):
        controller = design_mode_controller(
            plant.model, period=plant.period, delay=0.0, q=plant.q, r=plant.r
        )
        assert controller.is_stabilizing()

    def test_stabilizes_with_full_delay(self, plant):
        controller = design_mode_controller(
            plant.model, period=plant.period, delay=plant.period, q=plant.q, r=plant.r
        )
        assert controller.is_stabilizing()

    def test_gain_shape_covers_augmented_state(self, plant):
        controller = design_mode_controller(
            plant.model, period=plant.period, delay=0.01, q=plant.q, r=plant.r
        )
        assert controller.gain.shape == (1, 3)

    def test_control_law_is_linear(self, plant):
        controller = design_mode_controller(
            plant.model, period=plant.period, delay=0.01, q=plant.q, r=plant.r
        )
        u1 = controller.control([0.1, 0.0], [0.0])
        u2 = controller.control([0.2, 0.0], [0.0])
        np.testing.assert_allclose(2 * u1, u2, atol=1e-12)

    def test_closed_loop_matches_gain(self, plant):
        controller = design_mode_controller(
            plant.model, period=plant.period, delay=0.01, q=plant.q, r=plant.r
        )
        aug = controller.plant.augmented()
        np.testing.assert_allclose(
            controller.closed_loop, aug.a - aug.b @ controller.gain, atol=1e-12
        )

    def test_rejects_delay_beyond_period(self, plant):
        with pytest.raises(ValueError):
            design_mode_controller(
                plant.model, period=plant.period, delay=1.0, q=plant.q, r=plant.r
            )


class TestSwitchedApplication:
    def test_both_loops_stable(self, application):
        assert is_schur_stable(application.a1)
        assert is_schur_stable(application.a2)

    def test_mode_delays(self, application):
        assert application.et.plant.delay == pytest.approx(0.020)
        assert application.tt.plant.delay == pytest.approx(0.0007)

    def test_initial_state_appends_zero_input(self, application):
        z0 = application.initial_state([0.5, -0.1])
        np.testing.assert_allclose(z0, [0.5, -0.1, 0.0])

    def test_initial_state_rejects_wrong_size(self, application):
        with pytest.raises(ValueError):
            application.initial_state([1.0])

    def test_norm_selector_extracts_plant_states(self, application):
        selector = application.plant_norm_selector()
        z = np.array([1.0, 2.0, 42.0])
        np.testing.assert_allclose(selector @ z, [1.0, 2.0])

    def test_rejects_equal_delays(self, plant):
        with pytest.raises(ValueError, match="tt_delay < et_delay"):
            design_switched_application(
                name="bad",
                plant=plant.model,
                period=plant.period,
                et_delay=0.001,
                tt_delay=0.001,
                q=plant.q,
                r=plant.r,
                threshold=plant.threshold,
            )

    def test_rejects_nonpositive_threshold(self, plant):
        with pytest.raises(ValueError):
            design_switched_application(
                name="bad",
                plant=plant.model,
                period=plant.period,
                et_delay=plant.period,
                tt_delay=0.0,
                q=plant.q,
                r=plant.r,
                threshold=0.0,
            )
