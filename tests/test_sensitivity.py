"""Tests for the deadline-sensitivity analysis."""

import pytest

from repro.core.sensitivity import (
    critical_scale,
    deadline_sensitivity,
    scale_deadlines,
    static_segment_usage,
)
from repro.core.timing_params import PAPER_TABLE_I


class TestScaleDeadlines:
    def test_identity_scale(self):
        scaled = scale_deadlines(PAPER_TABLE_I, 1.0)
        assert [p.deadline for p in scaled] == [p.deadline for p in PAPER_TABLE_I]

    def test_scaling_clamps_to_inter_arrival(self):
        scaled = scale_deadlines(PAPER_TABLE_I, 100.0)
        for original, new in zip(PAPER_TABLE_I, scaled):
            assert new.deadline == original.min_inter_arrival

    def test_other_fields_untouched(self):
        scaled = scale_deadlines(PAPER_TABLE_I, 0.9)
        for original, new in zip(PAPER_TABLE_I, scaled):
            assert new.xi_tt == original.xi_tt
            assert new.xi_m == original.xi_m


class TestDeadlineSensitivity:
    def test_paper_point_reproduced(self):
        points = deadline_sensitivity(PAPER_TABLE_I, [1.0])
        assert points[0].slots_non_monotonic == 3
        assert points[0].slots_monotonic == 5

    def test_looser_deadlines_never_need_more_slots(self):
        points = deadline_sensitivity(PAPER_TABLE_I, [1.0, 1.5, 2.0, 3.0])
        feasible = [p for p in points if p.feasible]
        counts = [p.slots_non_monotonic for p in feasible]
        assert counts == sorted(counts, reverse=True)

    def test_very_tight_deadlines_become_infeasible(self):
        points = deadline_sensitivity(PAPER_TABLE_I, [0.1])
        assert points[0].slots_non_monotonic is None

    def test_non_monotonic_never_needs_more_than_monotonic(self):
        points = deadline_sensitivity(PAPER_TABLE_I, [0.8, 1.0, 1.5, 2.5])
        for point in points:
            if point.slots_non_monotonic is None or point.slots_monotonic is None:
                continue
            assert point.slots_non_monotonic <= point.slots_monotonic


class TestCriticalScale:
    def test_transition_found(self):
        scale = critical_scale(PAPER_TABLE_I, lo=0.05, hi=1.0)
        assert 0.05 < scale <= 1.0
        # Just above the critical scale the set is feasible...
        assert deadline_sensitivity(PAPER_TABLE_I, [scale * 1.01])[0].feasible
        # ...and well below it, infeasible.
        assert not deadline_sensitivity(PAPER_TABLE_I, [scale * 0.5])[0].feasible

    def test_feasible_lo_returns_lo(self):
        assert critical_scale(PAPER_TABLE_I, lo=0.99, hi=1.0) == pytest.approx(0.99)


class TestStaticSegmentUsage:
    def test_paper_bus_fits_three_slots(self):
        usage = static_segment_usage(slot_count=3, static_slots=10)
        assert usage.fits
        assert usage.fraction == pytest.approx(0.3)

    def test_overflow_detected(self):
        usage = static_segment_usage(slot_count=12, static_slots=10)
        assert not usage.fits
