"""Network-backend registry, capability descriptors, batch dispatch (ISSUE 9).

The registry mirrors ``repro.solvers.registry`` (decorator registration,
sorted names, readable unknown-name errors); ``batch_capability`` now
interrogates ``capabilities()`` instead of ``isinstance``-sniffing, so
third-party backends opt in to the batch fast path by *claiming* a
strategy — and subclasses of the stock backends are conservatively
kicked back to the event kernel unless they re-claim one.
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.experiments import traces_bitwise_equal
from repro.flexray import FlexRayBus, paper_bus_config
from repro.sim import CoSimulator
from repro.sim.batch import batch_capability
from repro.sim.network import (
    AnalyticNetwork,
    BATCH_STRATEGIES,
    CanBusNetwork,
    FlexRayNetwork,
    IIDLoss,
    LossyNetwork,
    NetworkCapabilities,
    NetworkModel,
    UnknownNetworkError,
    build_network,
    get_network,
    network_names,
    network_table,
    register_network,
    unregister_network,
)
from test_cosim_event import shared_fleet


class TestRegistry:
    def test_bundled_backends_are_registered(self):
        assert {"analytic", "can", "flexray"} <= set(network_names())

    def test_names_sorted(self):
        assert network_names() == sorted(network_names())

    def test_get_network_exposes_capability_metadata(self):
        spec = get_network("analytic")
        assert spec.deterministic
        assert spec.analytic_delays
        assert spec.batch == "analytic"
        can = get_network("can")
        assert can.deterministic
        assert can.batch is None

    def test_unknown_name_error_lists_registered(self):
        with pytest.raises(UnknownNetworkError) as excinfo:
            get_network("token-ring")
        message = str(excinfo.value)
        assert "token-ring" in message
        assert "analytic" in message and "can" in message

    def test_build_network_constructs_instances(self):
        network = build_network("can")
        assert isinstance(network, CanBusNetwork)
        lossy = build_network("can", loss_rate=0.1, seed=3)
        assert isinstance(lossy, LossyNetwork)
        assert lossy.capabilities().loss == "iid"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_network(
                "analytic",
                summary="imposter",
                deterministic=True,
                analytic_delays=True,
                batch=None,
                loss="none",
            )
            def _imposter(**kwargs):
                raise AssertionError("never built")

    def test_register_overwrite_and_unregister(self):
        @register_network(
            "test-proto-null",
            summary="registry round-trip fixture",
            deterministic=True,
            analytic_delays=True,
            batch=None,
            loss="none",
        )
        def _build_null(**kwargs):
            return AnalyticNetwork()

        try:
            assert "test-proto-null" in network_names()
            assert isinstance(build_network("test-proto-null"), AnalyticNetwork)

            @register_network(
                "test-proto-null",
                summary="second generation",
                deterministic=True,
                analytic_delays=True,
                batch=None,
                loss="none",
                overwrite=True,
            )
            def _build_null_v2(**kwargs):
                return AnalyticNetwork(tt_delay=0.001)

            assert get_network("test-proto-null").summary == "second generation"
            assert build_network("test-proto-null").tt_delay == 0.001
        finally:
            unregister_network("test-proto-null")
        assert "test-proto-null" not in network_names()

    def test_network_table_rows_match_registry(self):
        table = network_table()
        assert [row["name"] for row in table] == network_names()
        for row in table:
            assert {"name", "summary", "deterministic", "batch"} <= set(row)


class TestCapabilities:
    def test_descriptor_validates_batch_strategy(self):
        with pytest.raises(ValueError, match="batch_strategy"):
            NetworkCapabilities(
                deterministic=True,
                analytic_delays=False,
                batch_strategy="warp-drive",
            )

    def test_descriptor_serializes(self):
        caps = AnalyticNetwork().capabilities()
        payload = caps.to_dict()
        assert payload["batch_strategy"] == "analytic"
        assert payload["deterministic"] is True

    def test_stock_backends_self_describe(self):
        assert AnalyticNetwork().capabilities().batch_strategy == "analytic"
        pristine = FlexRayNetwork(bus=FlexRayBus(config=paper_bus_config()))
        assert pristine.capabilities().batch_strategy == "flexray"
        assert pristine.capabilities().deterministic
        lossy = FlexRayNetwork(
            bus=FlexRayBus(config=paper_bus_config()), loss_rate=0.1
        )
        assert lossy.capabilities().batch_strategy is None
        assert not lossy.capabilities().deterministic
        assert lossy.capabilities().loss == "iid"
        assert CanBusNetwork().capabilities().batch_strategy is None

    def test_loss_wrapper_demotes_capabilities(self):
        wrapped = LossyNetwork(
            inner=AnalyticNetwork(), loss=IIDLoss(rate=0.2, seed=0)
        )
        caps = wrapped.capabilities()
        assert caps.batch_strategy is None
        assert not caps.deterministic
        assert caps.loss == "iid"


class TestBatchCapabilityDispatch:
    """``batch_capability`` classifies via ``capabilities()`` only."""

    def _sim(self, network):
        return CoSimulator(shared_fleet(), network)

    def test_stock_classification(self):
        assert batch_capability(self._sim(AnalyticNetwork())) == "analytic"
        pristine = FlexRayNetwork(bus=FlexRayBus(config=paper_bus_config()))
        assert batch_capability(self._sim(pristine)) == "flexray"
        lossy = FlexRayNetwork(
            bus=FlexRayBus(config=paper_bus_config()), loss_rate=0.1
        )
        assert batch_capability(self._sim(lossy)) is None
        assert batch_capability(self._sim(CanBusNetwork())) is None

    def test_duck_typed_network_never_batches(self):
        class Duck:
            tt_delay = 0.0007
            et_delay = 0.020

            def sample_delays(self, time, submissions, period):
                return {s.name: self.tt_delay for s in submissions}

            def on_slot_change(self, slot, frame):
                pass

        assert batch_capability(self._sim(Duck())) is None

    def test_subclass_without_override_never_batches(self):
        class Tweaked(AnalyticNetwork):
            pass

        assert Tweaked().capabilities().batch_strategy is None
        assert batch_capability(self._sim(Tweaked())) is None

    def test_subclass_opting_back_in_runs_batch_bitwise(self):
        """A subclass that keeps the analytic semantics can re-claim the
        strategy through ``capabilities()`` — the documented seam — and
        the batch kernel replays the event kernel bit for bit."""

        class StillAnalytic(AnalyticNetwork):
            def capabilities(self):
                return dataclasses.replace(
                    super().capabilities(), batch_strategy="analytic"
                )

        sim = CoSimulator(shared_fleet(), StillAnalytic())
        trace = sim.run(6.0)
        assert sim.last_kernel == "batch"
        reference = CoSimulator(
            shared_fleet(), AnalyticNetwork(), kernel="event"
        ).run(6.0)
        assert traces_bitwise_equal(trace, reference)

    def test_strategies_are_frozen(self):
        assert BATCH_STRATEGIES == ("analytic", "flexray")


class TestNetworksCli:
    """``repro networks`` — the capability table, satellite (a)."""

    def test_text_listing(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        assert "Registered network backends" in out
        for name in network_names():
            assert name in out
        assert "lowest frame id wins" in out  # CAN summary surfaced

    def test_json_listing_round_trips(self, capsys):
        assert main(["networks", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        rows = {spec["name"]: spec for spec in data["networks"]}
        assert set(rows) == set(network_names())
        assert rows["analytic"]["batch"] == "analytic"
        assert rows["can"]["batch"] is None
        assert rows["can"]["loss"] == "iid"
        assert rows["flexray"]["deterministic"] is True


class TestCompatibilityShims:
    def test_cosim_module_reexports_moved_names(self):
        from repro.sim import cosim

        assert cosim.AnalyticNetwork is AnalyticNetwork
        assert cosim.FlexRayNetwork is FlexRayNetwork
        assert cosim.NetworkModel is NetworkModel

    def test_abc_instances_pass_runtime_checks(self):
        assert isinstance(AnalyticNetwork(), NetworkModel)
        assert isinstance(CanBusNetwork(), NetworkModel)
