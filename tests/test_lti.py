"""Unit tests for repro.control.lti."""

import numpy as np
import pytest

from repro.control.lti import (
    ContinuousStateSpace,
    DelayedStateSpace,
    simulate_autonomous,
)


def make_delayed(delay=0.005):
    return DelayedStateSpace(
        phi=np.array([[1.0, 0.1], [0.0, 1.0]]),
        gamma0=np.array([[0.005], [0.1]]),
        gamma1=np.array([[0.001], [0.02]]),
        c=np.eye(2),
        period=0.1,
        delay=delay,
    )


class TestContinuousStateSpace:
    def test_dimensions(self):
        sys = ContinuousStateSpace(a=np.zeros((2, 2)), b=np.ones((2, 1)))
        assert sys.n_states == 2
        assert sys.n_inputs == 1
        assert sys.n_outputs == 2  # default C = I

    def test_default_output_matrix_is_identity(self):
        sys = ContinuousStateSpace(a=np.zeros((3, 3)), b=np.ones((3, 1)))
        np.testing.assert_allclose(sys.c, np.eye(3))

    def test_rejects_mismatched_b(self):
        with pytest.raises(ValueError):
            ContinuousStateSpace(a=np.zeros((2, 2)), b=np.ones((3, 1)))

    def test_rejects_non_square_a(self):
        with pytest.raises(ValueError, match="square"):
            ContinuousStateSpace(a=np.zeros((2, 3)), b=np.ones((2, 1)))

    def test_stability_check(self):
        stable = ContinuousStateSpace(a=-np.eye(2), b=np.ones((2, 1)))
        unstable = ContinuousStateSpace(a=np.eye(2), b=np.ones((2, 1)))
        assert stable.is_stable()
        assert not unstable.is_stable()


class TestDelayedStateSpace:
    def test_step_matches_matrices(self):
        sys = make_delayed()
        x = np.array([1.0, -1.0])
        u = np.array([2.0])
        u_prev = np.array([0.5])
        expected = sys.phi @ x + sys.gamma0 @ u + sys.gamma1 @ u_prev
        np.testing.assert_allclose(sys.step(x, u, u_prev), expected)

    def test_rejects_delay_above_period(self):
        with pytest.raises(ValueError, match="delay"):
            make_delayed(delay=0.2)

    def test_augmented_shapes(self):
        aug = make_delayed().augmented()
        assert aug.a.shape == (3, 3)
        assert aug.b.shape == (3, 1)
        assert aug.n_plant_states == 2

    def test_augmented_dynamics_match_original(self):
        sys = make_delayed()
        aug = sys.augmented()
        x = np.array([0.3, -0.7])
        u_prev = np.array([0.2])
        u = np.array([1.5])
        z = np.concatenate([x, u_prev])
        z_next = aug.a @ z + aug.b @ u
        np.testing.assert_allclose(z_next[:2], sys.step(x, u, u_prev))
        np.testing.assert_allclose(z_next[2:], u)


class TestAugmentedStateSpace:
    def test_closed_loop_shape(self):
        aug = make_delayed().augmented()
        gain = np.ones((1, 3))
        cl = aug.closed_loop(gain)
        np.testing.assert_allclose(cl, aug.a - aug.b @ gain)

    def test_closed_loop_rejects_bad_gain(self):
        aug = make_delayed().augmented()
        with pytest.raises(ValueError):
            aug.closed_loop(np.ones((1, 2)))

    def test_plant_norm_selector(self):
        aug = make_delayed().augmented()
        selector = aug.plant_norm_selector()
        z = np.array([1.0, 2.0, 99.0])
        np.testing.assert_allclose(selector @ z, [1.0, 2.0])


class TestSimulateAutonomous:
    def test_first_row_is_initial_state(self):
        a = np.diag([0.5, 0.5])
        out = simulate_autonomous(a, [1.0, 2.0], steps=3)
        np.testing.assert_allclose(out[0], [1.0, 2.0])

    def test_geometric_decay(self):
        out = simulate_autonomous(np.array([[0.5]]), [8.0], steps=3)
        np.testing.assert_allclose(out.ravel(), [8.0, 4.0, 2.0, 1.0])

    def test_zero_steps(self):
        out = simulate_autonomous(np.eye(2), [1.0, 1.0], steps=0)
        assert out.shape == (1, 2)

    def test_rejects_negative_steps(self):
        with pytest.raises(ValueError):
            simulate_autonomous(np.eye(2), [1.0, 1.0], steps=-1)
