"""Stateful property test of the switching runtime + arbiter together.

Random sequences of norm observations drive several runtimes sharing one
slot; invariants of the Figure 1 scheme are checked after every step:

* at most one application holds the slot;
* an application in TT_HOLDING actually holds the slot;
* an application below threshold is never in TT_HOLDING after its update;
* completed episodes have non-negative response times.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.sim.arbiter import TTSlotArbiter
from repro.sim.runtime import CommState, SwitchingRuntime

NAMES = ["A", "B", "C"]
DEADLINES = {"A": 2.0, "B": 4.0, "C": 6.0}


class RuntimeMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.arbiter = TTSlotArbiter()
        self.runtimes = {}
        for name in NAMES:
            runtime = SwitchingRuntime(
                name=name,
                threshold=0.1,
                arbiter=self.arbiter,
                deadline=DEADLINES[name],
            )
            self.arbiter.register(runtime.client(), slot=0)
            self.runtimes[name] = runtime
        self.time = 0.0
        self.last_norm = {name: 0.0 for name in NAMES}

    @rule(
        norms=st.fixed_dictionaries(
            {name: st.floats(min_value=0.0, max_value=2.0) for name in NAMES}
        )
    )
    def sample_step(self, norms):
        """One sampling instant: grant, then update every runtime."""
        self.time += 0.02
        self.arbiter.grant_pending()
        for name in NAMES:
            self.runtimes[name].update(self.time, norms[name])
            self.last_norm[name] = norms[name]
        # A release during the updates may free the slot for a waiter;
        # mirror the co-simulator: grant and let the waiter observe it.
        for name in self.arbiter.grant_pending():
            self.runtimes[name].update(self.time, self.last_norm[name])

    @invariant()
    def at_most_one_holder(self):
        if not hasattr(self, "arbiter"):
            return
        holders = [
            name for name in NAMES if self.arbiter.holds(name)
        ]
        assert len(holders) <= 1

    @invariant()
    def tt_holding_implies_slot_held(self):
        if not hasattr(self, "runtimes"):
            return
        for name, runtime in self.runtimes.items():
            if runtime.state is CommState.TT_HOLDING:
                assert self.arbiter.holds(name)
            else:
                assert not self.arbiter.holds(name)

    @invariant()
    def settled_apps_are_steady(self):
        if not hasattr(self, "runtimes"):
            return
        for name, runtime in self.runtimes.items():
            if self.last_norm[name] <= 0.1:
                assert runtime.state is CommState.ET_STEADY

    @invariant()
    def episode_records_consistent(self):
        if not hasattr(self, "runtimes"):
            return
        for runtime in self.runtimes.values():
            for record in runtime.records:
                if record.settled_at is not None:
                    assert record.response_time >= 0.0
                if record.granted_at is not None:
                    assert record.granted_at >= record.arrival


TestRuntimeStateMachine = RuntimeMachine.TestCase
TestRuntimeStateMachine.settings = settings(
    max_examples=60, stateful_step_count=50, deadline=None
)
