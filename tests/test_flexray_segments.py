"""Unit tests for the static and dynamic FlexRay segments."""

import pytest

from repro.flexray.dynamic_segment import DynamicSegment
from repro.flexray.frame import FrameSpec, Message
from repro.flexray.params import paper_bus_config
from repro.flexray.static_segment import SlotAssignmentError, StaticSchedule


@pytest.fixture()
def schedule():
    return StaticSchedule(config=paper_bus_config())


@pytest.fixture()
def dynamic():
    return DynamicSegment(config=paper_bus_config())


class TestFrameSpec:
    def test_minislots_needed_rounds_up(self):
        spec = FrameSpec(frame_id=1, payload_bits=64)
        # 64 bits * 0.1 us = 6.4 us -> 1 minislot of 10 us.
        assert spec.minislots_needed(0.00001, 1e-7) == 1
        # 256 bits * 0.1 us = 25.6 us -> 3 minislots.
        big = FrameSpec(frame_id=1, payload_bits=256)
        assert big.minislots_needed(0.00001, 1e-7) == 3

    def test_rejects_bad_ids(self):
        with pytest.raises(ValueError):
            FrameSpec(frame_id=0)

    def test_message_latency(self):
        msg = Message(spec=FrameSpec(frame_id=1), release_time=1.0)
        assert not msg.delivered
        with pytest.raises(ValueError):
            _ = msg.latency
        msg.delivery_time = 1.25
        assert msg.latency == pytest.approx(0.25)


class TestStaticSchedule:
    def test_assign_and_lookup(self, schedule):
        spec = FrameSpec(frame_id=7)
        schedule.assign(3, spec)
        assert schedule.owner(3) is spec
        assert schedule.slot_of(7) == 3
        assert 3 not in schedule.free_slots()

    def test_conflicting_assignment_rejected(self, schedule):
        schedule.assign(3, FrameSpec(frame_id=7))
        with pytest.raises(SlotAssignmentError, match="already owned"):
            schedule.assign(3, FrameSpec(frame_id=8))

    def test_reassign_same_frame_is_idempotent(self, schedule):
        spec = FrameSpec(frame_id=7)
        schedule.assign(3, spec)
        schedule.assign(3, spec)
        assert schedule.slot_of(7) == 3

    def test_release_frees_slot(self, schedule):
        schedule.assign(3, FrameSpec(frame_id=7))
        schedule.release(3)
        assert schedule.owner(3) is None
        assert schedule.slot_of(7) is None

    def test_transmit_delivers_at_slot_end(self, schedule):
        spec = FrameSpec(frame_id=7)
        schedule.assign(2, spec)
        msg = Message(spec=spec, release_time=0.0)
        delivery = schedule.transmit(msg, slot=2, cycle=0)
        _, end = schedule.config.static_slot_window(0, 2)
        assert delivery == pytest.approx(end)
        assert msg.delivered

    def test_transmit_requires_ownership(self, schedule):
        msg = Message(spec=FrameSpec(frame_id=9), release_time=0.0)
        with pytest.raises(SlotAssignmentError, match="does not own"):
            schedule.transmit(msg, slot=0, cycle=0)

    def test_late_release_misses_slot(self, schedule):
        spec = FrameSpec(frame_id=7)
        schedule.assign(0, spec)
        start, _ = schedule.config.static_slot_window(0, 0)
        msg = Message(spec=spec, release_time=start + 1e-6)
        with pytest.raises(ValueError, match="missed the slot start"):
            schedule.transmit(msg, slot=0, cycle=0)

    def test_next_transmission_time_waits_for_slot(self, schedule):
        cfg = schedule.config
        # Release just after slot 1 started: wait until its next cycle.
        start, end = cfg.static_slot_window(0, 1)
        t = schedule.next_transmission_time(1, start + 1e-6)
        _, end_next = cfg.static_slot_window(1, 1)
        assert t == pytest.approx(end_next)

    def test_worst_case_latency(self, schedule):
        cfg = schedule.config
        assert schedule.worst_case_latency(0) == pytest.approx(
            cfg.cycle_length + cfg.static_slot_length
        )


class TestDynamicSegment:
    def test_single_message_delivered_in_id_order_slot(self, dynamic):
        spec = FrameSpec(frame_id=3, payload_bits=64)
        msg = Message(spec=spec, release_time=0.0)
        dynamic.enqueue(msg)
        delivered = dynamic.run_cycle(0)
        assert delivered == [msg]
        cfg = dynamic.config
        # Two empty minislots (IDs 1, 2) then one transmission minislot.
        expected = cfg.dynamic_segment_start(0) + 3 * cfg.minislot_length
        assert msg.delivery_time == pytest.approx(expected)

    def test_lower_id_wins(self, dynamic):
        low = Message(spec=FrameSpec(frame_id=1, payload_bits=2000), release_time=0.0)
        high = Message(spec=FrameSpec(frame_id=2), release_time=0.0)
        dynamic.enqueue(high)
        dynamic.enqueue(low)
        delivered = dynamic.run_cycle(0)
        assert [m.spec.frame_id for m in delivered] == [1, 2]
        assert low.delivery_time < high.delivery_time

    def test_interference_delays_higher_ids(self, dynamic):
        cfg = dynamic.config
        blocker = Message(
            spec=FrameSpec(frame_id=1, payload_bits=4000), release_time=0.0
        )
        victim = Message(spec=FrameSpec(frame_id=2), release_time=0.0)
        dynamic.enqueue(blocker)
        dynamic.enqueue(victim)
        dynamic.run_cycle(0)
        blocker_slots = blocker.spec.minislots_needed(cfg.minislot_length, dynamic.bit_time)
        expected_victim = cfg.dynamic_segment_start(0) + (
            blocker_slots + 1
        ) * cfg.minislot_length
        assert victim.delivery_time == pytest.approx(expected_victim)

    def test_message_released_mid_segment_waits(self, dynamic):
        cfg = dynamic.config
        late = Message(
            spec=FrameSpec(frame_id=1),
            release_time=cfg.dynamic_segment_start(0) + 1e-6,
        )
        dynamic.enqueue(late)
        assert dynamic.run_cycle(0) == []
        assert dynamic.run_cycle(1) == [late]

    def test_platest_tx_defers_unfinishable_frame(self, dynamic):
        cfg = dynamic.config
        # A frame needing more minislots than remain cannot start.
        huge_bits = int((cfg.minislots + 10) * cfg.minislot_length / dynamic.bit_time)
        blocker = Message(
            spec=FrameSpec(frame_id=1, payload_bits=huge_bits), release_time=0.0
        )
        dynamic.enqueue(blocker)
        # A frame larger than the whole segment can never start; the
        # arbiter skips it every cycle (pLatestTx) and it stays queued.
        for cycle in range(3):
            assert dynamic.run_cycle(cycle) == []
        assert dynamic.pending(1) == 1

    def test_fifo_within_one_frame_id(self, dynamic):
        spec = FrameSpec(frame_id=1)
        first = Message(spec=spec, release_time=0.0)
        second = Message(spec=spec, release_time=0.0)
        dynamic.enqueue(first)
        dynamic.enqueue(second)
        delivered = dynamic.run_cycle(0)
        # One ID slot per cycle: only the head goes out.
        assert delivered == [first]
        assert dynamic.pending(1) == 1
        assert dynamic.run_cycle(1) == [second]
