"""Batch fast-path kernel: parity, eligibility and fallback tests.

The acceptance bar of the batch kernel: on *any* analytic-network fleet
— shared-period or multi-rate, any disturbance process, any seed — it
produces traces bitwise identical to the event kernel (and, where the
legacy kernel applies, to that too).  Ineligible fleets (cycle-accurate
FlexRay buses, frame loss, subclassed networks) fall back to the event
kernel transparently.
"""

import random

import numpy as np
import pytest

from test_cosim_event import make_app, multirate_fleet, shared_fleet

from repro.control.disturbance import (
    OneShotDisturbance,
    PeriodicDisturbance,
    SporadicDisturbance,
)
from repro.control.plants import (
    dc_motor_speed,
    motor_current_loop,
    servo_rig,
    throttle_by_wire,
)
from repro.experiments import traces_bitwise_equal
from repro.flexray import FlexRayBus, paper_bus_config
from repro.sim import (
    AnalyticNetwork,
    CoSimulator,
    FlexRayNetwork,
    batch_eligible,
)

SHARED_PLANTS = [servo_rig, dc_motor_speed, throttle_by_wire]


def random_disturbance(rng: random.Random):
    kind = rng.randrange(3)
    if kind == 0:
        return OneShotDisturbance(time=rng.uniform(0.0, 2.0))
    if kind == 1:
        return PeriodicDisturbance(
            period=rng.uniform(1.5, 3.0), offset=rng.uniform(0.0, 1.0)
        )
    return SporadicDisturbance(
        min_inter_arrival=rng.uniform(1.5, 2.5),
        mean_extra_gap=rng.uniform(0.0, 1.0),
        seed=rng.randrange(1000),
    )


def random_shared_fleet(rng: random.Random):
    """2-4 applications, one shared native period, random arrivals."""
    count = rng.randint(2, 4)
    fleet = []
    for index in range(count):
        plant = rng.choice(SHARED_PLANTS)
        fleet.append(
            make_app(
                f"app{index}",
                plant(),
                slot=rng.randrange(2),
                frame_id=index + 1,
                deadline=rng.uniform(4.0, 6.0),
                disturbances=random_disturbance(rng),
            )
        )
    return fleet


def random_multirate_fleet(rng: random.Random):
    """A 2 ms current loop beside 20 ms loops with random arrivals."""
    fleet = [
        make_app(
            "current",
            motor_current_loop(),
            slot=0,
            frame_id=1,
            deadline=0.5,
            period=0.002,
        )
    ]
    for index in range(rng.randint(1, 3)):
        plant = rng.choice(SHARED_PLANTS)
        fleet.append(
            make_app(
                f"app{index}",
                plant(),
                slot=rng.randrange(2),
                frame_id=index + 2,
                deadline=rng.uniform(4.0, 6.0),
                disturbances=random_disturbance(rng),
            )
        )
    return fleet


class TestBatchParity:
    """Bitwise identity against the event (and legacy) kernels."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_shared_fleets_identical_across_all_kernels(self, seed):
        rng = random.Random(seed)
        horizon = rng.uniform(4.0, 8.0)
        builder = lambda: random_shared_fleet(random.Random(seed))  # noqa: E731
        traces = {}
        sims = {}
        for kernel in ("legacy", "event", "batch"):
            sims[kernel] = CoSimulator(builder(), AnalyticNetwork(), kernel=kernel)
            traces[kernel] = sims[kernel].run(horizon)
        assert sims["batch"].last_kernel == "batch"
        assert traces_bitwise_equal(traces["batch"], traces["event"])
        assert traces_bitwise_equal(traces["batch"], traces["legacy"])
        assert (
            sims["batch"].jitter_violations
            == sims["event"].jitter_violations
            == sims["legacy"].jitter_violations
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_random_multirate_fleets_identical_to_event_kernel(self, seed):
        rng = random.Random(1000 + seed)
        horizon = rng.uniform(3.0, 6.0)
        builder = lambda: random_multirate_fleet(random.Random(1000 + seed))  # noqa: E731
        event_sim = CoSimulator(builder(), AnalyticNetwork(), kernel="event")
        batch_sim = CoSimulator(builder(), AnalyticNetwork(), kernel="batch")
        event = event_sim.run(horizon)
        batch = batch_sim.run(horizon)
        assert batch_sim.last_kernel == "batch"
        assert traces_bitwise_equal(batch, event)
        assert batch_sim.jitter_violations == event_sim.jitter_violations
        assert not any(
            np.isnan(np.asarray(batch[a.name].delays)).any() for a in builder()
        )

    def test_parity_without_delay_equalization(self):
        event = CoSimulator(
            shared_fleet(), AnalyticNetwork(), equalize_delays=False, kernel="event"
        ).run(5.0)
        batch = CoSimulator(
            shared_fleet(), AnalyticNetwork(), equalize_delays=False, kernel="batch"
        ).run(5.0)
        assert traces_bitwise_equal(batch, event)

    def test_parity_for_pure_et_baseline(self):
        event = CoSimulator(
            shared_fleet(), AnalyticNetwork(), tt_allowed=False, kernel="event"
        ).run(5.0)
        batch = CoSimulator(
            shared_fleet(), AnalyticNetwork(), tt_allowed=False, kernel="batch"
        ).run(5.0)
        assert traces_bitwise_equal(batch, event)

    def test_parity_for_multirate_reference_fleet(self):
        event = CoSimulator(multirate_fleet(), AnalyticNetwork(), kernel="event").run(6.0)
        batch = CoSimulator(multirate_fleet(), AnalyticNetwork(), kernel="batch").run(6.0)
        assert traces_bitwise_equal(batch, event)


class TestEligibilityAndFallback:
    def test_auto_picks_batch_on_analytic_fleets(self):
        sim = CoSimulator(shared_fleet(), AnalyticNetwork())
        assert sim.kernel == "auto" and batch_eligible(sim)
        sim.run(3.0)
        assert sim.last_kernel == "batch"

    def test_flexray_fleet_falls_back_to_event_kernel(self):
        """FlexRay + sporadic arrivals + frame loss: ineligible, and the
        fallback must not change physics vs. an explicit event run."""
        dist = lambda i: SporadicDisturbance(  # noqa: E731
            min_inter_arrival=2.0, mean_extra_gap=0.7, seed=i
        )
        net = lambda: FlexRayNetwork(  # noqa: E731
            bus=FlexRayBus(config=paper_bus_config()), loss_rate=0.3, loss_seed=7
        )
        batch_sim = CoSimulator(shared_fleet(dist), net(), kernel="batch")
        assert not batch_eligible(batch_sim)
        batch_trace = batch_sim.run(6.0)
        assert batch_sim.last_kernel == "event"
        event_sim = CoSimulator(shared_fleet(dist), net(), kernel="event")
        assert traces_bitwise_equal(batch_trace, event_sim.run(6.0))

    def test_lossfree_multirate_flexray_is_now_batch_eligible(self):
        """Deterministic FlexRay joined the fast path: loss-free,
        traffic-free, stock-bus fleets select batch under kernel="batch"
        (the deeper parity assertions live in
        tests/test_cosim_batch_flexray.py)."""
        network = FlexRayNetwork(bus=FlexRayBus(config=paper_bus_config()))
        sim = CoSimulator(multirate_fleet(), network, kernel="batch")
        trace = sim.run(3.0)
        assert sim.last_kernel == "batch"
        assert len(trace.apps) == 3

    def test_subclassed_network_is_not_eligible(self):
        """A subclass may override the delay model — be conservative."""

        class TweakedAnalytic(AnalyticNetwork):
            pass

        sim = CoSimulator(shared_fleet(), TweakedAnalytic(), kernel="auto")
        assert not batch_eligible(sim)
        sim.run(2.0)
        assert sim.last_kernel == "event"

    def test_legacy_flag_conflicts_with_other_kernels(self):
        with pytest.raises(ValueError, match="conflicts"):
            CoSimulator(shared_fleet(), AnalyticNetwork(), legacy=True, kernel="batch")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            CoSimulator(shared_fleet(), AnalyticNetwork(), kernel="quantum")

    def test_explicit_legacy_kernel_string(self):
        sim = CoSimulator(shared_fleet(), AnalyticNetwork(), kernel="legacy")
        assert sim.legacy is True
        sim.run(2.0)
        assert sim.last_kernel == "legacy"


class TestProbeGatedVectorization:
    """Whatever the platform probes decide, the fleet-wide norm and
    control helpers must reproduce the scalar formulations bitwise."""

    def _prepared_kernel(self, fleet):
        from repro.sim.batch import _BatchKernel

        kernel = _BatchKernel(CoSimulator(fleet, AnalyticNetwork()), 1.0)
        kernel._prepare()
        return kernel

    def same_gain_fleet(self):
        return [
            make_app("twin-a", servo_rig(), 0, 1, 5.0),
            make_app("twin-b", servo_rig(), 1, 2, 5.0),
            make_app("other", dc_motor_speed(), 0, 3, 6.0),
        ]

    def test_compute_norms_bitwise_matches_scalar(self):
        from math import sqrt

        kernel = self._prepared_kernel(self.same_gain_fleet())
        rng = np.random.default_rng(5)
        for _ in range(64):
            for i in range(kernel.n):
                scale = 10.0 ** float(rng.integers(-6, 7))
                kernel.states[i] = rng.standard_normal(
                    kernel.states[i].shape
                ) * scale
            norms = [0.0] * kernel.n
            kernel._compute_norms(norms)
            for i in range(kernel.n):
                x = kernel.states[i]
                assert norms[i] == sqrt(x.dot(x))

    def test_apply_control_groups_bitwise_matches_scalar(self):
        kernel = self._prepared_kernel(self.same_gain_fleet())
        rng = np.random.default_rng(11)
        for trial in range(64):
            modes = [int(b) for b in rng.integers(0, 2, kernel.n)]
            for i in range(kernel.n):
                kernel.states[i] = rng.standard_normal(kernel.states[i].shape)
                kernel.held[i] = rng.standard_normal(kernel.held[i].shape)
            us = [None] * kernel.n
            for i in range(kernel.n):
                if kernel.scalar_control[i]:
                    us[i] = kernel.neg_gains[i][modes[i]].dot(
                        np.concatenate((kernel.states[i], kernel.held[i]))
                    )
            kernel._apply_control_groups(modes, us)
            for i in range(kernel.n):
                reference = kernel.neg_gains[i][modes[i]].dot(
                    np.concatenate((kernel.states[i], kernel.held[i]))
                )
                np.testing.assert_array_equal(us[i], reference)

    def test_identical_twins_share_one_gain_group_candidate(self):
        """Same design → byte-identical gains; the twins either form a
        probe-certified group or both stay scalar — never a mix."""
        kernel = self._prepared_kernel(self.same_gain_fleet())
        assert (
            kernel.scalar_control[0] == kernel.scalar_control[1]
        )
        if kernel.gain_groups:
            (negs, _negs_t, idxs) = kernel.gain_groups[0]
            assert idxs == [0, 1]
