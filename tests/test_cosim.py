"""Integration tests for the multi-application co-simulation."""

import pytest

from repro.control.controller import design_switched_application
from repro.control.disturbance import OneShotDisturbance, PeriodicDisturbance
from repro.control.plants import dc_motor_speed, servo_rig
from repro.flexray import FlexRayBus, FrameSpec, paper_bus_config
from repro.sim import (
    AnalyticNetwork,
    CoSimApplication,
    CoSimulator,
    FlexRayNetwork,
)
from repro.sim.runtime import CommState


def make_app(name, plantdef, slot, frame_id, deadline, disturbances=None):
    app = design_switched_application(
        name=name,
        plant=plantdef.model,
        period=plantdef.period,
        et_delay=plantdef.period,
        tt_delay=0.0007,
        q=plantdef.q,
        r=plantdef.r,
        threshold=plantdef.threshold,
    )
    return CoSimApplication(
        app=app,
        dynamics=plantdef.model,
        disturbance_state=plantdef.disturbance,
        disturbances=disturbances or OneShotDisturbance(time=0.0),
        deadline=deadline,
        slot=slot,
        frame=FrameSpec(frame_id=frame_id, sender=name),
    )


@pytest.fixture(scope="module")
def shared_slot_apps():
    return [
        make_app("servo", servo_rig(), slot=0, frame_id=1, deadline=5.0),
        make_app("motor", dc_motor_speed(), slot=0, frame_id=2, deadline=6.0),
    ]


class TestAnalyticCoSim:
    def test_all_deadlines_met(self, shared_slot_apps):
        sim = CoSimulator(shared_slot_apps, AnalyticNetwork())
        trace = sim.run(6.0)
        assert trace.all_deadlines_met()

    def test_each_disturbance_rejected_once(self, shared_slot_apps):
        sim = CoSimulator(shared_slot_apps, AnalyticNetwork())
        trace = sim.run(6.0)
        for name in ("servo", "motor"):
            assert len(trace[name].response_times) == 1

    def test_servo_uses_tt_then_releases(self, shared_slot_apps):
        sim = CoSimulator(shared_slot_apps, AnalyticNetwork())
        trace = sim.run(6.0)
        intervals = trace["servo"].tt_intervals()
        assert len(intervals) == 1
        start, end = intervals[0]
        assert start == pytest.approx(0.0)
        assert end > start

    def test_norms_settle_below_threshold(self, shared_slot_apps):
        sim = CoSimulator(shared_slot_apps, AnalyticNetwork())
        trace = sim.run(6.0)
        for name in ("servo", "motor"):
            settle = trace[name].settling_time()
            assert settle is not None
            assert settle < 6.0

    def test_delays_match_modes(self, shared_slot_apps):
        sim = CoSimulator(shared_slot_apps, AnalyticNetwork())
        trace = sim.run(6.0)
        servo = trace["servo"]
        for state, delay in zip(servo.states, servo.delays[:-1]):
            if state is CommState.TT_HOLDING:
                assert delay == pytest.approx(0.0007)

    def test_periodic_disturbances_give_repeated_episodes(self):
        app = make_app(
            "servo",
            servo_rig(),
            slot=0,
            frame_id=1,
            deadline=5.0,
            disturbances=PeriodicDisturbance(period=5.0),
        )
        sim = CoSimulator([app], AnalyticNetwork())
        trace = sim.run(14.9)
        assert len(trace["servo"].response_times) == 3
        assert trace.all_deadlines_met()


class TestFlexRayCoSim:
    def test_matches_analytic_with_equalization(self, shared_slot_apps):
        analytic = CoSimulator(shared_slot_apps, AnalyticNetwork()).run(6.0)
        network = FlexRayNetwork(bus=FlexRayBus(config=paper_bus_config()))
        flexray_trace = CoSimulator(shared_slot_apps, network).run(6.0)
        for name in ("servo", "motor"):
            a = analytic[name].response_times
            b = flexray_trace[name].response_times
            assert a == pytest.approx(b, abs=0.05)

    def test_bus_actually_carried_messages(self, shared_slot_apps):
        network = FlexRayNetwork(bus=FlexRayBus(config=paper_bus_config()))
        sim = CoSimulator(shared_slot_apps, network)
        sim.run(2.0)
        stats = network.bus.statistics
        assert stats.tt_deliveries > 0
        assert stats.et_deliveries > 0

    def test_no_jitter_violations_on_quiet_bus(self, shared_slot_apps):
        network = FlexRayNetwork(bus=FlexRayBus(config=paper_bus_config()))
        sim = CoSimulator(shared_slot_apps, network)
        sim.run(2.0)
        assert sim.jitter_violations == 0

    def test_raw_delays_without_equalization_are_faster(self, shared_slot_apps):
        network = FlexRayNetwork(bus=FlexRayBus(config=paper_bus_config()))
        sim = CoSimulator(shared_slot_apps, network, equalize_delays=False)
        trace = sim.run(1.0)
        servo = trace["servo"]
        # Raw ET deliveries on a quiet bus beat the 20 ms worst case.
        et_delays = [
            d
            for state, d in zip(servo.states, servo.delays[:-1])
            if state is not CommState.TT_HOLDING
        ]
        assert et_delays and max(et_delays) < 0.010


class TestValidation:
    def test_duplicate_names_rejected(self, shared_slot_apps):
        with pytest.raises(ValueError, match="unique"):
            CoSimulator([shared_slot_apps[0], shared_slot_apps[0]], AnalyticNetwork())

    def test_empty_application_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            CoSimulator([], AnalyticNetwork())
