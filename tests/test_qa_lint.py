"""Tests for :mod:`repro.qa` — the determinism-contract static analyzer.

Each QA rule is exercised with at least one known-bad snippet (asserting
the rule id, span, and message) and one known-good snippet that must not
fire.  Suppression semantics, the JSON report, and the CLI gate are
covered alongside; the final test lints the real ``src/`` tree and
requires it clean — the same bar CI enforces.
"""

import json
from textwrap import dedent

import pytest

from repro.cli import main as cli_main
from repro.qa import (
    META_RULE_ID,
    all_rules,
    lint_paths,
    lint_source,
    render_text,
    report_dict,
    rule_ids,
)
from repro.qa.engine import module_for_path

#: Paths that put a snippet inside each rule's scope.
SIM_PATH = "src/repro/sim/snippet.py"
PIPELINE_PATH = "src/repro/pipeline/snippet.py"
ANY_PATH = "src/repro/experiments/snippet.py"


def findings_for(source, path=ANY_PATH, **kwargs):
    return lint_source(dedent(source), path=path, **kwargs)


def ids(findings):
    return [finding.rule_id for finding in findings]


class TestModuleScoping:
    def test_module_for_path(self):
        assert module_for_path("src/repro/sim/cosim.py") == "repro.sim.cosim"
        assert module_for_path("src/repro/qa/__init__.py") == "repro.qa"
        assert module_for_path("scratch/tool.py") == "tool"

    def test_scoped_rule_ignores_foreign_modules(self):
        # wall-clock reads are fine outside the QA002 scope entirely
        # (experiments) and inside its built-in allowlist (the fabric's
        # leases/heartbeats legitimately read real time)
        source = "import time\nt0 = time.time()\n"
        assert findings_for(source, path=ANY_PATH) == []
        assert findings_for(source, path="src/repro/fabric/snippet.py") == []
        # the chaos layer's backoff sleeps and deadlines ride the same
        # allowance: it coordinates real machines, not simulated ones
        assert findings_for(source, path="src/repro/fabric/resilience.py") == []
        # the pipeline layer is in scope since the fabric PR: duration
        # timing there must use time.perf_counter()
        assert ids(findings_for(source, path=PIPELINE_PATH)) == ["QA002"]

    def test_syntax_error_is_reported_not_raised(self):
        (finding,) = findings_for("def broken(:\n")
        assert finding.rule_id == META_RULE_ID
        assert "syntax error" in finding.message


class TestQA001UnseededRandom:
    def test_module_level_numpy_random_fires(self):
        (finding,) = findings_for("import numpy as np\nx = np.random.rand(3)\n")
        assert finding.rule_id == "QA001"
        assert finding.line == 2
        assert "np.random.rand" in finding.message

    def test_bare_random_fires(self):
        (finding,) = findings_for("import random\nx = random.random()\n")
        assert finding.rule_id == "QA001"
        assert "Mersenne" in finding.message

    def test_unseeded_default_rng_fires(self):
        source = """\
        from numpy.random import default_rng
        rng = default_rng()
        """
        (finding,) = findings_for(source)
        assert finding.rule_id == "QA001"
        assert finding.line == 2
        assert "seed" in finding.message

    def test_seed_none_counts_as_unseeded(self):
        assert ids(findings_for("import numpy as np\nr = np.random.default_rng(seed=None)\n")) == [
            "QA001"
        ]

    def test_seeded_generators_do_not_fire(self):
        source = """\
        import random
        import numpy as np
        rng = np.random.default_rng(123)
        kw = np.random.default_rng(seed=7)
        legacy = np.random.RandomState(5)
        twister = random.Random(42)
        draw = rng.random()
        """
        assert findings_for(source) == []


class TestQA002WallClock:
    def test_time_time_in_sim_fires(self):
        (finding,) = findings_for("import time\nstart = time.time()\n", path=SIM_PATH)
        assert finding.rule_id == "QA002"
        assert finding.line == 2
        assert "perf_counter" in finding.message

    def test_datetime_now_in_flexray_fires(self):
        source = "import datetime\nstamp = datetime.datetime.now()\n"
        assert ids(findings_for(source, path="src/repro/flexray/snippet.py")) == ["QA002"]

    def test_perf_counter_in_sim_does_not_fire(self):
        assert findings_for("import time\nt0 = time.perf_counter()\n", path=SIM_PATH) == []


class TestQA003FloatTimeCompare:
    def test_isclose_on_time_fires(self):
        source = """\
        import numpy as np
        def same(barrier_time, t):
            return np.isclose(barrier_time, t)
        """
        (finding,) = findings_for(source, path=SIM_PATH)
        assert finding.rule_id == "QA003"
        assert finding.line == 3
        assert "integer-ns" in finding.message

    def test_abs_diff_tolerance_on_time_fires(self):
        source = """\
        def matches(delivery, record):
            return abs(delivery.release_time - record.release) <= 1e-9
        """
        (finding,) = findings_for(source, path=SIM_PATH)
        assert finding.rule_id == "QA003"
        assert "abs(a - b)" in finding.message

    def test_np_spacing_in_sim_fires(self):
        source = "import numpy as np\neps = np.spacing(1.0)\n"
        assert ids(findings_for(source, path=SIM_PATH)) == ["QA003"]

    def test_isclose_on_precomputed_grant_instant_fires(self):
        """The FlexRay schedule-precomputation vocabulary (grant /
        transmit / window instants) is covered by the int-ns contract."""
        source = """\
        import numpy as np
        def due(grant, transmit_window):
            return np.isclose(grant, transmit_window)
        """
        (finding,) = findings_for(source, path=SIM_PATH)
        assert finding.rule_id == "QA003"
        assert "integer-ns" in finding.message

    def test_abs_diff_tolerance_on_transmit_window_fires(self):
        source = """\
        def within(transmit_start, window_end):
            return abs(transmit_start - window_end) <= 1e-9
        """
        (finding,) = findings_for(source, path=SIM_PATH)
        assert finding.rule_id == "QA003"

    def test_exact_compare_on_grant_instants_does_not_fire(self):
        source = "due = grant_ns == window_start_ns\n"
        assert findings_for(source, path=SIM_PATH) == []

    def test_isclose_on_state_vectors_does_not_fire(self):
        source = """\
        import numpy as np
        def close(state_a, state_b):
            return np.isclose(state_a, state_b)
        """
        assert findings_for(source, path=SIM_PATH) == []

    def test_exact_equality_on_time_does_not_fire(self):
        source = """\
        def matches(delivery, record):
            return delivery.release_time == record.release
        """
        assert findings_for(source, path=SIM_PATH) == []

    def test_out_of_scope_module_does_not_fire(self):
        source = "import numpy as np\nok = np.isclose(t_a, t_b)\n"
        assert findings_for(source, path="src/repro/control/snippet.py") == []


class TestQA004RegistryLiterals:
    def test_unknown_scenario_name_fires(self):
        source = """\
        from repro.pipeline import get_scenario
        s = get_scenario("paper-tabel1")
        """
        (finding,) = findings_for(source)
        assert finding.rule_id == "QA004"
        assert finding.line == 2
        assert "paper-tabel1" in finding.message
        assert "paper-table1" in finding.message  # suggestions listed

    def test_unknown_allocator_keyword_fires(self):
        source = """\
        from repro.pipeline import Scenario
        s = Scenario(name="x", allocator="frist-fit")
        """
        (finding,) = findings_for(source)
        assert finding.rule_id == "QA004"
        assert "frist-fit" in finding.message

    def test_unknown_network_keyword_fires_with_suggestion(self):
        """Network literals resolve against the *live* backend registry."""
        source = """\
        from repro.pipeline import Scenario
        s = Scenario(name="x", network="cna")
        """
        (finding,) = findings_for(source)
        assert finding.rule_id == "QA004"
        assert "cna" in finding.message
        assert "can" in finding.message  # typo suggestion listed first

    def test_unknown_network_on_build_network_fires(self):
        source = """\
        from repro.sim.network import build_network
        net = build_network("token-ring")
        """
        (finding,) = findings_for(source)
        assert finding.rule_id == "QA004"
        assert "token-ring" in finding.message

    def test_registered_network_literals_do_not_fire(self):
        source = """\
        from repro.pipeline import Scenario
        from repro.sim.network import build_network, get_network
        a = Scenario(name="x", network="can")
        b = get_network("analytic")
        c = build_network("flexray", loss_rate=0.1)
        """
        assert findings_for(source) == []

    def test_freshly_registered_backend_is_a_legal_literal(self):
        """A third-party registration extends what QA004 accepts —
        the live-registry contract (the rule snapshots once per
        process, so the snapshot is primed after registration)."""
        from repro.qa.rules_structure import RegistryLiteralRule
        from repro.sim.network import register_network, unregister_network

        @register_network(
            "test-qa-backend",
            summary="QA004 live-registry fixture",
            deterministic=True,
            analytic_delays=True,
            batch=None,
            loss="none",
        )
        def _build(**kwargs):
            raise AssertionError("lint never builds")

        old_snapshot = RegistryLiteralRule._REGISTRIES
        RegistryLiteralRule._REGISTRIES = None
        try:
            source = 'net = build_network("test-qa-backend")\n'
            assert findings_for(source) == []
        finally:
            RegistryLiteralRule._REGISTRIES = old_snapshot
            unregister_network("test-qa-backend")

    def test_unknown_kernel_on_derive_fires(self):
        assert ids(findings_for('v = base.derive(name="y", kernel="bogus")\n')) == ["QA004"]

    def test_unknown_stage_subscript_fires(self):
        assert ids(findings_for('stage = STAGES["co-sim"]\n')) == ["QA004"]

    def test_registered_names_do_not_fire(self):
        source = """\
        from repro.pipeline import Scenario, get_scenario
        a = get_scenario("paper-table1")
        b = Scenario(name="x", allocator="first-fit", method="fixed-point", kernel="auto")
        c = a.derive(name="y", network="flexray", disturbance="sporadic")
        """
        assert findings_for(source) == []

    def test_non_literal_names_are_ignored(self):
        source = """\
        def load(name):
            return get_scenario(name)
        """
        assert findings_for(source) == []


class TestQA005UnpicklablePayload:
    def test_lambda_field_default_fires(self):
        source = """\
        from dataclasses import dataclass

        @dataclass
        class Job:
            score = lambda self: 0.0
        """
        (finding,) = findings_for(source, path=PIPELINE_PATH)
        assert finding.rule_id == "QA005"
        assert finding.line == 5
        assert "pickle" in finding.message

    def test_field_default_lambda_fires(self):
        source = """\
        from dataclasses import dataclass, field

        @dataclass
        class Job:
            hook: object = field(default=lambda: 1)
        """
        assert ids(findings_for(source, path=PIPELINE_PATH)) == ["QA005"]

    def test_self_lambda_in_method_fires(self):
        source = """\
        from dataclasses import dataclass

        @dataclass
        class Job:
            name: str

            def __post_init__(self):
                self.key = lambda: self.name
        """
        (finding,) = findings_for(source, path=SIM_PATH)
        assert finding.rule_id == "QA005"
        assert "Job.key" in finding.message

    def test_default_factory_lambda_does_not_fire(self):
        source = """\
        from dataclasses import dataclass, field

        @dataclass
        class Job:
            tags: list = field(default_factory=lambda: [])
        """
        assert findings_for(source, path=PIPELINE_PATH) == []

    def test_non_dataclass_and_out_of_scope_do_not_fire(self):
        source = """\
        class Plain:
            score = lambda self: 0.0
        """
        assert findings_for(source, path=PIPELINE_PATH) == []
        dc = """\
        from dataclasses import dataclass

        @dataclass
        class Elsewhere:
            score = lambda self: 0.0
        """
        assert findings_for(dc, path="src/repro/control/snippet.py") == []


class TestSuppressions:
    def test_suppression_silences_exactly_one_rule_on_one_line(self):
        source = """\
        import numpy as np
        a = np.random.rand()  # repro: allow[QA001]
        b = np.random.rand()
        """
        (finding,) = findings_for(source)
        assert finding.rule_id == "QA001"
        assert finding.line == 3  # line 2 suppressed, line 3 still fires

    def test_suppression_does_not_silence_other_rules(self):
        source = """\
        import time
        t0 = time.time()  # repro: allow[QA001]
        """
        (finding,) = findings_for(source, path=SIM_PATH)
        assert finding.rule_id == "QA002"  # QA001 allowance is irrelevant

    def test_unknown_rule_id_in_suppression_is_reported(self):
        source = "x = 1  # repro: allow[QA999]\n"
        (finding,) = findings_for(source)
        assert finding.rule_id == META_RULE_ID
        assert finding.line == 1
        assert "QA999" in finding.message
        assert "QA001" in finding.message  # known ids listed

    def test_comma_separated_ids_bind_to_the_line(self):
        source = """\
        import numpy as np
        t = np.random.rand()  # repro: allow[QA001,QA003]
        """
        assert findings_for(source, path=SIM_PATH) == []

    def test_allowlist_exempts_module_prefix(self):
        source = "import numpy as np\nx = np.random.rand()\n"
        allow = {"QA001": ("repro.experiments",)}
        assert findings_for(source, allowlist=allow) == []
        assert ids(findings_for(source, path=SIM_PATH, allowlist=allow)) == ["QA001"]


class TestReports:
    def test_spans_carry_columns(self):
        (finding,) = findings_for("import numpy as np\nx = np.random.rand()\n")
        assert finding.col == 4
        assert finding.end_line == 2
        assert finding.location().endswith(":2:5")

    def test_json_report_round_trips(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt0 = time.time()\n", encoding="utf-8")
        result = lint_paths([str(tmp_path)])
        document = report_dict(result, [str(tmp_path)], all_rules())
        loaded = json.loads(json.dumps(document))
        assert loaded["version"] == 1
        assert loaded["summary"]["errors"] == 1
        assert loaded["summary"]["files_checked"] == 1
        assert loaded["findings"][0]["rule_id"] == "QA002"
        assert {rule["id"] for rule in loaded["rules"]} == set(rule_ids())

    def test_text_report_mentions_location_and_count(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt0 = time.time()\n", encoding="utf-8")
        result = lint_paths([str(bad)])
        text = render_text(result)
        assert f"{bad}:2:6: QA002" in text
        assert "1 error(s)" in text


class TestCli:
    def _write_bad(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import time\nimport numpy as np\n"
            "t0 = time.time()\nx = np.random.rand()\n",
            encoding="utf-8",
        )
        return bad

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("value = 1\n", encoding="utf-8")
        assert cli_main(["lint", str(good)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        bad = self._write_bad(tmp_path)
        assert cli_main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "QA001" in out and "QA002" in out

    def test_rule_filter_limits_rules(self, tmp_path, capsys):
        bad = self._write_bad(tmp_path)
        assert cli_main(["lint", str(bad), "--rule", "QA002"]) == 1
        out = capsys.readouterr().out
        assert "QA002" in out and "QA001" not in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        bad = self._write_bad(tmp_path)
        assert cli_main(["lint", str(bad), "--rule", "QA123"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_json_output_parses(self, tmp_path, capsys):
        bad = self._write_bad(tmp_path)
        assert cli_main(["lint", str(bad), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["tool"] == "repro.qa"
        assert document["summary"]["exit_code"] == 1
        assert {f["rule_id"] for f in document["findings"]} == {"QA001", "QA002"}

    def test_missing_path_exits_two(self, capsys):
        assert cli_main(["lint", "no/such/path"]) == 2
        assert "neither a file nor a directory" in capsys.readouterr().err


class TestRuleCoverageContract:
    """Every shipped rule has a firing and a non-firing case above."""

    BAD = {
        "QA001": ("import numpy as np\nx = np.random.rand()\n", ANY_PATH),
        "QA002": ("import time\nt0 = time.time()\n", SIM_PATH),
        "QA003": ("import numpy as np\neps = np.spacing(1.0)\n", SIM_PATH),
        "QA004": ('s = get_scenario("nope-nope")\n', ANY_PATH),
        "QA005": (
            "from dataclasses import dataclass\n\n"
            "@dataclass\nclass Job:\n    hook = lambda self: 0\n",
            PIPELINE_PATH,
        ),
    }
    GOOD = {
        "QA001": ("import numpy as np\nx = np.random.default_rng(1).random()\n", ANY_PATH),
        "QA002": ("import time\nt0 = time.perf_counter()\n", SIM_PATH),
        "QA003": ("same = time_a == time_b\n", SIM_PATH),
        "QA004": ('s = get_scenario("paper-table1")\n', ANY_PATH),
        "QA005": (
            "from dataclasses import dataclass\n\n"
            "@dataclass\nclass Job:\n    name: str = 'x'\n",
            PIPELINE_PATH,
        ),
    }

    @pytest.mark.parametrize("rule_id", ["QA001", "QA002", "QA003", "QA004", "QA005"])
    def test_rule_fires_on_bad_and_not_on_good(self, rule_id):
        bad_source, bad_path = self.BAD[rule_id]
        good_source, good_path = self.GOOD[rule_id]
        assert rule_id in ids(lint_source(bad_source, path=bad_path))
        assert rule_id not in ids(lint_source(good_source, path=good_path))


class TestTreeIsClean:
    def test_repo_src_lints_clean(self):
        result = lint_paths(["src"])
        assert result.findings == [], render_text(result)
        assert result.exit_code == 0
        assert len(result.files) > 80  # the whole tree was visited
