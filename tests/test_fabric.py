"""Tests for the distributed sweep fabric and the study service.

The fabric's whole contract is that distribution is *invisible* in the
data: a sweep run on a fleet of workers over localhost TCP must equal
the serial run bit for bit (rows, per-cell Welford statistics), with
provenance (worker id, attempt, cache-hit flag) and wall-clock duration
as the only additions.  These tests drive real sockets, real threads,
an injected worker death, and the ``--resume`` round trip.
"""

import json
import socket
import threading

import pytest

from repro.fabric import (
    FabricWorker,
    LineChannel,
    MESSAGE_TYPES,
    ProtocolError,
    ResultStore,
    ServiceClient,
    StudyService,
    SweepCoordinator,
    make_msg,
    parse_endpoint,
    run_fabric_sweep,
    sweep_address,
)
from repro.pipeline import DwellCurveCache, StudyResult, get_scenario, run_sweep
from repro.pipeline.sweep import fixed_jobs

#: Same cheap two-plant roster the sweep tests use.
def cheap_base(**overrides):
    settings = dict(
        apps=("motor-current-loop", "servo-rig"),
        wait_step=4,
        horizon=2.0,
    )
    settings.update(overrides)
    return get_scenario("multirate-cosim-analytic").derive(
        name="fabric-base", **settings
    )


AXES = {"loss_rate": [0.0, 0.02]}

#: Provenance keys the fabric adds on top of the serial row; parity
#: compares everything else.  ``duration`` is wall clock on both sides.
FABRIC_ONLY = {"worker", "attempt", "cache_hit", "duration"}


def stripped(rows):
    return [{k: v for k, v in row.items() if k not in FABRIC_ONLY} for row in rows]


def serial_baseline(**kwargs):
    return run_sweep(
        cheap_base(),
        AXES,
        replications=2,
        seed0=3,
        max_workers=1,
        cache=DwellCurveCache(),
        **kwargs,
    )


class TestProtocol:
    def test_make_msg_validates_kind(self):
        assert make_msg("lease", worker="w") == {"type": "lease", "worker": "w"}
        with pytest.raises(ProtocolError):
            make_msg("leese")
        with pytest.raises(ProtocolError):
            make_msg("lease", type="job")

    def test_parse_endpoint(self):
        assert parse_endpoint("127.0.0.1:7465") == ("127.0.0.1", 7465)
        for bad in ("localhost", ":80", "host:", "host:abc"):
            with pytest.raises(ValueError):
                parse_endpoint(bad)

    def test_channel_round_trip_and_eof(self):
        left_sock, right_sock = socket.socketpair()
        left, right = LineChannel(left_sock), LineChannel(right_sock)
        left.send_msg("hello", worker="w0", n=3)
        msg = right.recv_msg()
        assert msg == {"type": "hello", "worker": "w0", "n": 3}
        left.close()
        assert right.recv_msg() is None  # clean EOF, not an exception
        right.close()

    def test_channel_rejects_unknown_type_on_wire(self):
        left_sock, right_sock = socket.socketpair()
        right = LineChannel(right_sock)
        left_sock.sendall(b'{"type": "bogus"}\n')
        with pytest.raises(ProtocolError):
            right.recv_msg()
        left_sock.close()
        right.close()

    def test_message_types_cover_both_planes(self):
        for kind in ("lease", "job", "heartbeat", "result", "submit", "fetch"):
            assert kind in MESSAGE_TYPES


class TestResultStore:
    def test_one_row_per_address(self):
        store = ResultStore()
        assert store.put("a+0", {"ok": True})
        assert not store.put("a+0", {"ok": False})  # late duplicate dropped
        assert store.get("a+0") == {"ok": True}
        assert len(store) == 1 and "a+0" in store

    def test_lookup_counts_hits(self):
        store = ResultStore()
        store.put("a+0", {"ok": True})
        assert store.lookup("missing") is None and store.hits == 0
        assert store.lookup("a+0") == {"ok": True} and store.hits == 1

    def test_load_jsonl_skips_worker_failures_and_foreign_rows(self, tmp_path):
        path = tmp_path / "resume.jsonl"
        rows = [
            {"address": "a+0", "ok": True},
            {"address": "a+1", "ok": False, "failed_stage": "worker"},
            {"address": "foreign+9", "ok": True},
            {"ok": True},  # addressless (pre-fabric log): ignored
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        store = ResultStore()
        report = store.load_jsonl(str(path), wanted={"a+0", "a+1"})
        assert (report.adopted, report.skipped, report.recovered_tail) == (1, 1, 0)
        assert "a+0" in store and "a+1" not in store and "foreign+9" not in store

    def test_load_jsonl_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "resume.jsonl"
        path.write_text('{"address": "a+0"}\nnot json\n')
        with pytest.raises(ValueError, match="unreadable resume row"):
            ResultStore().load_jsonl(str(path))


class TestContentAddressing:
    def test_fingerprint_ignores_name_and_seed(self):
        base = cheap_base()
        assert base.fingerprint() == base.derive(name="renamed").fingerprint()
        assert base.fingerprint() == base.derive(seed=99).fingerprint()
        assert base.fingerprint() != base.derive(loss_rate=0.5).fingerprint()

    def test_content_address_binds_seed(self):
        base = cheap_base()
        assert base.content_address() != base.derive(seed=base.seed + 1).content_address()
        assert base.content_address() == f"{base.fingerprint()}+{base.seed}"

    def test_fixed_jobs_unique_addresses_in_dispatch_order(self):
        jobs = fixed_jobs(cheap_base(), AXES, replications=2, seed0=3)
        assert [j.index for j in jobs] == list(range(4))
        # replication-major: both cells at rep 0 before any rep 1
        assert [j.rep for j in jobs] == [0, 0, 1, 1]
        assert len({j.address for j in jobs}) == 4

    def test_sweep_address_stable_and_spec_sensitive(self):
        base = cheap_base()
        addr = sweep_address(base, AXES, 2, 3)
        assert addr == sweep_address(base.derive(name="renamed"), AXES, 2, 3)
        assert addr != sweep_address(base, AXES, 2, 4)
        assert addr != sweep_address(base, {"loss_rate": [0.0]}, 2, 3)


class TestFabricParity:
    def test_bitwise_identical_to_serial(self, tmp_path):
        serial = serial_baseline()
        jsonl = tmp_path / "fabric.jsonl"
        fabric = run_fabric_sweep(
            cheap_base(),
            AXES,
            replications=2,
            seed0=3,
            workers=3,
            cache=DwellCurveCache(),
            lease_timeout=30.0,
            jsonl_path=str(jsonl),
            timeout=300.0,
        )
        assert fabric.executor == "fabric" and fabric.mode == "fixed"
        # row values: exact equality, not approx — JSON floats round-trip
        assert stripped(fabric.rows) == stripped(serial.rows)
        # per-cell Welford statistics identical apart from wall clock
        for fab_cell, ser_cell in zip(fabric.cells, serial.cells):
            fab_stats = dict(fab_cell.to_dict())
            ser_stats = dict(ser_cell.to_dict())
            fab_stats["metrics"] = {
                k: v for k, v in fab_stats["metrics"].items() if k != "duration"
            }
            ser_stats["metrics"] = {
                k: v for k, v in ser_stats["metrics"].items() if k != "duration"
            }
            assert fab_stats == ser_stats
        # every row is attributed to a worker and carries its address
        assert all(row["worker"].startswith("local-") for row in fabric.rows)
        assert len({row["address"] for row in fabric.rows}) == len(fabric.rows)
        # the streamed JSONL holds the same rows, one line per address
        lines = [json.loads(l) for l in jsonl.read_text().splitlines()]
        assert {l["address"] for l in lines} == {r["address"] for r in fabric.rows}

    def test_single_worker_fleet_also_matches(self):
        serial = serial_baseline()
        fabric = run_fabric_sweep(
            cheap_base(),
            AXES,
            replications=2,
            seed0=3,
            workers=1,
            cache=DwellCurveCache(),
            timeout=300.0,
        )
        assert stripped(fabric.rows) == stripped(serial.rows)


class TestLeaseAndResume:
    def test_killed_worker_requeues_then_resume_completes(self, tmp_path):
        jsonl = tmp_path / "sweep.jsonl"
        # Run 1: a worker that dies mid-fleet, attempt budget of one, so
        # its leased job lands as the synthetic failed_stage="worker" row.
        coordinator = SweepCoordinator(
            cheap_base(),
            AXES,
            replications=2,
            seed0=3,
            lease_timeout=5.0,
            max_attempts=1,
            cache=DwellCurveCache(),
            jsonl_path=str(jsonl),
        )
        coordinator.start()
        dier = FabricWorker(
            coordinator.host,
            coordinator.port,
            worker_id="dier",
            cache=DwellCurveCache(),
            die_after=1,
        )
        steady = FabricWorker(
            coordinator.host,
            coordinator.port,
            worker_id="steady",
            cache=DwellCurveCache(),
        )
        threads = [
            threading.Thread(target=worker.run, daemon=True)
            for worker in (dier, steady)
        ]
        for thread in threads:
            thread.start()
        coordinator.wait(timeout=300.0)
        coordinator.stop()
        for thread in threads:
            thread.join(timeout=10.0)
        first = coordinator.result()

        worker_failures = [
            row for row in first.rows if row.get("failed_stage") == "worker"
        ]
        assert len(first.rows) == 4
        assert len(worker_failures) == 1
        assert coordinator.requeues and coordinator.requeues[0]["worker"] == "dier"
        assert first.config["fabric"]["requeues"] == coordinator.requeues

        # Run 2: resume from the JSONL — ok rows adopted as cache hits,
        # the worker-failure retried, zero duplicate addresses.
        resumed = run_fabric_sweep(
            cheap_base(),
            AXES,
            replications=2,
            seed0=3,
            workers=2,
            cache=DwellCurveCache(),
            jsonl_path=str(jsonl),
            resume_path=str(jsonl),
            timeout=300.0,
        )
        info = resumed.config["fabric"]
        assert info["resumed"] == 3 and info["retried_worker_failures"] == 1
        assert all(row.get("failed_stage") != "worker" for row in resumed.rows)
        adopted = [row for row in resumed.rows if row.get("cache_hit")]
        assert len(adopted) == 3

        # full parity with serial once the retry fills the hole
        serial = serial_baseline()
        assert stripped(resumed.rows) == stripped(serial.rows)

        # the appended JSONL never duplicates a finished address
        lines = [json.loads(l) for l in jsonl.read_text().splitlines()]
        finished = [l["address"] for l in lines if l.get("failed_stage") != "worker"]
        assert len(finished) == len(set(finished)) == 4

    def test_attempt_cap_synthesizes_worker_row(self):
        # a fleet made only of immediately-dying workers must still
        # finish: every job exhausts its single attempt and lands as a
        # crash row instead of hanging the sweep
        coordinator = SweepCoordinator(
            cheap_base(),
            axes=None,
            replications=1,
            seed0=0,
            lease_timeout=5.0,
            max_attempts=1,
            cache=DwellCurveCache(),
        )
        coordinator.start()
        dier = FabricWorker(
            coordinator.host,
            coordinator.port,
            worker_id="dier",
            cache=DwellCurveCache(),
            die_after=0,
        )
        thread = threading.Thread(target=dier.run, daemon=True)
        thread.start()
        coordinator.wait(timeout=60.0)
        coordinator.stop()
        thread.join(timeout=10.0)
        result = coordinator.result()
        assert len(result.rows) == 1
        assert result.rows[0]["failed_stage"] == "worker"
        assert result.rows[0]["ok"] is False
        assert "disconnect" in result.rows[0]["detail"]


class TestFleetCacheSharing:
    def test_measurements_travel_between_workers(self):
        # Two workers with deliberately separate caches: whatever worker
        # A measures must reach worker B through the coordinator (job
        # grants ship the fleet cache delta), not through shared memory.
        fleet_cache = DwellCurveCache()
        worker_caches = [DwellCurveCache(), DwellCurveCache()]
        run_fabric_sweep(
            cheap_base(),
            AXES,
            replications=2,
            seed0=3,
            workers=2,
            cache=fleet_cache,
            worker_caches=worker_caches,
            timeout=300.0,
        )
        # the coordinator folded worker exports into the fleet cache
        assert len(fleet_cache) > 0
        fleet_keys = fleet_cache.keys_snapshot()
        # every worker that ran jobs ended up holding fleet keys; with 4
        # jobs over 2 workers and one shared measurement set, at least
        # one worker's cache was seeded over the wire (hits > misses of
        # a cold run) — structurally: all worker keys are fleet keys
        for cache in worker_caches:
            assert cache.keys_snapshot() <= fleet_keys

    def test_prewarmed_coordinator_cache_reaches_workers(self):
        # measure once locally, then hand the warm cache to the fabric:
        # workers must receive the entries with their first grant
        fleet_cache = DwellCurveCache()
        serial = run_sweep(
            cheap_base(),
            AXES,
            replications=1,
            seed0=3,
            max_workers=1,
            cache=fleet_cache,
        )
        assert len(serial.rows) == 2 and len(fleet_cache) > 0
        warm_keys = fleet_cache.keys_snapshot()
        worker_cache = DwellCurveCache()
        run_fabric_sweep(
            cheap_base(),
            AXES,
            replications=1,
            seed0=3,
            workers=1,
            cache=fleet_cache,
            worker_caches=[worker_cache],
            timeout=300.0,
        )
        assert warm_keys <= worker_cache.keys_snapshot()


class TestStudyService:
    def test_submit_poll_fetch_and_content_address_dedup(self):
        service = StudyService(pool_size=2, cache=DwellCurveCache())
        service.start()
        try:
            client = ServiceClient(service.host, service.port)
            scenario = cheap_base(apps=("motor-current-loop",))
            submitted = client.submit_scenario(scenario)
            assert submitted["state"] in ("queued", "running", "done")
            fetched = client.wait_for(submitted["job_id"], timeout=300.0)
            assert fetched["state"] == "done"
            result = StudyResult.from_dict(fetched["artifact"])
            assert result.ok and result.provenance.get("service") is True

            # identical scenario under another name: same job, cache hit
            again = client.submit_scenario(scenario.derive(name="renamed"))
            assert again["job_id"] == submitted["job_id"]
            assert again["cache_hit"] is True

            # a different seed is different work
            other = client.submit_scenario(scenario.derive(seed=11))
            assert other["job_id"] != submitted["job_id"]
            client.wait_for(other["job_id"], timeout=300.0)
        finally:
            service.stop()

    def test_submit_sweep_spec(self):
        service = StudyService(pool_size=1, cache=DwellCurveCache())
        service.start()
        try:
            client = ServiceClient(service.host, service.port)
            spec = {
                "base": cheap_base(apps=("motor-current-loop",)).to_dict(),
                "axes": {"loss_rate": [0.0]},
                "replications": 1,
                "seed0": 0,
            }
            submitted = client.submit_sweep(spec)
            assert submitted["job_kind"] == "sweep"
            assert submitted["address"].startswith("sweep-")
            fetched = client.wait_for(submitted["job_id"], timeout=300.0)
            assert fetched["state"] == "done"
            assert fetched["artifact"]["mode"] == "fixed"
            assert len(fetched["artifact"]["runs"]) == 1
        finally:
            service.stop()

    def test_unknown_job_and_bad_submit_are_clean_errors(self):
        service = StudyService(pool_size=1, cache=DwellCurveCache())
        service.start()
        try:
            client = ServiceClient(service.host, service.port)
            with pytest.raises(RuntimeError, match="unknown job id"):
                client.status("job-nope")
            with pytest.raises(RuntimeError, match="submit needs one of"):
                client._call("submit")
        finally:
            service.stop()

    def test_job_states_only_move_forward(self):
        from repro.fabric import JOB_STATES, JobRecord

        record = JobRecord("job-x", "addr+0", "study")
        assert record.state == "queued" == JOB_STATES[0]
        record.advance("running")
        record.advance("done")
        with pytest.raises(ValueError):
            record.advance("running")  # no going back
        with pytest.raises(ValueError):
            record.advance("bogus")


class TestCliFabricFlags:
    def test_adaptive_flags_rejected_with_fabric(self, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep",
                "--fabric",
                "2",
                "--ci-target",
                "0.1",
                "--max-replications",
                "8",
            ]
        )
        assert code == 2
        assert "adaptive stopping" in capsys.readouterr().err

    def test_resume_requires_fabric_and_output(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--resume"]) == 2
        assert "--resume needs --fabric" in capsys.readouterr().err
        assert main(["sweep", "--fabric", "1", "--resume"]) == 2
        assert "--resume needs --output" in capsys.readouterr().err
