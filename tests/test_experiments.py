"""Integration tests for the experiment drivers (one per paper artefact).

The heavier drivers run with coarse sweep strides here; the benchmarks
exercise the full-resolution versions.
"""

import pytest

from repro.experiments import (
    run_fig3,
    run_fig4,
    run_fig5,
    run_fixed_point_ablation,
    run_paper_allocation,
    run_segment_ablation,
    run_simulation_allocation,
    run_table1,
    simulation_applications,
)


@pytest.fixture(scope="module")
def fig3_result():
    return run_fig3(wait_step=4)


@pytest.fixture(scope="module")
def sim_apps():
    return simulation_applications(wait_step=4)


class TestFig3:
    def test_tt_response_matches_paper(self, fig3_result):
        assert fig3_result.xi_tt == pytest.approx(0.68, abs=0.05)

    def test_et_response_matches_paper(self, fig3_result):
        assert fig3_result.xi_et == pytest.approx(2.16, abs=0.2)

    def test_non_monotonic(self, fig3_result):
        assert fig3_result.is_non_monotonic()

    def test_peak_is_interior(self, fig3_result):
        k_p, xi_m = fig3_result.curve.peak
        assert 0.0 < k_p < fig3_result.xi_et
        assert xi_m > fig3_result.xi_tt

    def test_report_renders(self, fig3_result):
        text = fig3_result.report()
        assert "xi_TT" in text and "Figure 3" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self, fig3_result):
        return run_fig4(curve=fig3_result.curve)

    def test_safe_models_dominate(self, result):
        assert result.non_monotonic.dominates(result.curve)
        assert result.conservative_monotonic.dominates(result.curve)
        assert result.concave_envelope.dominates(result.curve)

    def test_simple_monotonic_is_unsafe(self, result):
        """The paper's warning: the simple model underestimates dwell."""
        assert not result.simple.dominates(result.curve)

    def test_non_monotonic_tighter_than_monotonic(self, result):
        assert result.tightness_gap() > 0

    def test_envelope_at_least_as_tight(self, result):
        for wait in result.curve.waits:
            assert (
                result.concave_envelope.dwell(wait)
                <= result.non_monotonic.dwell(wait) + 1e-9
            )


class TestTable1:
    def test_paper_mode_verbatim(self):
        result = run_table1(include_simulation=False)
        assert len(result.paper) == 6
        report = result.paper_report()
        assert "C3" in report and "0.390" in report

    def test_simulation_mode(self, sim_apps):
        from repro.experiments.table1 import Table1Result

        result = Table1Result(paper=list(run_table1(include_simulation=False).paper), simulated=sim_apps)
        report = result.report()
        assert "servo-rig" in report
        for app in sim_apps:
            assert app.params.xi_tt <= app.params.xi_et


class TestAllocation:
    def test_paper_mode_exact(self):
        comparison = run_paper_allocation()
        assert comparison.non_monotonic.slot_count == 3
        assert comparison.monotonic.slot_count == 5
        assert comparison.extra_resource_fraction == pytest.approx(2 / 3)
        assert comparison.optimal.slot_count == 3

    def test_fixed_point_method_never_worse(self):
        exact = run_paper_allocation(method="fixed-point")
        closed = run_paper_allocation(method="closed-form")
        assert exact.non_monotonic.slot_count <= closed.non_monotonic.slot_count

    def test_simulation_mode_shows_same_direction(self, sim_apps):
        comparison = run_simulation_allocation(applications=sim_apps)
        assert (
            comparison.non_monotonic.slot_count < comparison.monotonic.slot_count
        )
        assert comparison.non_monotonic.all_schedulable()
        assert comparison.monotonic.all_schedulable()


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self, sim_apps):
        return run_fig5(applications=sim_apps)

    def test_all_deadlines_met(self, result):
        assert result.all_deadlines_met()

    def test_every_app_rejected_its_disturbance(self, result):
        for row in result.trace.summary_rows():
            # At least the t=0 disturbance episode; brief threshold
            # re-crossings may add short extra episodes (the runtime has
            # no hysteresis, exactly like the paper's scheme).
            assert len(row["responses"]) >= 1
            assert row["responses"][0] == row["worst_response"] or all(
                r <= row["deadline"] for r in row["responses"]
            )

    def test_report_renders(self, result):
        text = result.report(plots=True)
        assert "Figure 5" in text
        assert "servo-rig" in text

    def test_analytic_network_variant(self, sim_apps):
        result = run_fig5(applications=sim_apps, use_flexray=False)
        assert result.all_deadlines_met()


class TestAblations:
    def test_segment_ablation_ordering(self, sim_apps):
        result = run_segment_ablation(applications=sim_apps)
        assert (
            result.slot_counts["concave-envelope"]
            <= result.slot_counts["two-segment"]
            <= result.slot_counts["conservative-monotonic"]
        )
        assert (
            result.mean_dwell_bounds["concave-envelope"]
            <= result.mean_dwell_bounds["two-segment"] + 1e-9
        )

    def test_fixed_point_ablation_bounds(self):
        result = run_fixed_point_ablation(samples=20, seed=3)
        assert result.mean_gap >= 0.0
        assert result.max_gap >= result.mean_gap

    def test_jitter_ablation(self, sim_apps):
        from repro.experiments import run_jitter_ablation

        result = run_jitter_ablation(applications=sim_apps, horizon=15.0)
        assert result.equalized_misses == 0
        for name, equalized in result.equalized.items():
            assert result.raw[name] >= equalized - 1e-9
        assert "equalisation" in result.report()

    def test_kernel_ablation_covers_the_flexray_subject(self):
        from repro.experiments import run_kernel_ablation

        result = run_kernel_ablation(
            wait_step=16, horizon=4.0, scenario="fig5-cosim"
        )
        assert result.scenario.startswith("fig5-cosim")
        assert result.traces_identical
        assert result.apps > 0 and result.samples > 0
        assert "fig5-cosim" in result.report()

    def test_qoc_ablation(self, sim_apps):
        from repro.experiments.ablations import run_qoc_ablation

        result = run_qoc_ablation(applications=sim_apps)
        by_name = {row[0]: row for row in result.rows}
        # Alone on its slot, cruise-control never waits: zero penalty.
        assert by_name["cruise-control"][3] == pytest.approx(0.0)
        # Slot sharers pay a strictly positive quality penalty.
        assert by_name["servo-rig"][3] > 0.0
        for _name, j0, j_max, _penalty in result.rows:
            assert j_max >= j0 - 1e-9
