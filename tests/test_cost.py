"""Tests for the quadratic QoC cost module."""

import numpy as np
import pytest

from repro.control.controller import design_switched_application
from repro.control.cost import (
    LyapunovError,
    autonomous_cost,
    solve_dlyap,
    switched_cost,
    waiting_penalty,
)
from repro.control.plants import servo_rig


class TestSolveDlyap:
    def test_scalar_closed_form(self):
        # A = a: P = w / (1 - a^2).
        p = solve_dlyap(np.array([[0.5]]), np.array([[1.0]]))
        assert p[0, 0] == pytest.approx(1.0 / (1 - 0.25))

    def test_residual_property(self):
        rng = np.random.default_rng(4)
        a = 0.5 * rng.normal(size=(3, 3))
        a /= max(1.0, 1.5 * np.max(np.abs(np.linalg.eigvals(a))))
        w = np.eye(3)
        p = solve_dlyap(a, w)
        np.testing.assert_allclose(a.T @ p @ a - p + w, 0.0, atol=1e-8)

    def test_unstable_rejected(self):
        with pytest.raises(LyapunovError, match="Schur"):
            solve_dlyap(np.array([[1.1]]), np.array([[1.0]]))


class TestAutonomousCost:
    def test_matches_explicit_sum(self):
        a = np.array([[0.6, 0.1], [0.0, 0.4]])
        x0 = np.array([1.0, -2.0])
        closed_form = autonomous_cost(a, x0)
        explicit, x = 0.0, x0.copy()
        for _ in range(200):
            explicit += float(x @ x)
            x = a @ x
        assert closed_form == pytest.approx(explicit, rel=1e-10)

    def test_weighted_cost(self):
        a = np.array([[0.5]])
        x0 = np.array([2.0])
        assert autonomous_cost(a, x0, weight=np.array([[3.0]])) == pytest.approx(
            3.0 * autonomous_cost(a, x0)
        )

    def test_zero_state_zero_cost(self):
        assert autonomous_cost(np.array([[0.5]]), [0.0]) == 0.0


class TestSwitchedCost:
    @pytest.fixture(scope="class")
    def loops(self):
        plant = servo_rig()
        app = design_switched_application(
            name="servo",
            plant=plant.model,
            period=plant.period,
            et_delay=plant.period,
            tt_delay=0.0007,
            q=plant.q,
            r=plant.r,
            threshold=plant.threshold,
        )
        return app.a1, app.a2, app.initial_state(plant.disturbance)

    def test_zero_wait_is_pure_tt_cost(self, loops):
        a1, a2, z0 = loops
        assert switched_cost(a1, a2, z0, 0) == pytest.approx(
            autonomous_cost(a2, z0)
        )

    def test_infinite_wait_approaches_pure_et_cost(self, loops):
        a1, a2, z0 = loops
        long_wait = switched_cost(a1, a2, z0, 400)
        assert long_wait == pytest.approx(autonomous_cost(a1, z0), rel=1e-3)

    def test_matches_explicit_simulation(self, loops):
        a1, a2, z0 = loops
        kwait = 12
        closed_form = switched_cost(a1, a2, z0, kwait)
        explicit, x = 0.0, z0.copy()
        for k in range(600):
            explicit += float(x @ x)
            x = (a1 if k < kwait else a2) @ x
        assert closed_form == pytest.approx(explicit, rel=1e-6)

    def test_waiting_penalty_positive_for_detuned_et(self, loops):
        a1, a2, z0 = loops
        assert waiting_penalty(a1, a2, z0, 20) > 0.0

    def test_rejects_negative_wait(self, loops):
        a1, a2, z0 = loops
        with pytest.raises(ValueError):
            switched_cost(a1, a2, z0, -1)
