"""Tests for the end-to-end characterisation pipeline."""

import pytest

from repro.control.plants import dc_motor_speed
from repro.core.characterization import (
    characterize_curve,
    characterize_plant,
    characterize_response_source,
)


class TestCharacterizeCurve:
    def test_parameters_read_off_models(self, humped_curve):
        result = characterize_curve(
            "app", humped_curve, deadline=5.0, min_inter_arrival=10.0
        )
        params = result.params
        assert params.xi_tt == pytest.approx(humped_curve.xi_tt)
        assert params.xi_m == pytest.approx(result.non_monotonic_model.max_dwell)
        assert params.xi_m_mono == pytest.approx(result.monotonic_model.max_dwell)
        assert params.xi_m_mono >= params.xi_m

    def test_models_dominate_measurement(self, humped_curve):
        result = characterize_curve(
            "app", humped_curve, deadline=5.0, min_inter_arrival=10.0
        )
        assert result.non_monotonic_model.dominates(humped_curve)
        assert result.monotonic_model.dominates(humped_curve)

    def test_deadline_validation_propagates(self, humped_curve):
        with pytest.raises(ValueError):
            characterize_curve("app", humped_curve, deadline=20.0, min_inter_arrival=10.0)


class TestCharacterizePlant:
    @pytest.fixture(scope="class")
    def result(self):
        plant = dc_motor_speed()
        return characterize_plant(
            name="motor",
            plant=plant,
            et_delay=plant.period,
            tt_delay=0.0,
            deadline=8.0,
            min_inter_arrival=20.0,
            wait_step=2,
        )

    def test_tt_faster_than_et(self, result):
        assert result.params.xi_tt <= result.params.xi_et

    def test_curve_dominated_by_models(self, result):
        assert result.non_monotonic_model.dominates(result.curve)
        assert result.monotonic_model.dominates(result.curve)

    def test_parameters_name(self, result):
        assert result.params.name == "motor"


class TestCharacterizeResponseSource:
    def test_black_box_interface(self):
        """A synthetic response source with a known dwell law."""
        period = 0.1
        xi_et = 2.0

        def source(wait_samples: int) -> float:
            wait = wait_samples * period
            dwell = max(0.0, 1.0 - 0.5 * wait) if wait < xi_et else 0.0
            return wait + dwell

        result = characterize_response_source(
            "synthetic",
            source,
            pure_et_response=xi_et,
            period=period,
            deadline=3.0,
            min_inter_arrival=5.0,
        )
        assert result.params.xi_tt == pytest.approx(1.0)
        assert result.non_monotonic_model.dominates(result.curve)
