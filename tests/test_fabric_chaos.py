"""Chaos matrix for the fabric resilience layer (PR 10).

The fabric's recovery machinery — leases, re-queueing, retry/backoff,
read deadlines, torn-log resume — is only trustworthy if it is
*exercised*, and only testable if the exercising is reproducible.
These tests drive real sockets and real threads under seeded fault
storms (:mod:`repro.fabric.resilience`) and assert two things at once:

1. **parity** — a sweep that survived drops, delays, duplicates,
   garbled lines, stalls and crashes merges bitwise identical to the
   serial run (rows and per-cell Welford statistics);
2. **determinism** — the same ``--chaos-seed`` reproduces the same
   fault sequence and the same requeue/retry accounting, run over run.
"""

import json
import socket
import threading
import time

import pytest

from repro.fabric import (
    CHAOS_PROFILES,
    ChannelTimeout,
    FabricWorker,
    FaultPlan,
    FaultyChannel,
    InjectedCrash,
    LineChannel,
    ProtocolError,
    ResultStore,
    RetryExhausted,
    RetryPolicy,
    ServiceClient,
    StudyService,
    SweepCoordinator,
    chaos_plan,
    connect,
    fleet_plans,
    run_fabric_sweep,
    tear_jsonl_tail,
)
from repro.fabric.resilience import DEFAULT_FAULT_TYPES, garble_line
from repro.pipeline import DwellCurveCache, get_scenario, run_sweep

#: Same cheap two-plant roster the fabric tests use.
def cheap_base(**overrides):
    settings = dict(
        apps=("motor-current-loop", "servo-rig"),
        wait_step=4,
        horizon=2.0,
    )
    settings.update(overrides)
    return get_scenario("multirate-cosim-analytic").derive(
        name="chaos-base", **settings
    )


AXES = {"loss_rate": [0.0, 0.02]}

#: Provenance keys the fabric adds on top of the serial row.
FABRIC_ONLY = {"worker", "attempt", "cache_hit", "duration"}


def stripped(rows):
    return [{k: v for k, v in row.items() if k not in FABRIC_ONLY} for row in rows]


def serial_baseline():
    return run_sweep(
        cheap_base(),
        AXES,
        replications=2,
        seed0=3,
        max_workers=1,
        cache=DwellCurveCache(),
    )


def assert_parity(fabric_result, serial_result):
    """Rows and per-cell Welford statistics identical apart from
    provenance and wall clock."""
    assert stripped(fabric_result.rows) == stripped(serial_result.rows)
    for fab_cell, ser_cell in zip(fabric_result.cells, serial_result.cells):
        fab_stats = dict(fab_cell.to_dict())
        ser_stats = dict(ser_cell.to_dict())
        fab_stats["metrics"] = {
            k: v for k, v in fab_stats["metrics"].items() if k != "duration"
        }
        ser_stats["metrics"] = {
            k: v for k, v in ser_stats["metrics"].items() if k != "duration"
        }
        assert fab_stats == ser_stats


def channel_pair():
    left_sock, right_sock = socket.socketpair()
    return LineChannel(left_sock), LineChannel(right_sock)


# -- retry policy ------------------------------------------------------


class TestRetryPolicy:
    def test_same_seed_same_delay_sequence(self):
        a = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.5, seed=7)
        b = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.5, seed=7)
        delays = [a.delay_for(k) for k in range(1, 6)]
        assert delays == [b.delay_for(k) for k in range(1, 6)]
        # exponential envelope with a bounded jitter on top
        for k, delay in enumerate(delays, start=1):
            raw = min(0.1 * 2.0 ** (k - 1), a.max_delay)
            assert raw <= delay <= raw * 1.5

    def test_different_seed_different_jitter(self):
        a = RetryPolicy(seed=1)
        b = RetryPolicy(seed=2)
        assert [a.delay_for(k) for k in range(1, 6)] != [
            b.delay_for(k) for k in range(1, 6)
        ]

    def test_floor_is_honoured_with_jitter_on_top(self):
        policy = RetryPolicy(base_delay=0.01, jitter=0.5, seed=0)
        delay = policy.delay_for(1, floor=2.0)
        assert 2.0 <= delay <= 3.0

    def test_call_retries_then_succeeds(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.01, seed=0)
        sleeps = []
        policy._sleep = sleeps.append
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionRefusedError("not up yet")
            return 42

        assert policy.call(flaky) == 42
        assert len(attempts) == 3 and len(sleeps) == 2

    def test_call_exhaustion_raises_chained(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.01, seed=0)
        policy._sleep = lambda _: None

        def dead():
            raise ConnectionRefusedError("never up")

        with pytest.raises(RetryExhausted) as err:
            policy.call(dead)
        assert isinstance(err.value.__cause__, ConnectionRefusedError)

    def test_call_deadline_cuts_attempts_short(self):
        policy = RetryPolicy(
            max_attempts=50, base_delay=10.0, jitter=0.0, deadline=0.001, seed=0
        )
        attempts = []

        def dead():
            attempts.append(1)
            raise OSError("down")

        with pytest.raises(RetryExhausted):
            policy.call(dead)
        # the first backoff would overshoot the deadline: one attempt only
        assert len(attempts) == 1

    def test_non_retryable_exception_propagates(self):
        policy = RetryPolicy(max_attempts=5, seed=0)
        policy._sleep = lambda _: None

        def broken():
            raise ValueError("a bug, not an outage")

        with pytest.raises(ValueError):
            policy.call(broken)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(0)


# -- fault plans and injector streams ----------------------------------


class TestFaultPlans:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_send=1.5)
        with pytest.raises(ValueError):
            FaultPlan(delay_max=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(crash_at_message=0)

    def test_quiet_plan(self):
        assert FaultPlan().quiet
        assert not FaultPlan(drop_send=0.1).quiet
        assert not FaultPlan(crash_at_message=3).quiet

    def test_injector_streams_reproduce(self):
        plan = FaultPlan(
            seed=42,
            drop_send=0.3,
            delay_send=0.5,
            duplicate_send=0.3,
            garble_send=0.2,
            drop_recv=0.3,
            delay_recv=0.5,
            duplicate_recv=0.3,
            delay_max=0.01,
        )
        a, b = plan.injector(), plan.injector()
        send_a = [a.send_fate() for _ in range(64)]
        recv_a = [a.recv_fate() for _ in range(64)]
        send_b = [b.send_fate() for _ in range(64)]
        recv_b = [b.recv_fate() for _ in range(64)]
        assert send_a == send_b and recv_a == recv_b
        assert a.events == b.events
        # the storm is real: something of every probabilistic kind fired
        assert a.events["drop_send"] > 0 and a.events["drop_recv"] > 0
        assert a.events["duplicate_send"] > 0 and a.events["garble_send"] > 0

    def test_send_and_recv_streams_are_independent(self):
        plan = FaultPlan(seed=9, drop_send=0.5, drop_recv=0.5)
        mixed = plan.injector()
        for _ in range(10):
            mixed.recv_fate()
        mixed_sends = [mixed.send_fate() for _ in range(20)]
        pure = plan.injector()
        assert mixed_sends == [pure.send_fate() for _ in range(20)]

    def test_chaos_plan_profiles(self):
        assert CHAOS_PROFILES == ("drop-delay", "dup-garble", "stall-crash")
        with pytest.raises(ValueError):
            chaos_plan("unknown-storm", 0)
        with pytest.raises(ValueError):
            chaos_plan("drop-delay", 0, worker_index=2, fleet_size=2)
        # stall-crash needs a survivor
        with pytest.raises(ValueError):
            chaos_plan("stall-crash", 0, worker_index=0, fleet_size=1)

    def test_fleet_plans_derive_per_worker_seeds(self):
        plans = fleet_plans("drop-delay", seed=5, fleet_size=3)
        assert len(plans) == 3
        assert len({plan.seed for plan in plans}) == 3
        assert plans == fleet_plans("drop-delay", seed=5, fleet_size=3)
        assert plans != fleet_plans("drop-delay", seed=6, fleet_size=3)

    def test_stall_crash_fleet_roles(self):
        plans = fleet_plans("stall-crash", seed=0, fleet_size=3, lease_timeout=1.5)
        assert plans[0].stall_at_message == 2 and plans[0].stall_for >= 2.4
        assert plans[-1].crash_at_message == 2
        assert plans[1].quiet


# -- read deadlines on the wire ----------------------------------------


class TestChannelDeadlines:
    def test_timeout_raises_typed_and_keeps_partial_line(self):
        left, right = channel_pair()
        left.send_raw(b'{"type": "hello"')  # no newline yet
        with pytest.raises(ChannelTimeout):
            right.recv_msg(timeout=0.1)
        left.send_raw(b', "n": 1}\n')  # finish the same line later
        assert right.recv_msg(timeout=1.0) == {"type": "hello", "n": 1}
        left.close()
        right.close()

    def test_timeout_with_nothing_buffered(self):
        left, right = channel_pair()
        start = time.monotonic()
        with pytest.raises(ChannelTimeout):
            right.recv_msg(timeout=0.1)
        assert time.monotonic() - start < 2.0
        left.close()
        right.close()

    def test_eof_mid_line_is_protocol_error(self):
        left, right = channel_pair()
        left.send_raw(b'{"type": "hello"')
        left.close()
        with pytest.raises(ProtocolError, match="mid-message"):
            right.recv_msg(timeout=1.0)
        right.close()

    def test_channel_timeout_is_oserror_but_not_plain(self):
        # one retry_on=(OSError,) class covers deadlines too, while
        # handlers that must distinguish can catch ChannelTimeout first
        assert issubclass(ChannelTimeout, TimeoutError)
        assert issubclass(ChannelTimeout, OSError)


# -- the faulty channel ------------------------------------------------


class TestFaultyChannel:
    def wrapped(self, plan):
        left, right = channel_pair()
        return FaultyChannel(left, plan.injector()), right

    def test_control_messages_pass_untouched(self):
        faulty, peer = self.wrapped(FaultPlan(seed=0, drop_send=1.0))
        faulty.send_msg("hello", worker="w")
        assert peer.recv_msg(timeout=1.0) == {"type": "hello", "worker": "w"}
        faulty.close()
        peer.close()

    def test_drop_send_swallows_data_messages(self):
        faulty, peer = self.wrapped(FaultPlan(seed=0, drop_send=1.0))
        faulty.send_msg("result", worker="w", job_id="a+0")
        with pytest.raises(ChannelTimeout):
            peer.recv_msg(timeout=0.15)
        assert faulty.injector.events["drop_send"] == 1
        faulty.close()
        peer.close()

    def test_duplicate_send_puts_line_twice(self):
        faulty, peer = self.wrapped(FaultPlan(seed=0, duplicate_send=1.0))
        faulty.send_msg("result", worker="w", job_id="a+0")
        first = peer.recv_msg(timeout=1.0)
        second = peer.recv_msg(timeout=1.0)
        assert first == second and first["type"] == "result"
        faulty.close()
        peer.close()

    def test_garble_send_breaks_only_that_line(self):
        faulty, peer = self.wrapped(FaultPlan(seed=0, garble_send=1.0))
        faulty.send_msg("result", worker="w", job_id="a+0")
        with pytest.raises(ProtocolError):
            peer.recv_msg(timeout=1.0)
        faulty.close()
        peer.close()

    def test_garble_line_never_parses_but_keeps_framing(self):
        data = garble_line(b'{"type": "result"}\n')
        assert data.endswith(b"\n") and data.count(b"\n") == 1
        with pytest.raises(json.JSONDecodeError):
            json.loads(data.decode("utf-8", errors="replace"))

    def test_drop_recv_swallows_incoming(self):
        left, right = channel_pair()
        faulty = FaultyChannel(right, FaultPlan(seed=0, drop_recv=1.0).injector())
        left.send_msg("job", job_id="a+0")
        with pytest.raises(ChannelTimeout):
            faulty.recv_msg(timeout=0.15)
        assert faulty.injector.events["drop_recv"] == 1
        left.close()
        faulty.close()

    def test_duplicate_recv_replays_message(self):
        left, right = channel_pair()
        faulty = FaultyChannel(
            right, FaultPlan(seed=0, duplicate_recv=1.0).injector()
        )
        left.send_msg("job", job_id="a+0")
        first = faulty.recv_msg(timeout=1.0)
        second = faulty.recv_msg(timeout=1.0)  # replay, no wire read
        assert first == second and first["job_id"] == "a+0"
        left.close()
        faulty.close()

    def test_crash_hook_closes_socket_and_raises(self):
        faulty, peer = self.wrapped(FaultPlan(seed=0, crash_at_message=1))
        with pytest.raises(InjectedCrash):
            faulty.send_msg("result", worker="w", job_id="a+0")
        assert peer.recv_msg(timeout=1.0) is None  # peer sees a vanished process
        peer.close()

    def test_stall_hook_blocks_concurrent_control_sends(self):
        faulty, peer = self.wrapped(
            FaultPlan(seed=0, stall_at_message=1, stall_for=0.3)
        )
        stamps = {}

        def heartbeat():
            faulty.send_msg("heartbeat", worker="w")
            stamps["beat_done"] = time.monotonic()

        start = time.monotonic()
        beat = threading.Thread(target=heartbeat, daemon=True)

        def stall_send():
            faulty.send_msg("result", worker="w", job_id="a+0")

        stall = threading.Thread(target=stall_send, daemon=True)
        stall.start()
        time.sleep(0.05)  # let the stall take the lock first
        beat.start()
        stall.join(timeout=5.0)
        beat.join(timeout=5.0)
        # the heartbeat queued behind the stall: the lease went silent
        assert stamps["beat_done"] - start >= 0.25
        assert faulty.injector.events["stall"] == 1
        faulty.close()
        peer.close()

    def test_default_fault_types_are_data_plane_only(self):
        assert DEFAULT_FAULT_TYPES == ("job", "result")


# -- torn JSONL logs ---------------------------------------------------


class TestTornLogRecovery:
    def rows(self):
        return [
            {"address": "a+0", "ok": True},
            {"address": "a+1", "ok": True},
            {"address": "a+2", "ok": True},
        ]

    def test_tear_then_recover_prefix(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in self.rows()))
        removed = tear_jsonl_tail(str(path))
        assert removed > 0
        assert not path.read_text().endswith("\n")
        store = ResultStore()
        report = store.load_jsonl(str(path))
        assert (report.adopted, report.skipped, report.recovered_tail) == (2, 0, 1)
        assert "a+0" in store and "a+1" in store and "a+2" not in store

    def test_tear_keeps_at_least_one_byte(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text(json.dumps(self.rows()[0]) + "\n")
        tear_jsonl_tail(str(path), keep_fraction=0.0)
        text = path.read_text()
        assert text and "\n" not in text  # a torn stub, not a deleted line

    def test_tear_empty_file_is_noop(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert tear_jsonl_tail(str(path)) == 0

    def test_tear_validation(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text("{}\n")
        with pytest.raises(ValueError):
            tear_jsonl_tail(str(path), keep_fraction=1.0)

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text('{"address": "a+0"}\nnot json\n{"address": "a+1"}')
        with pytest.raises(ValueError, match="unreadable resume row"):
            ResultStore().load_jsonl(str(path))

    def test_complete_junk_final_line_still_raises(self, tmp_path):
        # a newline-terminated junk line is corruption, not a torn write
        path = tmp_path / "sweep.jsonl"
        path.write_text('{"address": "a+0"}\nnot json\n')
        with pytest.raises(ValueError, match="unreadable resume row"):
            ResultStore().load_jsonl(str(path))


# -- the chaos storm matrix --------------------------------------------


def storm_sweep(profile, seed, **overrides):
    settings = dict(
        workers=1,
        lease_timeout=1.0,
        max_attempts=10,
        cache=DwellCurveCache(),
        worker_caches=[DwellCurveCache()],
        chaos_profile=profile,
        chaos_seed=seed,
        timeout=300.0,
    )
    settings.update(overrides)
    return run_fabric_sweep(
        cheap_base(), AXES, replications=2, seed0=3, **settings
    )


def recovery_ledger(result):
    """The deterministic slice of the fabric accounting: requeue events
    and per-worker retry counters (wait naps are timing-dependent and
    excluded)."""
    fabric = result.config["fabric"]
    worker_stats = {
        worker: {k: v for k, v in stats.items() if k != "wait_naps"}
        for worker, stats in fabric.get("worker_stats", {}).items()
    }
    return {
        "requeues": sorted(
            (event["address"], event["reason"]) for event in fabric["requeues"]
        ),
        "protocol_errors": fabric["protocol_errors"],
        "read_timeouts": fabric["read_timeouts"],
        "duplicates_ignored": fabric["duplicates_ignored"],
        "worker_stats": worker_stats,
    }


class TestChaosStorms:
    def test_drop_delay_storm_parity_and_reproducibility(self):
        serial = serial_baseline()
        first = storm_sweep("drop-delay", seed=101)
        assert_parity(first, serial)
        chaos = first.config["fabric"]["chaos"]
        assert chaos == {"seed": 101, "profile": "drop-delay"}
        # the same seed reproduces the same faults and the same recovery
        second = storm_sweep("drop-delay", seed=101)
        assert_parity(second, serial)
        assert recovery_ledger(first) == recovery_ledger(second)

    def test_dup_garble_storm_parity_and_reproducibility(self):
        serial = serial_baseline()
        first = storm_sweep("dup-garble", seed=7)
        assert_parity(first, serial)
        second = storm_sweep("dup-garble", seed=7)
        assert_parity(second, serial)
        assert recovery_ledger(first) == recovery_ledger(second)
        # the storm was real: something was duplicated or garbled, and
        # every one of those events left an accounting trace
        ledger = recovery_ledger(first)
        assert (
            ledger["duplicates_ignored"]
            + ledger["protocol_errors"]
            + len(ledger["requeues"])
            > 0
        )

    def test_stall_crash_storm_with_torn_tail_resume(self, tmp_path):
        serial = serial_baseline()
        jsonl = tmp_path / "storm.jsonl"
        result = storm_sweep(
            "stall-crash",
            seed=13,
            workers=2,
            lease_timeout=1.5,
            worker_caches=[DwellCurveCache(), DwellCurveCache()],
            jsonl_path=str(jsonl),
        )
        assert_parity(result, serial)
        fabric = result.config["fabric"]
        # exactly two recoveries: the stalled worker's lease expired and
        # the crashed worker's disconnect re-queued its job
        reasons = sorted(event["reason"] for event in fabric["requeues"])
        assert reasons == ["disconnect", "lease-expired"]

        # kill-the-writer artifact: tear the log tail, then resume
        assert tear_jsonl_tail(str(jsonl)) > 0
        resumed = run_fabric_sweep(
            cheap_base(),
            AXES,
            replications=2,
            seed0=3,
            workers=1,
            cache=DwellCurveCache(),
            jsonl_path=str(jsonl),
            resume_path=str(jsonl),
            timeout=300.0,
        )
        info = resumed.config["fabric"]
        assert info["recovered_tail"] == 1
        assert info["resumed"] == 3  # intact prefix adopted
        assert_parity(resumed, serial)
        # the recomputed torn row was appended: one line per address again
        lines = [json.loads(l) for l in jsonl.read_text().splitlines()]
        assert len({l["address"] for l in lines}) == 4

    def test_process_fleet_survives_dup_garble_storm(self):
        serial = serial_baseline()
        result = storm_sweep(
            "dup-garble",
            seed=3,
            workers=2,
            worker_mode="process",
            worker_caches=None,
            lease_timeout=5.0,
        )
        assert_parity(result, serial)
        assert result.config["fabric"]["chaos"] == {
            "seed": 3,
            "profile": "dup-garble",
        }

    def test_chaos_seed_requires_profile(self):
        with pytest.raises(ValueError, match="chaos_seed needs chaos_profile"):
            run_fabric_sweep(cheap_base(), AXES, workers=1, chaos_seed=1)
        with pytest.raises(ValueError, match="not both"):
            run_fabric_sweep(
                cheap_base(),
                AXES,
                workers=1,
                chaos_profile="drop-delay",
                fault_plans=[FaultPlan()],
            )


class TestLeaseReapUnderStall:
    def test_stalled_heartbeats_expire_lease_and_attempt_cap_lands_row(self):
        # satellite: a worker that goes silent mid-job (stall hook holds
        # the channel, heartbeats cannot renew) loses its lease; with
        # max_attempts=1 the coordinator lands the synthetic
        # failed_stage="worker" row and drops the stale late result
        plan = FaultPlan(seed=11, stall_at_message=1, stall_for=2.5, recv_timeout=1.0)
        result = run_fabric_sweep(
            cheap_base(),
            AXES,
            replications=2,
            seed0=3,
            workers=1,
            lease_timeout=1.0,
            max_attempts=1,
            cache=DwellCurveCache(),
            fault_plans=[plan],
            timeout=300.0,
        )
        fabric = result.config["fabric"]
        assert [event["reason"] for event in fabric["requeues"]] == ["lease-expired"]
        failed = [
            row for row in result.rows if row.get("failed_stage") == "worker"
        ]
        assert len(failed) == 1
        assert "lease-expired" in json.dumps(failed[0])
        # the stalled worker's late result arrived against the synthetic
        # row and was dropped as a duplicate — accounted, not merged
        assert fabric["duplicates_ignored"] == 1
        assert len(result.rows) == 4  # the sweep still completed


class TestConnectionIsolation:
    def test_garbled_peer_fails_only_its_connection(self):
        # satellite: one peer spraying garbage must not take down the
        # accept loop or any healthy worker
        coordinator = SweepCoordinator(
            cheap_base(),
            AXES,
            replications=2,
            seed0=3,
            lease_timeout=5.0,
            cache=DwellCurveCache(),
        )
        coordinator.start()
        try:
            evil = connect(coordinator.host, coordinator.port)
            evil.send_raw(b"\x00!garbled!\x00 not json\n")
            assert evil.recv_msg(timeout=5.0) is None  # kicked, typed, closed
            evil.close()

            worker = FabricWorker(
                coordinator.host,
                coordinator.port,
                worker_id="healthy",
                cache=DwellCurveCache(),
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            coordinator.wait(timeout=300.0)
        finally:
            coordinator.stop()
        thread.join(timeout=10.0)
        result = coordinator.result()
        assert len(result.rows) == 4
        assert result.config["fabric"]["protocol_errors"] == 1

    def test_half_open_worker_is_reaped_by_read_deadline(self):
        coordinator = SweepCoordinator(
            cheap_base(),
            AXES,
            replications=2,
            seed0=3,
            lease_timeout=5.0,
            read_deadline=0.3,
            cache=DwellCurveCache(),
        )
        coordinator.start()
        try:
            silent = connect(coordinator.host, coordinator.port)
            silent.send_msg("hello", worker="zombie")
            assert silent.recv_msg(timeout=5.0)["type"] == "ok"
            # now go silent: the coordinator must hang up, not hang
            assert silent.recv_msg(timeout=5.0) is None
            silent.close()
        finally:
            coordinator.stop()
        assert coordinator.read_timeouts == 1

    def test_read_deadline_defaults_to_lease_multiple(self):
        coordinator = SweepCoordinator(
            cheap_base(), AXES, replications=1, seed0=0, lease_timeout=2.0
        )
        assert coordinator.read_deadline == 8.0
        with pytest.raises(ValueError):
            SweepCoordinator(
                cheap_base(), AXES, replications=1, seed0=0, read_deadline=0.0
            )


class TestWorkerConnectRetry:
    def test_dial_backs_off_until_coordinator_appears(self):
        # reserve a port, start the worker first, bring the coordinator
        # up late: the old behaviour failed instantly, the retry policy
        # rides out the gap
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        worker = FabricWorker(
            "127.0.0.1",
            port,
            worker_id="early-bird",
            cache=DwellCurveCache(),
            retry=RetryPolicy(max_attempts=30, base_delay=0.1, jitter=0.1, seed=4),
        )
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        time.sleep(0.4)

        coordinator = SweepCoordinator(
            cheap_base(),
            AXES,
            replications=2,
            seed0=3,
            port=port,
            lease_timeout=5.0,
            cache=DwellCurveCache(),
        )
        coordinator.start()
        try:
            coordinator.wait(timeout=300.0)
        finally:
            coordinator.stop()
        thread.join(timeout=10.0)
        assert worker.jobs_done == 4
        assert worker.stats["connect_retries"] >= 1

    def test_dial_gives_up_after_attempt_budget(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        worker = FabricWorker(
            "127.0.0.1",
            port,
            worker_id="orphan",
            cache=DwellCurveCache(),
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, seed=0),
        )
        assert worker.run() == 0
        assert worker.stats["connect_retries"] == 2


class TestServiceResilience:
    def test_idle_half_open_client_releases_handler(self):
        service = StudyService(read_deadline=0.3)
        service.start()
        try:
            idle = connect(service.host, service.port)
            # send nothing: the service must hang up after its deadline
            assert idle.recv_msg(timeout=5.0) is None
            idle.close()
            # and keep serving real clients afterwards
            client = ServiceClient(service.host, service.port, timeout=30.0)
            snap = client.submit_scenario(cheap_base().derive(seed=1))
            artifact = client.wait_for(snap["job_id"], timeout=120.0)
            assert artifact["state"] == "done"
        finally:
            service.stop()

    def test_client_retries_until_service_appears(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        service = StudyService(port=port)
        starter = threading.Timer(0.4, service.start)
        starter.start()
        try:
            client = ServiceClient(
                "127.0.0.1",
                port,
                timeout=10.0,
                retry=RetryPolicy(max_attempts=30, base_delay=0.1, jitter=0.1, seed=2),
            )
            snap = client.submit_scenario(cheap_base().derive(seed=2))
            assert snap["state"] in ("queued", "running", "done")
        finally:
            starter.join()
            service.stop()

    def test_client_exhaustion_is_typed(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(
            "127.0.0.1",
            port,
            timeout=1.0,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, seed=0),
        )
        with pytest.raises(RetryExhausted):
            client.status("job-nope")


class TestChaosCliFlags:
    def test_chaos_flags_need_fabric(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--chaos-profile", "drop-delay"]) == 2
        assert "--chaos-profile" in capsys.readouterr().err

    def test_chaos_seed_needs_profile(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--fabric", "1", "--chaos-seed", "5"]) == 2
        assert "--chaos-seed needs --chaos-profile" in capsys.readouterr().err

    def test_worker_chaos_seed_needs_profile(self, capsys):
        from repro.cli import main

        code = main(
            ["worker", "--connect", "127.0.0.1:1", "--chaos-seed", "5"]
        )
        assert code == 2
        assert "--chaos-seed needs --chaos-profile" in capsys.readouterr().err
