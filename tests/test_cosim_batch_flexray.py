"""Deterministic-FlexRay batch kernel: parity, statistics, eligibility.

The acceptance bar of the FlexRay fast path: on *any* loss-free
static-slot FlexRay fleet — shared-period or multi-rate, any slot
assignment, any disturbance process, any seed — the batch kernel's
traces are bitwise identical to the event kernel's (and, where the
legacy kernel applies, to that too), and the bus statistics written back
by the schedule mirror match the event kernel's cycle-accurate run.
Anything non-deterministic (loss, background dynamic-segment traffic,
subclassed components, pre-warmed buses) falls back to the event kernel.
"""

import random

import pytest

from test_cosim_event import make_app, multirate_fleet, shared_fleet

from repro.control.disturbance import (
    OneShotDisturbance,
    PeriodicDisturbance,
    SporadicDisturbance,
)
from repro.control.plants import (
    dc_motor_speed,
    motor_current_loop,
    servo_rig,
    throttle_by_wire,
)
from repro.experiments import traces_bitwise_equal
from repro.flexray import FlexRayBus, FrameSpec, Message, paper_bus_config
from repro.flexray.params import FlexRayConfig
from repro.pipeline import DesignStudy, get_scenario
from repro.sim import (
    BackgroundTraffic,
    CoSimulator,
    FlexRayNetwork,
    TrafficStream,
    batch_capability,
    batch_eligible,
)
from repro.sim.batch_flexray import flexray_deterministic

SHARED_PLANTS = [servo_rig, dc_motor_speed, throttle_by_wire]


def fresh_network(config=None):
    return FlexRayNetwork(bus=FlexRayBus(config=config or paper_bus_config()))


def random_disturbance(rng: random.Random):
    kind = rng.randrange(3)
    if kind == 0:
        return OneShotDisturbance(time=rng.uniform(0.0, 2.0))
    if kind == 1:
        return PeriodicDisturbance(
            period=rng.uniform(1.5, 3.0), offset=rng.uniform(0.0, 1.0)
        )
    return SporadicDisturbance(
        min_inter_arrival=rng.uniform(1.5, 2.5),
        mean_extra_gap=rng.uniform(0.0, 1.0),
        seed=rng.randrange(1000),
    )


def random_shared_fleet(rng: random.Random):
    """2-4 applications, random slot assignments, random arrivals."""
    count = rng.randint(2, 4)
    slots = rng.sample(range(paper_bus_config().static_slots), 3)
    return [
        make_app(
            f"app{index}",
            rng.choice(SHARED_PLANTS)(),
            slot=rng.choice(slots),
            frame_id=index + 1,
            deadline=rng.uniform(4.0, 6.0),
            disturbances=random_disturbance(rng),
        )
        for index in range(count)
    ]


def random_multirate_fleet(rng: random.Random):
    """A 2 ms current loop beside 20 ms loops, mixed periods and slots."""
    fleet = [
        make_app(
            "current",
            motor_current_loop(),
            slot=0,
            frame_id=1,
            deadline=0.5,
            period=0.002,
        )
    ]
    for index in range(rng.randint(1, 3)):
        fleet.append(
            make_app(
                f"app{index}",
                rng.choice(SHARED_PLANTS)(),
                slot=rng.randrange(3),
                frame_id=index + 2,
                deadline=rng.uniform(4.0, 6.0),
                disturbances=random_disturbance(rng),
            )
        )
    return fleet


MULTIRATE_CONFIG = dict(
    cycle_length=0.001,
    static_slots=3,
    static_slot_length=0.0002,
    minislot_length=0.00001,
)


class TestFlexRayBatchParity:
    """Bitwise identity against the event (and legacy) kernels."""

    def test_shared_fleet_identical_across_all_kernels(self):
        traces = {}
        sims = {}
        nets = {}
        for kernel in ("legacy", "event", "batch"):
            nets[kernel] = fresh_network()
            sims[kernel] = CoSimulator(shared_fleet(), nets[kernel], kernel=kernel)
            traces[kernel] = sims[kernel].run(6.0)
        assert sims["batch"].last_kernel == "batch"
        assert traces_bitwise_equal(traces["batch"], traces["event"])
        assert traces_bitwise_equal(traces["batch"], traces["legacy"])
        assert (
            sims["batch"].jitter_violations
            == sims["event"].jitter_violations
            == sims["legacy"].jitter_violations
        )

    def test_multirate_fleet_identical_to_event_kernel(self):
        config = FlexRayConfig(**MULTIRATE_CONFIG)
        batch_net, event_net = fresh_network(config), fresh_network(config)
        batch_sim = CoSimulator(multirate_fleet(), batch_net, kernel="batch")
        event_sim = CoSimulator(multirate_fleet(), event_net, kernel="event")
        batch = batch_sim.run(6.0)
        event = event_sim.run(6.0)
        assert batch_sim.last_kernel == "batch"
        assert traces_bitwise_equal(batch, event)
        assert batch_sim.jitter_violations == event_sim.jitter_violations

    def test_parity_without_delay_equalization(self):
        """Raw bus delays (jitter violations counted, not equalized)."""
        sims = {
            kernel: CoSimulator(
                shared_fleet(), fresh_network(), equalize_delays=False, kernel=kernel
            )
            for kernel in ("event", "batch")
        }
        traces = {kernel: sim.run(5.0) for kernel, sim in sims.items()}
        assert sims["batch"].last_kernel == "batch"
        assert traces_bitwise_equal(traces["batch"], traces["event"])
        assert (
            sims["batch"].jitter_violations == sims["event"].jitter_violations
        )

    def test_parity_for_pure_et_baseline(self):
        """tt_allowed=False: everything rides the dynamic segment."""
        batch = CoSimulator(
            shared_fleet(), fresh_network(), tt_allowed=False, kernel="batch"
        ).run(5.0)
        event = CoSimulator(
            shared_fleet(), fresh_network(), tt_allowed=False, kernel="event"
        ).run(5.0)
        assert traces_bitwise_equal(batch, event)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_shared_fleets_identical_across_all_kernels(self, seed):
        rng = random.Random(2000 + seed)
        horizon = rng.uniform(4.0, 8.0)
        builder = lambda: random_shared_fleet(random.Random(2000 + seed))  # noqa: E731
        traces = {}
        sims = {}
        for kernel in ("legacy", "event", "batch"):
            sims[kernel] = CoSimulator(builder(), fresh_network(), kernel=kernel)
            traces[kernel] = sims[kernel].run(horizon)
        assert sims["batch"].last_kernel == "batch"
        assert traces_bitwise_equal(traces["batch"], traces["event"])
        assert traces_bitwise_equal(traces["batch"], traces["legacy"])
        assert (
            sims["batch"].jitter_violations
            == sims["event"].jitter_violations
            == sims["legacy"].jitter_violations
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_random_multirate_fleets_identical_to_event_kernel(self, seed):
        rng = random.Random(3000 + seed)
        horizon = rng.uniform(3.0, 6.0)
        builder = lambda: random_multirate_fleet(random.Random(3000 + seed))  # noqa: E731
        config = FlexRayConfig(**MULTIRATE_CONFIG)
        batch_sim = CoSimulator(builder(), fresh_network(config), kernel="batch")
        event_sim = CoSimulator(builder(), fresh_network(config), kernel="event")
        batch = batch_sim.run(horizon)
        event = event_sim.run(horizon)
        assert batch_sim.last_kernel == "batch"
        assert traces_bitwise_equal(batch, event)
        assert batch_sim.jitter_violations == event_sim.jitter_violations


class TestStatisticsFidelity:
    """The schedule mirror's write-back must match the live bus."""

    def test_shared_fleet_bus_statistics_match_event_kernel(self):
        batch_net, event_net = fresh_network(), fresh_network()
        CoSimulator(shared_fleet(), batch_net, kernel="batch").run(6.0)
        CoSimulator(shared_fleet(), event_net, kernel="event").run(6.0)
        assert batch_net.bus.statistics == event_net.bus.statistics
        assert batch_net.clamped == event_net.clamped
        assert batch_net.bus.current_cycle == event_net.bus.current_cycle
        assert batch_net.bus.statistics.tt_deliveries > 0
        assert batch_net.bus.statistics.et_deliveries > 0

    def test_multirate_fleet_bus_statistics_match_event_kernel(self):
        config = FlexRayConfig(**MULTIRATE_CONFIG)
        batch_net, event_net = fresh_network(config), fresh_network(config)
        CoSimulator(multirate_fleet(), batch_net, kernel="batch").run(6.0)
        CoSimulator(multirate_fleet(), event_net, kernel="event").run(6.0)
        assert batch_net.bus.statistics == event_net.bus.statistics
        assert batch_net.clamped == event_net.clamped
        assert batch_net.bus.current_cycle == event_net.bus.current_cycle

    @pytest.mark.parametrize("seed", range(3))
    def test_random_fleet_statistics_match(self, seed):
        builder = lambda: random_shared_fleet(random.Random(4000 + seed))  # noqa: E731
        batch_net, event_net = fresh_network(), fresh_network()
        CoSimulator(builder(), batch_net, kernel="batch").run(5.0)
        CoSimulator(builder(), event_net, kernel="event").run(5.0)
        assert batch_net.bus.statistics == event_net.bus.statistics
        assert batch_net.clamped == event_net.clamped


class TestEligibility:
    """flexray_deterministic: what qualifies and what falls back."""

    def test_lossfree_stock_fleet_is_flexray_capable(self):
        sim = CoSimulator(shared_fleet(), fresh_network())
        assert batch_capability(sim) == "flexray"
        assert batch_eligible(sim)
        sim.run(2.0)
        assert sim.last_kernel == "batch"

    def test_frame_loss_falls_back_to_event(self):
        network = FlexRayNetwork(
            bus=FlexRayBus(config=paper_bus_config()), loss_rate=0.3, loss_seed=7
        )
        sim = CoSimulator(shared_fleet(), network, kernel="auto")
        assert batch_capability(sim) is None
        sim.run(2.0)
        assert sim.last_kernel == "event"

    def test_background_traffic_falls_back_to_event(self):
        """Dynamic-segment contention is not precomputable."""
        traffic = BackgroundTraffic(
            streams=[
                TrafficStream(
                    spec=FrameSpec(frame_id=60, sender="infotainment"),
                    period=0.01,
                )
            ]
        )
        network = FlexRayNetwork(
            bus=FlexRayBus(config=paper_bus_config()), traffic=traffic
        )
        sim = CoSimulator(shared_fleet(), network, kernel="auto")
        assert batch_capability(sim) is None
        sim.run(2.0)
        assert sim.last_kernel == "event"

    def test_subclassed_network_falls_back(self):
        class TweakedFlexRay(FlexRayNetwork):
            pass

        sim = CoSimulator(
            shared_fleet(),
            TweakedFlexRay(bus=FlexRayBus(config=paper_bus_config())),
            kernel="auto",
        )
        assert batch_capability(sim) is None
        sim.run(2.0)
        assert sim.last_kernel == "event"

    def test_subclassed_bus_falls_back(self):
        class TweakedBus(FlexRayBus):
            pass

        network = FlexRayNetwork(bus=TweakedBus(config=paper_bus_config()))
        assert not flexray_deterministic(network)

    def test_prewarmed_bus_falls_back(self):
        network = fresh_network()
        network.bus.advance_to(0.02)
        assert not flexray_deterministic(network)

    def test_preassigned_slot_falls_back(self):
        """A hand-granted slot may carry a non-default cycle filter."""
        network = fresh_network()
        network.bus.grant_slot(0, FrameSpec(frame_id=9, sender="static"))
        assert not flexray_deterministic(network)

    def test_queued_dynamic_message_falls_back(self):
        network = fresh_network()
        network.bus.submit_et(
            Message(
                spec=FrameSpec(frame_id=9, sender="stray"), release_time=0.0
            )
        )
        assert not flexray_deterministic(network)


class TestPipelineIntegration:
    """kernel="auto" selects batch end-to-end, recorded in kernel_used."""

    def test_fig5_cosim_scenario_selects_batch(self):
        result = DesignStudy(get_scenario("fig5-cosim")).run()
        artifact = result.artifact("cosim")
        assert artifact["kernel_used"] == "batch"
        assert artifact["network"] == "flexray"
        assert artifact["loss"]["rate"] == 0.0

    def test_multirate_cosim_scenario_selects_batch(self):
        result = DesignStudy(get_scenario("multirate-cosim")).run()
        assert result.artifact("cosim")["kernel_used"] == "batch"

    def test_lossy_scenario_records_event_fallback(self):
        scenario = get_scenario("fig5-cosim").derive(loss_rate=0.05)
        result = DesignStudy(scenario).run()
        assert result.artifact("cosim")["kernel_used"] == "event"
