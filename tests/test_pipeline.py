"""Tests for the repro.pipeline scenario API.

Covers the Scenario/StudyResult JSON round trips, the DesignStudy stage
machinery, the registry, and the batch executor's dwell-measurement
memoization (the acceptance criteria of the pipeline redesign).
"""

import json

import pytest

from repro.pipeline import (
    BusSpec,
    DesignStudy,
    DwellCurveCache,
    Scenario,
    StudyResult,
    get_scenario,
    register_scenario,
    run_many,
    scenario_grid,
    scenario_names,
)

#: A small, fast simulation roster for cache/sweep tests.
FAST_SIM = dict(apps=("servo-rig", "throttle-by-wire"), wait_step=16)


class TestScenario:
    def test_json_round_trip(self):
        scenario = Scenario(
            name="rt",
            source="simulation",
            apps=("servo-rig",),
            dwell_shape="conservative-monotonic",
            method="fixed-point",
            allocator="best-fit",
            deadline_scale=1.5,
            wait_step=4,
            bus=BusSpec(static_slots=8),
            cosim=True,
            network="flexray",
            horizon=12.0,
        )
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_rejects_unknown_choices(self):
        with pytest.raises(ValueError, match="source"):
            Scenario(name="x", source="hardware")
        with pytest.raises(ValueError, match="allocator"):
            Scenario(name="x", allocator="random-fit")
        with pytest.raises(ValueError, match="deadline_scale"):
            Scenario(name="x", deadline_scale=0.0)
        with pytest.raises(ValueError, match="wait_step"):
            Scenario(name="x", wait_step=0)

    def test_derive_overrides_and_names(self):
        base = get_scenario("paper-table1")
        derived = base.derive(allocator="best-fit")
        assert derived.allocator == "best-fit"
        assert derived.source == base.source
        assert derived.name != base.name
        assert base.name in derived.name

    def test_bus_spec_config_round_trip(self):
        spec = BusSpec(cycle_length=0.004, static_slots=6)
        assert BusSpec.from_config(spec.to_config()) == spec


class TestRegistry:
    def test_paper_scenarios_registered(self):
        names = scenario_names()
        for expected in ("paper-table1", "sim-table1", "fig3-servo", "fig5-cosim"):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="no-such-scenario"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(get_scenario("paper-table1"))

    def test_default_grid_has_twelve_points(self):
        grid = scenario_grid("paper-table1")
        assert len(grid) == 12
        assert len({s.name for s in grid}) == 12


class TestDesignStudy:
    def test_paper_table1_reproduces_section_v(self):
        study = DesignStudy(get_scenario("paper-table1")).run()
        assert study.ok
        assert study.slot_count == 3
        assert study.artifact("allocate")["slots"] == [
            ["C3", "C6"],
            ["C2", "C4"],
            ["C5", "C1"],
        ]
        assert study.stage("cosim").status == "skipped"

    def test_monotonic_needs_more_slots(self):
        study = DesignStudy(get_scenario("paper-table1-monotonic")).run()
        assert study.slot_count == 5

    def test_accepts_registry_name(self):
        assert DesignStudy("paper-table1-optimal").run().slot_count == 3

    def test_study_result_json_round_trip_lossless(self):
        study = DesignStudy(get_scenario("paper-table1")).run()
        wire = study.to_json()
        restored = StudyResult.from_json(wire)
        assert restored == study
        assert json.loads(restored.to_json()) == json.loads(wire)

    def test_stage_artifacts_are_plain_json(self):
        study = DesignStudy(get_scenario("paper-table1")).run()
        # json.dumps with allow_nan=False would reject inf; the artifacts
        # of a feasible study must be strictly JSON-typed.
        json.dumps(study.to_dict())
        analyze = study.artifact("analyze")
        assert all(row["feasible_alone"] for row in analyze["applications"])

    def test_infeasible_scenario_fails_gracefully(self):
        scenario = get_scenario("paper-table1").derive(deadline_scale=0.05)
        study = DesignStudy(scenario).run()
        assert not study.ok
        assert study.stage("allocate").status == "failed"
        assert "dedicated TT slot" in study.stage("allocate").detail
        assert study.stage("cosim").status == "skipped"
        assert study.slot_count is None
        # failed studies still serialize and round-trip
        assert StudyResult.from_json(study.to_json()) == study

    def test_servo_scenario_characterizes_rig(self):
        study = DesignStudy(
            get_scenario("fig3-servo").derive(wait_step=16), cache=DwellCurveCache()
        ).run()
        assert study.ok
        assert study.slot_count == 1
        curves = study.artifact("characterize")["curves"]
        assert "servo-rig" in curves
        assert len(curves["servo-rig"]["waits"]) >= 2

    def test_simulation_cosim_meets_deadlines(self):
        scenario = get_scenario("fig5-cosim-analytic").derive(**FAST_SIM)
        study = DesignStudy(scenario).run()
        assert study.ok
        cosim = study.artifact("cosim")
        assert cosim["all_deadlines_met"]
        assert len(cosim["applications"]) == len(FAST_SIM["apps"])

    def test_unknown_app_subset_fails_characterize(self):
        scenario = get_scenario("sim-table1").derive(apps=("no-such-plant",))
        study = DesignStudy(scenario, cache=DwellCurveCache()).run()
        assert not study.ok
        assert study.stage("characterize").status == "failed"

    def test_servo_source_validates_app_subset(self):
        scenario = get_scenario("fig3-servo").derive(apps=("typo",))
        study = DesignStudy(scenario, cache=DwellCurveCache()).run()
        assert study.stage("characterize").status == "failed"
        assert "typo" in study.stage("characterize").detail

    def test_raise_for_failure(self):
        good = DesignStudy(get_scenario("paper-table1")).run()
        assert good.raise_for_failure() is good
        bad = DesignStudy(
            get_scenario("paper-table1").derive(deadline_scale=0.05)
        ).run()
        with pytest.raises(ValueError, match="failed at stage 'allocate'"):
            bad.raise_for_failure()


class TestDwellCurveCache:
    def test_measurement_is_memoized(self):
        cache = DwellCurveCache()
        first = cache.measurement("servo-rig", 1000.0, wait_step=16)
        second = cache.measurement("servo-rig", 1000.0, wait_step=16)
        assert first is second
        assert cache.misses == 1 and cache.hits == 1

    def test_distinct_keys_measure_separately(self):
        cache = DwellCurveCache()
        cache.measurement("servo-rig", 1000.0, wait_step=16)
        cache.measurement("servo-rig", 1000.0, wait_step=8)
        assert cache.misses == 2 and cache.hits == 0

    def test_clear_resets_stats(self):
        cache = DwellCurveCache()
        cache.measurement("servo-rig", 1000.0, wait_step=16)
        cache.clear()
        assert cache.hits == 0 and cache.misses == 0 and len(cache) == 0


class TestRunMany:
    def test_grid_sweep_shares_dwell_measurements(self):
        cache = DwellCurveCache()
        base = get_scenario("sim-table1").derive(**FAST_SIM)
        grid = scenario_grid(base, deadline_scales=(1.0, 1.5, 2.0))
        assert len(grid) >= 12
        results = run_many(grid, cache=cache)
        assert len(results) == len(grid)
        assert all(result.ok for result in results)
        # one measurement per (plant, detuning, stride); everything else
        # must come from the cache
        assert cache.misses == len(FAST_SIM["apps"])
        assert cache.hits == (len(grid) - 1) * len(FAST_SIM["apps"])
        # per-study artifacts record their cache economy
        recorded_hits = sum(
            result.artifact("characterize")["cache"]["hits"] for result in results
        )
        assert recorded_hits == cache.hits

    def test_results_in_input_order_and_serializable(self):
        results = run_many(
            ["paper-table1", "paper-table1-monotonic"], max_workers=2
        )
        assert [r.scenario.name for r in results] == [
            "paper-table1",
            "paper-table1-monotonic",
        ]
        assert [r.slot_count for r in results] == [3, 5]
        for result in results:
            assert StudyResult.from_json(result.to_json()) == result

    def test_serial_fallback(self):
        assert run_many([], max_workers=4) == []
        (only,) = run_many(["paper-table1"], max_workers=1)
        assert only.slot_count == 3
