"""Tests for the repro.pipeline scenario API.

Covers the Scenario/StudyResult JSON round trips, the DesignStudy stage
machinery, the registry, and the batch executor's dwell-measurement
memoization (the acceptance criteria of the pipeline redesign).
"""

import json

import pytest

from repro.pipeline import (
    BusSpec,
    DesignStudy,
    DwellCurveCache,
    Scenario,
    StudyResult,
    get_scenario,
    register_scenario,
    run_many,
    scenario_grid,
    scenario_names,
)

#: A small, fast simulation roster for cache/sweep tests.
FAST_SIM = dict(apps=("servo-rig", "throttle-by-wire"), wait_step=16)


class TestScenario:
    def test_json_round_trip(self):
        scenario = Scenario(
            name="rt",
            source="simulation",
            apps=("servo-rig",),
            dwell_shape="conservative-monotonic",
            method="fixed-point",
            allocator="best-fit",
            deadline_scale=1.5,
            wait_step=4,
            bus=BusSpec(static_slots=8),
            cosim=True,
            network="flexray",
            horizon=12.0,
        )
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_rejects_unknown_choices(self):
        with pytest.raises(ValueError, match="source"):
            Scenario(name="x", source="hardware")
        with pytest.raises(ValueError, match="allocator"):
            Scenario(name="x", allocator="random-fit")
        with pytest.raises(ValueError, match="deadline_scale"):
            Scenario(name="x", deadline_scale=0.0)
        with pytest.raises(ValueError, match="wait_step"):
            Scenario(name="x", wait_step=0)

    def test_derive_overrides_and_names(self):
        base = get_scenario("paper-table1")
        derived = base.derive(allocator="best-fit")
        assert derived.allocator == "best-fit"
        assert derived.source == base.source
        assert derived.name != base.name
        assert base.name in derived.name

    def test_bus_spec_config_round_trip(self):
        spec = BusSpec(cycle_length=0.004, static_slots=6)
        assert BusSpec.from_config(spec.to_config()) == spec


class TestRegistry:
    def test_paper_scenarios_registered(self):
        names = scenario_names()
        for expected in ("paper-table1", "sim-table1", "fig3-servo", "fig5-cosim"):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="no-such-scenario"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(get_scenario("paper-table1"))

    def test_default_grid_has_twelve_points(self):
        grid = scenario_grid("paper-table1")
        assert len(grid) == 12
        assert len({s.name for s in grid}) == 12


class TestDesignStudy:
    def test_paper_table1_reproduces_section_v(self):
        study = DesignStudy(get_scenario("paper-table1")).run()
        assert study.ok
        assert study.slot_count == 3
        assert study.artifact("allocate")["slots"] == [
            ["C3", "C6"],
            ["C2", "C4"],
            ["C5", "C1"],
        ]
        assert study.stage("cosim").status == "skipped"

    def test_monotonic_needs_more_slots(self):
        study = DesignStudy(get_scenario("paper-table1-monotonic")).run()
        assert study.slot_count == 5

    def test_accepts_registry_name(self):
        assert DesignStudy("paper-table1-optimal").run().slot_count == 3

    def test_study_result_json_round_trip_lossless(self):
        study = DesignStudy(get_scenario("paper-table1")).run()
        wire = study.to_json()
        restored = StudyResult.from_json(wire)
        assert restored == study
        assert json.loads(restored.to_json()) == json.loads(wire)

    def test_stage_artifacts_are_plain_json(self):
        study = DesignStudy(get_scenario("paper-table1")).run()
        # json.dumps with allow_nan=False would reject inf; the artifacts
        # of a feasible study must be strictly JSON-typed.
        json.dumps(study.to_dict())
        analyze = study.artifact("analyze")
        assert all(row["feasible_alone"] for row in analyze["applications"])

    def test_infeasible_scenario_fails_gracefully(self):
        scenario = get_scenario("paper-table1").derive(deadline_scale=0.05)
        study = DesignStudy(scenario).run()
        assert not study.ok
        assert study.stage("allocate").status == "failed"
        assert "dedicated TT slot" in study.stage("allocate").detail
        assert study.stage("cosim").status == "skipped"
        assert study.slot_count is None
        # failed studies still serialize and round-trip
        assert StudyResult.from_json(study.to_json()) == study

    def test_servo_scenario_characterizes_rig(self):
        study = DesignStudy(
            get_scenario("fig3-servo").derive(wait_step=16), cache=DwellCurveCache()
        ).run()
        assert study.ok
        assert study.slot_count == 1
        curves = study.artifact("characterize")["curves"]
        assert "servo-rig" in curves
        assert len(curves["servo-rig"]["waits"]) >= 2

    def test_simulation_cosim_meets_deadlines(self):
        scenario = get_scenario("fig5-cosim-analytic").derive(**FAST_SIM)
        study = DesignStudy(scenario).run()
        assert study.ok
        cosim = study.artifact("cosim")
        assert cosim["all_deadlines_met"]
        assert len(cosim["applications"]) == len(FAST_SIM["apps"])

    def test_unknown_app_subset_fails_characterize(self):
        scenario = get_scenario("sim-table1").derive(apps=("no-such-plant",))
        study = DesignStudy(scenario, cache=DwellCurveCache()).run()
        assert not study.ok
        assert study.stage("characterize").status == "failed"

    def test_servo_source_validates_app_subset(self):
        scenario = get_scenario("fig3-servo").derive(apps=("typo",))
        study = DesignStudy(scenario, cache=DwellCurveCache()).run()
        assert study.stage("characterize").status == "failed"
        assert "typo" in study.stage("characterize").detail

    def test_raise_for_failure(self):
        good = DesignStudy(get_scenario("paper-table1")).run()
        assert good.raise_for_failure() is good
        bad = DesignStudy(
            get_scenario("paper-table1").derive(deadline_scale=0.05)
        ).run()
        with pytest.raises(ValueError, match="failed at stage 'allocate'"):
            bad.raise_for_failure()


class TestDwellCurveCache:
    def test_measurement_is_memoized(self):
        cache = DwellCurveCache()
        first = cache.measurement("servo-rig", 1000.0, wait_step=16)
        second = cache.measurement("servo-rig", 1000.0, wait_step=16)
        assert first is second
        assert cache.misses == 1 and cache.hits == 1

    def test_distinct_keys_measure_separately(self):
        cache = DwellCurveCache()
        cache.measurement("servo-rig", 1000.0, wait_step=16)
        cache.measurement("servo-rig", 1000.0, wait_step=8)
        assert cache.misses == 2 and cache.hits == 0

    def test_clear_resets_stats(self):
        cache = DwellCurveCache()
        cache.measurement("servo-rig", 1000.0, wait_step=16)
        cache.clear()
        assert cache.hits == 0 and cache.misses == 0 and len(cache) == 0


class TestRunMany:
    def test_grid_sweep_shares_dwell_measurements(self):
        cache = DwellCurveCache()
        base = get_scenario("sim-table1").derive(**FAST_SIM)
        grid = scenario_grid(base, deadline_scales=(1.0, 1.5, 2.0))
        assert len(grid) >= 12
        results = run_many(grid, cache=cache)
        assert len(results) == len(grid)
        assert all(result.ok for result in results)
        # one measurement per (plant, detuning, stride); everything else
        # must come from the cache
        assert cache.misses == len(FAST_SIM["apps"])
        assert cache.hits == (len(grid) - 1) * len(FAST_SIM["apps"])
        # per-study artifacts record their cache economy
        recorded_hits = sum(
            result.artifact("characterize")["cache"]["hits"] for result in results
        )
        assert recorded_hits == cache.hits

    def test_results_in_input_order_and_serializable(self):
        results = run_many(
            ["paper-table1", "paper-table1-monotonic"], max_workers=2
        )
        assert [r.scenario.name for r in results] == [
            "paper-table1",
            "paper-table1-monotonic",
        ]
        assert [r.slot_count for r in results] == [3, 5]
        for result in results:
            assert StudyResult.from_json(result.to_json()) == result

    def test_serial_fallback(self):
        assert run_many([], max_workers=4) == []
        (only,) = run_many(["paper-table1"], max_workers=1)
        assert only.slot_count == 3


class TestScenarioCoSimFields:
    """The seed/kernel/disturbance/loss knobs added with the event kernel."""

    def test_new_fields_round_trip(self):
        scenario = Scenario(
            name="knobs",
            source="multirate",
            cosim=True,
            network="flexray",
            kernel="legacy",
            disturbance="sporadic",
            seed=42,
            loss_rate=0.25,
        )
        clone = Scenario.from_json(scenario.to_json())
        assert clone == scenario
        assert clone.seed == 42 and clone.loss_rate == 0.25

    def test_old_documents_still_load(self):
        """Scenario JSON written before the kernel refactor deserializes
        with the new fields at their defaults."""
        legacy_doc = {
            "name": "old", "description": "", "source": "paper", "apps": None,
            "dwell_shape": "non-monotonic", "method": "closed-form",
            "allocator": "first-fit", "deadline_scale": 1.0, "wait_step": 2,
            "bus": None, "cosim": False, "network": "analytic", "horizon": None,
        }
        scenario = Scenario.from_dict(legacy_doc)
        assert scenario.kernel == "auto"
        assert scenario.disturbance == "one-shot"
        assert scenario.seed == 0 and scenario.loss_rate == 0.0

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            Scenario(name="x", kernel="quantum")
        with pytest.raises(ValueError, match="disturbance"):
            Scenario(name="x", disturbance="tsunami")
        with pytest.raises(ValueError, match="loss_rate"):
            Scenario(name="x", loss_rate=1.5)
        with pytest.raises(ValueError, match="seed"):
            Scenario(name="x", seed=0.5)


class TestMultiRateStudy:
    """Acceptance: a >=2-period scenario runs end-to-end via DesignStudy."""

    def test_multirate_scenario_produces_valid_trace(self):
        study = DesignStudy(
            get_scenario("multirate-cosim-analytic").derive(
                wait_step=4, horizon=3.0
            ),
            cache=DwellCurveCache(),
        ).run()
        assert study.ok
        trace = study.attachments.trace
        periods = {
            name: app.times[1] - app.times[0]
            for name, app in trace.apps.items()
        }
        assert len({round(p, 9) for p in periods.values()}) >= 2
        assert periods["motor-current-loop"] == pytest.approx(0.002)
        artifact = study.artifact("cosim")
        assert artifact["kernel"] == "auto"
        # Multi-rate analytic fleets are eligible for the batch fast path.
        assert artifact["kernel_used"] == "batch"
        assert artifact["all_deadlines_met"] is True
        assert artifact["qoc"] > 0

    def test_multirate_with_legacy_kernel_fails_cleanly(self):
        study = DesignStudy(
            get_scenario("multirate-cosim-analytic").derive(
                wait_step=4, horizon=3.0, kernel="legacy"
            ),
            cache=DwellCurveCache(),
        ).run()
        assert not study.ok
        assert study.stage("cosim").status == "failed"
        assert "shared sampling period" in study.stage("cosim").detail

    def test_seed_reaches_loss_injection(self):
        base = get_scenario("fig5-cosim").derive(
            apps=("servo-rig", "throttle-by-wire"),
            wait_step=16,
            horizon=10.0,
            loss_rate=0.4,
        )
        cache = DwellCurveCache()
        first = DesignStudy(base.derive(seed=1), cache=cache).run()
        again = DesignStudy(base.derive(seed=1), cache=cache).run()
        other = DesignStudy(base.derive(seed=2), cache=cache).run()
        lost = lambda s: s.artifact("cosim")["loss"]["lost"]  # noqa: E731
        assert lost(first) == lost(again)  # reproducible
        assert lost(first) > 0
        qoc = lambda s: s.artifact("cosim")["qoc"]  # noqa: E731
        assert qoc(first) == qoc(again)
        assert qoc(first) != qoc(other)  # the seed genuinely matters


class TestDwellCacheExportMerge:
    def test_export_then_merge_transfers_measurements(self):
        source = DwellCurveCache()
        source.measurement("servo-rig", 1000.0, wait_step=16)
        exported = source.export_entries()
        assert len(exported) == 1
        target = DwellCurveCache()
        assert target.merge_entries(exported) == 1
        # the merged entry serves lookups without re-measuring
        target.measurement("servo-rig", 1000.0, wait_step=16)
        assert target.hits == 1 and target.misses == 0

    def test_exclude_filters_already_shipped_keys(self):
        cache = DwellCurveCache()
        cache.measurement("servo-rig", 1000.0, wait_step=16)
        shipped = set(cache.export_entries())
        cache.measurement("throttle-by-wire", 800.0, wait_step=16)
        fresh = cache.export_entries(exclude=shipped)
        assert len(fresh) == 1
        (key,) = fresh
        assert "throttle-by-wire" in key

    def test_merge_never_overwrites(self):
        cache = DwellCurveCache()
        first = cache.measurement("servo-rig", 1000.0, wait_step=16)
        again = DwellCurveCache()
        again.measurement("servo-rig", 1000.0, wait_step=16)
        assert cache.merge_entries(again.export_entries()) == 0
        assert cache.measurement("servo-rig", 1000.0, wait_step=16) is first
