"""Property-based tests for the PWL dwell models (hypothesis).

These pin the safety-critical invariants of Section III: fitted models
must dominate the measurement for *every* curve shape, not just the ones
we happened to measure.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pwl import (
    DwellCurve,
    fit_concave_envelope,
    fit_conservative_monotonic,
    fit_two_segment,
    two_segment,
)


@st.composite
def dwell_curves(draw):
    """Arbitrary measured dwell curves: non-negative dwell samples over a
    strictly increasing wait grid starting at 0, ending near zero dwell."""
    n = draw(st.integers(min_value=4, max_value=40))
    period = draw(st.floats(min_value=0.005, max_value=0.1))
    dwells = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    # Anchor: zero-wait dwell must be positive (a pure-TT response exists).
    dwells[0] = draw(st.floats(min_value=0.05, max_value=10.0))
    dwells[-1] = 0.0
    waits = np.arange(n) * period
    xi_et = float(waits[-1]) + period
    return DwellCurve(waits=waits, dwells=np.asarray(dwells), xi_et=xi_et)


class TestFitDomination:
    @given(curve=dwell_curves())
    @settings(max_examples=150, deadline=None)
    def test_two_segment_fit_always_dominates(self, curve):
        model = fit_two_segment(curve)
        assert model.max_violation(curve) <= 1e-9

    @given(curve=dwell_curves())
    @settings(max_examples=150, deadline=None)
    def test_conservative_monotonic_fit_always_dominates(self, curve):
        model = fit_conservative_monotonic(curve)
        assert model.max_violation(curve) <= 1e-9

    @given(curve=dwell_curves())
    @settings(max_examples=150, deadline=None)
    def test_concave_envelope_always_dominates(self, curve):
        model = fit_concave_envelope(curve)
        assert model.max_violation(curve) <= 1e-9

    @given(curve=dwell_curves())
    @settings(max_examples=100, deadline=None)
    def test_envelope_never_looser_than_monotonic(self, curve):
        envelope = fit_concave_envelope(curve)
        mono = fit_conservative_monotonic(curve)
        grid = np.linspace(0.0, float(curve.waits[-1]), 31)
        assert all(envelope.dwell(w) <= mono.dwell(w) + 1e-6 for w in grid)


class TestModelEvaluation:
    @given(
        xi_tt=st.floats(min_value=0.01, max_value=5.0),
        k_p_frac=st.floats(min_value=0.05, max_value=0.9),
        peak_scale=st.floats(min_value=1.0, max_value=3.0),
        xi_et=st.floats(min_value=0.5, max_value=50.0),
        wait=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_dwell_never_negative_and_bounded(
        self, xi_tt, k_p_frac, peak_scale, xi_et, wait
    ):
        model = two_segment(
            xi_tt=xi_tt,
            k_p=k_p_frac * xi_et,
            xi_m=peak_scale * xi_tt,
            xi_et=xi_et,
        )
        dwell = model.dwell(wait)
        assert 0.0 <= dwell <= model.max_dwell + 1e-12

    @given(
        xi_tt=st.floats(min_value=0.01, max_value=5.0),
        k_p_frac=st.floats(min_value=0.05, max_value=0.9),
        peak_scale=st.floats(min_value=1.0, max_value=3.0),
        xi_et=st.floats(min_value=0.5, max_value=50.0),
        max_wait=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_worst_response_is_supremum(
        self, xi_tt, k_p_frac, peak_scale, xi_et, max_wait
    ):
        model = two_segment(
            xi_tt=xi_tt,
            k_p=k_p_frac * xi_et,
            xi_m=peak_scale * xi_tt,
            xi_et=xi_et,
        )
        worst = model.worst_response_time(max_wait)
        grid = np.linspace(0.0, max_wait, 51)
        empirical = max(w + model.dwell(w) for w in grid)
        assert worst >= empirical - 1e-9

    @given(
        xi_tt=st.floats(min_value=0.01, max_value=5.0),
        xi_et=st.floats(min_value=6.0, max_value=50.0),
        w1=st.floats(min_value=0.0, max_value=60.0),
        w2=st.floats(min_value=0.0, max_value=60.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_worst_response_monotone_in_wait(self, xi_tt, xi_et, w1, w2):
        model = two_segment(xi_tt=xi_tt, k_p=1.0, xi_m=2 * xi_tt, xi_et=xi_et)
        lo, hi = sorted((w1, w2))
        assert model.worst_response_time(lo) <= model.worst_response_time(hi) + 1e-9
