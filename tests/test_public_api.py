"""Public-API contract tests.

Guards the package surface a downstream user depends on: everything in
``__all__`` resolves, the README quickstart works verbatim, and the
subpackage exports stay importable.
"""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize(
        "module",
        [
            "repro.utils",
            "repro.control",
            "repro.flexray",
            "repro.testbed",
            "repro.core",
            "repro.sim",
            "repro.baselines",
            "repro.solvers",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name!r}"


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        from repro import PAPER_TABLE_I, first_fit_allocation, make_analyzed

        apps = make_analyzed(PAPER_TABLE_I, "non-monotonic")
        assert first_fit_allocation(apps).slot_names == [
            ["C3", "C6"],
            ["C2", "C4"],
            ["C5", "C1"],
        ]

        mono = make_analyzed(PAPER_TABLE_I, "conservative-monotonic")
        assert first_fit_allocation(mono).slot_count == 5
