"""Unit tests for repro.control.dare."""

import numpy as np
import pytest

from repro.control.dare import (
    RiccatiError,
    dare_residual,
    dlqr,
    solve_dare,
    solve_dare_iterative,
)
from repro.utils.linalg import is_schur_stable


def example_system():
    a = np.array([[1.1, 0.1], [0.0, 0.9]])
    b = np.array([[0.0], [1.0]])
    q = np.diag([1.0, 0.5])
    r = np.array([[0.2]])
    return a, b, q, r


class TestSolveDare:
    def test_residual_is_small(self):
        a, b, q, r = example_system()
        p = solve_dare(a, b, q, r)
        assert dare_residual(a, b, q, r, p) < 1e-8

    def test_solution_is_symmetric_psd(self):
        a, b, q, r = example_system()
        p = solve_dare(a, b, q, r)
        np.testing.assert_allclose(p, p.T, atol=1e-10)
        assert np.min(np.linalg.eigvalsh(p)) >= -1e-10

    def test_iterative_matches_scipy(self):
        a, b, q, r = example_system()
        p_scipy = solve_dare(a, b, q, r)
        p_iter = solve_dare_iterative(a, b, q, r)
        np.testing.assert_allclose(p_iter, p_scipy, rtol=1e-6, atol=1e-8)

    def test_scalar_system_closed_form(self):
        # For x[k+1] = a x + b u with q, r, the DARE reduces to a quadratic
        # in p; verify against its positive root.
        a, b, q, r = 0.5, 1.0, 1.0, 1.0
        p = solve_dare([[a]], [[b]], [[q]], [[r]])[0, 0]
        # p = a^2 p - a^2 p^2 b^2/(r + b^2 p) + q
        residual = a * a * p - (a * a * p * p * b * b) / (r + b * b * p) + q - p
        assert abs(residual) < 1e-10

    def test_rejects_indefinite_r(self):
        a, b, q, _ = example_system()
        with pytest.raises(ValueError, match="positive definite"):
            solve_dare(a, b, q, np.array([[0.0]]))

    def test_rejects_indefinite_q(self):
        a, b, _, r = example_system()
        with pytest.raises(ValueError, match="semi-definite"):
            solve_dare(a, b, -np.eye(2), r)

    def test_rejects_wrong_q_dimension(self):
        a, b, _, r = example_system()
        with pytest.raises(ValueError, match="state dimension"):
            solve_dare(a, b, np.eye(3), r)


class TestDlqr:
    def test_closed_loop_is_stable(self):
        a, b, q, r = example_system()
        result = dlqr(a, b, q, r)
        assert result.is_stabilizing()
        assert is_schur_stable(result.closed_loop)

    def test_gain_consistent_with_cost_matrix(self):
        a, b, q, r = example_system()
        result = dlqr(a, b, q, r)
        btp = b.T @ result.cost_matrix
        expected = np.linalg.solve(r + btp @ b, btp @ a)
        np.testing.assert_allclose(result.gain, expected, atol=1e-10)

    def test_iterative_solver_option(self):
        a, b, q, r = example_system()
        auto = dlqr(a, b, q, r, solver="auto")
        iterative = dlqr(a, b, q, r, solver="iterative")
        np.testing.assert_allclose(auto.gain, iterative.gain, rtol=1e-5, atol=1e-8)

    def test_unknown_solver_rejected(self):
        a, b, q, r = example_system()
        with pytest.raises(ValueError, match="unknown solver"):
            dlqr(a, b, q, r, solver="magic")

    def test_cheaper_control_gives_smaller_gain(self):
        a, b, q, r = example_system()
        aggressive = dlqr(a, b, q, r)
        timid = dlqr(a, b, q, 100 * np.asarray(r))
        assert np.linalg.norm(timid.gain) < np.linalg.norm(aggressive.gain)

    def test_uncontrollable_unstable_system_fails(self):
        # Unstable mode not reachable from the input: no stabilising LQR.
        a = np.diag([1.5, 0.5])
        b = np.array([[0.0], [1.0]])
        with pytest.raises((RiccatiError, np.linalg.LinAlgError, ValueError)):
            dlqr(a, b, np.eye(2), np.eye(1))
