"""Tests for the critical-instant simulation (cross-check of Eq. 5)."""

import pytest
from hypothesis import assume, given, settings

from repro.core.critical_instant import (
    simulate_critical_instant,
    wait_time_matches_fixed_point,
)
from repro.core.schedulability import (
    AnalyzedApplication,
    interference_utilization,
    max_wait_closed_form,
    max_wait_fixed_point,
    max_wait_lower_bound,
)
from repro.core.timing_params import PAPER_TABLE_I
from tests.test_property_schedulability import slot_configurations


def paper_app(name):
    return AnalyzedApplication.from_params(
        next(p for p in PAPER_TABLE_I if p.name == name)
    )


class TestPaperScenarios:
    def test_c6_waits_one_c3_dwell(self):
        """C6 joining C3: the critical instant is one C3 dwell (0.64 s);
        the paper's closed form (0.669 s) upper-bounds it."""
        result = simulate_critical_instant(
            paper_app("C6"), higher_priority=[paper_app("C3")], lower_priority=[]
        )
        assert result.wait_time == pytest.approx(0.64)
        assert result.wait_time <= 0.669
        assert [name for *_ , name in result.busy_intervals] == ["C3"]

    def test_c3_blocked_by_c6(self):
        """C3 re-checked with C6 below it: pure blocking, 0.92 s."""
        result = simulate_critical_instant(
            paper_app("C3"), higher_priority=[], lower_priority=[paper_app("C6")]
        )
        assert result.wait_time == pytest.approx(0.92)
        assert result.busy_intervals[0][2] == "C6"

    def test_no_sharers_no_wait(self):
        result = simulate_critical_instant(
            paper_app("C1"), higher_priority=[], lower_priority=[]
        )
        assert result.wait_time == 0.0
        assert result.busy_intervals == []

    def test_matches_fixed_point_on_paper_set(self):
        by_name = {p.name: AnalyzedApplication.from_params(p) for p in PAPER_TABLE_I}
        # C5 in the busiest configuration: blocked by C1, interfered by the rest.
        subject = by_name["C5"]
        higher = [by_name[n] for n in ("C3", "C6", "C2", "C4")]
        lower = [by_name["C1"]]
        assert wait_time_matches_fixed_point(subject, higher, lower)

    def test_busy_intervals_are_contiguous_from_zero(self):
        by_name = {p.name: AnalyzedApplication.from_params(p) for p in PAPER_TABLE_I}
        result = simulate_critical_instant(
            by_name["C5"],
            higher_priority=[by_name["C3"], by_name["C6"]],
            lower_priority=[by_name["C1"]],
        )
        expected_start = 0.0
        for start, end, _name in result.busy_intervals:
            assert start == pytest.approx(expected_start)
            assert end > start
            expected_start = end
        assert result.wait_time == pytest.approx(expected_start)


class TestSimulationAgainstAnalysis:
    @given(config=slot_configurations())
    @settings(max_examples=150, deadline=None)
    def test_simulation_equals_fixed_point(self, config):
        """The analytical fixed point is exactly the simulated wait."""
        lower, higher = config
        assume(interference_utilization(higher) < 0.9)
        subject = AnalyzedApplication.from_params(PAPER_TABLE_I[0])
        simulated = simulate_critical_instant(subject, higher, lower).wait_time
        analytical = max_wait_fixed_point(lower, higher)
        assert simulated == pytest.approx(analytical, rel=1e-9, abs=1e-9)

    @given(config=slot_configurations())
    @settings(max_examples=100, deadline=None)
    def test_simulation_within_closed_form_bounds(self, config):
        lower, higher = config
        assume(interference_utilization(higher) < 0.9)
        subject = AnalyzedApplication.from_params(PAPER_TABLE_I[0])
        simulated = simulate_critical_instant(subject, higher, lower).wait_time
        assert simulated <= max_wait_closed_form(lower, higher) + 1e-9
        assert simulated >= max_wait_lower_bound(lower, higher) - 1e-9
