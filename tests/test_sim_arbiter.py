"""Unit tests for the TT-slot arbiter."""

import pytest

from repro.sim.arbiter import SlotClient, TTSlotArbiter


@pytest.fixture()
def arbiter():
    arb = TTSlotArbiter()
    arb.register(SlotClient(name="A", deadline=2.0), slot=0)
    arb.register(SlotClient(name="B", deadline=6.0), slot=0)
    arb.register(SlotClient(name="C", deadline=4.0), slot=0)
    arb.register(SlotClient(name="D", deadline=1.0), slot=1)
    return arb


class TestRegistration:
    def test_duplicate_name_rejected(self, arbiter):
        with pytest.raises(ValueError, match="already registered"):
            arbiter.register(SlotClient(name="A", deadline=9.0), slot=1)

    def test_slot_lookup(self, arbiter):
        assert arbiter.slot_of("A") == 0
        assert arbiter.slot_of("D") == 1
        with pytest.raises(KeyError):
            arbiter.slot_of("Z")


class TestGrantSemantics:
    def test_free_slot_granted_immediately(self, arbiter):
        assert arbiter.request("A") is True
        assert arbiter.holds("A")
        assert arbiter.holder_of_slot(0) == "A"

    def test_busy_slot_queues_request(self, arbiter):
        arbiter.request("B")
        assert arbiter.request("A") is False
        assert not arbiter.holds("A")

    def test_no_preemption(self, arbiter):
        """A lower-priority holder keeps the slot against a higher-priority
        requester (the paper's non-preemption rule)."""
        arbiter.request("B")  # deadline 6 (lowest priority)
        arbiter.request("A")  # deadline 2 (highest)
        arbiter.grant_pending()
        assert arbiter.holds("B")
        assert not arbiter.holds("A")

    def test_release_then_priority_grant(self, arbiter):
        arbiter.request("B")
        arbiter.request("C")
        arbiter.request("A")
        arbiter.release("B")
        granted = arbiter.grant_pending()
        # A (deadline 2) beats C (deadline 4).
        assert granted == ["A"]
        assert arbiter.holds("A")

    def test_release_is_not_instant_handover(self, arbiter):
        arbiter.request("B")
        arbiter.request("A")
        arbiter.release("B")
        # Before grant_pending the slot sits free.
        assert arbiter.holder_of_slot(0) is None

    def test_release_by_non_holder_is_noop(self, arbiter):
        arbiter.request("B")
        arbiter.release("A")
        assert arbiter.holds("B")

    def test_request_while_holding_is_true(self, arbiter):
        arbiter.request("A")
        assert arbiter.request("A") is True

    def test_duplicate_queued_request_collapsed(self, arbiter):
        arbiter.request("B")
        arbiter.request("A")
        arbiter.request("A")
        state = arbiter.slots[0]
        assert state.pending().count("A") == 1

    def test_withdraw(self, arbiter):
        arbiter.request("B")
        arbiter.request("A")
        arbiter.withdraw("A")
        arbiter.release("B")
        assert arbiter.grant_pending() == []

    def test_slots_are_independent(self, arbiter):
        arbiter.request("A")
        assert arbiter.request("D") is True
        assert arbiter.holds("A") and arbiter.holds("D")

    def test_deadline_tie_broken_by_name(self):
        arb = TTSlotArbiter()
        arb.register(SlotClient(name="B", deadline=5.0), slot=0)
        arb.register(SlotClient(name="A", deadline=5.0), slot=0)
        arb.register(SlotClient(name="Z", deadline=9.0), slot=0)
        arb.request("Z")
        arb.request("B")
        arb.request("A")
        arb.release("Z")
        assert arb.grant_pending() == ["A"]
