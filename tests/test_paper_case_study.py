"""Integration test: exact reproduction of the paper's Section V numbers.

Every assertion in this file corresponds to a number printed in the
paper.  The analysis uses the closed-form wait-time bound (Eq. 20) and
the two-segment PWL dwell model, exactly as Section V does.
"""

import pytest

from repro.core.allocation import (
    compare_resource_usage,
    first_fit_allocation,
    make_analyzed,
)
from repro.core.schedulability import analyze_application
from repro.core.timing_params import PAPER_TABLE_I, paper_application, priority_order


@pytest.fixture(scope="module")
def non_monotonic():
    apps = make_analyzed(PAPER_TABLE_I, "non-monotonic")
    return {app.name: app for app in apps}


@pytest.fixture(scope="module")
def monotonic():
    apps = make_analyzed(PAPER_TABLE_I, "conservative-monotonic")
    return {app.name: app for app in apps}


class TestTableI:
    def test_six_applications(self):
        assert len(PAPER_TABLE_I) == 6

    def test_spot_values(self):
        c3 = paper_application("C3")
        assert c3.min_inter_arrival == 15.0
        assert c3.deadline == 2.0
        assert c3.xi_tt == 0.39
        assert c3.xi_et == 3.97
        assert c3.xi_m == 0.64
        assert c3.k_p == 0.69
        assert c3.xi_m_mono == 0.77

    def test_priority_order_by_deadline(self):
        order = [app.name for app in priority_order(PAPER_TABLE_I)]
        assert order == ["C3", "C6", "C2", "C4", "C5", "C1"]


class TestSectionVStepByStep:
    def test_c3_alone_on_s1(self, non_monotonic):
        """xi_hat_3 = xi_TT_3 = 0.39 < 2."""
        result = analyze_application(non_monotonic["C3"], [])
        assert result.max_wait == 0.0
        assert result.worst_response == pytest.approx(0.39, abs=1e-9)
        assert result.schedulable

    def test_c6_joining_c3(self, non_monotonic):
        """k_hat_wait,6 = 0.669, xi_hat_6 = 1.589 < 6."""
        result = analyze_application(non_monotonic["C6"], [non_monotonic["C3"]])
        assert result.max_wait == pytest.approx(0.669, abs=5e-4)
        assert result.worst_response == pytest.approx(1.589, abs=2e-3)
        assert result.schedulable

    def test_c3_rechecked_with_c6(self, non_monotonic):
        """k_hat_wait,3 = xi_M_6 = 0.92, xi_hat_3 = 1.515 < 2."""
        result = analyze_application(non_monotonic["C3"], [non_monotonic["C6"]])
        assert result.max_wait == pytest.approx(0.92, abs=1e-9)
        assert result.worst_response == pytest.approx(1.515, abs=1e-3)
        assert result.schedulable

    def test_c2_breaks_c3_on_s1(self, non_monotonic):
        """Adding C2 to {C3, C6} makes C3 miss its deadline."""
        result = analyze_application(
            non_monotonic["C3"], [non_monotonic["C6"], non_monotonic["C2"]]
        )
        assert not result.schedulable

    def test_c2_c4_share_s2(self, non_monotonic):
        c2, c4 = non_monotonic["C2"], non_monotonic["C4"]
        assert analyze_application(c2, [c4]).schedulable
        assert analyze_application(c4, [c2]).schedulable

    def test_c5_c1_share_s3(self, non_monotonic):
        c5, c1 = non_monotonic["C5"], non_monotonic["C1"]
        assert analyze_application(c5, [c1]).schedulable
        assert analyze_application(c1, [c5]).schedulable


class TestAllocationOutcome:
    def test_non_monotonic_needs_three_slots(self, non_monotonic):
        result = first_fit_allocation(list(non_monotonic.values()))
        assert result.slot_count == 3
        assert result.slot_names == [["C3", "C6"], ["C2", "C4"], ["C5", "C1"]]

    def test_monotonic_needs_five_slots(self, monotonic):
        result = first_fit_allocation(list(monotonic.values()))
        assert result.slot_count == 5
        assert result.slot_names == [["C3", "C6"], ["C2"], ["C4"], ["C5"], ["C1"]]

    def test_monotonic_c2_with_c4_misses(self, monotonic):
        """k_hat'_wait,2 = xi'_M4 = 4.94, xi_hat'_2 = 6.426 > 6.25."""
        result = analyze_application(monotonic["C2"], [monotonic["C4"]])
        assert result.max_wait == pytest.approx(4.94, abs=1e-9)
        assert result.worst_response == pytest.approx(6.426, abs=2e-3)
        assert not result.schedulable

    def test_sixty_seven_percent_gap(self, non_monotonic, monotonic):
        nm = first_fit_allocation(list(non_monotonic.values()))
        mono = first_fit_allocation(list(monotonic.values()))
        assert compare_resource_usage(nm, mono) == pytest.approx(2.0 / 3.0)
