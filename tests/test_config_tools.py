"""Tests for FlexRay bus-configuration planning."""

import pytest

from repro.core.allocation import first_fit_allocation, make_analyzed
from repro.core.timing_params import PAPER_TABLE_I
from repro.flexray.config_tools import (
    BusConfigurationError,
    plan_bus_configuration,
)
from repro.flexray.params import FlexRayConfig, paper_bus_config


@pytest.fixture(scope="module")
def paper_groups():
    allocation = first_fit_allocation(make_analyzed(PAPER_TABLE_I, "non-monotonic"))
    return allocation.slot_names


class TestPlanBusConfiguration:
    def test_paper_allocation_fits_paper_bus(self, paper_groups):
        plan = plan_bus_configuration(paper_groups, paper_bus_config())
        assert plan.reserved_slots == [0, 1, 2]
        assert plan.static_utilization() == pytest.approx(0.3)

    def test_frame_ids_follow_priority(self, paper_groups):
        plan = plan_bus_configuration(paper_groups, paper_bus_config())
        # C3 is the highest-priority application: lowest frame ID.
        assert plan.frame_of("C3").frame_id == 1
        ordered = [app.frame.frame_id for app in plan.applications]
        assert ordered == sorted(ordered)

    def test_groups_share_slots(self, paper_groups):
        plan = plan_bus_configuration(paper_groups, paper_bus_config())
        assert plan.slot_of("C3") == plan.slot_of("C6")
        assert plan.slot_of("C2") == plan.slot_of("C4")
        assert plan.slot_of("C3") != plan.slot_of("C2")

    def test_et_worst_delays_reported(self, paper_groups):
        plan = plan_bus_configuration(paper_groups, paper_bus_config())
        for app in plan.applications:
            assert 0.0 < app.et_worst_delay < 0.020

    def test_et_delay_cap_enforced(self, paper_groups):
        with pytest.raises(BusConfigurationError, match="exceeds the design"):
            plan_bus_configuration(
                paper_groups, paper_bus_config(), max_et_delay=1e-4
            )

    def test_too_many_groups_rejected(self):
        bus = FlexRayConfig(
            cycle_length=0.005, static_slots=2, static_slot_length=0.0002
        )
        groups = [["A"], ["B"], ["C"]]
        with pytest.raises(BusConfigurationError, match="static slots"):
            plan_bus_configuration(groups, bus)

    def test_duplicate_names_rejected(self):
        with pytest.raises(BusConfigurationError, match="duplicate"):
            plan_bus_configuration([["A"], ["A"]], paper_bus_config())

    def test_summary_renders(self, paper_groups):
        plan = plan_bus_configuration(paper_groups, paper_bus_config())
        text = plan.summary()
        assert "3/10 static slots" in text
        assert "C3" in text

    def test_unknown_lookup_raises(self, paper_groups):
        plan = plan_bus_configuration(paper_groups, paper_bus_config())
        with pytest.raises(KeyError):
            plan.frame_of("C99")
