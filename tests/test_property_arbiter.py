"""Stateful property test of the TT-slot arbiter (hypothesis).

Drives the arbiter through random request/release/grant sequences and
checks the structural invariants after every step:

* at most one holder per slot;
* the holder is never simultaneously queued as a requester;
* non-preemption: a holder only changes after an explicit release;
* grants always pick the highest-priority (earliest-deadline) requester.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.sim.arbiter import SlotClient, TTSlotArbiter

CLIENTS = [("A", 1.0), ("B", 2.0), ("C", 3.0), ("D", 4.0), ("E", 5.0)]
SLOTS = [0, 1]


class ArbiterMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.arbiter = TTSlotArbiter()
        self.slot_of = {}
        for index, (name, deadline) in enumerate(CLIENTS):
            slot = SLOTS[index % len(SLOTS)]
            self.arbiter.register(SlotClient(name=name, deadline=deadline), slot)
            self.slot_of[name] = slot
        self.holders = {slot: None for slot in SLOTS}

    @rule(index=st.integers(min_value=0, max_value=len(CLIENTS) - 1))
    def request(self, index):
        name = CLIENTS[index][0]
        granted = self.arbiter.request(name)
        slot = self.slot_of[name]
        if granted:
            assert self.holders[slot] in (None, name)
            self.holders[slot] = name
        else:
            assert self.holders[slot] is not None
            assert self.holders[slot] != name

    @rule(index=st.integers(min_value=0, max_value=len(CLIENTS) - 1))
    def release(self, index):
        name = CLIENTS[index][0]
        slot = self.slot_of[name]
        was_holder = self.holders[slot] == name
        self.arbiter.release(name)
        if was_holder:
            self.holders[slot] = None
        # Releasing when not holding must change nothing.
        assert self.arbiter.holder_of_slot(slot) == self.holders[slot]

    @rule(index=st.integers(min_value=0, max_value=len(CLIENTS) - 1))
    def withdraw(self, index):
        name = CLIENTS[index][0]
        self.arbiter.withdraw(name)
        state = self.arbiter.slots[self.slot_of[name]]
        assert all(c.name != name for c in state.requesters)

    @rule()
    def grant_pending(self):
        # Snapshot the best-priority requester per free slot beforehand.
        expectations = {}
        for slot in SLOTS:
            state = self.arbiter.slots.get(slot)
            if state is None or state.holder is not None or not state.requesters:
                continue
            best = min(state.requesters, key=lambda c: c.priority_key)
            expectations[slot] = best.name
        granted = self.arbiter.grant_pending()
        for slot, expected in expectations.items():
            assert self.arbiter.holder_of_slot(slot) == expected
            assert expected in granted
            self.holders[slot] = expected

    @invariant()
    def holders_match_model(self):
        if not hasattr(self, "arbiter"):
            return
        for slot in SLOTS:
            assert self.arbiter.holder_of_slot(slot) == self.holders[slot]

    @invariant()
    def holder_never_queued(self):
        if not hasattr(self, "arbiter"):
            return
        for state in self.arbiter.slots.values():
            if state.holder is not None:
                assert all(
                    c.name != state.holder.name for c in state.requesters
                )


TestArbiterStateMachine = ArbiterMachine.TestCase
TestArbiterStateMachine.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
