"""Unit tests for repro.utils.linalg."""

import numpy as np
import pytest

from repro.utils.linalg import (
    is_non_normal,
    is_schur_stable,
    matrix_powers,
    spectral_radius,
    state_norms,
    transient_growth_bound,
)


class TestSpectralRadius:
    def test_diagonal(self):
        assert spectral_radius(np.diag([0.5, -0.9])) == pytest.approx(0.9)

    def test_rotation_has_unit_radius(self):
        theta = 0.3
        rot = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        assert spectral_radius(rot) == pytest.approx(1.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            spectral_radius(np.ones((2, 3)))


class TestIsSchurStable:
    def test_stable(self):
        assert is_schur_stable(np.diag([0.99, -0.5]))

    def test_unstable(self):
        assert not is_schur_stable(np.diag([1.01, 0.5]))

    def test_marginally_stable_rejected(self):
        assert not is_schur_stable(np.eye(2))


class TestMatrixPowers:
    def test_yields_identity_first(self):
        a = np.array([[2.0]])
        powers = list(matrix_powers(a, 4))
        assert [float(p[0, 0]) for p in powers] == [1.0, 2.0, 4.0, 8.0]

    def test_matches_matrix_power(self):
        rng = np.random.default_rng(7)
        a = rng.normal(size=(3, 3)) * 0.4
        for k, power in enumerate(matrix_powers(a, 6)):
            np.testing.assert_allclose(power, np.linalg.matrix_power(a, k), atol=1e-12)

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            list(matrix_powers(np.eye(2), 0))


class TestStateNorms:
    def test_row_norms(self):
        states = np.array([[3.0, 4.0], [0.0, 1.0]])
        np.testing.assert_allclose(state_norms(states), [5.0, 1.0])

    def test_one_dimensional_input(self):
        np.testing.assert_allclose(state_norms(np.array([1.0, -2.0])), [1.0, 2.0])

    def test_infinity_norm(self):
        states = np.array([[3.0, -4.0]])
        assert state_norms(states, ord=np.inf)[0] == pytest.approx(4.0)


class TestTransientGrowth:
    def test_normal_matrix_has_no_growth(self):
        assert transient_growth_bound(np.diag([0.5, 0.9]), 50) == pytest.approx(1.0)

    def test_jordan_block_grows(self):
        a = np.array([[0.9, 5.0], [0.0, 0.9]])
        assert transient_growth_bound(a, 50) > 2.0

    def test_includes_identity(self):
        # Horizon 1 still includes A^0 = I, so the bound is at least 1.
        assert transient_growth_bound(np.diag([0.1]), 1) >= 1.0


class TestIsNonNormal:
    def test_symmetric_is_normal(self):
        assert not is_non_normal(np.array([[1.0, 0.2], [0.2, 0.5]]))

    def test_jordan_block_is_non_normal(self):
        assert is_non_normal(np.array([[0.9, 1.0], [0.0, 0.9]]))
