"""Round-trip tests for the dwell-cache export/merge seam and the
fabric wire codec built on it.

The fleet-wide cache sharing story is: a worker measures, exports the
delta (``export_entries(exclude=<already shipped>)``), the blob crosses
the socket via ``encode_entries``/``decode_entries``, and the receiver
``merge_entries`` it — after which the measurement serves lookups there
without re-running.  These tests pin every leg of that trip, including
the ``exclude`` frozenset default.
"""

import pytest

from repro.pipeline.cache import (
    DwellCurveCache,
    decode_entries,
    encode_entries,
)


@pytest.fixture
def measured_cache():
    cache = DwellCurveCache()
    cache.measurement("servo-rig", 1000.0, wait_step=16)
    cache.measurement("throttle-by-wire", 800.0, wait_step=16)
    return cache


class TestExportMergeRoundTrip:
    def test_export_merge_preserves_entries_and_serves_hits(self, measured_cache):
        entries = measured_cache.export_entries()
        assert set(entries) == measured_cache.keys_snapshot()
        target = DwellCurveCache()
        assert target.merge_entries(entries) == 2
        assert target.keys_snapshot() == measured_cache.keys_snapshot()
        # merged entries answer without re-measuring
        merged = target.measurement("servo-rig", 1000.0, wait_step=16)
        assert target.hits == 1 and target.misses == 0
        # in-process export hands over the very same measurement object
        assert merged is measured_cache.measurement("servo-rig", 1000.0, wait_step=16)

    def test_exclude_default_is_empty_frozenset(self, measured_cache):
        # the default export ships everything; an explicit empty
        # frozenset is the same call
        assert measured_cache.export_entries() == measured_cache.export_entries(
            exclude=frozenset()
        )

    def test_exclude_frozenset_filters_shipped_keys(self, measured_cache):
        shipped = frozenset(
            key for key in measured_cache.keys_snapshot() if "servo-rig" in key
        )
        fresh = measured_cache.export_entries(exclude=shipped)
        assert len(fresh) == 1
        assert all("servo-rig" not in key for key in fresh)
        # excluding everything ships nothing
        assert (
            measured_cache.export_entries(
                exclude=frozenset(measured_cache.keys_snapshot())
            )
            == {}
        )

    def test_merge_is_idempotent(self, measured_cache):
        entries = measured_cache.export_entries()
        target = DwellCurveCache()
        assert target.merge_entries(entries) == 2
        assert target.merge_entries(entries) == 0
        assert len(target) == 2


class TestWireCodec:
    def test_encode_decode_round_trip(self, measured_cache):
        entries = measured_cache.export_entries()
        blob = encode_entries(entries)
        # the blob is a JSON-safe ASCII string — it rides a line-JSON
        # message without escaping trouble
        assert isinstance(blob, str) and blob.isascii() and "\n" not in blob
        decoded = decode_entries(blob)
        assert set(decoded) == set(entries)

    def test_decoded_entries_merge_and_serve(self, measured_cache):
        blob = encode_entries(measured_cache.export_entries())
        target = DwellCurveCache()
        assert target.merge_entries(decode_entries(blob)) == 2
        target.measurement("throttle-by-wire", 800.0, wait_step=16)
        assert target.hits == 1 and target.misses == 0

    def test_empty_payload_round_trips(self):
        assert decode_entries(encode_entries({})) == {}

    def test_excluded_delta_round_trips(self, measured_cache):
        # the exact combination the fabric uses on every result message
        shipped = frozenset(
            key for key in measured_cache.keys_snapshot() if "servo-rig" in key
        )
        delta = decode_entries(
            encode_entries(measured_cache.export_entries(exclude=shipped))
        )
        assert len(delta) == 1 and all("servo-rig" not in key for key in delta)
