"""Tests for the dwell-margin robustness analysis."""

import pytest

from repro.core.allocation import first_fit_allocation, make_analyzed
from repro.core.robustness import (
    dwell_margin,
    scale_applications,
    scale_dwell_model,
    slot_dwell_margin,
)
from repro.core.schedulability import is_slot_schedulable
from repro.core.timing_params import PAPER_TABLE_I


@pytest.fixture(scope="module")
def paper_allocation():
    return first_fit_allocation(make_analyzed(PAPER_TABLE_I, "non-monotonic"))


class TestScaling:
    def test_scale_dwell_model(self):
        apps = make_analyzed(PAPER_TABLE_I, "non-monotonic")
        model = apps[0].dwell_model
        doubled = scale_dwell_model(model, 2.0)
        assert doubled.max_dwell == pytest.approx(2 * model.max_dwell)
        assert doubled.xi_et == model.xi_et  # waits untouched

    def test_scale_applications_preserves_params(self):
        apps = make_analyzed(PAPER_TABLE_I, "non-monotonic")
        scaled = scale_applications(apps, 1.5)
        for original, new in zip(apps, scaled):
            assert new.params is original.params
            assert new.max_dwell == pytest.approx(1.5 * original.max_dwell)


class TestSlotMargin:
    def test_margin_is_a_boundary(self, paper_allocation):
        slot = paper_allocation.slots[0]  # {C3, C6}
        margin = slot_dwell_margin(slot)
        assert margin > 1.0
        assert is_slot_schedulable(scale_applications(slot, margin * 0.99))
        assert not is_slot_schedulable(scale_applications(slot, margin * 1.05))

    def test_single_app_slot_margin(self):
        apps = make_analyzed(PAPER_TABLE_I, "non-monotonic")
        c1 = next(a for a in apps if a.name == "C1")
        # Alone: response = xi_tt * factor must stay below the deadline.
        margin = slot_dwell_margin([c1])
        assert margin == pytest.approx(c1.params.deadline / c1.params.xi_tt, rel=0.01)

    def test_unschedulable_slot_reports_sub_unity(self):
        apps = make_analyzed(PAPER_TABLE_I, "non-monotonic")
        by = {a.name: a for a in apps}
        # C3 + C2 + C6 on one slot is unschedulable (Section V).
        margin = slot_dwell_margin([by["C3"], by["C6"], by["C2"]])
        assert margin < 1.0


class TestAllocationMargin:
    def test_paper_allocation_has_headroom(self, paper_allocation):
        result = dwell_margin(paper_allocation.slots)
        assert result.margin > 1.0
        assert len(result.slot_margins) == 3
        assert result.margin == min(result.slot_margins)

    def test_critical_slot_identified(self, paper_allocation):
        result = dwell_margin(paper_allocation.slots)
        assert result.slot_margins[result.critical_slot] == result.margin

    def test_empty_allocation_rejected(self):
        with pytest.raises(ValueError):
            dwell_margin([])
