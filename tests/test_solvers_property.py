"""Cross-allocator property tests (ISSUE 2 satellite).

On randomized schedulable instances of up to 8 applications:

* ``branch-and-bound`` returns the same minimum slot count as the
  exhaustive ``optimal`` partition search, and
* no registered heuristic ever packs into fewer slots than the proven
  optimum (that would falsify the optimality proof — or the heuristic's
  feasibility checking).
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.allocation import make_analyzed
from repro.core.schedulability import is_slot_schedulable
from repro.core.timing_params import TimingParameters
from repro.solvers import allocate, allocators


@st.composite
def schedulable_rosters(draw, max_apps=8):
    """Random rosters whose applications are at least feasible alone."""
    n = draw(st.integers(min_value=1, max_value=max_apps))
    apps = []
    for i in range(n):
        xi_tt = draw(st.floats(min_value=0.1, max_value=1.2))
        xi_m = xi_tt * draw(st.floats(min_value=1.0, max_value=2.0))
        xi_et = xi_m * draw(st.floats(min_value=2.0, max_value=4.0))
        deadline = xi_tt + draw(st.floats(min_value=0.5, max_value=15.0))
        r = deadline * draw(st.floats(min_value=1.0, max_value=5.0))
        apps.append(
            TimingParameters(
                name=f"A{i}",
                min_inter_arrival=r,
                deadline=deadline,
                xi_tt=xi_tt,
                xi_et=xi_et,
                xi_m=xi_m,
                k_p=0.3 * xi_et,
                xi_m_mono=1.2 * xi_m,
            )
        )
    analyzed = make_analyzed(apps, "non-monotonic")
    assume(all(is_slot_schedulable([app]) for app in analyzed))
    return analyzed


class TestExactBackendsAgree:
    @given(apps=schedulable_rosters())
    @settings(max_examples=40, deadline=None)
    def test_branch_and_bound_matches_exhaustive_optimum(self, apps):
        exhaustive = allocate("optimal", apps)
        bnb = allocate("branch-and-bound", apps)
        assert bnb.slot_count == exhaustive.slot_count
        assert bnb.all_schedulable()
        for slot in bnb.slots:
            assert is_slot_schedulable(slot)

    @given(apps=schedulable_rosters(), method=st.sampled_from(["closed-form", "fixed-point"]))
    @settings(max_examples=15, deadline=None)
    def test_agreement_holds_across_analysis_methods(self, apps, method):
        exhaustive = allocate("optimal", apps, method=method)
        bnb = allocate("branch-and-bound", apps, method=method)
        assert bnb.slot_count == exhaustive.slot_count


class TestNoHeuristicBeatsTheOptimum:
    @given(apps=schedulable_rosters())
    @settings(max_examples=25, deadline=None)
    def test_every_registered_heuristic_bounded_below_by_optimum(self, apps):
        optimum = allocate("branch-and-bound", apps).slot_count
        for spec in allocators():
            options = {"seed": 0, "iterations": 200} if spec.randomized else {}
            result = spec(apps, method="closed-form", **options)
            assert result.slot_count >= optimum, (
                f"{spec.name} claims {result.slot_count} slots, below the "
                f"proven optimum {optimum}"
            )
            placed = sorted(n for slot in result.slot_names for n in slot)
            assert placed == sorted(app.name for app in apps)
            if not spec.optimal:
                continue
            assert result.slot_count == optimum


class TestAnnealScales:
    def test_large_fleet_stays_feasible_and_packs(self):
        """The 100+ app workload the exact backends refuse."""
        roster = []
        for i in range(100):
            # Deterministic pseudo-random spread, no RNG dependency.
            xi_tt = 0.2 + 0.015 * (i % 13)
            xi_m = xi_tt * (1.1 + 0.04 * (i % 7))
            deadline = xi_m * (5.0 + (i % 11))
            roster.append(
                TimingParameters(
                    name=f"F{i:03d}",
                    min_inter_arrival=deadline * (2.0 + (i % 3)),
                    deadline=deadline,
                    xi_tt=xi_tt,
                    xi_et=3.0 * xi_m,
                    xi_m=xi_m,
                    k_p=0.9 * xi_m,
                    xi_m_mono=1.3 * xi_m,
                )
            )
        apps = make_analyzed(roster, "non-monotonic")
        result = allocate("anneal", apps, seed=1, iterations=1500)
        assert result.all_schedulable()
        assert result.slot_count < len(apps)  # real sharing happened
        first_fit = allocate("first-fit", apps)
        assert result.slot_count <= first_fit.slot_count
        assert result.stats["feasibility_cache"]["hit_rate"] > 0.0


class TestBranchAndBoundAtTwenty:
    def test_proves_optimality_at_twenty_apps(self):
        """The exact-solve ceiling the refactor lifts (seed refused >10)."""
        roster = [
            TimingParameters(
                name=f"T{i:02d}",
                min_inter_arrival=80.0 + 5.0 * (i % 5),
                deadline=6.0 + 0.35 * i,
                xi_tt=0.35,
                xi_et=3.5,
                xi_m=1.0 + 0.05 * (i % 4),
                k_p=0.6,
                xi_m_mono=1.6,
            )
            for i in range(20)
        ]
        apps = make_analyzed(roster, "non-monotonic")
        with pytest.raises(ValueError, match="exponential"):
            allocate("optimal", apps)
        result = allocate("branch-and-bound", apps)
        assert result.all_schedulable()
        assert result.slot_count <= allocate("first-fit", apps).slot_count
        stats = result.stats
        assert stats["lower_bound"] <= stats["optimal_slot_count"]
