"""Tests for the streaming statistics helpers (repro.sim.stats)."""

import math
import random

import pytest

from repro.sim.stats import Welford, t_critical_95


class TestTCritical:
    def test_exact_table_entries(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(2) == pytest.approx(4.303)
        assert t_critical_95(10) == pytest.approx(2.228)
        assert t_critical_95(30) == pytest.approx(2.042)

    def test_between_rows_rounds_conservatively(self):
        # 45 df falls between the 40 and 50 rows; the smaller df's
        # (larger) critical value is the safe choice for stopping rules.
        assert t_critical_95(45) == t_critical_95(40)

    def test_large_df_approaches_normal(self):
        assert t_critical_95(10_000) == pytest.approx(1.960)

    def test_monotone_decreasing(self):
        values = [t_critical_95(df) for df in range(1, 200)]
        assert values == sorted(values, reverse=True)
        assert all(v >= 1.960 for v in values)

    def test_invalid_df_rejected(self):
        with pytest.raises(ValueError, match="degrees of freedom"):
            t_critical_95(0)


class TestWelford:
    def test_matches_two_pass_statistics(self):
        rng = random.Random(7)
        values = [rng.gauss(3.0, 2.5) for _ in range(500)]
        acc = Welford()
        for v in values:
            acc.push(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert acc.n == 500
        assert acc.mean == pytest.approx(mean)
        assert acc.variance == pytest.approx(var)
        assert acc.minimum == min(values)
        assert acc.maximum == max(values)

    def test_ci95_uses_student_t(self):
        acc = Welford()
        for v in (1.0, 2.0, 4.0):
            acc.push(v)
        expected = t_critical_95(2) * acc.std / math.sqrt(3)
        assert acc.ci95() == pytest.approx(expected)

    def test_degenerate_sizes(self):
        acc = Welford()
        assert acc.variance == 0.0 and acc.ci95() == 0.0
        acc.push(5.0)
        assert acc.n == 1
        assert acc.std == 0.0
        assert acc.ci95() == 0.0  # undefined below two samples
        assert acc.minimum == acc.maximum == 5.0

    def test_constant_stream_has_zero_width(self):
        acc = Welford()
        for _ in range(10):
            acc.push(1.25)
        assert acc.std == 0.0
        assert acc.ci95() == 0.0

    def test_to_dict_shape(self):
        acc = Welford()
        for v in (1.0, 3.0):
            acc.push(v)
        record = acc.to_dict()
        assert set(record) == {"n", "mean", "std", "ci95", "min", "max"}
        assert record["n"] == 2 and record["mean"] == 2.0
