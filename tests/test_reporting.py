"""Unit tests for the ASCII reporting helpers."""

import numpy as np

from repro.experiments.reporting import format_series, format_table


class TestFormatTable:
    def test_alignment_and_floats(self):
        out = format_table(["name", "value"], [["a", 1.23456], ["bb", 2]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in out
        assert "2" in out

    def test_booleans_render_as_yes_no(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_wide_cells_set_column_width(self):
        out = format_table(["x"], [["a-very-long-cell-value"]])
        header, divider, row = out.splitlines()
        assert len(divider) >= len("a-very-long-cell-value")

    def test_numpy_scalars(self):
        out = format_table(["v"], [[np.float64(3.14159)], [np.int64(7)]])
        assert "3.142" in out and "7" in out


class TestFormatSeries:
    def test_plot_dimensions(self):
        xs = np.linspace(0, 1, 50)
        ys = np.sin(xs * 3)
        out = format_series(xs, ys, width=40, height=10)
        lines = out.splitlines()
        assert len(lines) == 11  # header + grid
        assert all(len(line) <= 40 for line in lines[1:])

    def test_contains_points(self):
        out = format_series([0, 1, 2], [1.0, 2.0, 1.0])
        assert "*" in out

    def test_empty_series(self):
        assert format_series([], []) == "(empty series)"

    def test_labels_in_header(self):
        out = format_series([0, 1], [1, 2], x_label="kwait", y_label="kdw")
        assert "kwait" in out and "kdw" in out
