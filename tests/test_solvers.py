"""Tests for the pluggable solver-backend API (repro.solvers)."""

import json

import pytest

from repro.cli import main
from repro.core.allocation import make_analyzed, optimal_allocation
from repro.core.schedulability import analyze_application
from repro.core.timing_params import PAPER_TABLE_I, TimingParameters
from repro.pipeline import DesignStudy, Scenario
from repro.solvers import (
    AllocatorSpec,
    InfeasibleAllocationError,
    InstanceTooLargeError,
    SolverError,
    UnknownSolverError,
    allocate,
    allocator_names,
    allocators,
    analysis_method_names,
    analysis_methods,
    finalize_slots,
    get_allocator,
    get_analysis_method,
    register_allocator,
    register_analysis_method,
    require_fits_alone,
    solver_table,
    unregister_allocator,
    unregister_analysis_method,
)
from repro.solvers.common import FeasibilityCache


@pytest.fixture(scope="module")
def paper_apps():
    return make_analyzed(PAPER_TABLE_I, "non-monotonic")


def params(name, r, deadline, xi_tt=0.3, xi_et=3.0, xi_m=0.8, k_p=0.5, xi_m_mono=1.0):
    return TimingParameters(
        name=name,
        min_inter_arrival=r,
        deadline=deadline,
        xi_tt=xi_tt,
        xi_et=xi_et,
        xi_m=xi_m,
        k_p=k_p,
        xi_m_mono=xi_m_mono,
    )


class TestRegistry:
    def test_builtin_allocators_registered(self):
        names = allocator_names()
        for expected in (
            "first-fit",
            "best-fit",
            "worst-fit",
            "dedicated",
            "optimal",
            "branch-and-bound",
            "anneal",
        ):
            assert expected in names

    def test_builtin_methods_registered(self):
        assert analysis_method_names() == [
            "closed-form",
            "fixed-point",
            "lower-bound",
        ]

    def test_unknown_allocator_diagnostic(self):
        with pytest.raises(UnknownSolverError, match="registered allocators"):
            get_allocator("quantum-fit")
        assert issubclass(UnknownSolverError, ValueError)

    def test_unknown_method_diagnostic(self):
        with pytest.raises(UnknownSolverError, match="unknown method"):
            get_analysis_method("oracle")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_allocator("first-fit")(lambda apps, method="closed-form": None)
        with pytest.raises(ValueError, match="already registered"):
            register_analysis_method("closed-form")(lambda lo, hi: 0.0)

    def test_capability_metadata(self):
        exact = {spec.name for spec in allocators() if spec.optimal}
        assert exact == {"optimal", "branch-and-bound"}
        assert get_allocator("optimal").max_apps == 10
        assert get_allocator("branch-and-bound").max_apps >= 20
        assert get_allocator("anneal").randomized
        assert not get_analysis_method("lower-bound").safe
        assert get_analysis_method("fixed-point").exact

    def test_solver_table_is_json_safe(self):
        table = solver_table()
        round_trip = json.loads(json.dumps(table))
        assert {spec["name"] for spec in round_trip["allocators"]} == set(
            allocator_names()
        )
        assert {spec["name"] for spec in round_trip["analysis_methods"]} == set(
            analysis_method_names()
        )

    def test_method_restriction_enforced(self, paper_apps):
        spec = AllocatorSpec(
            name="closed-form-only",
            func=lambda apps, method="closed-form": None,
            methods=("closed-form",),
        )
        with pytest.raises(SolverError, match="does not support analysis method"):
            spec(paper_apps, method="fixed-point")


class TestBranchAndBound:
    def test_matches_exhaustive_on_paper_set(self, paper_apps):
        assert allocate("branch-and-bound", paper_apps).slot_count == 3

    def test_reports_search_and_cache_stats(self, paper_apps):
        result = allocate("branch-and-bound", paper_apps)
        stats = result.stats
        assert stats["lower_bound"] <= stats["optimal_slot_count"]
        cache = stats["feasibility_cache"]
        assert cache["misses"] == cache["entries"]
        assert 0.0 <= cache["hit_rate"] <= 1.0

    def test_lifts_the_exact_ceiling_past_exhaustive(self):
        apps = make_analyzed(
            [
                params(f"L{i}", r=60.0, deadline=6.0 + 0.1 * i, xi_m=1.1, xi_m_mono=1.4)
                for i in range(12)
            ]
        )
        with pytest.raises(InstanceTooLargeError, match="exponential"):
            optimal_allocation(apps)
        result = allocate("branch-and-bound", apps)
        assert result.all_schedulable()
        assert result.slot_count <= allocate("first-fit", apps).slot_count

    def test_respects_its_own_ceiling(self, paper_apps):
        with pytest.raises(InstanceTooLargeError, match="anneal"):
            allocate("branch-and-bound", paper_apps * 5)

    def test_infeasible_app_raises_domain_error(self):
        apps = make_analyzed(
            [params("A", 10.0, 0.2, xi_tt=0.3, xi_m=0.4, k_p=0.1, xi_m_mono=0.5)]
        )
        with pytest.raises(InfeasibleAllocationError, match="dedicated TT slot"):
            allocate("branch-and-bound", apps)

    def test_empty_instance(self):
        assert allocate("branch-and-bound", []).slot_count == 0


class TestAnneal:
    def test_feasible_and_never_worse_than_dedicated(self, paper_apps):
        result = allocate("anneal", paper_apps)
        assert result.all_schedulable()
        assert result.slot_count <= len(paper_apps)

    def test_deterministic_for_fixed_seed(self, paper_apps):
        first = allocate("anneal", paper_apps, seed=42)
        second = allocate("anneal", paper_apps, seed=42)
        assert first.slot_names == second.slot_names

    def test_matches_optimum_on_paper_set(self, paper_apps):
        assert allocate("anneal", paper_apps, seed=0).slot_count == 3

    def test_stats_record_schedule(self, paper_apps):
        stats = allocate("anneal", paper_apps, iterations=50).stats
        assert stats["iterations"] == 50
        assert stats["feasibility_cache"]["misses"] >= 1


class TestOversizedOptimalErrorPath:
    """Satellite: oversized exhaustive solves fail cleanly, not with a
    traceback — the error is a ValueError subclass the CLI maps to exit
    code 2 and the pipeline runner captures as a failed stage."""

    def test_raises_instance_too_large(self, paper_apps):
        with pytest.raises(InstanceTooLargeError, match="exponential"):
            optimal_allocation(paper_apps * 2, max_apps=10)
        assert issubclass(InstanceTooLargeError, ValueError)

    def test_study_marks_stage_failed_instead_of_crashing(self):
        spec = get_allocator("optimal")
        study = DesignStudy(
            Scenario(name="oversized", allocator="optimal")
        )
        # Shrink the ceiling below the paper roster to trigger the path
        # without fabricating an 11-app source.
        try:
            unregister_allocator("optimal")
            register_allocator(
                "optimal", optimal=True, complexity=spec.complexity, max_apps=2
            )(lambda apps, method="closed-form": spec.func(apps, method=method, max_apps=2))
            result = study.run()
        finally:
            unregister_allocator("optimal")
            register_allocator(
                "optimal",
                summary=spec.summary,
                optimal=spec.optimal,
                complexity=spec.complexity,
                max_apps=spec.max_apps,
            )(spec.func)
        assert not result.ok
        record = result.stage("allocate")
        assert record.status == "failed"
        assert "exponential" in record.detail


class TestScenarioRegistryValidation:
    def test_accepts_every_registered_allocator(self):
        for name in allocator_names():
            assert Scenario(name=f"s-{name}", allocator=name).allocator == name

    def test_accepts_every_registered_method(self):
        for name in analysis_method_names():
            assert Scenario(name=f"s-{name}", method=name).method == name

    def test_rejects_unknown_allocator_with_diagnostic(self):
        with pytest.raises(ValueError, match="registered allocators"):
            Scenario(name="x", allocator="quantum-fit")

    def test_rejects_unknown_method_with_diagnostic(self):
        with pytest.raises(ValueError, match="registered analysis methods"):
            Scenario(name="x", method="oracle")


class TestThirdPartyAllocatorEndToEnd:
    """A backend registered by a downstream package must run through
    DesignStudy with no pipeline changes (ISSUE 2 acceptance)."""

    def test_custom_backend_through_design_study(self):
        from repro.core.schedulability import is_slot_schedulable
        from repro.core.timing_params import priority_order

        @register_allocator(
            "next-fit",
            summary="only ever try the most recently opened slot",
            optimal=False,
            complexity="O(n) slot analyses",
        )
        def next_fit(apps, method="closed-form"):
            slots = []
            for app in priority_order(apps):
                if slots and is_slot_schedulable(slots[-1] + [app], method=method):
                    slots[-1].append(app)
                else:
                    require_fits_alone(app, method)
                    slots.append([app])
            return finalize_slots(slots, method)

        try:
            scenario = Scenario(
                name="third-party", source="paper", allocator="next-fit"
            )
            result = DesignStudy(scenario).run()
            assert result.ok
            artifact = result.artifact("allocate")
            assert artifact["allocator"] == "next-fit"
            assert artifact["allocator_capabilities"]["complexity"] == (
                "O(n) slot analyses"
            )
            assert artifact["all_schedulable"] is True
            # Next-fit cannot pack better than first-fit's 3 slots.
            assert artifact["slot_count"] >= 3
        finally:
            unregister_allocator("next-fit")

    def test_custom_analysis_method_through_analyze(self, paper_apps):
        from repro.core.schedulability import max_wait_closed_form

        @register_analysis_method(
            "padded", summary="closed form plus safety margin", bound="upper"
        )
        def padded(lower, higher):
            return 1.25 * max_wait_closed_form(lower, higher)

        try:
            subject, sharers = paper_apps[0], paper_apps[1:3]
            padded_result = analyze_application(subject, sharers, method="padded")
            plain = analyze_application(subject, sharers, method="closed-form")
            assert padded_result.max_wait == pytest.approx(1.25 * plain.max_wait)
        finally:
            unregister_analysis_method("padded")


class TestLowerBoundMethod:
    def test_bracket_around_fixed_point(self, paper_apps):
        subject, sharers = paper_apps[1], [paper_apps[0], paper_apps[2]]
        low = analyze_application(subject, sharers, method="lower-bound")
        exact = analyze_application(subject, sharers, method="fixed-point")
        high = analyze_application(subject, sharers, method="closed-form")
        assert low.max_wait <= exact.max_wait <= high.max_wait

    def test_usable_as_scenario_method(self):
        result = DesignStudy(
            Scenario(name="lb", source="paper", method="lower-bound")
        ).run()
        assert result.ok
        # The artifact must flag that these numbers cannot certify
        # deadlines (the lower bound is optimistic by construction).
        capabilities = result.artifact("allocate")["method_capabilities"]
        assert capabilities["safe"] is False
        assert capabilities["bound"] == "lower"


class TestFeasibilityCache:
    def test_hit_miss_accounting(self, paper_apps):
        cache = FeasibilityCache(paper_apps, "closed-form")
        key = frozenset({0, 1})
        first = cache.schedulable(key)
        second = cache.schedulable(key)
        assert first == second
        assert cache.hits == 1 and cache.misses == 1 and cache.entries == 1
        assert cache.hit_rate == pytest.approx(0.5)


class TestSolversCli:
    def test_text_listing(self, capsys):
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        assert "branch-and-bound" in out
        assert "Registered analysis methods" in out
        assert "lower-bound" in out

    def test_json_listing_round_trips(self, capsys):
        assert main(["solvers", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        names = {spec["name"] for spec in data["allocators"]}
        assert {"first-fit", "branch-and-bound", "anneal"} <= names
        assert all("optimal" in spec for spec in data["allocators"])

    def test_study_with_bnb_scenario(self, capsys):
        assert main(["study", "--scenario", "paper-table1-bnb"]) == 0
        out = capsys.readouterr().out
        assert "3 TT slots" in out
