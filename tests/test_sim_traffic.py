"""Tests for background traffic and its effect on ET latency."""

import pytest

from repro.control.disturbance import OneShotDisturbance
from repro.control.plants import servo_rig
from repro.control.controller import design_switched_application
from repro.flexray import FlexRayBus, FrameSpec, paper_bus_config
from repro.sim import CoSimApplication, CoSimulator, FlexRayNetwork
from repro.sim.runtime import CommState
from repro.sim.traffic import BackgroundTraffic, TrafficStream, heavy_background_traffic


class TestTrafficStream:
    def test_releases_within_window(self):
        stream = TrafficStream(spec=FrameSpec(frame_id=50), period=0.01, offset=0.002)
        releases = stream.releases_between(0.0, 0.03)
        assert releases == pytest.approx([0.002, 0.012, 0.022])

    def test_window_is_half_open(self):
        stream = TrafficStream(spec=FrameSpec(frame_id=50), period=0.01)
        assert 0.02 not in stream.releases_between(0.0, 0.02)
        assert 0.02 in stream.releases_between(0.02, 0.03)

    def test_empty_before_offset(self):
        stream = TrafficStream(spec=FrameSpec(frame_id=50), period=0.01, offset=1.0)
        assert stream.releases_between(0.0, 0.5) == []


class TestBackgroundTraffic:
    def test_duplicate_ids_rejected(self):
        traffic = BackgroundTraffic()
        traffic.add(TrafficStream(spec=FrameSpec(frame_id=7), period=0.01))
        with pytest.raises(ValueError, match="duplicate"):
            traffic.add(TrafficStream(spec=FrameSpec(frame_id=7), period=0.02))

    def test_messages_sorted_by_release(self):
        traffic = heavy_background_traffic(count=3, period=0.005)
        messages = traffic.messages_between(0.0, 0.02)
        times = [m.release_time for m in messages]
        assert times == sorted(times)
        assert len(messages) == 3 * 4

    def test_heavy_preset_ids_above_control(self):
        traffic = heavy_background_traffic(count=4, first_frame_id=100)
        assert all(f.frame_id >= 100 for f in traffic.frames)


class TestTrafficInCoSim:
    def _make_app(self, frame_id=1):
        plant = servo_rig()
        app = design_switched_application(
            name="servo",
            plant=plant.model,
            period=plant.period,
            et_delay=plant.period,
            tt_delay=0.0007,
            q=plant.q,
            r=plant.r,
            threshold=plant.threshold,
        )
        return CoSimApplication(
            app=app,
            dynamics=plant.model,
            disturbance_state=plant.disturbance,
            disturbances=OneShotDisturbance(time=0.0),
            deadline=5.0,
            slot=0,
            frame=FrameSpec(frame_id=frame_id, sender="servo"),
        )

    def _raw_et_delays(self, traffic, frame_id=1):
        network = FlexRayNetwork(
            bus=FlexRayBus(config=paper_bus_config()), traffic=traffic
        )
        sim = CoSimulator([self._make_app(frame_id)], network, equalize_delays=False)
        trace = sim.run(1.0)
        servo = trace["servo"]
        return [
            d
            for state, d in zip(servo.states, servo.delays[:-1])
            if state is not CommState.TT_HOLDING
        ]

    def test_background_traffic_increases_et_latency(self):
        # Control frame with a high ID so lower-ID background frames
        # (higher priority) create real interference.
        quiet = self._raw_et_delays(traffic=None, frame_id=40)
        aggressive = heavy_background_traffic(
            count=30, first_frame_id=2, period=0.005, payload_bits=512
        )
        busy = self._raw_et_delays(traffic=aggressive, frame_id=40)
        assert max(busy) > max(quiet)

    def test_deadline_still_met_under_load(self):
        network = FlexRayNetwork(
            bus=FlexRayBus(config=paper_bus_config()),
            traffic=heavy_background_traffic(count=8, first_frame_id=100),
        )
        sim = CoSimulator([self._make_app()], network)
        trace = sim.run(4.0)
        assert trace.all_deadlines_met()
