"""Unit tests for the task/ECU model."""

import pytest

from repro.sim.tasks import Ecu, PeriodicTask, simple_application_tasks


class TestPeriodicTask:
    def test_rejects_wcet_above_period(self):
        with pytest.raises(ValueError, match="wcet"):
            PeriodicTask(name="t", period=0.01, wcet=0.02)

    def test_valid_task(self):
        task = PeriodicTask(name="t", period=0.02, wcet=0.001, priority=1)
        assert task.period == 0.02


class TestEcu:
    def test_utilization(self):
        ecu = Ecu(name="e")
        ecu.add_task(PeriodicTask(name="a", period=0.01, wcet=0.002))
        ecu.add_task(PeriodicTask(name="b", period=0.02, wcet=0.004))
        assert ecu.utilization() == pytest.approx(0.4)

    def test_duplicate_task_names_rejected(self):
        ecu = Ecu(name="e")
        ecu.add_task(PeriodicTask(name="a", period=0.01, wcet=0.001))
        with pytest.raises(ValueError, match="duplicate"):
            ecu.add_task(PeriodicTask(name="a", period=0.02, wcet=0.001))

    def test_highest_priority_response_is_wcet_plus_blocking(self):
        ecu = Ecu(name="e")
        hi = PeriodicTask(name="hi", period=0.01, wcet=0.001, priority=0)
        lo = PeriodicTask(name="lo", period=0.02, wcet=0.004, priority=1)
        ecu.add_task(hi)
        ecu.add_task(lo)
        assert ecu.response_time_bound(hi) == pytest.approx(0.001 + 0.004)

    def test_lower_priority_suffers_interference(self):
        ecu = Ecu(name="e")
        hi = PeriodicTask(name="hi", period=0.01, wcet=0.002, priority=0)
        lo = PeriodicTask(name="lo", period=0.05, wcet=0.003, priority=1)
        ecu.add_task(hi)
        ecu.add_task(lo)
        response = ecu.response_time_bound(lo)
        assert response >= 0.003 + 0.002  # at least one interference hit

    def test_unassigned_task_rejected(self):
        ecu = Ecu(name="e")
        foreign = PeriodicTask(name="x", period=0.01, wcet=0.001)
        with pytest.raises(ValueError, match="not assigned"):
            ecu.response_time_bound(foreign)

    def test_overload_detected(self):
        ecu = Ecu(name="e")
        hog = PeriodicTask(name="hog", period=0.01, wcet=0.009, priority=0)
        victim = PeriodicTask(name="victim", period=0.012, wcet=0.005, priority=1)
        ecu.add_task(hog)
        ecu.add_task(victim)
        with pytest.raises(ValueError, match="misses its period"):
            ecu.response_time_bound(victim)


class TestApplicationTasks:
    def test_latencies_are_small_and_positive(self):
        tasks = simple_application_tasks("C1", period=0.02)
        release = tasks.release_latency()
        actuation = tasks.actuation_latency()
        assert 0 < release < 0.02
        assert 0 < actuation < 0.02

    def test_release_latency_covers_sense_and_control(self):
        tasks = simple_application_tasks(
            "C1", period=0.02, sensing_wcet=1e-4, control_wcet=3e-4
        )
        # Alone on the ECU: response = own WCET (+ blocking by the other).
        assert tasks.release_latency() >= 4e-4
