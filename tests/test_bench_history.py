"""Tests for the per-commit benchmark trajectory log
(``compare_bench.py --log``)."""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "compare_bench", REPO_ROOT / "benchmarks" / "compare_bench.py"
)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def write_artifact(path: Path, payload):
    path.write_text(json.dumps(payload))
    return path


class TestAppendHistory:
    def test_appends_one_line_per_numeric_leaf(self, tmp_path):
        artifact = write_artifact(
            tmp_path / "BENCH_x.json",
            {"elapsed": 1.5, "nested": {"runs": 4}, "label": "text", "ok": True},
        )
        log = tmp_path / "history.jsonl"
        appended = compare_bench.append_history([artifact], log, "abc1234")
        assert appended == 2
        entries = [json.loads(line) for line in log.read_text().splitlines()]
        assert {(e["artifact"], e["key"], e["value"]) for e in entries} == {
            ("BENCH_x.json", "elapsed", 1.5),
            ("BENCH_x.json", "nested.runs", 4.0),
        }
        assert all(e["commit"] == "abc1234" for e in entries)

    def test_rerun_same_commit_is_idempotent(self, tmp_path):
        artifact = write_artifact(tmp_path / "BENCH_x.json", {"elapsed": 1.5})
        log = tmp_path / "history.jsonl"
        assert compare_bench.append_history([artifact], log, "abc1234") == 1
        assert compare_bench.append_history([artifact], log, "abc1234") == 0
        assert len(log.read_text().splitlines()) == 1

    def test_new_commit_appends_without_rewriting(self, tmp_path):
        artifact = write_artifact(tmp_path / "BENCH_x.json", {"elapsed": 1.5})
        log = tmp_path / "history.jsonl"
        compare_bench.append_history([artifact], log, "abc1234")
        first = log.read_text()
        write_artifact(tmp_path / "BENCH_x.json", {"elapsed": 2.0})
        assert compare_bench.append_history([artifact], log, "def5678") == 1
        # append-only: the first commit's line is untouched
        assert log.read_text().startswith(first)
        entries = [json.loads(line) for line in log.read_text().splitlines()]
        assert [e["value"] for e in entries] == [1.5, 2.0]

    def test_ignored_leaves_stay_out_of_history(self, tmp_path):
        artifact = write_artifact(
            tmp_path / "BENCH_x.json",
            {"elapsed": 1.0, "generated_unix": 1.7e9, "cpu_count": 8},
        )
        log = tmp_path / "history.jsonl"
        assert compare_bench.append_history([artifact], log, "abc1234") == 1
        (entry,) = [json.loads(line) for line in log.read_text().splitlines()]
        assert entry["key"] == "elapsed"

    def test_missing_artifact_and_corrupt_log_line_tolerated(self, tmp_path):
        log = tmp_path / "history.jsonl"
        log.write_text("not json\n")
        artifact = write_artifact(tmp_path / "BENCH_x.json", {"elapsed": 1.0})
        missing = tmp_path / "BENCH_gone.json"
        assert compare_bench.append_history([artifact, missing], log, "abc1234") == 1

    def test_cli_log_flag_end_to_end(self, tmp_path, capsys):
        artifact = write_artifact(tmp_path / "BENCH_x.json", {"elapsed": 3.0})
        log = tmp_path / "history.jsonl"
        code = compare_bench.main(
            [str(artifact), "--log", str(log), "--commit", "abc1234"]
        )
        assert code == 0
        assert "trajectory log" in capsys.readouterr().out
        (entry,) = [json.loads(line) for line in log.read_text().splitlines()]
        assert entry == {
            "artifact": "BENCH_x.json",
            "commit": "abc1234",
            "key": "elapsed",
            "value": 3.0,
        }

    def test_committed_seed_log_matches_schema(self):
        # the repo ships a seeded BENCH_history.jsonl; every line must
        # carry the full (commit, artifact, key, value) schema
        seed = REPO_ROOT / "BENCH_history.jsonl"
        lines = [json.loads(line) for line in seed.read_text().splitlines()]
        assert lines, "seed trajectory log is empty"
        for entry in lines:
            assert set(entry) == {"commit", "artifact", "key", "value"}
            assert isinstance(entry["value"], float)


class TestRegressionGate:
    """``--only`` metric filtering and the ``REPRO_BENCH_NO_GATE``
    escape hatch of the blocking CI gate."""

    def _pin_baseline(self, monkeypatch, baseline):
        monkeypatch.setattr(
            compare_bench, "committed_version", lambda path, ref: baseline
        )

    def test_only_filter_gates_just_the_named_metric(
        self, tmp_path, capsys, monkeypatch
    ):
        self._pin_baseline(
            monkeypatch,
            {"kernel": {"batch_speedup_vs_legacy": 4.0}, "thread_seconds": 10.0},
        )
        # The speedup collapsed AND an unrelated timing blew up; with
        # --only, only the speedup regression fails the run.
        artifact = write_artifact(
            tmp_path / "BENCH_x.json",
            {"kernel": {"batch_speedup_vs_legacy": 2.0}, "thread_seconds": 99.0},
        )
        code = compare_bench.main(
            [str(artifact), "--fail-above", "25", "--only", "speedup_vs_legacy"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "batch_speedup_vs_legacy" in out
        assert "thread_seconds" not in out

    def test_only_filter_ignores_noise_outside_the_gate(
        self, tmp_path, capsys, monkeypatch
    ):
        self._pin_baseline(
            monkeypatch,
            {"kernel": {"batch_speedup_vs_legacy": 4.0}, "thread_seconds": 10.0},
        )
        artifact = write_artifact(
            tmp_path / "BENCH_x.json",
            {"kernel": {"batch_speedup_vs_legacy": 3.9}, "thread_seconds": 99.0},
        )
        code = compare_bench.main(
            [str(artifact), "--fail-above", "25", "--only", "speedup_vs_legacy"]
        )
        assert code == 0

    def test_only_glob_is_anchored_and_excludes_flexray_section(
        self, tmp_path, capsys, monkeypatch
    ):
        self._pin_baseline(
            monkeypatch,
            {
                "kernel": {"batch_speedup_vs_legacy": 4.0},
                "flexray_kernel": {"batch_speedup_vs_legacy": 4.0},
            },
        )
        # Only the flexray section collapsed; the anchored glob watches
        # the analytic section, so the gate passes.
        artifact = write_artifact(
            tmp_path / "BENCH_x.json",
            {
                "kernel": {"batch_speedup_vs_legacy": 3.9},
                "flexray_kernel": {"batch_speedup_vs_legacy": 1.0},
            },
        )
        code = compare_bench.main(
            [str(artifact), "--fail-above", "25", "--only", "kernel.batch_speedup*"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "flexray_kernel" not in out

    def test_only_filter_with_no_matches_reports_and_passes(
        self, tmp_path, capsys, monkeypatch
    ):
        self._pin_baseline(monkeypatch, {"elapsed": 1.0})
        artifact = write_artifact(tmp_path / "BENCH_x.json", {"elapsed": 9.0})
        code = compare_bench.main(
            [str(artifact), "--fail-above", "25", "--only", "no-such-metric"]
        )
        assert code == 0
        assert "no metric paths match" in capsys.readouterr().out

    def test_no_gate_env_reports_but_exits_zero(
        self, tmp_path, capsys, monkeypatch
    ):
        self._pin_baseline(monkeypatch, {"batch_speedup_vs_legacy": 4.0})
        artifact = write_artifact(
            tmp_path / "BENCH_x.json", {"batch_speedup_vs_legacy": 1.0}
        )
        monkeypatch.setenv("REPRO_BENCH_NO_GATE", "1")
        code = compare_bench.main([str(artifact), "--fail-above", "25"])
        out = capsys.readouterr().out
        assert code == 0
        assert "regressed beyond" in out
        assert "REPRO_BENCH_NO_GATE" in out

    def test_gate_still_fails_when_escape_hatch_unset(
        self, tmp_path, capsys, monkeypatch
    ):
        self._pin_baseline(monkeypatch, {"batch_speedup_vs_legacy": 4.0})
        artifact = write_artifact(
            tmp_path / "BENCH_x.json", {"batch_speedup_vs_legacy": 1.0}
        )
        monkeypatch.delenv("REPRO_BENCH_NO_GATE", raising=False)
        assert compare_bench.main([str(artifact), "--fail-above", "25"]) == 1
