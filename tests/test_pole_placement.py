"""Unit tests for repro.control.pole_placement."""

import numpy as np
import pytest

from repro.control.pole_placement import (
    PolePlacementError,
    design_mode_controller_poles,
    place_gain,
)
from repro.control.plants import servo_rig


class TestPlaceGain:
    def test_places_requested_poles(self):
        a = np.array([[1.2, 0.3], [0.0, 0.8]])
        b = np.array([[0.0], [1.0]])
        poles = [0.5, 0.6]
        gain = place_gain(a, b, poles)
        placed = np.linalg.eigvals(a - b @ gain)
        np.testing.assert_allclose(sorted(placed.real), [0.5, 0.6], atol=1e-8)

    def test_complex_conjugate_pair(self):
        a = np.array([[1.2, 0.3], [0.0, 0.8]])
        b = np.array([[0.0], [1.0]])
        poles = [0.7 * np.exp(0.4j), 0.7 * np.exp(-0.4j)]
        gain = place_gain(a, b, poles)
        placed = np.linalg.eigvals(a - b @ gain)
        assert np.max(np.abs(placed)) == pytest.approx(0.7, abs=1e-8)

    def test_rejects_unstable_request(self):
        a, b = np.eye(2), np.array([[0.0], [1.0]])
        with pytest.raises(PolePlacementError, match="unit circle"):
            place_gain(a, b, [1.0, 0.5])

    def test_rejects_wrong_count(self):
        a, b = 0.5 * np.eye(2), np.array([[0.0], [1.0]])
        with pytest.raises(PolePlacementError, match="exactly 2"):
            place_gain(a, b, [0.5])

    def test_rejects_unconjugated_complex(self):
        a, b = 0.5 * np.eye(2), np.array([[0.0], [1.0]])
        with pytest.raises(PolePlacementError, match="conjugation"):
            place_gain(a, b, [0.5 + 0.1j, 0.5 + 0.2j])


class TestDesignModeControllerPoles:
    def test_augmented_poles_land_where_requested(self):
        plant = servo_rig()
        poles = [0.9, 0.7, 0.2]
        controller = design_mode_controller_poles(
            plant.model, period=plant.period, delay=plant.period, poles=poles
        )
        placed = np.linalg.eigvals(controller.closed_loop)
        np.testing.assert_allclose(sorted(placed.real), sorted(poles), atol=1e-7)
        assert controller.is_stabilizing()

    def test_slower_than_lqr_floor_is_reachable(self):
        """Pole placement can realise dominant poles slower than the
        expensive-control LQR limit (the whole reason the module exists)."""
        plant = servo_rig()
        controller = design_mode_controller_poles(
            plant.model, period=plant.period, delay=plant.period, poles=[0.99, 0.5, 0.1]
        )
        magnitudes = np.abs(np.linalg.eigvals(controller.closed_loop))
        assert np.max(magnitudes) == pytest.approx(0.99, abs=1e-7)
