"""Unit tests for repro.control.disturbance."""

import numpy as np
import pytest

from repro.control.disturbance import (
    DisturbanceEvent,
    OneShotDisturbance,
    PeriodicDisturbance,
    SporadicDisturbance,
    validate_deadline_against_arrivals,
)


class TestPeriodicDisturbance:
    def test_event_times(self):
        process = PeriodicDisturbance(period=2.0, offset=1.0)
        events = process.events_until(7.0)
        assert [e.time for e in events] == [1.0, 3.0, 5.0]

    def test_horizon_is_exclusive(self):
        process = PeriodicDisturbance(period=1.0)
        events = process.events_until(3.0)
        assert [e.time for e in events] == [0.0, 1.0, 2.0]

    def test_min_inter_arrival_equals_period(self):
        assert PeriodicDisturbance(period=5.0).min_inter_arrival == 5.0

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            PeriodicDisturbance(period=0.0)


class TestSporadicDisturbance:
    def test_respects_min_inter_arrival(self):
        process = SporadicDisturbance(min_inter_arrival=1.5, mean_extra_gap=0.7, seed=3)
        times = [e.time for e in process.events_until(50.0)]
        gaps = np.diff(times)
        assert np.all(gaps >= 1.5 - 1e-12)

    def test_deterministic_with_seed(self):
        a = SporadicDisturbance(min_inter_arrival=1.0, mean_extra_gap=0.5, seed=9)
        b = SporadicDisturbance(min_inter_arrival=1.0, mean_extra_gap=0.5, seed=9)
        assert [e.time for e in a.events_until(20.0)] == [
            e.time for e in b.events_until(20.0)
        ]

    def test_zero_extra_gap_is_periodic(self):
        process = SporadicDisturbance(min_inter_arrival=2.0, mean_extra_gap=0.0)
        times = [e.time for e in process.events_until(9.0)]
        np.testing.assert_allclose(times, [0.0, 2.0, 4.0, 6.0, 8.0])


class TestOneShot:
    def test_single_event(self):
        process = OneShotDisturbance(time=0.5)
        events = process.events_until(100.0)
        assert len(events) == 1
        assert events[0].time == 0.5

    def test_event_after_horizon_excluded(self):
        process = OneShotDisturbance(time=5.0)
        assert process.events_until(2.0) == []


class TestDeadlineValidation:
    def test_accepts_deadline_at_inter_arrival(self):
        validate_deadline_against_arrivals(deadline=5.0, min_inter_arrival=5.0)

    def test_rejects_deadline_beyond_inter_arrival(self):
        with pytest.raises(ValueError, match="inter-arrival"):
            validate_deadline_against_arrivals(deadline=6.0, min_inter_arrival=5.0)


class TestDisturbanceEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            DisturbanceEvent(time=-1.0)

    def test_rejects_zero_magnitude(self):
        with pytest.raises(ValueError):
            DisturbanceEvent(time=0.0, magnitude=0.0)
