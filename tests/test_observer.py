"""Tests for the Luenberger observer module."""

import numpy as np
import pytest

from repro.control.discretization import discretize_with_delay
from repro.control.lti import ContinuousStateSpace
from repro.control.observer import (
    ObserverDesignError,
    design_observer_lqe,
    design_observer_poles,
)
from repro.control.plants import servo_rig


@pytest.fixture(scope="module")
def angle_only_plant():
    """Servo rig measured through its encoder (angle only, no velocity)."""
    base = servo_rig()
    model = ContinuousStateSpace(
        a=base.model.a, b=base.model.b, c=np.array([[1.0, 0.0]]), name="servo-encoder"
    )
    return discretize_with_delay(model, period=base.period, delay=0.0)


class TestPolePlacementObserver:
    def test_error_poles_land_where_requested(self, angle_only_plant):
        poles = [0.3, 0.4]
        observer = design_observer_poles(angle_only_plant, poles)
        placed = np.linalg.eigvals(observer.error_dynamics())
        np.testing.assert_allclose(sorted(placed.real), poles, atol=1e-8)

    def test_estimation_error_converges(self, angle_only_plant):
        observer = design_observer_poles(angle_only_plant, [0.3, 0.4])
        x = np.array([0.5, -1.0])
        xhat = np.zeros(2)
        u = np.zeros(1)
        for _ in range(60):
            y = angle_only_plant.c @ x
            xhat = observer.update(xhat, u, u, y)
            x = angle_only_plant.phi @ x  # autonomous plant, u = 0
        np.testing.assert_allclose(xhat, x, atol=1e-6)

    def test_velocity_reconstructed_from_angle(self, angle_only_plant):
        """The whole point: the unmeasured state is recovered."""
        observer = design_observer_poles(angle_only_plant, [0.2, 0.25])
        x = np.array([0.3, 0.8])
        xhat = np.zeros(2)
        u = np.zeros(1)
        for _ in range(40):
            y = angle_only_plant.c @ x
            xhat = observer.update(xhat, u, u, y)
            x = angle_only_plant.phi @ x
        assert xhat[1] == pytest.approx(x[1], abs=1e-4)

    def test_unobservable_pair_rejected(self):
        model = ContinuousStateSpace(
            a=np.diag([-1.0, -2.0]),
            b=np.ones((2, 1)),
            c=np.array([[1.0, 0.0]]),  # second mode invisible... observable?
        )
        # Diagonal A with C = [1, 0]: the second state never appears in y.
        plant = discretize_with_delay(model, period=0.02, delay=0.0)
        with pytest.raises(ObserverDesignError, match="not observable"):
            design_observer_poles(plant, [0.3, 0.4])


class TestLqeObserver:
    def test_design_is_stable(self, angle_only_plant):
        observer = design_observer_lqe(
            angle_only_plant,
            process_noise=np.diag([1e-4, 1e-3]),
            measurement_noise=np.array([[1e-5]]),
        )
        eigenvalues = np.abs(np.linalg.eigvals(observer.error_dynamics()))
        assert np.max(eigenvalues) < 1.0

    def test_noisier_measurements_give_slower_observer(self, angle_only_plant):
        quiet = design_observer_lqe(
            angle_only_plant, np.eye(2) * 1e-3, np.array([[1e-6]])
        )
        noisy = design_observer_lqe(
            angle_only_plant, np.eye(2) * 1e-3, np.array([[1e-1]])
        )
        assert np.linalg.norm(noisy.gain) < np.linalg.norm(quiet.gain)
