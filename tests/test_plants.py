"""Unit tests for the plant zoo."""

import numpy as np
import pytest

from repro.control.plants import (
    CASE_STUDY_PLANTS,
    PLANT_REGISTRY,
    make_plant,
    servo_rig,
)
from repro.control.controller import design_switched_application


class TestRegistry:
    def test_all_factories_build(self):
        for name in PLANT_REGISTRY:
            plant = make_plant(name)
            assert plant.name == name
            assert plant.model.n_states >= 1
            assert plant.model.n_inputs == 1

    def test_unknown_plant_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known plants"):
            make_plant("warp-drive")

    def test_case_study_plants_are_registered(self):
        for name in CASE_STUDY_PLANTS:
            assert name in PLANT_REGISTRY
        assert len(CASE_STUDY_PLANTS) == 6

    def test_definitions_are_consistent(self):
        for name in PLANT_REGISTRY:
            plant = make_plant(name)
            n = plant.model.n_states
            assert plant.q.shape == (n, n)
            assert plant.r.shape == (1, 1)
            assert plant.disturbance.shape == (n,)
            assert plant.threshold > 0
            assert plant.period > 0


class TestServoRig:
    def test_upright_equilibrium_is_unstable(self):
        plant = servo_rig()
        eigenvalues = np.linalg.eigvals(plant.model.a)
        assert np.max(eigenvalues.real) > 0

    def test_matches_paper_setup(self):
        plant = servo_rig()
        assert plant.period == pytest.approx(0.020)  # h = 20 ms
        assert plant.threshold == pytest.approx(0.1)  # Eth
        assert plant.disturbance[0] == pytest.approx(np.deg2rad(45.0))
        assert plant.disturbance[1] == 0.0

    def test_gravity_scales_instability(self):
        light = servo_rig(gravity=1.0)
        heavy = servo_rig(gravity=20.0)
        pole = lambda p: np.max(np.linalg.eigvals(p.model.a).real)
        assert pole(heavy) > pole(light)


class TestPlantsAreControllable:
    @pytest.mark.parametrize("name", sorted(PLANT_REGISTRY))
    def test_switched_design_succeeds(self, name):
        """Every registered plant must admit both mode controllers."""
        plant = make_plant(name)
        app = design_switched_application(
            name=name,
            plant=plant.model,
            period=plant.period,
            et_delay=plant.period,
            tt_delay=0.0,
            q=plant.q,
            r=plant.r,
            threshold=plant.threshold,
        )
        assert app.et.is_stabilizing()
        assert app.tt.is_stabilizing()
