"""Tests for the seeded Monte-Carlo sweep subsystem."""

import json

import pytest

from repro.pipeline import (
    DwellCurveCache,
    get_scenario,
    run_many,
    run_sweep,
)
from repro.pipeline.runner import DesignStudy
from repro.pipeline.sweep import expand_cells, expand_sweep
from repro.sim.stats import t_critical_95

#: Cheap co-sim base for every test: two-plant multirate roster subset,
#: short horizon, deterministic analytic network.  (The stride must stay
#: fine enough for the 2 ms loop's short dwell curve.)
def cheap_base(**overrides):
    settings = dict(
        apps=("motor-current-loop", "servo-rig"),
        wait_step=4,
        horizon=2.0,
    )
    settings.update(overrides)
    return get_scenario("multirate-cosim-analytic").derive(
        name="sweep-base", **settings
    )


class TestExpandSweep:
    def test_grid_times_replications(self):
        runs = expand_sweep(
            cheap_base(),
            axes={"loss_rate": [0.0, 0.1], "dwell_shape": ["non-monotonic"]},
            replications=3,
            seed0=5,
        )
        assert len(runs) == 6
        cells = {cell for cell, _ in runs}
        assert len(cells) == 2
        seeds = sorted(s.seed for _, s in runs)
        assert seeds == [5, 5, 6, 6, 7, 7]

    def test_cell_names_encode_overrides(self):
        runs = expand_sweep(cheap_base(), axes={"loss_rate": [0.25]})
        cell, scenario = runs[0]
        assert "loss_rate=0.25" in cell
        assert scenario.loss_rate == 0.25
        assert scenario.name.endswith("#seed0")

    def test_no_axes_is_pure_replication(self):
        runs = expand_sweep(cheap_base(), replications=4)
        assert len(runs) == 4
        assert len({cell for cell, _ in runs}) == 1

    def test_unknown_axis_field_raises(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            expand_sweep(cheap_base(), axes={"bogus_field": [1]})

    def test_bad_replications_rejected(self):
        with pytest.raises(ValueError, match="replications"):
            expand_sweep(cheap_base(), replications=0)

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            expand_sweep(cheap_base(), axes={"loss_rate": []})

    def test_seed_axis_rejected(self):
        """Replication seeding owns the seed field; an axis over it would
        be silently clobbered, so it must be refused."""
        with pytest.raises(ValueError, match="seed"):
            expand_sweep(cheap_base(), axes={"seed": [1, 2]})


class TestRunSweep:
    def test_serial_aggregation(self):
        # horizon long enough for seeded *second* arrivals to differ
        result = run_sweep(
            cheap_base(disturbance="sporadic", horizon=6.0),
            replications=3,
            max_workers=1,
            cache=DwellCurveCache(),
        )
        assert result.run_count == 3
        (cell,) = result.cells
        assert cell.runs == 3 and cell.failures == 0
        qoc = cell.metrics["qoc"]
        assert qoc["n"] == 3
        assert qoc["min"] <= qoc["mean"] <= qoc["max"]
        assert qoc["std"] > 0  # sporadic seeds genuinely differ
        # Student-t half-width: at n=3 the normal z=1.96 would
        # understate the interval by more than a factor of two.
        assert qoc["ci95"] == pytest.approx(t_critical_95(2) * qoc["std"] / 3**0.5)
        assert cell.deadlines_met_rate is not None
        assert cell.stopped_reason == "fixed"

    def test_jsonl_streaming(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        result = run_sweep(
            cheap_base(),
            axes={"loss_rate": [0.0, 0.05]},
            replications=2,
            max_workers=1,
            cache=DwellCurveCache(),
            jsonl_path=str(path),
        )
        lines = path.read_text().strip().splitlines()
        assert len(lines) == result.run_count == 4
        rows = [json.loads(line) for line in lines]
        assert {row["cell"] for row in rows} == {c.name for c in result.cells}
        for row in rows:
            assert row["ok"] is True
            assert "qoc" in row and "seed" in row

    def test_thread_pool_matches_serial_cells(self):
        serial = run_sweep(
            cheap_base(), replications=2, max_workers=1, cache=DwellCurveCache()
        )
        threaded = run_sweep(
            cheap_base(), replications=2, max_workers=2, cache=DwellCurveCache()
        )
        assert serial.cells[0].metrics["qoc"]["mean"] == pytest.approx(
            threaded.cells[0].metrics["qoc"]["mean"]
        )

    def test_process_executor_smoke(self):
        cache = DwellCurveCache()
        # wait_step=3 is used nowhere else, so the (forked) workers
        # cannot have inherited these measurements and must ship them.
        result = run_sweep(
            cheap_base(disturbance="sporadic", wait_step=3),
            replications=2,
            executor="process",
            max_workers=2,
            cache=cache,
        )
        assert result.run_count == 2
        assert result.cells[0].failures == 0
        # worker measurements were merged back into the parent cache
        assert len(cache) > 0

    def test_failed_cells_are_counted_not_raised(self):
        # deadline_scale tiny enough to make the allocation infeasible
        result = run_sweep(
            cheap_base(),
            axes={"deadline_scale": [1e-3]},
            replications=2,
            max_workers=1,
            cache=DwellCurveCache(),
        )
        (cell,) = result.cells
        assert cell.failures == 2
        assert all(not row["ok"] for row in result.rows)
        assert "failed_stage" in result.rows[0]

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            run_sweep(cheap_base(), executor="fiber", cache=DwellCurveCache())

    def test_to_dict_is_json_safe(self):
        result = run_sweep(
            cheap_base(), replications=1, max_workers=1, cache=DwellCurveCache()
        )
        text = json.dumps(result.to_dict())
        assert "sweep-base" in text
        assert "report" not in text  # only data, no rendered strings


def _crash_on_seed(monkeypatch, crash_seed):
    """Patch ``DesignStudy.run`` to raise for one replication seed.

    A RuntimeError is *not* one of the domain errors the stage runner
    converts into a failed StudyResult — it used to propagate out of
    ``future.result()`` and abort the whole sweep."""
    real_run = DesignStudy.run

    def run(self):
        if self.scenario.seed == crash_seed:
            raise RuntimeError("injected crash")
        return real_run(self)

    monkeypatch.setattr(DesignStudy, "run", run)


class TestCrashProofReplication:
    def test_serial_crash_becomes_worker_row(self, monkeypatch):
        _crash_on_seed(monkeypatch, crash_seed=1)
        result = run_sweep(
            cheap_base(disturbance="sporadic", horizon=6.0),
            replications=3,
            max_workers=1,
            cache=DwellCurveCache(),
        )
        assert result.run_count == 3  # the crash lost no landed rows
        (cell,) = result.cells
        assert cell.runs == 3 and cell.failures == 1
        crashed = [row for row in result.rows if not row["ok"]]
        assert len(crashed) == 1
        assert crashed[0]["failed_stage"] == "worker"
        assert "RuntimeError" in crashed[0]["detail"]
        assert crashed[0]["seed"] == 1
        # the two healthy replications still aggregate, and the crash
        # contributes no synthetic values to any metric (duration incl.)
        assert cell.metrics["qoc"]["n"] == 2
        assert cell.metrics["duration"]["n"] == 2
        assert cell.metrics["duration"]["min"] > 0.0

    def test_thread_pool_crash_keeps_every_cell(self, monkeypatch):
        _crash_on_seed(monkeypatch, crash_seed=0)
        result = run_sweep(
            cheap_base(),
            axes={"loss_rate": [0.0, 0.05]},
            replications=2,
            max_workers=2,
            cache=DwellCurveCache(),
        )
        assert result.run_count == 4
        assert {cell.failures for cell in result.cells} == {1}
        for cell in result.cells:
            assert cell.runs == 2
            assert cell.metrics["qoc"]["n"] == 1

    def test_crash_row_is_streamed_to_jsonl(self, monkeypatch, tmp_path):
        _crash_on_seed(monkeypatch, crash_seed=0)
        path = tmp_path / "rows.jsonl"
        run_sweep(
            cheap_base(),
            replications=2,
            max_workers=1,
            cache=DwellCurveCache(),
            jsonl_path=str(path),
        )
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == 2
        bad = next(row for row in rows if not row["ok"])
        assert bad["failed_stage"] == "worker"


class TestJsonlPathHandling:
    def test_parent_directories_are_created(self, tmp_path):
        path = tmp_path / "out" / "deep" / "rows.jsonl"
        run_sweep(
            cheap_base(),
            replications=1,
            max_workers=1,
            cache=DwellCurveCache(),
            jsonl_path=str(path),
        )
        assert path.exists()

    def test_stream_is_utf8(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        run_sweep(
            cheap_base(),
            replications=1,
            max_workers=1,
            cache=DwellCurveCache(),
            jsonl_path=str(path),
        )
        # decodes as UTF-8 regardless of platform default encoding
        rows = path.read_bytes().decode("utf-8").strip().splitlines()
        assert json.loads(rows[0])["round"] == 0


class TestKeepResults:
    def test_keep_results_false_still_aggregates(self):
        result = run_sweep(
            cheap_base(),
            replications=2,
            max_workers=1,
            cache=DwellCurveCache(),
            keep_results=False,
        )
        assert result.results == []
        assert result.run_count == 2
        assert result.cells[0].metrics["qoc"]["n"] == 2

    def test_rows_carry_round_field(self):
        result = run_sweep(
            cheap_base(), replications=2, max_workers=1, cache=DwellCurveCache()
        )
        assert all(row["round"] == 0 for row in result.rows)


class TestExpandCells:
    def test_cells_are_seed_free(self):
        cells = expand_cells(cheap_base(), axes={"loss_rate": [0.0, 0.1]})
        assert len(cells) == 2
        assert all(s.seed == 0 for _, s in cells)
        assert "#seed" not in cells[0][0]


class TestRunManyProcess:
    def test_results_in_input_order(self):
        scenarios = [
            cheap_base().derive(seed=s, disturbance="sporadic") for s in range(3)
        ]
        results = run_many(
            scenarios, executor="process", max_workers=2, cache=DwellCurveCache()
        )
        assert [r.scenario.seed for r in results] == [0, 1, 2]
        assert all(r.ok for r in results)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            run_many([cheap_base()], executor="fiber")

    def test_registry_names_resolve_in_parent(self):
        results = run_many(
            ["paper-table1"], executor="process", max_workers=2
        )
        assert results[0].slot_count == 3
