"""Unit tests for repro.core.schedulability (paper Section IV)."""

import math

import pytest

from repro.core.schedulability import (
    AnalyzedApplication,
    UnschedulableError,
    analyze_application,
    analyze_slot,
    blocking_term,
    interference_utilization,
    is_slot_schedulable,
    max_wait_closed_form,
    max_wait_fixed_point,
    max_wait_lower_bound,
    split_by_priority,
)
from repro.core.timing_params import PAPER_TABLE_I, TimingParameters


def app(name, r, deadline, xi_tt=0.3, xi_et=3.0, xi_m=0.8, k_p=0.5, xi_m_mono=None):
    if xi_m_mono is None:
        xi_m_mono = 1.25 * xi_m
    params = TimingParameters(
        name=name,
        min_inter_arrival=r,
        deadline=deadline,
        xi_tt=xi_tt,
        xi_et=xi_et,
        xi_m=xi_m,
        k_p=k_p,
        xi_m_mono=xi_m_mono,
    )
    return AnalyzedApplication.from_params(params)


class TestUtilizationAndBlocking:
    def test_interference_utilization(self):
        apps = [app("A", 10.0, 5.0, xi_m=1.0), app("B", 20.0, 6.0, xi_m=2.0)]
        assert interference_utilization(apps) == pytest.approx(1.0 / 10 + 2.0 / 20)

    def test_blocking_is_max_dwell(self):
        apps = [app("A", 10.0, 5.0, xi_m=1.0), app("B", 20.0, 6.0, xi_m=2.0)]
        assert blocking_term(apps) == pytest.approx(2.0)

    def test_blocking_empty_is_zero(self):
        assert blocking_term([]) == 0.0


class TestMaxWaitClosedForm:
    def test_no_sharers_means_no_wait(self):
        assert max_wait_closed_form([], []) == 0.0

    def test_only_lower_priority_gives_blocking(self):
        lower = [app("L", 10.0, 8.0, xi_m=1.5)]
        assert max_wait_closed_form(lower, []) == pytest.approx(1.5)

    def test_matches_paper_c6(self):
        """k_hat_wait,6 = 0.64 / (1 - 0.64/15) = 0.669 (paper Sec. V)."""
        table = {p.name: AnalyzedApplication.from_params(p) for p in PAPER_TABLE_I}
        wait = max_wait_closed_form([], [table["C3"]])
        assert wait == pytest.approx(0.669, abs=5e-4)

    def test_overload_raises(self):
        higher = [app("H", 1.0, 1.0, xi_m=0.8, xi_et=3.0, k_p=0.5, xi_m_mono=1.2)]
        # m = 0.8/1.0 < 1 fine; push over with two apps
        higher2 = higher + [app("H2", 1.0, 0.9, xi_m=0.5, xi_m_mono=0.9)]
        with pytest.raises(UnschedulableError, match="m="):
            max_wait_closed_form([], higher2)

    def test_bounds_bracket_fixed_point(self):
        lower = [app("L", 30.0, 20.0, xi_m=1.2)]
        higher = [app("H1", 8.0, 4.0, xi_m=0.9), app("H2", 12.0, 5.0, xi_m=1.1)]
        lo = max_wait_lower_bound(lower, higher)
        hi = max_wait_closed_form(lower, higher)
        exact = max_wait_fixed_point(lower, higher)
        assert lo <= exact + 1e-9
        assert exact <= hi + 1e-9


class TestMaxWaitFixedPoint:
    def test_fixed_point_satisfies_equation(self):
        lower = [app("L", 30.0, 20.0, xi_m=1.2)]
        higher = [app("H1", 8.0, 4.0, xi_m=0.9), app("H2", 12.0, 5.0, xi_m=1.1)]
        wait = max_wait_fixed_point(lower, higher)
        rhs = blocking_term(lower) + sum(
            math.ceil(wait / h.min_inter_arrival - 1e-12) * h.max_dwell
            for h in higher
        )
        assert wait == pytest.approx(rhs)

    def test_no_interference_equals_blocking(self):
        lower = [app("L", 10.0, 9.0, xi_m=2.0)]
        assert max_wait_fixed_point(lower, []) == pytest.approx(2.0)

    def test_never_exceeds_closed_form(self):
        lower = [app("L", 40.0, 25.0, xi_m=2.0)]
        higher = [app(f"H{i}", 5.0 + i, 3.0 + 0.1 * i, xi_m=0.4) for i in range(4)]
        assert max_wait_fixed_point(lower, higher) <= max_wait_closed_form(
            lower, higher
        )


class TestAnalyzeApplication:
    def test_alone_on_slot_gets_tt_response(self):
        single = app("A", 10.0, 5.0, xi_tt=0.3)
        result = analyze_application(single, [])
        assert result.max_wait == 0.0
        assert result.worst_response == pytest.approx(0.3)
        assert result.schedulable

    def test_overloaded_slot_reports_infinity(self):
        subject = app("A", 10.0, 9.0)
        higher = [
            app("H1", 1.0, 1.0, xi_m=0.6, xi_m_mono=0.9),
            app("H2", 1.0, 0.9, xi_m=0.6, xi_m_mono=0.9),
        ]
        result = analyze_application(subject, higher)
        assert math.isinf(result.worst_response)
        assert not result.schedulable

    def test_methods_agree_on_schedulability_direction(self):
        """Closed form is an upper bound, so it can only be more
        pessimistic than the exact fixed point."""
        subject = app("A", 30.0, 9.0)
        sharers = [app("H", 6.0, 3.0, xi_m=1.0), app("L", 40.0, 20.0, xi_m=2.0)]
        closed = analyze_application(subject, sharers, method="closed-form")
        exact = analyze_application(subject, sharers, method="fixed-point")
        assert exact.worst_response <= closed.worst_response + 1e-9

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            analyze_application(app("A", 10.0, 5.0), [], method="oracle")


class TestPriorities:
    def test_split_by_deadline(self):
        subject = app("M", 10.0, 5.0)
        hi = app("H", 10.0, 2.0)
        lo = app("L", 10.0, 8.0)
        higher, lower = split_by_priority(subject, [lo, hi])
        assert [a.name for a in higher] == ["H"]
        assert [a.name for a in lower] == ["L"]

    def test_deadline_tie_broken_by_name(self):
        subject = app("B", 10.0, 5.0)
        other = app("A", 10.0, 5.0)
        higher, lower = split_by_priority(subject, [other])
        assert [a.name for a in higher] == ["A"]
        assert lower == []


class TestSlotAnalysis:
    def test_slot_schedulable_when_all_meet_deadlines(self):
        apps = [app("A", 20.0, 8.0), app("B", 25.0, 10.0, xi_m=0.5)]
        assert is_slot_schedulable(apps)
        results = analyze_slot(apps)
        assert {r.name for r in results} == {"A", "B"}

    def test_slot_unschedulable_when_blocking_too_long(self):
        tight = app("T", 5.0, 0.5, xi_tt=0.3, xi_m=0.4, k_p=0.2, xi_m_mono=0.5)
        blocker = app("B", 50.0, 30.0, xi_m=5.0, xi_et=40.0, k_p=2.0, xi_m_mono=6.0)
        assert not is_slot_schedulable([tight, blocker])
