"""Property-based tests for the control substrate (hypothesis)."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.control.discretization import discretize, discretize_with_delay
from repro.control.dare import dlqr, solve_dare, dare_residual
from repro.control.lti import ContinuousStateSpace
from repro.utils.linalg import is_schur_stable, spectral_radius


@st.composite
def continuous_systems(draw, n_max=4):
    """Random continuous LTI systems with bounded entries."""
    n = draw(st.integers(min_value=1, max_value=n_max))
    a = draw(
        arrays(
            dtype=float,
            shape=(n, n),
            elements=st.floats(min_value=-5.0, max_value=5.0),
        )
    )
    b = draw(
        arrays(
            dtype=float,
            shape=(n, 1),
            elements=st.floats(min_value=-3.0, max_value=3.0),
        )
    )
    assume(np.linalg.norm(b) > 1e-3)
    return ContinuousStateSpace(a=a, b=b)


class TestDiscretizationProperties:
    @given(sys=continuous_systems(), h=st.floats(min_value=0.001, max_value=0.2))
    @settings(max_examples=100, deadline=None)
    def test_gamma_split_invariant(self, sys, h):
        """Gamma0(d) + Gamma1(d) equals the delay-free Gamma for all d."""
        full = discretize(sys, period=h)
        for frac in (0.1, 0.5, 0.9):
            model = discretize_with_delay(sys, period=h, delay=frac * h)
            np.testing.assert_allclose(
                model.gamma0 + model.gamma1, full.gamma0, atol=1e-9, rtol=1e-6
            )

    @given(sys=continuous_systems(), h=st.floats(min_value=0.001, max_value=0.2))
    @settings(max_examples=100, deadline=None)
    def test_phi_spectrum_matches_exponential(self, sys, h):
        """Discrete poles are exp(h * continuous poles)."""
        model = discretize(sys, period=h)
        discrete = np.linalg.eigvals(model.phi)
        continuous = np.exp(h * np.linalg.eigvals(sys.a))
        # Compare as multisets via sorted absolute values (robust ordering).
        # Tolerance accounts for defective (near-nilpotent) matrices whose
        # eigenvalues are intrinsically eps^(1/n)-sensitive.
        np.testing.assert_allclose(
            np.sort(np.abs(discrete)), np.sort(np.abs(continuous)), rtol=1e-3, atol=1e-3
        )

    @given(
        sys=continuous_systems(),
        h=st.floats(min_value=0.001, max_value=0.2),
        frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_semigroup_property(self, sys, h, frac):
        """Stepping h with split inputs equals stepping d then h - d."""
        d = frac * h
        model = discretize_with_delay(sys, period=h, delay=d)
        x0 = np.ones(sys.n_states)
        u_prev, u_new = np.array([0.7]), np.array([-0.4])
        stepped = model.step(x0, u_new, u_prev)
        lead = discretize(sys, period=d) if d > 0 else None
        if d == 0:
            x_mid = x0
        else:
            x_mid = lead.phi @ x0 + lead.gamma0 @ u_prev
        if h - d > 0:
            trail = discretize(sys, period=h - d)
            reference = trail.phi @ x_mid + trail.gamma0 @ u_new
        else:
            reference = x_mid
        np.testing.assert_allclose(stepped, reference, atol=1e-8, rtol=1e-6)


@st.composite
def lqr_problems(draw):
    sys = draw(continuous_systems(n_max=3))
    h = draw(st.floats(min_value=0.005, max_value=0.1))
    model = discretize(sys, period=h)
    # Reject numerically hopeless cases (uncontrollable unstable modes).
    n = model.n_states
    ctrb = np.hstack(
        [np.linalg.matrix_power(model.phi, k) @ model.gamma0 for k in range(n)]
    )
    assume(np.linalg.matrix_rank(ctrb, tol=1e-7) == n)
    assume(spectral_radius(model.phi) < 50.0)
    return model


class TestLqrProperties:
    @given(model=lqr_problems())
    @settings(max_examples=60, deadline=None)
    def test_lqr_stabilizes_controllable_systems(self, model):
        n = model.n_states
        try:
            result = dlqr(model.phi, model.gamma0, np.eye(n), np.eye(1))
        except Exception:
            # Extremely ill-conditioned random systems may defeat the
            # solver; that is a numerics property, not a logic bug.
            assume(False)
        assert is_schur_stable(result.closed_loop)

    @given(model=lqr_problems())
    @settings(max_examples=60, deadline=None)
    def test_dare_solution_is_psd_fixed_point(self, model):
        n = model.n_states
        try:
            p = solve_dare(model.phi, model.gamma0, np.eye(n), np.eye(1))
        except Exception:
            assume(False)
        assert np.min(np.linalg.eigvalsh(p)) >= -1e-8
        residual = dare_residual(model.phi, model.gamma0, np.eye(n), np.eye(1), p)
        assert residual <= 1e-6 * max(1.0, float(np.max(np.abs(p))))
