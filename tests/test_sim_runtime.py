"""Unit tests for the threshold-switching runtime state machine."""

import pytest

from repro.sim.arbiter import TTSlotArbiter
from repro.sim.runtime import CommState, SwitchingRuntime


def make_runtime(name="A", deadline=5.0, slot=0, arbiter=None):
    arbiter = arbiter or TTSlotArbiter()
    runtime = SwitchingRuntime(
        name=name, threshold=0.1, arbiter=arbiter, deadline=deadline
    )
    arbiter.register(runtime.client(), slot)
    return runtime, arbiter


class TestStateMachine:
    def test_starts_steady(self):
        runtime, _ = make_runtime()
        assert runtime.state is CommState.ET_STEADY
        assert not runtime.uses_tt()

    def test_disturbance_grants_free_slot_immediately(self):
        runtime, _ = make_runtime()
        runtime.on_disturbance(0.0)
        state = runtime.update(0.0, norm=1.0)
        assert state is CommState.TT_HOLDING
        assert runtime.uses_tt()

    def test_settling_releases_slot(self):
        runtime, arbiter = make_runtime()
        runtime.on_disturbance(0.0)
        runtime.update(0.0, norm=1.0)
        runtime.update(0.5, norm=0.05)
        assert runtime.state is CommState.ET_STEADY
        assert arbiter.holder_of_slot(0) is None
        assert runtime.response_times() == [0.5]

    def test_waits_when_slot_busy(self):
        arbiter = TTSlotArbiter()
        first, _ = make_runtime("A", deadline=2.0, arbiter=arbiter)
        second, _ = make_runtime("B", deadline=6.0, arbiter=arbiter)
        first.on_disturbance(0.0)
        first.update(0.0, norm=1.0)
        second.on_disturbance(0.0)
        assert second.update(0.0, norm=1.0) is CommState.WAITING

    def test_waiter_promoted_after_release(self):
        arbiter = TTSlotArbiter()
        first, _ = make_runtime("A", deadline=2.0, arbiter=arbiter)
        second, _ = make_runtime("B", deadline=6.0, arbiter=arbiter)
        first.on_disturbance(0.0)
        first.update(0.0, norm=1.0)
        second.on_disturbance(0.0)
        second.update(0.0, norm=1.0)
        first.update(0.4, norm=0.01)  # A settles, releases
        arbiter.grant_pending()
        assert second.update(0.42, norm=0.8) is CommState.TT_HOLDING
        record = second.records[-1]
        assert record.wait_time == pytest.approx(0.42)

    def test_settles_while_waiting(self):
        arbiter = TTSlotArbiter()
        first, _ = make_runtime("A", deadline=2.0, arbiter=arbiter)
        second, _ = make_runtime("B", deadline=6.0, arbiter=arbiter)
        first.on_disturbance(0.0)
        first.update(0.0, norm=1.0)
        second.on_disturbance(0.0)
        second.update(0.0, norm=0.5)
        # B's ET controller rejects the disturbance on its own.
        assert second.update(1.0, norm=0.05) is CommState.ET_STEADY
        assert second.response_times() == [1.0]
        # The queued request must be gone: releasing A must not grant B.
        first.update(1.2, norm=0.01)
        assert arbiter.grant_pending() == []

    def test_norm_triggered_episode_without_explicit_disturbance(self):
        runtime, _ = make_runtime()
        runtime.update(1.0, norm=0.5)
        assert runtime.state is CommState.TT_HOLDING
        assert runtime.records[-1].arrival == 1.0

    def test_deadline_misses_counted(self):
        runtime, _ = make_runtime(deadline=0.3)
        runtime.on_disturbance(0.0)
        runtime.update(0.0, norm=1.0)
        runtime.update(0.5, norm=0.01)  # response 0.5 > deadline 0.3
        assert runtime.deadline_misses() == 1

    def test_multiple_episodes(self):
        runtime, _ = make_runtime()
        for start in (0.0, 10.0):
            runtime.on_disturbance(start)
            runtime.update(start, norm=1.0)
            runtime.update(start + 0.4, norm=0.02)
        assert runtime.response_times() == [pytest.approx(0.4)] * 2
