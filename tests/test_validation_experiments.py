"""Tests for the E9/E10 validation experiments."""

import pytest

from repro.experiments import (
    run_bound_validation,
    run_pure_et_baseline,
    simulation_applications,
)


@pytest.fixture(scope="module")
def sim_apps():
    return simulation_applications(wait_step=4)


class TestBoundValidation:
    @pytest.fixture(scope="class")
    def result(self, sim_apps):
        return run_bound_validation(applications=sim_apps, seeds=3, horizon=80.0)

    def test_analysis_is_sound(self, result):
        """The central soundness claim: no simulated response exceeds the
        certified worst case."""
        assert result.sound()

    def test_every_app_reported(self, result, sim_apps):
        assert {row[0] for row in result.rows} == {a.name for a in sim_apps}

    def test_bounds_are_finite(self, result):
        for __, measured, bound in result.rows:
            assert bound < float("inf")
            assert measured <= bound + 1e-9

    def test_report_renders(self, result):
        assert "SOUND" in result.report()


class TestPureEtBaseline:
    @pytest.fixture(scope="class")
    def result(self, sim_apps):
        return run_pure_et_baseline(applications=sim_apps)

    def test_pure_et_misses_a_deadline(self, result):
        """The paper's premise: ET alone is not enough."""
        assert result.pure_et_misses

    def test_hybrid_meets_all_deadlines(self, result):
        assert result.hybrid_misses == []

    def test_hybrid_never_slower_than_pure_et(self, result):
        for __, pure, hybrid, _deadline in result.rows:
            assert hybrid <= pure + 1e-9

    def test_report_renders(self, result):
        text = result.report()
        assert "pure-ET deadline misses" in text
