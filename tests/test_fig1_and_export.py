"""Tests for the Figure 1 demonstration and trace CSV export."""

import os

import pytest

from repro.experiments.fig1 import run_fig1
from repro.sim.runtime import CommState


@pytest.fixture(scope="module")
def fig1_result():
    return run_fig1()


class TestFig1:
    def test_every_scheme_transition_occurs(self, fig1_result):
        kinds = {(old, new) for _t, _a, old, new in fig1_result.transitions}
        assert ("et-steady", "tt-holding") in kinds  # free slot granted
        assert ("et-steady", "waiting") in kinds  # busy slot: wait in ET
        assert ("tt-holding", "et-steady") in kinds  # dwell done: release

    def test_waiting_observed(self, fig1_result):
        assert fig1_result.saw_waiting()

    def test_non_preemption(self, fig1_result):
        """The motor's disturbance arrives while the servo holds the slot
        but never evicts it: the servo's TT interval is contiguous."""
        assert len(fig1_result.trace["servo"].tt_intervals()) == 1

    def test_all_deadlines_met(self, fig1_result):
        assert fig1_result.trace.all_deadlines_met()

    def test_report_renders(self, fig1_result):
        text = fig1_result.report()
        assert "tt-holding" in text and "waiting" in text


class TestCsvExport:
    def test_app_trace_csv_shape(self, fig1_result):
        csv = fig1_result.trace["servo"].to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "time,norm,state,delay"
        assert len(lines) == len(fig1_result.trace["servo"].times) + 1
        first = lines[1].split(",")
        assert len(first) == 4
        assert first[2] in {s.value for s in CommState}

    def test_write_csv_files(self, fig1_result, tmp_path):
        paths = fig1_result.trace.write_csv(tmp_path)
        assert len(paths) == 2
        for path in paths:
            assert os.path.exists(path)
            with open(path) as handle:
                assert handle.readline().startswith("time,")
