"""Unit tests for repro.core.allocation."""

import pytest

from repro.core.allocation import (
    compare_resource_usage,
    dedicated_allocation,
    first_fit_allocation,
    make_analyzed,
    optimal_allocation,
)
from repro.core.schedulability import is_slot_schedulable
from repro.core.timing_params import PAPER_TABLE_I, TimingParameters


def params(name, r, deadline, xi_tt=0.3, xi_et=3.0, xi_m=0.8, k_p=0.5, xi_m_mono=1.0):
    return TimingParameters(
        name=name,
        min_inter_arrival=r,
        deadline=deadline,
        xi_tt=xi_tt,
        xi_et=xi_et,
        xi_m=xi_m,
        k_p=k_p,
        xi_m_mono=xi_m_mono,
    )


@pytest.fixture(scope="module")
def paper_apps():
    return make_analyzed(PAPER_TABLE_I, "non-monotonic")


class TestFirstFit:
    def test_every_slot_schedulable(self, paper_apps):
        result = first_fit_allocation(paper_apps)
        assert result.all_schedulable()
        for slot in result.slots:
            assert is_slot_schedulable(slot)

    def test_every_app_placed_exactly_once(self, paper_apps):
        result = first_fit_allocation(paper_apps)
        names = [name for slot in result.slot_names for name in slot]
        assert sorted(names) == sorted(p.name for p in PAPER_TABLE_I)

    def test_priority_order_inside_run(self):
        # Two trivially compatible apps end up sharing the first slot.
        apps = make_analyzed(
            [
                params("A", 100.0, 50.0, xi_m=0.5),
                params("B", 100.0, 60.0, xi_m=0.5),
            ]
        )
        result = first_fit_allocation(apps)
        assert result.slot_count == 1
        assert result.slot_names == [["A", "B"]]

    def test_incompatible_apps_get_separate_slots(self):
        apps = make_analyzed(
            [
                params("A", 10.0, 0.5, xi_tt=0.4, xi_m=0.45, k_p=0.2, xi_m_mono=0.5),
                params("B", 50.0, 30.0, xi_m=5.0, xi_et=40.0, k_p=2.0, xi_m_mono=6.0),
            ]
        )
        result = first_fit_allocation(apps)
        assert result.slot_count == 2

    def test_unschedulable_alone_raises(self):
        apps = make_analyzed(
            [params("A", 10.0, 0.2, xi_tt=0.3, xi_m=0.4, k_p=0.1, xi_m_mono=0.5)]
        )
        with pytest.raises(ValueError, match="dedicated TT slot"):
            first_fit_allocation(apps)

    def test_max_slots_cap(self, paper_apps):
        with pytest.raises(ValueError, match="more than the available"):
            first_fit_allocation(paper_apps, max_slots=2)

    def test_slot_of_lookup(self, paper_apps):
        result = first_fit_allocation(paper_apps)
        for index, slot in enumerate(result.slot_names):
            for name in slot:
                assert result.slot_of(name) == index
        with pytest.raises(KeyError):
            result.slot_of("C99")


class TestDedicated:
    def test_one_slot_per_app(self, paper_apps):
        result = dedicated_allocation(paper_apps)
        assert result.slot_count == len(paper_apps)
        assert all(len(slot) == 1 for slot in result.slots)
        assert result.all_schedulable()


class TestOptimal:
    def test_matches_first_fit_on_paper_set(self, paper_apps):
        """The heuristic happens to be optimal on the paper's six apps."""
        heuristic = first_fit_allocation(paper_apps)
        optimal = optimal_allocation(paper_apps)
        assert optimal.slot_count == heuristic.slot_count == 3
        assert optimal.all_schedulable()

    def test_never_worse_than_first_fit(self):
        apps = make_analyzed(
            [
                params("A", 30.0, 4.0, xi_m=1.2, xi_m_mono=1.5),
                params("B", 30.0, 5.0, xi_m=1.2, xi_m_mono=1.5),
                params("C", 30.0, 6.0, xi_m=1.2, xi_m_mono=1.5),
                params("D", 30.0, 7.0, xi_m=1.2, xi_m_mono=1.5),
            ]
        )
        assert (
            optimal_allocation(apps).slot_count
            <= first_fit_allocation(apps).slot_count
        )

    def test_refuses_large_instances(self, paper_apps):
        with pytest.raises(ValueError, match="exponential"):
            optimal_allocation(paper_apps * 2, max_apps=10)


class TestComparison:
    def test_paper_resource_gap(self):
        non_mono = first_fit_allocation(make_analyzed(PAPER_TABLE_I, "non-monotonic"))
        mono = first_fit_allocation(
            make_analyzed(PAPER_TABLE_I, "conservative-monotonic")
        )
        gap = compare_resource_usage(non_mono, mono)
        assert gap == pytest.approx(2.0 / 3.0)  # the paper's 67 %
