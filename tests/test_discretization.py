"""Unit tests for repro.control.discretization.

The ZOH-with-delay construction is cross-checked against brute-force
numerical integration and against its algebraic invariants.
"""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.control.discretization import discretize, discretize_with_delay, zoh_integrals
from repro.control.lti import ContinuousStateSpace


def double_integrator():
    return ContinuousStateSpace(a=np.array([[0.0, 1.0], [0.0, 0.0]]), b=np.array([[0.0], [1.0]]))


def damped_system():
    return ContinuousStateSpace(
        a=np.array([[-1.0, 2.0], [0.0, -3.0]]), b=np.array([[0.5], [1.0]])
    )


class TestZohIntegrals:
    def test_phi_is_matrix_exponential(self):
        sys = damped_system()
        phi, _ = zoh_integrals(sys.a, sys.b, 0.2)
        np.testing.assert_allclose(phi, expm(sys.a * 0.2), atol=1e-12)

    def test_gamma_matches_quadrature(self):
        sys = damped_system()
        tau = 0.3
        _, gamma = zoh_integrals(sys.a, sys.b, tau)
        # Brute-force integral of e^{As} B ds.
        ss = np.linspace(0.0, tau, 20001)
        vals = np.stack([expm(sys.a * s) @ sys.b for s in ss])
        ref = np.trapezoid(vals, ss, axis=0)
        np.testing.assert_allclose(gamma, ref, atol=1e-8)

    def test_singular_a_supported(self):
        sys = double_integrator()
        phi, gamma = zoh_integrals(sys.a, sys.b, 1.0)
        # Known closed forms for the double integrator.
        np.testing.assert_allclose(phi, [[1.0, 1.0], [0.0, 1.0]], atol=1e-12)
        np.testing.assert_allclose(gamma, [[0.5], [1.0]], atol=1e-12)

    def test_zero_tau(self):
        sys = damped_system()
        phi, gamma = zoh_integrals(sys.a, sys.b, 0.0)
        np.testing.assert_allclose(phi, np.eye(2), atol=1e-14)
        np.testing.assert_allclose(gamma, np.zeros((2, 1)), atol=1e-14)

    def test_rejects_negative_tau(self):
        sys = damped_system()
        with pytest.raises(ValueError):
            zoh_integrals(sys.a, sys.b, -0.1)


class TestDiscretizeWithDelay:
    def test_zero_delay_has_no_gamma1(self):
        model = discretize(damped_system(), period=0.1)
        np.testing.assert_allclose(model.gamma1, 0.0, atol=1e-14)

    def test_full_delay_has_no_gamma0(self):
        model = discretize_with_delay(damped_system(), period=0.1, delay=0.1)
        np.testing.assert_allclose(model.gamma0, 0.0, atol=1e-14)

    def test_gamma_split_sums_to_full_integral(self):
        sys = damped_system()
        full = discretize(sys, period=0.1)
        for delay in [0.01, 0.05, 0.09]:
            model = discretize_with_delay(sys, period=0.1, delay=delay)
            np.testing.assert_allclose(
                model.gamma0 + model.gamma1,
                full.gamma0,
                atol=1e-12,
                err_msg=f"delay={delay}",
            )

    def test_phi_independent_of_delay(self):
        sys = damped_system()
        ref = discretize(sys, period=0.1).phi
        for delay in [0.0, 0.03, 0.1]:
            model = discretize_with_delay(sys, period=0.1, delay=delay)
            np.testing.assert_allclose(model.phi, ref, atol=1e-12)

    def test_matches_brute_force_simulation(self):
        """One discrete step must equal continuous integration with the
        delayed input switch."""
        sys = damped_system()
        h, d = 0.1, 0.04
        model = discretize_with_delay(sys, period=h, delay=d)
        x0 = np.array([1.0, -0.5])
        u_prev, u_new = np.array([0.7]), np.array([-1.3])
        # Continuous reference: u_prev over [0, d), u_new over [d, h).
        x_mid = expm(sys.a * d) @ x0 + zoh_integrals(sys.a, sys.b, d)[1] @ u_prev
        x_ref = (
            expm(sys.a * (h - d)) @ x_mid
            + zoh_integrals(sys.a, sys.b, h - d)[1] @ u_new
        )
        np.testing.assert_allclose(model.step(x0, u_new, u_prev), x_ref, atol=1e-12)

    def test_carries_plant_metadata(self):
        sys = ContinuousStateSpace(
            a=-np.eye(1), b=np.ones((1, 1)), name="tank"
        )
        model = discretize_with_delay(sys, period=0.5, delay=0.1)
        assert model.name == "tank"
        assert model.period == 0.5
        assert model.delay == 0.1

    def test_rejects_delay_beyond_period(self):
        with pytest.raises(ValueError):
            discretize_with_delay(damped_system(), period=0.1, delay=0.11)
