"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in (
            ["fig3"],
            ["fig4"],
            ["table1", "--paper-only"],
            ["allocation"],
            ["fig5", "--plots"],
            ["ablations", "--which", "segments"],
            ["validate", "--seeds", "2"],
            ["sensitivity", "--scales", "1.0", "2.0"],
        ):
            args = parser.parse_args(command)
            assert args.command == command[0]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    def test_table1_paper_only(self, capsys):
        assert main(["table1", "--paper-only"]) == 0
        out = capsys.readouterr().out
        assert "C3" in out and "Table I" in out

    def test_allocation(self, capsys):
        assert main(["allocation"]) == 0
        out = capsys.readouterr().out
        assert "67% more TT slots" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity", "--scales", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "sensitivity" in out.lower()
        assert "3" in out and "5" in out
