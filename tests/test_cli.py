"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.pipeline import StudyResult


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in (
            ["fig3"],
            ["fig4"],
            ["table1", "--paper-only"],
            ["allocation"],
            ["fig5", "--plots"],
            ["ablations", "--which", "segments"],
            ["validate", "--seeds", "2"],
            ["sensitivity", "--scales", "1.0", "2.0"],
        ):
            args = parser.parse_args(command)
            assert args.command == command[0]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    def test_table1_paper_only(self, capsys):
        assert main(["table1", "--paper-only"]) == 0
        out = capsys.readouterr().out
        assert "C3" in out and "Table I" in out

    def test_allocation(self, capsys):
        assert main(["allocation"]) == 0
        out = capsys.readouterr().out
        assert "67% more TT slots" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity", "--scales", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "sensitivity" in out.lower()
        assert "3" in out and "5" in out


#: Cheapest invocation of every subcommand (high stride, few seeds, the
#: analytic network) so the smoke sweep stays fast.
SMOKE_COMMANDS = [
    ["fig1"],
    ["fig3", "--wait-step", "16"],
    ["fig4", "--wait-step", "16"],
    ["table1", "--paper-only"],
    ["allocation"],
    ["fig5", "--analytic", "--wait-step", "16"],
    ["ablations", "--which", "fixed-point"],
    ["validate", "--seeds", "1", "--wait-step", "16"],
    ["sensitivity", "--scales", "1.0"],
    ["study", "--scenario", "paper-table1"],
]


class TestSmoke:
    """Every subcommand runs to completion and prints something."""

    @pytest.mark.parametrize(
        "argv", SMOKE_COMMANDS, ids=[argv[0] for argv in SMOKE_COMMANDS]
    )
    def test_subcommand_runs(self, argv, capsys):
        assert main(argv) == 0
        assert capsys.readouterr().out.strip()

    @pytest.mark.parametrize(
        "argv", SMOKE_COMMANDS, ids=[argv[0] for argv in SMOKE_COMMANDS]
    )
    def test_subcommand_runs_with_json(self, argv, capsys):
        assert main(argv + ["--json"]) == 0
        json.loads(capsys.readouterr().out)


class TestStudyCommand:
    def test_study_json_round_trips(self, capsys):
        assert main(["study", "--scenario", "paper-table1", "--json"]) == 0
        payload = capsys.readouterr().out
        result = StudyResult.from_json(payload)
        assert result.ok
        assert result.slot_count == 3
        assert result.to_dict() == json.loads(payload)

    def test_study_multiple_scenarios_emit_list(self, capsys):
        assert main(
            [
                "study",
                "--scenario", "paper-table1",
                "--scenario", "paper-table1-monotonic",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 2
        slots = [StudyResult.from_dict(item).slot_count for item in payload]
        assert slots == [3, 5]

    def test_study_list(self, capsys):
        assert main(["study", "--list"]) == 0
        out = capsys.readouterr().out
        assert "paper-table1" in out and "fig5-cosim" in out

    def test_study_default_scenario(self, capsys):
        assert main(["study"]) == 0
        assert "paper-table1" in capsys.readouterr().out

    def test_unknown_scenario_is_clean_error(self, capsys):
        assert main(["study", "--scenario", "no-such-scenario"]) == 2
        captured = capsys.readouterr()
        assert "unknown scenario" in captured.err
        assert "Traceback" not in captured.err

    def test_invalid_wait_step_is_clean_error(self, capsys):
        assert main(["fig3", "--wait-step", "0"]) == 2
        assert "wait_step" in capsys.readouterr().err

    def test_flags_accepted_before_subcommand(self, capsys):
        # top-level position (legacy) and post-subcommand position both work
        assert main(["--json", "table1", "--paper-only"]) == 0
        json.loads(capsys.readouterr().out)


class TestSweepCommand:
    SWEEP_ARGS = [
        "sweep",
        "--scenario", "multirate-cosim-analytic",
        "--replications", "2",
        "--wait-step", "4",
    ]

    def test_sweep_runs_and_reports(self, capsys):
        assert main(self.SWEEP_ARGS) == 0
        out = capsys.readouterr().out
        assert "Sweep of" in out and "QoC" in out

    def test_sweep_json_and_axes(self, capsys):
        assert (
            main(self.SWEEP_ARGS + ["--axis", "loss_rate=0,0.05", "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["cells"]) == 2
        assert len(payload["runs"]) == 4
        assert {run["seed"] for run in payload["runs"]} == {0, 1}

    def test_sweep_streams_jsonl(self, tmp_path, capsys):
        path = tmp_path / "runs.jsonl"
        assert main(self.SWEEP_ARGS + ["--output", str(path)]) == 0
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all("qoc" in json.loads(line) for line in lines)

    def test_sweep_bad_axis_is_clean_error(self, capsys):
        assert main(self.SWEEP_ARGS + ["--axis", "nonsense"]) == 2
        captured = capsys.readouterr()
        assert "--axis" in captured.err and "Traceback" not in captured.err

    def test_sweep_duplicate_axis_is_clean_error(self, capsys):
        argv = self.SWEEP_ARGS + ["--axis", "loss_rate=0", "--axis", "loss_rate=0.05"]
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert "given twice" in captured.err and "Traceback" not in captured.err

    def test_sweep_seed_axis_is_clean_error(self, capsys):
        assert main(self.SWEEP_ARGS + ["--axis", "seed=1,2"]) == 2
        assert "seed" in capsys.readouterr().err

    def test_sweep_unknown_scenario_is_clean_error(self, capsys):
        assert main(["sweep", "--scenario", "no-such"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_adaptive_sweep_runs_and_reports(self, capsys):
        argv = self.SWEEP_ARGS + [
            "--ci-target", "0.2", "--ci-relative",
            "--max-replications", "6",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "adaptive mode" in out and "stopped" in out

    def test_adaptive_sweep_json_carries_provenance(self, capsys):
        argv = self.SWEEP_ARGS + [
            "--ci-target", "0.2", "--ci-relative",
            "--max-replications", "6", "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "adaptive"
        assert payload["config"]["ci_target"] == 0.2
        assert all("stopped_reason" in cell for cell in payload["cells"])
        assert all("round" in run for run in payload["runs"])

    def test_adaptive_sweep_without_cap_is_clean_error(self, capsys):
        assert main(self.SWEEP_ARGS + ["--ci-target", "0.2"]) == 2
        captured = capsys.readouterr()
        assert "max_replications" in captured.err
        assert "Traceback" not in captured.err

    def test_ci_relative_without_target_is_clean_error(self, capsys):
        assert main(self.SWEEP_ARGS + ["--ci-relative"]) == 2
        assert "ci_relative" in capsys.readouterr().err


class TestStudySeed:
    def test_seed_threads_into_cosim_artifact(self, capsys):
        assert (
            main(
                [
                    "study",
                    "--scenario", "multirate-cosim-analytic",
                    "--wait-step", "4",
                    "--seed", "9",
                    "--json",
                ]
            )
            == 0
        )
        result = StudyResult.from_json(capsys.readouterr().out)
        assert result.scenario.seed == 9
        assert result.artifact("cosim")["seed"] == 9

    def test_process_executor_accepted(self, capsys):
        assert (
            main(
                [
                    "study",
                    "--scenario", "paper-table1",
                    "--scenario", "paper-table1-monotonic",
                    "--executor", "process",
                    "--jobs", "2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert [StudyResult.from_dict(p).slot_count for p in payload] == [3, 5]
