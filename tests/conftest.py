"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.control.plants import servo_rig
from repro.core.pwl import DwellCurve


@pytest.fixture(scope="session")
def servo_plant():
    """The default servo-rig plant definition."""
    return servo_rig()


@pytest.fixture(scope="session")
def stable_second_order():
    """A simple well-damped discrete 2x2 matrix for settling tests."""
    return np.array([[0.8, 0.1], [0.0, 0.7]])


@pytest.fixture()
def humped_curve():
    """A synthetic non-monotonic dwell curve (rise then fall)."""
    waits = np.linspace(0.0, 2.0, 21)
    dwells = 0.6 + 0.8 * np.sin(np.clip(waits / 0.6, 0, np.pi / 2))
    dwells = np.where(waits <= 0.6, dwells, np.maximum(0.0, 1.4 * (1 - (waits - 0.6) / 1.4)))
    return DwellCurve(waits=waits, dwells=dwells, xi_et=2.0)


@pytest.fixture()
def monotone_curve():
    """A synthetic monotone-decreasing dwell curve."""
    waits = np.linspace(0.0, 1.0, 11)
    dwells = np.maximum(0.0, 0.5 * (1.0 - waits))
    return DwellCurve(waits=waits, dwells=dwells, xi_et=1.0)
