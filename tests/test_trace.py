"""Unit tests for the trace recording utilities."""

import pytest

from repro.sim.runtime import CommState
from repro.sim.trace import AppTrace, SimulationTrace


def make_trace(states=None, norms=None, threshold=0.1, deadline=1.0):
    trace = AppTrace(name="app", threshold=threshold, deadline=deadline)
    states = states or [CommState.ET_STEADY] * 5
    norms = norms if norms is not None else [1.0, 0.5, 0.2, 0.05, 0.01]
    for k, (norm, state) in enumerate(zip(norms, states)):
        trace.append(k * 0.1, norm, state, 0.02)
    return trace


class TestAppTrace:
    def test_tt_intervals_single_block(self):
        states = [
            CommState.WAITING,
            CommState.TT_HOLDING,
            CommState.TT_HOLDING,
            CommState.ET_STEADY,
            CommState.ET_STEADY,
        ]
        trace = make_trace(states=states)
        intervals = trace.tt_intervals()
        assert len(intervals) == 1
        assert intervals[0] == pytest.approx((0.1, 0.3))

    def test_tt_interval_open_at_end(self):
        states = [CommState.ET_STEADY, CommState.ET_STEADY, CommState.TT_HOLDING]
        trace = make_trace(states=states, norms=[1.0, 0.5, 0.3])
        intervals = trace.tt_intervals()
        assert len(intervals) == 1
        assert intervals[0] == pytest.approx((0.2, 0.2))

    def test_multiple_tt_intervals(self):
        states = [
            CommState.TT_HOLDING,
            CommState.ET_STEADY,
            CommState.TT_HOLDING,
            CommState.TT_HOLDING,
            CommState.ET_STEADY,
        ]
        trace = make_trace(states=states)
        intervals = trace.tt_intervals()
        assert len(intervals) == 2
        assert intervals[0] == pytest.approx((0.0, 0.1))
        assert intervals[1] == pytest.approx((0.2, 0.4))

    def test_settling_time(self):
        trace = make_trace()
        assert trace.settling_time() == pytest.approx(0.3)

    def test_settling_none_when_ends_above(self):
        trace = make_trace(norms=[1.0, 0.5, 0.3, 0.2, 0.15])
        assert trace.settling_time() is None

    def test_deadline_met(self):
        trace = make_trace()
        trace.response_times = [0.5, 0.9]
        assert trace.deadline_met()
        trace.response_times = [0.5, 1.2]
        assert not trace.deadline_met()

    def test_ascii_plot_contains_markers(self):
        states = [CommState.TT_HOLDING] * 2 + [CommState.ET_STEADY] * 3
        trace = make_trace(states=states)
        art = trace.ascii_plot(width=20, height=6)
        assert "#" in art and "*" in art and "-" in art

    def test_max_delay(self):
        trace = make_trace()
        assert trace.max_delay() == pytest.approx(0.02)


class TestSimulationTrace:
    def test_duplicate_names_rejected(self):
        sim = SimulationTrace()
        sim.add(make_trace())
        with pytest.raises(ValueError, match="duplicate"):
            sim.add(make_trace())

    def test_all_deadlines_met(self):
        sim = SimulationTrace()
        good = make_trace()
        good.response_times = [0.4]
        sim.add(good)
        assert sim.all_deadlines_met()

    def test_summary_rows_sorted_and_complete(self):
        sim = SimulationTrace()
        for name in ("zeta", "alpha"):
            trace = make_trace()
            trace.name = name
            trace.response_times = [0.2]
            sim.add(trace)
        rows = sim.summary_rows()
        assert [row["app"] for row in rows] == ["alpha", "zeta"]
        assert all(row["worst_response"] == 0.2 for row in rows)
