"""Tests for adaptive Monte-Carlo sweeps (repro.pipeline.adaptive).

Unit tests drive :class:`AdaptiveScheduler` with synthetic rows (no
simulation), the integration tests run real co-sim sweeps on the cheap
two-plant multirate base and check determinism, executor parity, and
the budget-saving acceptance bar.
"""

import pytest

from repro.pipeline import DwellCurveCache, Scenario, get_scenario, run_sweep
from repro.pipeline.adaptive import AdaptiveScheduler
from repro.sim.stats import t_critical_95


def cheap_base(**overrides):
    settings = dict(
        apps=("motor-current-loop", "servo-rig"),
        wait_step=4,
        horizon=2.0,
    )
    settings.update(overrides)
    return get_scenario("multirate-cosim-analytic").derive(
        name="sweep-base", **settings
    )


def _cells(n):
    return [(f"cell{i}", Scenario(name=f"cell{i}")) for i in range(n)]


def _row(qoc, ok=True, round_no=0):
    row = {
        "cell": "c",
        "scenario": "s",
        "seed": 0,
        "round": round_no,
        "ok": ok,
        "duration": 0.01,
        "slot_count": 1,
    }
    if ok:
        row.update({"qoc": qoc, "all_deadlines_met": True})
    else:
        row.update({"failed_stage": "worker", "detail": "boom"})
    return row


class TestSchedulerFixedMode:
    def test_one_round_then_fixed_stop(self):
        sched = AdaptiveScheduler(_cells(2), min_replications=3)
        jobs = sched.initial_grants()
        assert len(jobs) == 6
        # replication-major: every cell gets rep r before any gets r+1
        assert [r for _, r in jobs] == [0, 0, 1, 1, 2, 2]
        for cell, _ in jobs:
            cell.record(_row(1.0))
        assert sched.next_grants() == []
        assert all(c.stopped_reason == "fixed" for c in sched.cells)

    def test_fixed_mode_rejects_adaptive_knobs(self):
        with pytest.raises(ValueError, match="adaptive"):
            AdaptiveScheduler(_cells(1), min_replications=2, max_replications=5)
        with pytest.raises(ValueError, match="ci_relative"):
            AdaptiveScheduler(_cells(1), min_replications=2, ci_relative=True)


class TestSchedulerValidation:
    def test_adaptive_needs_a_cap(self):
        with pytest.raises(ValueError, match="max_replications and/or budget"):
            AdaptiveScheduler(_cells(1), min_replications=2, ci_target=0.1)

    def test_adaptive_needs_two_minimum(self):
        with pytest.raises(ValueError, match=">= 2"):
            AdaptiveScheduler(
                _cells(1), min_replications=1, ci_target=0.1, budget=10
            )

    def test_bad_targets_rejected(self):
        with pytest.raises(ValueError, match="ci_target"):
            AdaptiveScheduler(
                _cells(1), min_replications=2, ci_target=-1.0, budget=10
            )
        with pytest.raises(ValueError, match="max_replications"):
            AdaptiveScheduler(
                _cells(1),
                min_replications=4,
                ci_target=0.1,
                max_replications=3,
            )

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="at least one cell"):
            AdaptiveScheduler([], min_replications=2)


class TestSchedulerStopping:
    def test_converged_cell_stops_and_frees_budget(self):
        sched = AdaptiveScheduler(
            _cells(2),
            min_replications=2,
            ci_target=0.5,
            max_replications=10,
        )
        quiet, noisy = sched.cells
        for _ in sched.initial_grants():
            pass
        # quiet cell: identical values -> zero half-width -> stops
        quiet.record(_row(1.0))
        quiet.record(_row(1.0))
        # noisy cell: wide spread -> stays open
        noisy.record(_row(0.0))
        noisy.record(_row(10.0))
        jobs = sched.next_grants()
        assert quiet.stopped_reason == "ci-target"
        assert noisy.stopped_reason is None
        # the whole round pool (2 cells x step 2) goes to the open cell
        assert all(cell is noisy for cell, _ in jobs)
        assert len(jobs) == 4

    def test_max_replications_retires_unconverged_cell(self):
        sched = AdaptiveScheduler(
            _cells(1), min_replications=2, ci_target=1e-9, max_replications=4
        )
        jobs = sched.initial_grants()
        values = iter([0.0, 5.0, 1.0, 6.0])
        for cell, _ in jobs:
            cell.record(_row(next(values)))
        jobs = sched.next_grants()
        assert len(jobs) == 2  # up to the cap of 4
        for cell, _ in jobs:
            cell.record(_row(next(values)))
        assert sched.next_grants() == []
        assert sched.cells[0].stopped_reason == "max-replications"
        assert sched.cells[0].next_rep == 4

    def test_budget_exhaustion_stops_open_cells(self):
        sched = AdaptiveScheduler(
            _cells(2), min_replications=2, ci_target=1e-9, budget=5
        )
        jobs = sched.initial_grants()
        assert len(jobs) == 4
        for cell, r in jobs:
            # genuinely noisy values so no cell reaches the 1e-9 target
            cell.record(_row(cell.index + 3.0 * r, round_no=0))
        jobs = sched.next_grants()
        assert len(jobs) == 1  # only one replication of budget left
        assert sched.granted == 5
        for cell, r in jobs:
            cell.record(_row(cell.index + 3.0 * r, round_no=1))
        assert sched.next_grants() == []
        assert all(c.stopped_reason == "budget" for c in sched.cells)

    def test_all_failed_cell_stops_as_failed(self):
        sched = AdaptiveScheduler(
            _cells(1), min_replications=2, ci_target=0.5, max_replications=8
        )
        for cell, _ in sched.initial_grants():
            cell.record(_row(None, ok=False))
        assert sched.next_grants() == []
        assert sched.cells[0].stopped_reason == "failed"
        assert sched.saved(sched.cells[0]) == 6

    def test_relative_target_scales_with_mean(self):
        sched = AdaptiveScheduler(
            _cells(1),
            min_replications=2,
            ci_target=0.5,
            ci_relative=True,
            max_replications=8,
        )
        (cell,) = sched.cells
        for _ in sched.initial_grants():
            pass
        cell.record(_row(100.0))
        cell.record(_row(102.0))
        # half-width ~ 12.7 (t(1)=12.706, std ~ 1.41); threshold = 50.5
        assert sched.threshold(cell) == pytest.approx(0.5 * 101.0)
        assert sched.next_grants() == []
        assert cell.stopped_reason == "ci-target"


class TestAdaptiveSweepIntegration:
    ADAPTIVE = dict(
        replications=2,
        ci_target=0.12,
        ci_relative=True,
        max_replications=12,
        cache=None,  # replaced per call
    )

    def _adaptive(self, executor="thread", max_workers=1):
        kwargs = dict(self.ADAPTIVE)
        kwargs["cache"] = DwellCurveCache()
        return run_sweep(
            cheap_base(horizon=6.0),
            axes={"disturbance": ["one-shot", "sporadic"]},
            executor=executor,
            max_workers=max_workers,
            **kwargs,
        )

    def test_deterministic_cell_stops_at_minimum(self):
        result = self._adaptive()
        by_name = {c.name: c for c in result.cells}
        quiet = by_name["sweep-base[disturbance=one-shot]"]
        # one-shot disturbances ignore the seed -> zero variance
        assert quiet.runs == 2
        assert quiet.stopped_reason == "ci-target"
        assert quiet.metrics["qoc"]["ci95"] == 0.0

    def test_same_seeds_same_stop_rounds(self):
        first = self._adaptive()
        second = self._adaptive()
        for a, b in zip(first.cells, second.cells):
            assert a.name == b.name
            assert a.runs == b.runs
            assert a.rounds == b.rounds
            assert a.stopped_reason == b.stopped_reason
            assert a.metrics["qoc"]["mean"] == b.metrics["qoc"]["mean"]
        assert first.rounds == second.rounds

    def test_thread_process_parity(self):
        threaded = self._adaptive(executor="thread", max_workers=2)
        processed = self._adaptive(executor="process", max_workers=2)
        for a, b in zip(threaded.cells, processed.cells):
            assert a.runs == b.runs
            assert a.stopped_reason == b.stopped_reason
            assert a.metrics["qoc"]["mean"] == pytest.approx(
                b.metrics["qoc"]["mean"]
            )

    def test_adaptive_beats_fixed_at_equal_ci(self):
        """The acceptance bar: >= 25 % fewer replications at equal CI."""
        adaptive = self._adaptive()
        assert all(c.stopped_reason == "ci-target" for c in adaptive.cells)
        worst = max(c.runs for c in adaptive.cells)
        fixed = run_sweep(
            cheap_base(horizon=6.0),
            axes={"disturbance": ["one-shot", "sporadic"]},
            replications=worst,
            max_workers=1,
            cache=DwellCurveCache(),
        )
        # the fixed grid at the adaptive worst-cell count also meets the
        # target everywhere -- same precision, more replications
        for cell in fixed.cells:
            qoc = cell.metrics["qoc"]
            assert qoc["ci95"] <= 0.12 * abs(qoc["mean"]) + 1e-12
        spent = adaptive.replications_spent
        assert spent <= 0.75 * fixed.replications_spent
        assert adaptive.replications_saved > 0

    def test_seed_compatibility_with_fixed_mode(self):
        """Replication r of a cell uses seed seed0+r in both modes."""
        adaptive = self._adaptive()
        for cell in adaptive.cells:
            seeds = sorted(
                row["seed"] for row in adaptive.rows if row["cell"] == cell.name
            )
            assert seeds == list(range(len(seeds)))

    def test_budget_bound_is_respected(self):
        result = run_sweep(
            cheap_base(horizon=6.0),
            axes={"disturbance": ["one-shot", "sporadic"]},
            replications=2,
            ci_target=1e-9,  # unreachable for the sporadic cell
            budget=7,
            max_workers=1,
            cache=DwellCurveCache(),
        )
        assert result.replications_spent <= 7
        assert any(c.stopped_reason == "budget" for c in result.cells)

    def test_adaptive_mode_in_result_provenance(self):
        result = self._adaptive()
        assert result.mode == "adaptive"
        assert result.rounds >= 2
        assert result.config["ci_target"] == 0.12
        payload = result.to_dict()
        assert payload["mode"] == "adaptive"
        assert payload["replications_spent"] == result.run_count
        assert all("stopped_reason" in c for c in payload["cells"])
        assert all(row["round"] >= 0 for row in payload["runs"])

    def test_report_mentions_adaptive_mode(self):
        result = self._adaptive()
        text = result.report()
        assert "adaptive mode" in text
        assert "ci-target" in text


class TestStudentTHalfWidth:
    def test_sweep_ci_matches_t_table(self):
        result = run_sweep(
            cheap_base(disturbance="sporadic", horizon=6.0),
            replications=4,
            max_workers=1,
            cache=DwellCurveCache(),
        )
        qoc = result.cells[0].metrics["qoc"]
        assert qoc["ci95"] == pytest.approx(
            t_critical_95(3) * qoc["std"] / 4**0.5
        )
