"""Unit tests for repro.utils.validation."""

import math

import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
    check_sorted_unique,
    check_square,
    check_vector,
    ensure_matrix,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    def test_accepts_numpy_scalar(self):
        assert check_positive(np.float64(1.0), "x") == 1.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="must be positive"):
            check_positive(-1, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive(math.inf, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError, match="real number"):
            check_positive("3", "x")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_nonnegative(-0.1, "x")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 0.0, 1.0, high_inclusive=False)
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", 0.0, 1.0, low_inclusive=False)

    def test_out_of_range_message_names_argument(self):
        with pytest.raises(ValueError, match="delay"):
            check_in_range(2.0, "delay", 0.0, 1.0)

    def test_probability_helper(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")


class TestEnsureMatrix:
    def test_converts_nested_list(self):
        out = ensure_matrix([[1, 2], [3, 4]], "m")
        assert out.shape == (2, 2)
        assert out.dtype == float

    def test_rejects_vector(self):
        with pytest.raises(ValueError, match="2-D"):
            ensure_matrix([1, 2, 3], "m")

    def test_rejects_nan_entries(self):
        with pytest.raises(ValueError, match="non-finite"):
            ensure_matrix([[np.nan, 0], [0, 1]], "m")

    def test_shape_checks(self):
        with pytest.raises(ValueError, match="rows"):
            ensure_matrix([[1, 2]], "m", rows=2)
        with pytest.raises(ValueError, match="columns"):
            ensure_matrix([[1, 2]], "m", cols=3)


class TestCheckSquare:
    def test_accepts_square(self):
        assert check_square(np.eye(3), "m").shape == (3, 3)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            check_square(np.ones((2, 3)), "m")


class TestCheckVector:
    def test_flattens_column_vector(self):
        out = check_vector(np.ones((3, 1)), "v")
        assert out.shape == (3,)

    def test_flattens_row_vector(self):
        out = check_vector(np.ones((1, 4)), "v")
        assert out.shape == (4,)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="vector"):
            check_vector(np.ones((2, 2)), "v")

    def test_size_check(self):
        with pytest.raises(ValueError, match="length 2"):
            check_vector([1.0, 2.0, 3.0], "v", size=2)

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_vector([1.0, np.inf], "v")


class TestCheckSortedUnique:
    def test_accepts_increasing(self):
        out = check_sorted_unique([0.0, 1.0, 2.0], "s")
        assert list(out) == [0.0, 1.0, 2.0]

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            check_sorted_unique([0.0, 1.0, 1.0], "s")

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            check_sorted_unique([1.0, 0.0], "s")

    def test_singleton_ok(self):
        assert check_sorted_unique([5.0], "s").size == 1
