"""Unit tests for repro.core.switching (paper Eqs. 3-4)."""

import numpy as np
import pytest

from repro.control.controller import design_switched_application
from repro.control.plants import servo_rig
from repro.core.switching import LinearSwitchedSystem, measure_dwell_curve


@pytest.fixture(scope="module")
def system():
    plant = servo_rig()
    app = design_switched_application(
        name="servo",
        plant=plant.model,
        period=plant.period,
        et_delay=plant.period,
        tt_delay=0.0007,
        q=plant.q,
        r=plant.r,
        threshold=plant.threshold,
    )
    return LinearSwitchedSystem.from_application(app, plant.disturbance)


class TestLinearSwitchedSystem:
    def test_state_after_zero_wait_is_x0(self, system):
        np.testing.assert_allclose(system.state_after_wait(0), system.x0)

    def test_state_after_wait_matches_eq3(self, system):
        """x1[k] = A1^k x0 (paper Eq. 3)."""
        k = 7
        expected = np.linalg.matrix_power(system.a1, k) @ system.x0
        np.testing.assert_allclose(system.state_after_wait(k), expected)

    def test_switched_state_matches_eq4(self, system):
        """x2[kwait, k] = A2^k A1^kwait x0 (paper Eq. 4)."""
        kwait, k = 5, 3
        switched = (
            np.linalg.matrix_power(system.a2, k)
            @ np.linalg.matrix_power(system.a1, kwait)
            @ system.x0
        )
        via_api = np.linalg.matrix_power(system.a2, k) @ system.state_after_wait(kwait)
        np.testing.assert_allclose(via_api, switched)

    def test_pure_tt_equals_zero_wait_dwell(self, system):
        assert system.pure_tt_response() == pytest.approx(system.dwell_time(0))

    def test_tt_not_slower_than_et(self, system):
        assert system.pure_tt_response() <= system.pure_et_response()

    def test_response_decomposition(self, system):
        k = 4
        expected = k * system.period + system.dwell_time(k)
        assert system.response_time(k) == pytest.approx(expected)

    def test_rejects_unstable_a1(self, system):
        with pytest.raises(ValueError, match="A1"):
            LinearSwitchedSystem(
                a1=1.5 * np.eye(system.a1.shape[0]),
                a2=system.a2,
                x0=system.x0,
                threshold=system.threshold,
                period=system.period,
            )

    def test_rejects_negative_wait(self, system):
        with pytest.raises(ValueError):
            system.state_after_wait(-1)


class TestMeasureDwellCurve:
    def test_curve_spans_et_response(self, system):
        xi_et = system.pure_et_response()
        curve = measure_dwell_curve(
            system.response_source(),
            pure_et_response=xi_et,
            period=system.period,
            wait_step=4,
        )
        assert curve.waits[0] == 0.0
        assert curve.waits[-1] >= xi_et - 4 * system.period
        assert curve.xi_tt == pytest.approx(system.pure_tt_response())

    def test_dwell_is_zero_at_the_end(self, system):
        xi_et = system.pure_et_response()
        curve = measure_dwell_curve(
            system.response_source(),
            pure_et_response=xi_et,
            period=system.period,
            wait_step=2,
        )
        assert curve.dwells[-1] == pytest.approx(0.0, abs=1e-9)

    def test_wait_step_controls_resolution(self, system):
        xi_et = system.pure_et_response()
        fine = measure_dwell_curve(
            system.response_source(), xi_et, system.period, wait_step=2
        )
        coarse = measure_dwell_curve(
            system.response_source(), xi_et, system.period, wait_step=8
        )
        assert fine.waits.size > coarse.waits.size

    def test_rejects_zero_step(self, system):
        with pytest.raises(ValueError):
            measure_dwell_curve(
                system.response_source(), 1.0, system.period, wait_step=0
            )
