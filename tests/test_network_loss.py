"""Pluggable loss processes: legacy parity and burst models (ISSUE 9).

The frozen-contract bar for the loss refactor: composing a *loss-free*
FlexRay transport with a seeded :class:`IIDLoss` through
:class:`LossyNetwork` replays the legacy ``FlexRayNetwork(loss_rate=...)``
path **bit for bit** — same traces, same loss counters, same RNG draw
order — on the Figure 5 fleet.  Gilbert–Elliott adds bursty loss while
keeping seeded determinism.
"""

import numpy as np
import pytest

from repro.control.disturbance import SporadicDisturbance
from repro.experiments import traces_bitwise_equal
from repro.flexray import FlexRayBus, paper_bus_config
from repro.sim import CoSimulator
from repro.sim.network import (
    FlexRayNetwork,
    GilbertElliottLoss,
    IIDLoss,
    LossyNetwork,
)
from test_cosim_event import shared_fleet

RATE, SEED = 0.3, 7


def _dist(i):
    return SporadicDisturbance(min_inter_arrival=2.0, mean_extra_gap=0.7, seed=i)


def _legacy_lossy():
    return FlexRayNetwork(
        bus=FlexRayBus(config=paper_bus_config()), loss_rate=RATE, loss_seed=SEED
    )


def _composed_lossy():
    return LossyNetwork(
        inner=FlexRayNetwork(bus=FlexRayBus(config=paper_bus_config())),
        loss=IIDLoss(rate=RATE, seed=SEED),
    )


class TestIIDLegacyParity:
    def test_event_kernel_traces_bitwise_equal(self):
        """Fig. 5 fleet: wrapper loss == built-in loss, bit for bit."""
        builtin_net, wrapper_net = _legacy_lossy(), _composed_lossy()
        builtin = CoSimulator(shared_fleet(_dist), builtin_net).run(9.0)
        composed = CoSimulator(shared_fleet(_dist), wrapper_net).run(9.0)
        assert traces_bitwise_equal(builtin, composed)
        assert builtin_net.lost > 0  # the comparison actually lost frames
        assert wrapper_net.lost == builtin_net.lost

    def test_legacy_kernel_traces_bitwise_equal(self):
        """The polling kernel samples through ``sample_delays``; the
        wrapper must replay the legacy draw order there too."""
        builtin_net, wrapper_net = _legacy_lossy(), _composed_lossy()
        builtin = CoSimulator(
            shared_fleet(_dist), builtin_net, legacy=True
        ).run(9.0)
        composed = CoSimulator(
            shared_fleet(_dist), wrapper_net, legacy=True
        ).run(9.0)
        assert traces_bitwise_equal(builtin, composed)
        assert wrapper_net.lost == builtin_net.lost

    def test_zero_rate_consumes_no_randomness(self):
        """rate == 0 must not create or advance an RNG (the loss-free
        path's determinism contract)."""
        loss = IIDLoss(rate=0.0, seed=SEED)
        loss.reset()
        assert not any(loss.sample() for _ in range(100))
        fresh = np.random.default_rng(SEED)
        lossy = IIDLoss(rate=RATE, seed=SEED)
        lossy.reset()
        draws = [lossy.sample() for _ in range(50)]
        assert draws == [bool(fresh.random() < RATE) for _ in range(50)]

    def test_reset_replays_the_same_pattern(self):
        loss = IIDLoss(rate=RATE, seed=SEED)
        loss.reset()
        first = [loss.sample() for _ in range(200)]
        loss.reset()
        assert [loss.sample() for _ in range(200)] == first

    def test_empirical_rate_tracks_nominal(self):
        loss = IIDLoss(rate=0.25, seed=123)
        loss.reset()
        hits = sum(loss.sample() for _ in range(20_000))
        assert hits / 20_000 == pytest.approx(0.25, abs=0.02)


class TestGilbertElliott:
    def test_seeded_determinism(self):
        def pattern(seed):
            loss = GilbertElliottLoss(seed=seed)
            loss.reset()
            return [loss.sample() for _ in range(500)]

        assert pattern(3) == pattern(3)
        assert pattern(3) != pattern(4)

    def test_losses_cluster_in_bursts(self):
        """With a lossless good state, every loss happens inside a bad
        burst — so losses are far more likely to follow a loss than to
        follow a success (the model's whole point vs IID)."""
        loss = GilbertElliottLoss(
            p_good_to_bad=0.02,
            p_bad_to_good=0.25,
            p_loss_good=0.0,
            p_loss_bad=0.8,
            seed=11,
        )
        loss.reset()
        samples = [loss.sample() for _ in range(50_000)]
        after_loss = [b for a, b in zip(samples, samples[1:]) if a]
        after_ok = [b for a, b in zip(samples, samples[1:]) if not a]
        assert sum(after_loss) / len(after_loss) > 4 * (
            sum(after_ok) / len(after_ok)
        )

    def test_cosimulates_over_flexray(self):
        """A bursty channel drops frames end-to-end and the run stays
        seed-deterministic."""

        def net():
            return LossyNetwork(
                inner=FlexRayNetwork(bus=FlexRayBus(config=paper_bus_config())),
                loss=GilbertElliottLoss(
                    p_good_to_bad=0.2, p_bad_to_good=0.3, p_loss_bad=0.9, seed=5
                ),
            )

        first_net, second_net = net(), net()
        first = CoSimulator(shared_fleet(_dist), first_net).run(9.0)
        second = CoSimulator(shared_fleet(_dist), second_net).run(9.0)
        assert traces_bitwise_equal(first, second)
        assert first_net.lost > 0
        assert first_net.lost == second_net.lost
        assert first_net.capabilities().loss == "gilbert-elliott"
