"""Tests for the nonlinear servo-rig testbed (the Figure 2 substitute)."""

import numpy as np
import pytest

from repro.testbed import (
    NonlinearServoRig,
    ServoRigConfig,
    default_servo_testbed,
)


@pytest.fixture(scope="module")
def testbed():
    return default_servo_testbed()


class TestServoRigConfig:
    def test_defaults_match_paper(self):
        cfg = ServoRigConfig()
        assert cfg.period == pytest.approx(0.020)
        assert cfg.tt_delay == pytest.approx(0.0007)
        assert cfg.et_delay == pytest.approx(0.020)
        assert cfg.threshold == pytest.approx(0.1)
        assert cfg.disturbance_angle == pytest.approx(np.deg2rad(45.0))
        assert cfg.mass == pytest.approx(0.3)  # the paper's 300 g load

    def test_inertia(self):
        cfg = ServoRigConfig(mass=2.0, length=0.5)
        assert cfg.inertia == pytest.approx(0.5)

    def test_rejects_bad_delay_ordering(self):
        with pytest.raises(ValueError, match="tt_delay < et_delay"):
            ServoRigConfig(tt_delay=0.02, et_delay=0.01)

    def test_rejects_tiny_encoder(self):
        with pytest.raises(ValueError, match="encoder_counts"):
            ServoRigConfig(encoder_counts=4)


class TestNonlinearServoRig:
    def test_free_fall_from_tilt(self):
        """Without torque the inverted stick falls away from upright."""
        rig = NonlinearServoRig(ServoRigConfig())
        rig.reset(0.3, 0.0)
        rig.advance(0.2, torque=0.0)
        theta, omega = rig.state
        assert theta > 0.3
        assert omega > 0.0

    def test_equilibrium_stays_put(self):
        rig = NonlinearServoRig(ServoRigConfig())
        rig.reset(0.0, 0.0)
        rig.advance(1.0, torque=0.0)
        np.testing.assert_allclose(rig.state, [0.0, 0.0], atol=1e-12)

    def test_torque_saturation(self):
        cfg = ServoRigConfig(max_torque=2.0)
        rig = NonlinearServoRig(cfg)
        assert rig.saturate(5.0) == 2.0
        assert rig.saturate(-5.0) == -2.0
        assert rig.saturate(1.5) == 1.5

    def test_encoder_quantisation(self):
        cfg = ServoRigConfig(encoder_counts=1024)
        rig = NonlinearServoRig(cfg)
        rig.reset(0.1234, 0.0)
        measured = rig.measure()
        resolution = 2 * np.pi / 1024
        assert measured[0] == pytest.approx(
            round(0.1234 / resolution) * resolution
        )
        assert measured[0] != rig.state[0]

    def test_zero_duration_is_noop(self):
        rig = NonlinearServoRig(ServoRigConfig())
        rig.reset(0.2, 0.1)
        before = rig.state
        rig.advance(0.0, torque=1.0)
        np.testing.assert_allclose(rig.state, before)

    def test_negative_duration_rejected(self):
        rig = NonlinearServoRig(ServoRigConfig())
        with pytest.raises(ValueError):
            rig.advance(-0.1, torque=0.0)


class TestDefaultTestbed:
    def test_tt_response_matches_paper(self, testbed):
        """Pure-TT settling time: paper measures 0.68 s."""
        assert testbed.response_time(0) == pytest.approx(0.68, abs=0.05)

    def test_et_response_matches_paper(self, testbed):
        """Pure-ET settling time: paper measures 2.16 s."""
        xi_et = testbed.response_time(10**6, max_samples=400)
        assert xi_et == pytest.approx(2.16, abs=0.15)

    def test_dwell_relation_is_non_monotonic(self, testbed):
        """The headline phenomenon (Fig. 3): some interior wait time needs
        a longer dwell than switching immediately."""
        dwell0 = testbed.response_time(0)
        waits = range(3, 40, 3)
        dwells = [
            testbed.response_time(k, max_samples=400) - k * testbed.config.period
            for k in waits
        ]
        assert max(dwells) > dwell0 + 0.05

    def test_dwell_vanishes_beyond_et_settling(self, testbed):
        xi_et = testbed.response_time(10**6, max_samples=400)
        wait_samples = int(xi_et / testbed.config.period) + 10
        response = testbed.response_time(wait_samples, max_samples=400)
        dwell = response - wait_samples * testbed.config.period
        assert dwell <= 0.0 + 1e-9

    def test_unsettled_run_raises(self, testbed):
        with pytest.raises(RuntimeError, match="did not settle"):
            testbed.response_time(10**6, max_samples=20)
