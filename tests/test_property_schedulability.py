"""Property-based tests for the wait-time fixed point (paper Sec. IV)."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.schedulability import (
    AnalyzedApplication,
    UnschedulableError,
    blocking_term,
    interference_utilization,
    max_wait_closed_form,
    max_wait_fixed_point,
    max_wait_lower_bound,
)
from repro.core.timing_params import TimingParameters


@st.composite
def applications(draw, index=0):
    xi_tt = draw(st.floats(min_value=0.05, max_value=3.0))
    xi_m = xi_tt * draw(st.floats(min_value=1.0, max_value=2.5))
    xi_et = xi_m * draw(st.floats(min_value=1.5, max_value=5.0))
    k_p = draw(st.floats(min_value=0.05, max_value=0.95)) * xi_et
    deadline = draw(st.floats(min_value=0.5, max_value=30.0))
    r = deadline * draw(st.floats(min_value=1.0, max_value=10.0))
    params = TimingParameters(
        name=f"P{index}",
        min_inter_arrival=r,
        deadline=deadline,
        xi_tt=xi_tt,
        xi_et=xi_et,
        xi_m=xi_m,
        k_p=k_p,
        xi_m_mono=xi_m * draw(st.floats(min_value=1.0, max_value=2.0)),
    )
    return AnalyzedApplication.from_params(params)


@st.composite
def slot_configurations(draw):
    n_higher = draw(st.integers(min_value=0, max_value=4))
    n_lower = draw(st.integers(min_value=0, max_value=3))
    higher = [draw(applications(index=i)) for i in range(n_higher)]
    lower = [draw(applications(index=100 + i)) for i in range(n_lower)]
    return lower, higher


class TestFixedPointProperties:
    @given(config=slot_configurations())
    @settings(max_examples=200, deadline=None)
    def test_bounds_bracket_fixed_point(self, config):
        """a/(1-m) <= k_hat < a'/(1-m) (paper Eqs. 20-21)."""
        lower, higher = config
        assume(interference_utilization(higher) < 0.95)
        lo = max_wait_lower_bound(lower, higher)
        hi = max_wait_closed_form(lower, higher)
        exact = max_wait_fixed_point(lower, higher)
        assert lo <= exact + 1e-9
        assert exact <= hi + 1e-9

    @given(config=slot_configurations())
    @settings(max_examples=200, deadline=None)
    def test_fixed_point_satisfies_eq5(self, config):
        lower, higher = config
        assume(interference_utilization(higher) < 0.95)
        wait = max_wait_fixed_point(lower, higher)
        rhs = blocking_term(lower) + sum(
            math.ceil(wait / app.min_inter_arrival - 1e-12) * app.max_dwell
            for app in higher
        )
        assert abs(wait - rhs) <= 1e-9 * max(1.0, wait)

    @given(config=slot_configurations(), extra=applications(index=999))
    @settings(max_examples=150, deadline=None)
    def test_wait_monotone_in_interference(self, config, extra):
        """Adding a higher-priority sharer can only increase the wait."""
        lower, higher = config
        assume(interference_utilization(higher + [extra]) < 0.95)
        before = max_wait_fixed_point(lower, higher)
        after = max_wait_fixed_point(lower, higher + [extra])
        assert after >= before - 1e-9

    @given(config=slot_configurations(), extra=applications(index=998))
    @settings(max_examples=150, deadline=None)
    def test_wait_monotone_in_blocking(self, config, extra):
        """Adding a lower-priority sharer can only increase the wait."""
        lower, higher = config
        assume(interference_utilization(higher) < 0.95)
        before = max_wait_fixed_point(lower, higher)
        after = max_wait_fixed_point(lower + [extra], higher)
        assert after >= before - 1e-9

    @given(config=slot_configurations())
    @settings(max_examples=100, deadline=None)
    def test_overload_raises_consistently(self, config):
        lower, higher = config
        if interference_utilization(higher) >= 1.0:
            for solver in (max_wait_closed_form, max_wait_fixed_point):
                try:
                    solver(lower, higher)
                    raise AssertionError("expected UnschedulableError")
                except UnschedulableError:
                    pass
