"""Event-driven co-simulation kernel: equivalence and multi-rate tests.

The acceptance bar of the kernel refactor: on shared-period scenarios
the event kernel and the legacy fixed-step loop produce *bitwise
identical* traces (same operations, same order), and multi-rate fleets
— impossible under the legacy loop — run end-to-end with per-application
sampling grids.
"""

import numpy as np
import pytest

from repro.control.controller import design_switched_application
from repro.control.disturbance import (
    OneShotDisturbance,
    PeriodicDisturbance,
    SporadicDisturbance,
)
from repro.control.plants import (
    dc_motor_speed,
    motor_current_loop,
    servo_rig,
    throttle_by_wire,
)
from repro.experiments import traces_bitwise_equal
from repro.flexray import FlexRayBus, FrameSpec, paper_bus_config
from repro.flexray.params import FlexRayConfig
from repro.sim import (
    AnalyticNetwork,
    CoSimApplication,
    CoSimulator,
    FlexRayNetwork,
    PlantStepperBank,
    ZOHCache,
)


def make_app(name, plantdef, slot, frame_id, deadline, disturbances=None, period=None):
    period = period or plantdef.period
    app = design_switched_application(
        name=name,
        plant=plantdef.model,
        period=period,
        et_delay=period,
        tt_delay=0.0007,
        q=plantdef.q,
        r=plantdef.r,
        threshold=plantdef.threshold,
    )
    return CoSimApplication(
        app=app,
        dynamics=plantdef.model,
        disturbance_state=plantdef.disturbance,
        disturbances=disturbances or OneShotDisturbance(time=0.0),
        deadline=deadline,
        slot=slot,
        frame=FrameSpec(frame_id=frame_id, sender=name),
    )


def shared_fleet(dist=None):
    dist = dist or (lambda i: OneShotDisturbance(time=0.0))
    return [
        make_app("servo", servo_rig(), 0, 1, 5.0, dist(0)),
        make_app("motor", dc_motor_speed(), 0, 2, 6.0, dist(1)),
        make_app("throttle", throttle_by_wire(), 1, 3, 6.0, dist(2)),
    ]


def multirate_fleet():
    return [
        make_app("current", motor_current_loop(), 0, 1, 0.5, period=0.002),
        make_app("servo", servo_rig(), 0, 2, 5.0, PeriodicDisturbance(period=5.0)),
        make_app("motor", dc_motor_speed(), 1, 3, 6.0),
    ]


class TestSharedPeriodEquivalence:
    """Event kernel == legacy kernel, bit for bit."""

    def test_analytic_oneshot(self):
        event = CoSimulator(shared_fleet(), AnalyticNetwork()).run(6.0)
        legacy = CoSimulator(shared_fleet(), AnalyticNetwork(), legacy=True).run(6.0)
        assert traces_bitwise_equal(event, legacy)

    def test_flexray_periodic_disturbances(self):
        dist = lambda i: PeriodicDisturbance(period=2.5, offset=0.31 * i)  # noqa: E731
        net = lambda: FlexRayNetwork(bus=FlexRayBus(config=paper_bus_config()))  # noqa: E731
        event = CoSimulator(shared_fleet(dist), net()).run(7.3)
        legacy = CoSimulator(shared_fleet(dist), net(), legacy=True).run(7.3)
        assert traces_bitwise_equal(event, legacy)

    def test_flexray_with_frame_loss_and_sporadic_arrivals(self):
        """Loss injection draws from one RNG; its order must match too."""
        dist = lambda i: SporadicDisturbance(  # noqa: E731
            min_inter_arrival=2.0, mean_extra_gap=0.7, seed=i
        )
        net = lambda: FlexRayNetwork(  # noqa: E731
            bus=FlexRayBus(config=paper_bus_config()), loss_rate=0.3, loss_seed=7
        )
        event_net, legacy_net = net(), net()
        event = CoSimulator(shared_fleet(dist), event_net).run(9.0)
        legacy = CoSimulator(shared_fleet(dist), legacy_net, legacy=True).run(9.0)
        assert traces_bitwise_equal(event, legacy)
        assert event_net.lost == legacy_net.lost
        assert event_net.clamped == legacy_net.clamped

    def test_jitter_violation_counters_match(self):
        net = lambda: FlexRayNetwork(bus=FlexRayBus(config=paper_bus_config()))  # noqa: E731
        event_sim = CoSimulator(shared_fleet(), net(), equalize_delays=False)
        legacy_sim = CoSimulator(shared_fleet(), net(), equalize_delays=False, legacy=True)
        assert traces_bitwise_equal(event_sim.run(3.0), legacy_sim.run(3.0))
        assert event_sim.jitter_violations == legacy_sim.jitter_violations

    def test_duplicate_dynamics_still_equivalent(self):
        """Same-dynamics fleets take the vectorized stepping path; both
        kernels share it, so equality must survive."""

        def fleet():
            return [
                make_app("servo-a", servo_rig(), 0, 1, 5.0),
                make_app("servo-b", servo_rig(), 1, 2, 5.0,
                         PeriodicDisturbance(period=3.0, offset=1.0)),
            ]

        event = CoSimulator(fleet(), AnalyticNetwork()).run(6.0)
        legacy = CoSimulator(fleet(), AnalyticNetwork(), legacy=True).run(6.0)
        assert traces_bitwise_equal(event, legacy)


class TestMultiRate:
    def test_analytic_multirate_runs_on_native_grids(self):
        trace = CoSimulator(multirate_fleet(), AnalyticNetwork()).run(6.0)
        current, servo = trace["current"], trace["servo"]
        assert current.times[1] - current.times[0] == pytest.approx(0.002)
        assert servo.times[1] - servo.times[0] == pytest.approx(0.02)
        # ~6 s of 2 ms samples plus the final horizon sample
        assert len(current.times) == 3001
        assert len(servo.times) == 301
        assert not any(np.isnan(current.delays))
        assert trace.all_deadlines_met()

    def test_flexray_multirate_shares_one_bus(self):
        config = FlexRayConfig(
            cycle_length=0.001,
            static_slots=3,
            static_slot_length=0.0002,
            minislot_length=0.00001,
        )
        network = FlexRayNetwork(bus=FlexRayBus(config=config))
        trace = CoSimulator(multirate_fleet(), network).run(6.0)
        assert trace.all_deadlines_met()
        assert network.bus.statistics.tt_deliveries > 0
        assert network.bus.statistics.et_deliveries > 0
        assert not any(np.isnan(trace["current"].delays))

    def test_each_rate_rejects_its_disturbances(self):
        trace = CoSimulator(multirate_fleet(), AnalyticNetwork()).run(6.0)
        assert len(trace["current"].response_times) >= 1
        assert len(trace["servo"].response_times) == 2  # periodic, 5 s apart

    def test_legacy_kernel_rejects_multirate(self):
        with pytest.raises(ValueError, match="shared sampling period"):
            CoSimulator(multirate_fleet(), AnalyticNetwork(), legacy=True)

    def test_multirate_needs_event_network_interface(self):
        class BatchOnlyNetwork:
            def sample_delays(self, time, period, submissions):
                return {s.name: 0.0 for s in submissions}

            def on_slot_change(self, slot, spec):
                pass

        with pytest.raises(ValueError, match="event interface"):
            CoSimulator(multirate_fleet(), BatchOnlyNetwork()).run(1.0)

    def test_batch_only_network_fine_for_shared_period(self):
        class BatchOnlyNetwork:
            def sample_delays(self, time, period, submissions):
                return {s.name: 0.0007 if s.uses_tt else period for s in submissions}

            def on_slot_change(self, slot, spec):
                pass

        trace = CoSimulator(shared_fleet(), BatchOnlyNetwork()).run(4.0)
        assert trace.all_deadlines_met()


class TestStepperBank:
    def test_vectorized_groups_engage_for_same_dynamics(self):
        plant = servo_rig()
        bank = PlantStepperBank(cache=ZOHCache())
        for name in ("a", "b", "c"):
            bank.register(name, plant.model, plant.period)
        states = {n: np.ones(2) for n in "abc"}
        u = np.array([0.1])
        bank.step_all(states, {n: (u, u, 0.0007) for n in "abc"})
        assert bank.vector_steps == 3 and bank.scalar_steps == 0

    def test_vectorized_matches_physics_of_scalar_path(self):
        plant = servo_rig()
        shared_cache = ZOHCache()
        batched = PlantStepperBank(cache=shared_cache)
        single = PlantStepperBank(cache=shared_cache)
        for name in ("a", "b"):
            batched.register(name, plant.model, plant.period)
        single.register("solo", plant.model, plant.period)
        x0 = np.array([0.3, -0.1])
        u = np.array([0.25])
        batch_states = {"a": x0.copy(), "b": x0.copy()}
        solo_states = {"solo": x0.copy()}
        batched.step_all(batch_states, {n: (u, 0 * u, 0.001) for n in ("a", "b")})
        single.step_all(solo_states, {"solo": (u, 0 * u, 0.001)})
        np.testing.assert_allclose(batch_states["a"], solo_states["solo"], rtol=1e-12)
        np.testing.assert_array_equal(batch_states["a"], batch_states["b"])

    def test_unregistered_step_request_raises(self):
        bank = PlantStepperBank(cache=ZOHCache())
        with pytest.raises(KeyError, match="unregistered"):
            bank.step_all({}, {"ghost": (np.zeros(1), np.zeros(1), 0.0)})

    def test_singletons_stack_across_different_dynamics(self):
        """Two plants with *different* dynamics but one (2, 1) shape:
        where the platform probe holds they advance in one batched
        matmul, and either way the states are bitwise the scalar ones."""
        from repro.sim.stepper import DelayedStepper, stacked_safe

        servo, motor = servo_rig(), dc_motor_speed()
        cache = ZOHCache()
        bank = PlantStepperBank(cache=cache)
        bank.register("servo", servo.model, servo.period)
        bank.register("motor", motor.model, motor.period)
        u = np.array([0.25])
        states = {
            "servo": np.array([0.3, -0.1]),
            "motor": np.array([0.2, 0.4]),
        }
        expected = {
            name: DelayedStepper(plant.model, plant.period, cache=cache).step(
                states[name], u, 0 * u, 0.0007
            )
            for name, plant in (("servo", servo), ("motor", motor))
        }
        bank.step_all(states, {n: (u, 0 * u, 0.0007) for n in states})
        if stacked_safe(2, 1):
            assert bank.stacked_steps == 2 and bank.scalar_steps == 0
        else:
            assert bank.scalar_steps == 2 and bank.stacked_steps == 0
        for name in states:
            np.testing.assert_array_equal(states[name], expected[name])

    def test_lone_singleton_keeps_scalar_path(self):
        plant = servo_rig()
        bank = PlantStepperBank(cache=ZOHCache())
        bank.register("solo", plant.model, plant.period)
        u = np.array([0.1])
        bank.step_all({"solo": np.ones(2)}, {"solo": (u, u, 0.0007)})
        assert bank.scalar_steps == 1 and bank.stacked_steps == 0

    def test_zoh_cache_shared_across_banks(self):
        cache = ZOHCache()
        plant = servo_rig()
        first = PlantStepperBank(cache=cache)
        first.register("a", plant.model, plant.period)
        second = PlantStepperBank(cache=cache)
        second.register("b", plant.model, plant.period)
        stats = cache.stats()
        assert stats["plants"] == 1
        assert stats["hits"] >= 1  # the second bank reused the discretisation


class TestEventKernelDetails:
    def test_disturbance_between_samples_lands_on_next_tick(self):
        app = make_app(
            "servo", servo_rig(), 0, 1, 5.0,
            disturbances=OneShotDisturbance(time=0.0305),
        )
        event = CoSimulator([app], AnalyticNetwork()).run(3.0)
        legacy = CoSimulator(
            [make_app("servo", servo_rig(), 0, 1, 5.0,
                      disturbances=OneShotDisturbance(time=0.0305))],
            AnalyticNetwork(),
            legacy=True,
        ).run(3.0)
        assert traces_bitwise_equal(event, legacy)
        norms = event["servo"].norms
        # flat until the 0.04 s sample applies the jump
        assert norms[1] == 0.0 and norms[2] > 0.0

    def test_disturbance_after_last_tick_never_applies(self):
        app = make_app(
            "servo", servo_rig(), 0, 1, 5.0,
            disturbances=OneShotDisturbance(time=0.999),
        )
        trace = CoSimulator([app], AnalyticNetwork()).run(1.0)
        assert max(trace["servo"].norms) == 0.0

    def test_period_override_applies_to_all(self):
        apps = [make_app("servo", servo_rig(), 0, 1, 5.0)]
        trace = CoSimulator(apps, AnalyticNetwork(), period=0.01).run(1.0)
        assert trace["servo"].times[1] - trace["servo"].times[0] == pytest.approx(0.01)

    def test_period_override_rejected_for_multirate_fleet(self):
        """Resampling a mixed-rate fleet at one override period would run
        controllers designed for other rates — refuse loudly."""
        with pytest.raises(ValueError, match="multi-rate"):
            CoSimulator(multirate_fleet(), AnalyticNetwork(), period=0.02)
