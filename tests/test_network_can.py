"""CAN bus backend: arbitration semantics and the RTA soundness bound.

The promotion contract of ISSUE 9's CAN backend: the live transport
implements exactly the message model that
:mod:`repro.baselines.can_rta` analyses — non-preemptive fixed-priority
arbitration, lowest identifier first, wire time ``C = (overhead +
payload) * bit_time`` — so on randomized periodic fleets every
*simulated* wait is bounded by the *analytic* worst-case response time
whenever the RTA declares the set schedulable.
"""

import numpy as np
import pytest

from repro.baselines.can_rta import (
    CAN_FRAME_OVERHEAD_BITS,
    frame_transmission_time,
    message_from_frame,
    worst_case_response_time,
)
from repro.flexray.frame import FrameSpec
from repro.pipeline import DesignStudy, get_scenario
from repro.sim.network import CanBusNetwork, Submission

BIT_TIME = 2e-6


def _submission(frame_id, release, payload_bits=64, name=None):
    spec = FrameSpec(
        frame_id=frame_id, payload_bits=payload_bits, sender=name or f"f{frame_id}"
    )
    return Submission(
        name=spec.sender, spec=spec, uses_tt=False, slot=0, release_time=release
    )


def _drive(net, submissions, horizon, step=0.001):
    """Feed releases barrier by barrier; return deliveries in order."""
    pending = sorted(submissions, key=lambda s: s.release_time)
    deliveries = []
    time = 0.0
    while time < horizon:
        window_end = time + step
        batch = [s for s in pending if s.release_time < window_end]
        pending = [s for s in pending if s.release_time >= window_end]
        net.event_submit(time, window_end, batch)
        deliveries.extend(net.event_advance(window_end))
        time = window_end
    deliveries.extend(net.event_advance(horizon + 1.0))
    return deliveries


class TestArbitration:
    def test_wire_time_matches_rta_charge(self):
        net = CanBusNetwork(bit_time=BIT_TIME)
        assert net.wire_time(64) == frame_transmission_time(64, BIT_TIME)
        assert net.wire_time(0) == CAN_FRAME_OVERHEAD_BITS * BIT_TIME

    def test_idle_bus_delivers_after_one_wire_time(self):
        net = CanBusNetwork(bit_time=BIT_TIME)
        [only] = _drive(net, [_submission(1, 0.0)], horizon=0.01)
        assert only.delivery_time == pytest.approx(net.wire_time(64))
        assert not only.lost

    def test_lowest_identifier_wins_contention(self):
        """Three frames released together transmit in identifier order,
        back to back."""
        net = CanBusNetwork(bit_time=BIT_TIME)
        subs = [_submission(fid, 0.0) for fid in (3, 1, 2)]
        deliveries = _drive(net, subs, horizon=0.01)
        assert [d.name for d in deliveries] == ["f1", "f2", "f3"]
        wire = net.wire_time(64)
        for rank, delivery in enumerate(deliveries, start=1):
            assert delivery.delivery_time == pytest.approx(rank * wire)

    def test_non_preemptive_blocking(self):
        """A high-priority frame arriving mid-transmission waits for the
        low-priority frame on the wire — the RTA's blocking term B."""
        net = CanBusNetwork(bit_time=BIT_TIME)
        wire = net.wire_time(64)
        low = _submission(9, 0.0)
        high = _submission(1, 0.4 * wire)
        deliveries = _drive(net, [low, high], horizon=0.01, step=0.1 * wire)
        assert [d.name for d in deliveries] == ["f9", "f1"]
        assert deliveries[0].delivery_time == pytest.approx(wire)
        assert deliveries[1].delivery_time == pytest.approx(2 * wire)

    def test_fifo_within_one_identifier(self):
        net = CanBusNetwork(bit_time=BIT_TIME)
        wire = net.wire_time(64)
        subs = [
            _submission(1, 0.0, name="first"),
            _submission(1, 0.0, name="second"),
        ]
        deliveries = _drive(net, subs, horizon=0.01)
        assert [d.name for d in deliveries] == ["first", "second"]
        assert deliveries[1].delivery_time == pytest.approx(2 * wire)

    def test_busy_time_accounts_every_transmission(self):
        net = CanBusNetwork(bit_time=BIT_TIME)
        subs = [_submission(fid, 0.0) for fid in (1, 2, 3)]
        _drive(net, subs, horizon=0.01)
        assert net.busy_time == pytest.approx(3 * net.wire_time(64))
        assert net.statistics()["delivered"] == 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CanBusNetwork(bit_time=0.0)
        with pytest.raises(ValueError):
            CanBusNetwork(overhead_bits=-1)


class TestRtaSoundness:
    """Simulated waits never exceed the analytic worst case."""

    PERIODS = (0.005, 0.01, 0.02, 0.05)
    PAYLOADS = (16, 32, 64)

    def _random_fleet(self, rng):
        n = int(rng.integers(3, 9))
        frame_ids = rng.choice(np.arange(1, 30), size=n, replace=False)
        specs = []
        for fid in sorted(int(f) for f in frame_ids):
            specs.append(
                (
                    FrameSpec(
                        frame_id=fid,
                        payload_bits=int(rng.choice(self.PAYLOADS)),
                        sender=f"frame-{fid}",
                    ),
                    float(rng.choice(self.PERIODS)),
                )
            )
        return specs

    @pytest.mark.parametrize("seed", range(8))
    def test_simulated_wait_below_rta_bound(self, seed):
        rng = np.random.default_rng(1000 + seed)
        fleet = self._random_fleet(rng)
        messages = [
            message_from_frame(spec, period, bit_time=BIT_TIME)
            for spec, period in fleet
        ]
        horizon = 4 * max(period for _, period in fleet)
        # Synchronous release at t=0 (the critical instant) plus strict
        # periodic re-releases: the RTA's exact arrival model.
        submissions = []
        for spec, period in fleet:
            k = 0
            while k * period < horizon:
                submissions.append(
                    Submission(
                        name=spec.sender,
                        spec=spec,
                        uses_tt=False,
                        slot=0,
                        release_time=k * period,
                    )
                )
                k += 1
        net = CanBusNetwork(bit_time=BIT_TIME)
        deliveries = _drive(net, submissions, horizon, step=min(self.PERIODS))
        worst_seen = {}
        for delivery in deliveries:
            wait = delivery.delivery_time - delivery.release_time
            worst_seen[delivery.name] = max(
                worst_seen.get(delivery.name, 0.0), wait
            )
        assert set(worst_seen) == {spec.sender for spec, _ in fleet}
        checked = 0
        for message in messages:
            bound = worst_case_response_time(
                message, [m for m in messages if m is not message]
            )
            if not bound.schedulable:
                continue
            checked += 1
            assert worst_seen[message.name] <= bound.response_time + 1e-9, (
                f"{message.name}: simulated wait {worst_seen[message.name]:.6f}s "
                f"exceeds the RTA bound {bound.response_time:.6f}s"
            )
        assert checked > 0  # at least part of every random set is analysable


class TestCanCosimScenario:
    def test_can_cosim_study_runs_end_to_end(self):
        scenario = get_scenario("can-cosim").derive(
            apps=("servo-rig", "throttle-by-wire"), wait_step=16, horizon=6.0
        )
        study = DesignStudy(scenario).run()
        assert study.ok
        cosim = study.artifact("cosim")
        assert cosim["network"] == "can"
        assert cosim["kernel_used"] == "event"  # contention: never batched
        assert cosim["all_deadlines_met"]
        stats = cosim["network_stats"]
        assert stats["delivered"] > 0
        assert stats["busy_time"] > 0.0

    def test_can_cosim_is_seed_deterministic(self):
        scenario = get_scenario("can-cosim").derive(
            apps=("servo-rig",), wait_step=16, horizon=4.0
        )
        first = DesignStudy(scenario).run().artifact("cosim")
        second = DesignStudy(scenario).run().artifact("cosim")
        assert first["qoc"] == second["qoc"]
