"""Unit tests for repro.core.pwl."""

import numpy as np
import pytest

from repro.core.pwl import (
    DwellCurve,
    PwlDwellModel,
    conservative_monotonic,
    fit_concave_envelope,
    fit_conservative_monotonic,
    fit_two_segment,
    from_timing_parameters,
    two_segment,
)
from repro.core.timing_params import paper_application


class TestDwellCurve:
    def test_peak(self, humped_curve):
        k_p, xi_m = humped_curve.peak
        assert xi_m == pytest.approx(humped_curve.dwells.max())
        assert k_p in humped_curve.waits

    def test_xi_tt_is_zero_wait_dwell(self, humped_curve):
        assert humped_curve.xi_tt == humped_curve.dwells[0]

    def test_monotonicity_detection(self, humped_curve, monotone_curve):
        assert not humped_curve.is_monotonic()
        assert monotone_curve.is_monotonic()

    def test_requires_zero_first_wait(self):
        with pytest.raises(ValueError, match="zero-wait"):
            DwellCurve(waits=np.array([0.1, 0.2]), dwells=np.array([1.0, 0.5]), xi_et=1.0)

    def test_rejects_negative_dwells(self):
        with pytest.raises(ValueError, match="negative"):
            DwellCurve(waits=np.array([0.0, 0.1]), dwells=np.array([1.0, -0.1]), xi_et=1.0)


class TestPwlDwellModel:
    def test_two_segment_evaluation(self):
        model = two_segment(xi_tt=0.5, k_p=1.0, xi_m=1.0, xi_et=3.0)
        assert model.dwell(0.0) == pytest.approx(0.5)
        assert model.dwell(0.5) == pytest.approx(0.75)
        assert model.dwell(1.0) == pytest.approx(1.0)
        assert model.dwell(2.0) == pytest.approx(0.5)
        assert model.dwell(3.0) == 0.0
        assert model.dwell(99.0) == 0.0

    def test_max_dwell_and_peak_wait(self):
        model = two_segment(xi_tt=0.5, k_p=1.0, xi_m=1.0, xi_et=3.0)
        assert model.max_dwell == pytest.approx(1.0)
        assert model.peak_wait == pytest.approx(1.0)

    def test_response_time(self):
        model = two_segment(xi_tt=0.5, k_p=1.0, xi_m=1.0, xi_et=3.0)
        assert model.response_time(2.0) == pytest.approx(2.5)

    def test_worst_response_monotone_for_gentle_slopes(self):
        # Second-segment slope -0.5 > -1: max response at max wait.
        model = two_segment(xi_tt=0.5, k_p=1.0, xi_m=1.0, xi_et=3.0)
        assert model.worst_response_time(2.0) == pytest.approx(2.5)

    def test_worst_response_catches_steep_falls(self):
        # Slope -2 < -1: the response peaks at the breakpoint, not the end.
        model = PwlDwellModel(breakpoints=((0.0, 1.0), (1.0, 2.0), (2.0, 0.0)))
        assert model.worst_response_time(1.8) == pytest.approx(3.0)

    def test_domination_check(self, humped_curve):
        fitted = fit_two_segment(humped_curve)
        assert fitted.dominates(humped_curve)
        lowered = PwlDwellModel(
            breakpoints=tuple((w, d * 0.5) for w, d in fitted.breakpoints)
        )
        assert not lowered.dominates(humped_curve)
        assert lowered.max_violation(humped_curve) > 0

    def test_rejects_single_breakpoint(self):
        with pytest.raises(ValueError):
            PwlDwellModel(breakpoints=((0.0, 1.0),))

    def test_rejects_unsorted_breakpoints(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            PwlDwellModel(breakpoints=((0.0, 1.0), (1.0, 0.5), (0.5, 0.2)))


class TestConstructors:
    def test_conservative_monotonic_shape(self):
        model = conservative_monotonic(xi_m_mono=2.0, xi_et=4.0)
        assert model.dwell(0.0) == pytest.approx(2.0)
        assert model.dwell(2.0) == pytest.approx(1.0)
        assert model.dwell(4.0) == 0.0
        assert model.label == "conservative-monotonic"

    def test_simple_monotonic_underestimates_peak(self):
        params = paper_application("C3")
        simple = from_timing_parameters(params, "simple-monotonic")
        non_mono = from_timing_parameters(params, "non-monotonic")
        assert simple.dwell(params.k_p) < non_mono.dwell(params.k_p)

    def test_from_timing_parameters_shapes(self):
        params = paper_application("C6")
        nm = from_timing_parameters(params, "non-monotonic")
        assert nm.max_dwell == pytest.approx(params.xi_m)
        assert nm.peak_wait == pytest.approx(params.k_p)
        cm = from_timing_parameters(params, "conservative-monotonic")
        assert cm.max_dwell == pytest.approx(params.xi_m_mono)
        with pytest.raises(ValueError, match="unknown shape"):
            from_timing_parameters(params, "cubic")

    def test_two_segment_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="xi_m"):
            two_segment(xi_tt=1.0, k_p=0.5, xi_m=0.5, xi_et=2.0)
        with pytest.raises(ValueError, match="k_p"):
            two_segment(xi_tt=0.5, k_p=3.0, xi_m=1.0, xi_et=2.0)


class TestFitting:
    def test_two_segment_fit_dominates(self, humped_curve):
        model = fit_two_segment(humped_curve)
        assert model.dominates(humped_curve)
        assert model.label == "non-monotonic"

    def test_two_segment_fit_is_tight_at_anchor(self, humped_curve):
        model = fit_two_segment(humped_curve)
        assert model.xi_tt == pytest.approx(humped_curve.xi_tt)

    def test_two_segment_fit_peak_at_measured_peak_wait(self, humped_curve):
        model = fit_two_segment(humped_curve)
        k_p, xi_m = humped_curve.peak
        assert model.peak_wait == pytest.approx(k_p)
        assert model.max_dwell >= xi_m

    def test_two_segment_fit_on_monotone_curve(self, monotone_curve):
        model = fit_two_segment(monotone_curve)
        assert model.dominates(monotone_curve)

    def test_conservative_fit_dominates(self, humped_curve):
        model = fit_conservative_monotonic(humped_curve)
        assert model.dominates(humped_curve)
        assert len(model.breakpoints) == 2

    def test_conservative_fit_above_two_segment_peak(self, humped_curve):
        mono = fit_conservative_monotonic(humped_curve)
        nm = fit_two_segment(humped_curve)
        # The monotone bound pays its conservatism at wait 0.
        assert mono.dwell(0.0) >= nm.dwell(0.0)

    def test_concave_envelope_dominates_and_is_tighter(self, humped_curve):
        envelope = fit_concave_envelope(humped_curve)
        mono = fit_conservative_monotonic(humped_curve)
        assert envelope.dominates(humped_curve)
        # Envelope never exceeds the single-line monotone bound.
        for wait in np.linspace(0, humped_curve.xi_et, 50):
            assert envelope.dwell(wait) <= mono.dwell(wait) + 1e-9

    def test_concave_envelope_is_concave(self, humped_curve):
        envelope = fit_concave_envelope(humped_curve)
        slopes = [
            (d1 - d0) / (w1 - w0)
            for (w0, d0), (w1, d1) in zip(envelope.breakpoints, envelope.breakpoints[1:])
        ]
        assert all(s1 >= s2 - 1e-12 for s1, s2 in zip(slopes, slopes[1:]))
