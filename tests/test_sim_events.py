"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.events import EventQueue


class TestEventQueue:
    def test_fires_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, lambda t: fired.append(("b", t)))
        queue.schedule(1.0, lambda t: fired.append(("a", t)))
        queue.schedule(3.0, lambda t: fired.append(("c", t)))
        queue.run_until(10.0)
        assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_equal_times_fire_in_insertion_order(self):
        queue = EventQueue()
        fired = []
        for tag in "abc":
            queue.schedule(1.0, lambda t, tag=tag: fired.append(tag))
        queue.run_until(1.0)
        assert fired == ["a", "b", "c"]

    def test_run_until_is_inclusive(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda t: fired.append(t))
        queue.schedule(1.0 + 1e-3, lambda t: fired.append(t))
        queue.run_until(1.0)
        assert fired == [1.0]
        assert len(queue) == 1

    def test_cancel(self):
        queue = EventQueue()
        fired = []
        handle = queue.schedule(1.0, lambda t: fired.append(t))
        queue.cancel(handle)
        queue.run_until(2.0)
        assert fired == []
        assert len(queue) == 0

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        fired = []

        def recurring(t):
            fired.append(t)
            if t < 3.0:
                queue.schedule(t + 1.0, recurring)

        queue.schedule(1.0, recurring)
        queue.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_cannot_schedule_in_past(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda t: None)
        queue.run_until(5.0)
        with pytest.raises(ValueError, match="past|current time"):
            queue.schedule(2.0, lambda t: None)

    def test_now_tracks_last_fire(self):
        queue = EventQueue()
        queue.schedule(1.5, lambda t: None)
        queue.step()
        assert queue.now == 1.5

    def test_step_on_empty_returns_false(self):
        assert EventQueue().step() is False

    def test_cancel_is_idempotent_and_skips_only_the_target(self):
        queue = EventQueue()
        fired = []
        keep = queue.schedule(1.0, lambda t: fired.append("keep"))
        drop = queue.schedule(1.0, lambda t: fired.append("drop"))
        queue.cancel(drop)
        queue.cancel(drop)  # double-cancel must be harmless
        assert queue.is_cancelled(drop) and not queue.is_cancelled(keep)
        queue.run_until(2.0)
        assert fired == ["keep"]

    def test_cancel_after_fire_is_a_noop(self):
        queue = EventQueue()
        fired = []
        handle = queue.schedule(1.0, lambda t: fired.append(t))
        later = queue.schedule(2.0, lambda t: fired.append(t))
        queue.run_until(1.0)
        queue.cancel(handle)  # already fired: must not corrupt the count
        assert len(queue) == 1
        queue.run_until(3.0)
        assert fired == [1.0, 2.0]
        assert len(queue) == 0
        queue.cancel(later)  # and again, after everything drained
        assert len(queue) == 0

    def test_len_is_live_count_and_stays_consistent(self):
        queue = EventQueue()
        handles = [queue.schedule(float(i), lambda t: None) for i in range(10)]
        assert len(queue) == 10
        for handle in handles[::2]:
            queue.cancel(handle)
        assert len(queue) == 5
        queue.run_until(20.0)
        assert len(queue) == 0

    def test_mass_cancellation_compacts_the_heap(self):
        """Cancelled entries must not accumulate: after cancelling more
        than half the queue, the heap itself shrinks."""
        queue = EventQueue()
        handles = [queue.schedule(float(i), lambda t: None) for i in range(100)]
        for handle in handles[:80]:
            queue.cancel(handle)
        assert len(queue) == 20
        assert len(queue._heap) <= 40  # compaction actually ran
        fired = queue.run()
        assert fired == 20

    def test_cancel_head_updates_peek(self):
        queue = EventQueue()
        head = queue.schedule(1.0, lambda t: None)
        queue.schedule(2.0, lambda t: None)
        queue.cancel(head)
        assert queue.peek_time() == 2.0
        assert len(queue) == 1

    def test_same_time_insertion_order_survives_interleaved_cancels(self):
        queue = EventQueue()
        fired = []
        handles = [
            queue.schedule(1.0, lambda t, tag=tag: fired.append(tag))
            for tag in "abcd"
        ]
        queue.cancel(handles[1])  # drop "b"
        queue.cancel(handles[3])  # drop "d"
        queue.run_until(1.0)
        assert fired == ["a", "c"]

    def test_run_until_boundary_tolerance(self):
        """Events within 1e-12 of the horizon fire; beyond it they wait."""
        queue = EventQueue()
        fired = []
        queue.schedule(1.0 + 5e-13, lambda t: fired.append("inside"))
        queue.schedule(1.0 + 1e-9, lambda t: fired.append("outside"))
        queue.run_until(1.0)
        assert fired == ["inside"]
        assert queue.now >= 1.0  # clock reached the horizon
        queue.run_until(1.0 + 1e-9)
        assert fired == ["inside", "outside"]

    def test_run_drains_chained_events(self):
        queue = EventQueue()
        fired = []

        def chain(t):
            fired.append(t)
            if t < 3.0:
                queue.schedule(t + 1.0, chain)

        queue.schedule(1.0, chain)
        assert queue.run() == 3
        assert fired == [1.0, 2.0, 3.0]
        assert len(queue) == 0
