"""Failure-injection tests: frame loss on the FlexRay bus.

The analysis assumes every control message arrives (late, but arrives).
These tests check both graceful degradation at low loss rates and that
the co-simulator models loss honestly (a lost command is never latched).
"""

import pytest

from repro.control.controller import design_switched_application
from repro.control.disturbance import OneShotDisturbance
from repro.control.plants import servo_rig
from repro.flexray import FlexRayBus, FrameSpec, paper_bus_config
from repro.sim import CoSimApplication, CoSimulator, FlexRayNetwork


def make_app(deadline=5.0):
    plant = servo_rig()
    app = design_switched_application(
        name="servo",
        plant=plant.model,
        period=plant.period,
        et_delay=plant.period,
        tt_delay=0.0007,
        q=plant.q,
        r=plant.r,
        threshold=plant.threshold,
    )
    return CoSimApplication(
        app=app,
        dynamics=plant.model,
        disturbance_state=plant.disturbance,
        disturbances=OneShotDisturbance(time=0.0),
        deadline=deadline,
        slot=0,
        frame=FrameSpec(frame_id=1, sender="servo"),
    )


def run_with_loss(loss_rate, seed=0, horizon=5.0):
    network = FlexRayNetwork(
        bus=FlexRayBus(config=paper_bus_config()),
        loss_rate=loss_rate,
        loss_seed=seed,
    )
    sim = CoSimulator([make_app()], network)
    trace = sim.run(horizon)
    return trace, network


class TestFrameLoss:
    def test_invalid_loss_rate_rejected(self):
        with pytest.raises(ValueError, match="loss_rate"):
            FlexRayNetwork(bus=FlexRayBus(config=paper_bus_config()), loss_rate=1.0)

    def test_zero_loss_drops_nothing(self):
        trace, network = run_with_loss(0.0)
        assert network.lost == 0
        assert trace.all_deadlines_met()

    def test_losses_are_counted(self):
        __, network = run_with_loss(0.3, seed=7)
        assert network.lost > 0

    def test_mild_loss_tolerated(self):
        """A stabilising loop shrugs off occasional dropped frames."""
        trace, network = run_with_loss(0.05, seed=1)
        assert network.lost > 0
        assert trace.all_deadlines_met()

    def test_heavy_loss_degrades_response(self):
        clean_trace, _ = run_with_loss(0.0)
        lossy_trace, network = run_with_loss(0.4, seed=3)
        assert network.lost > 10
        clean = max(clean_trace["servo"].response_times)
        lossy_responses = lossy_trace["servo"].response_times
        # Either the response got slower or the loop never settled.
        if lossy_responses:
            assert max(lossy_responses) >= clean - 1e-9
        else:
            assert not lossy_trace.all_deadlines_met() or True

    def test_deterministic_given_seed(self):
        a, na = run_with_loss(0.2, seed=5)
        b, nb = run_with_loss(0.2, seed=5)
        assert na.lost == nb.lost
        assert a["servo"].response_times == b["servo"].response_times
