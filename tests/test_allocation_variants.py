"""Tests for the best-fit / worst-fit allocation variants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    best_fit_allocation,
    dedicated_allocation,
    first_fit_allocation,
    make_analyzed,
    worst_fit_allocation,
)
from repro.core.schedulability import is_slot_schedulable
from repro.core.timing_params import PAPER_TABLE_I, TimingParameters


@pytest.fixture(scope="module")
def paper_apps():
    return make_analyzed(PAPER_TABLE_I, "non-monotonic")


class TestVariantsOnPaperSet:
    def test_best_fit_matches_first_fit(self, paper_apps):
        assert best_fit_allocation(paper_apps).slot_count == 3

    def test_worst_fit_valid_but_possibly_wider(self, paper_apps):
        result = worst_fit_allocation(paper_apps)
        assert result.all_schedulable()
        assert 3 <= result.slot_count <= len(paper_apps)

    def test_all_variants_schedulable(self, paper_apps):
        for allocate in (first_fit_allocation, best_fit_allocation, worst_fit_allocation):
            result = allocate(paper_apps)
            for slot in result.slots:
                assert is_slot_schedulable(slot)

    def test_every_app_placed_once(self, paper_apps):
        for allocate in (best_fit_allocation, worst_fit_allocation):
            result = allocate(paper_apps)
            names = sorted(n for slot in result.slot_names for n in slot)
            assert names == sorted(p.name for p in PAPER_TABLE_I)


@st.composite
def random_rosters(draw):
    n = draw(st.integers(min_value=1, max_value=7))
    apps = []
    for i in range(n):
        xi_tt = draw(st.floats(min_value=0.1, max_value=1.5))
        xi_m = xi_tt * draw(st.floats(min_value=1.0, max_value=2.0))
        xi_et = xi_m * draw(st.floats(min_value=2.0, max_value=4.0))
        deadline = xi_tt + draw(st.floats(min_value=0.5, max_value=20.0))
        r = deadline * draw(st.floats(min_value=1.0, max_value=5.0))
        apps.append(
            TimingParameters(
                name=f"A{i}",
                min_inter_arrival=r,
                deadline=deadline,
                xi_tt=xi_tt,
                xi_et=xi_et,
                xi_m=xi_m,
                k_p=0.3 * xi_et,
                xi_m_mono=1.2 * xi_m,
            )
        )
    return make_analyzed(apps, "non-monotonic")


class TestVariantProperties:
    @given(apps=random_rosters())
    @settings(max_examples=60, deadline=None)
    def test_all_heuristics_bounded_by_dedicated(self, apps):
        try:
            dedicated = dedicated_allocation(apps)
        except ValueError:
            return  # some app infeasible even alone: nothing to compare
        if not dedicated.all_schedulable():
            return
        for allocate in (first_fit_allocation, best_fit_allocation, worst_fit_allocation):
            try:
                result = allocate(apps)
            except ValueError:
                continue
            assert result.slot_count <= dedicated.slot_count
            assert result.all_schedulable()

    @given(apps=random_rosters())
    @settings(max_examples=60, deadline=None)
    def test_heuristics_place_every_app(self, apps):
        try:
            result = best_fit_allocation(apps)
        except ValueError:
            return
        placed = sorted(n for slot in result.slot_names for n in slot)
        assert placed == sorted(a.name for a in apps)


def _infeasible_app():
    """An application whose pure-TT response already misses its deadline,
    so no packing (not even a dedicated slot) can schedule it."""
    params = TimingParameters(
        name="doomed",
        min_inter_arrival=10.0,
        deadline=1.5,
        xi_tt=2.0,
        xi_et=5.0,
        xi_m=2.5,
        k_p=1.0,
        xi_m_mono=3.0,
    )
    return make_analyzed([params], "non-monotonic")


class TestInfeasibleErrorPaths:
    """All packing heuristics share the dedicated-slot feasibility guard."""

    @pytest.mark.parametrize(
        "allocate",
        [first_fit_allocation, best_fit_allocation, worst_fit_allocation],
        ids=["first-fit", "best-fit", "worst-fit"],
    )
    def test_heuristics_raise_shared_message(self, allocate):
        with pytest.raises(
            ValueError, match="cannot meet its deadline even on a dedicated TT slot"
        ):
            allocate(_infeasible_app())

    def test_dedicated_reports_unschedulable_without_raising(self):
        result = dedicated_allocation(_infeasible_app())
        assert result.slot_count == 1
        assert not result.all_schedulable()

    @pytest.mark.parametrize(
        "allocate",
        [best_fit_allocation, worst_fit_allocation],
        ids=["best-fit", "worst-fit"],
    )
    def test_fixed_point_method_propagates(self, paper_apps, allocate):
        result = allocate(paper_apps, method="fixed-point")
        assert result.method == "fixed-point"
        assert result.all_schedulable()
        assert result.slot_count <= len(paper_apps)
