"""Unit tests for the cycle-stepped FlexRay bus and the ET timing analysis."""

import pytest

from repro.flexray.bus import FlexRayBus
from repro.flexray.frame import FrameSpec, Message
from repro.flexray.params import paper_bus_config
from repro.flexray.timing import (
    all_et_delay_bounds,
    minislots_consumed_before,
    worst_case_et_delay,
)


@pytest.fixture()
def bus():
    return FlexRayBus(config=paper_bus_config())


class TestFlexRayBus:
    def test_clock_advances_by_cycles(self, bus):
        assert bus.time == 0.0
        bus.run_cycle()
        assert bus.time == pytest.approx(0.005)
        bus.advance_to(0.020)
        assert bus.current_cycle == 4

    def test_tt_requires_slot_ownership(self, bus):
        msg = Message(spec=FrameSpec(frame_id=5), release_time=0.0)
        with pytest.raises(ValueError, match="owns no static slot"):
            bus.submit_tt(msg)

    def test_tt_delivery_is_deterministic(self, bus):
        spec = FrameSpec(frame_id=5)
        bus.grant_slot(2, spec)
        msg = Message(spec=spec, release_time=0.0)
        bus.submit_tt(msg)
        delivered = bus.run_cycle()
        assert msg in delivered
        _, end = bus.config.static_slot_window(0, 2)
        assert msg.delivery_time == pytest.approx(end)
        assert bus.statistics.tt_deliveries == 1

    def test_unused_slot_counted(self, bus):
        bus.grant_slot(0, FrameSpec(frame_id=5))
        bus.run_cycle()  # no data queued
        assert bus.statistics.unused_static_slots == 1
        assert bus.statistics.static_utilization == 0.0

    def test_late_tt_message_rides_next_cycle(self, bus):
        spec = FrameSpec(frame_id=5)
        bus.grant_slot(0, spec)
        start, _ = bus.config.static_slot_window(0, 0)
        msg = Message(spec=spec, release_time=start + 1e-6)
        bus.submit_tt(msg)
        first = bus.run_cycle()
        assert msg not in first
        second = bus.run_cycle()
        assert msg in second
        _, end = bus.config.static_slot_window(1, 0)
        assert msg.delivery_time == pytest.approx(end)

    def test_et_delivery(self, bus):
        msg = Message(spec=FrameSpec(frame_id=1), release_time=0.0)
        bus.submit_et(msg)
        delivered = bus.run_cycle()
        assert msg in delivered
        assert bus.statistics.et_deliveries == 1
        assert msg.delivery_time > bus.config.static_segment_length

    def test_release_slot_drops_queue(self, bus):
        spec = FrameSpec(frame_id=5)
        bus.grant_slot(0, spec)
        bus.submit_tt(Message(spec=spec, release_time=0.0))
        bus.release_slot(0)
        delivered = bus.run_cycle()
        assert delivered == []

    def test_slot_handover_between_apps(self, bus):
        """The paper's dynamic allocation: one slot, two owners over time."""
        first, second = FrameSpec(frame_id=5), FrameSpec(frame_id=6)
        bus.grant_slot(0, first)
        m1 = Message(spec=first, release_time=0.0)
        bus.submit_tt(m1)
        bus.run_cycle()
        bus.release_slot(0)
        bus.grant_slot(0, second)
        m2 = Message(spec=second, release_time=bus.time)
        bus.submit_tt(m2)
        bus.run_cycle()
        assert m1.delivered and m2.delivered
        assert m2.delivery_time > m1.delivery_time


class TestEtTimingAnalysis:
    def test_minislots_before_counts_empty_and_busy(self):
        cfg = paper_bus_config()
        frame = FrameSpec(frame_id=5, payload_bits=64)
        interferers = [FrameSpec(frame_id=2, payload_bits=256)]
        # IDs 1, 3, 4 empty (3 minislots) + ID 2 busy (3 minislots).
        assert minislots_consumed_before(frame, interferers, cfg, 1e-7) == 6

    def test_duplicate_interferer_ids_rejected(self):
        cfg = paper_bus_config()
        frame = FrameSpec(frame_id=5)
        with pytest.raises(ValueError, match="distinct"):
            minislots_consumed_before(
                frame, [FrameSpec(frame_id=2), FrameSpec(frame_id=2)], cfg, 1e-7
            )

    def test_bound_dominates_simulation(self):
        """The analytical worst case must cover the simulated latency."""
        cfg = paper_bus_config()
        frames = [FrameSpec(frame_id=i, payload_bits=128) for i in range(1, 7)]
        bounds = {b.frame_id: b.worst_latency for b in all_et_delay_bounds(frames, cfg)}
        bus = FlexRayBus(config=cfg)
        messages = [Message(spec=f, release_time=0.0) for f in frames]
        for message in messages:
            bus.submit_et(message)
        bus.advance_to(0.1)
        for message in messages:
            assert message.delivered
            assert message.latency <= bounds[message.spec.frame_id] + 1e-12

    def test_higher_id_has_larger_bound(self):
        cfg = paper_bus_config()
        frames = [FrameSpec(frame_id=i, payload_bits=128) for i in range(1, 5)]
        bounds = all_et_delay_bounds(frames, cfg)
        latencies = [b.worst_latency for b in bounds]
        assert latencies == sorted(latencies)

    def test_oversized_frame_rejected(self):
        cfg = paper_bus_config()
        huge_bits = int(cfg.minislots * cfg.minislot_length / 1e-7) + 1000
        with pytest.raises(ValueError, match="minislots"):
            worst_case_et_delay(FrameSpec(frame_id=1, payload_bits=huge_bits), [], cfg)

    def test_single_frame_delivered_first_cycle(self):
        cfg = paper_bus_config()
        bound = worst_case_et_delay(FrameSpec(frame_id=1, payload_bits=64), [], cfg)
        assert bound.cycles_needed == 1
        assert bound.worst_latency <= cfg.cycle_length + cfg.dynamic_segment_length
