"""Tests for FlexRay cycle multiplexing (slot shared by cycle filter)."""

import pytest

from repro.flexray.frame import FrameSpec, Message
from repro.flexray.bus import FlexRayBus
from repro.flexray.params import paper_bus_config
from repro.flexray.static_segment import CycleFilter, SlotAssignmentError, StaticSchedule


class TestCycleFilter:
    def test_every_cycle_default(self):
        f = CycleFilter()
        assert all(f.matches(c) for c in range(10))

    def test_base_and_repetition(self):
        f = CycleFilter(base=1, repetition=2)
        assert f.matches(1) and f.matches(3)
        assert not f.matches(0) and not f.matches(2)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            CycleFilter(base=0, repetition=3)

    def test_rejects_base_out_of_range(self):
        with pytest.raises(ValueError, match="base"):
            CycleFilter(base=2, repetition=2)

    def test_overlap_detection(self):
        even = CycleFilter(base=0, repetition=2)
        odd = CycleFilter(base=1, repetition=2)
        quarters = CycleFilter(base=2, repetition=4)
        assert not even.overlaps(odd)
        assert even.overlaps(quarters)  # cycle 2 is even
        assert even.overlaps(CycleFilter())  # every-cycle overlaps all


class TestMultiplexedSchedule:
    @pytest.fixture()
    def schedule(self):
        return StaticSchedule(config=paper_bus_config())

    def test_disjoint_filters_share_a_slot(self, schedule):
        a, b = FrameSpec(frame_id=1), FrameSpec(frame_id=2)
        schedule.assign(0, a, CycleFilter(base=0, repetition=2))
        schedule.assign(0, b, CycleFilter(base=1, repetition=2))
        assert schedule.owner(0, cycle=0) is a
        assert schedule.owner(0, cycle=1) is b
        assert schedule.owner(0, cycle=2) is a

    def test_overlapping_filters_rejected(self, schedule):
        schedule.assign(0, FrameSpec(frame_id=1), CycleFilter(base=0, repetition=2))
        with pytest.raises(SlotAssignmentError, match="overlapping"):
            schedule.assign(0, FrameSpec(frame_id=2), CycleFilter(base=0, repetition=4))

    def test_release_single_frame(self, schedule):
        a, b = FrameSpec(frame_id=1), FrameSpec(frame_id=2)
        schedule.assign(0, a, CycleFilter(base=0, repetition=2))
        schedule.assign(0, b, CycleFilter(base=1, repetition=2))
        schedule.release(0, frame_id=1)
        assert schedule.owner(0, cycle=0) is None
        assert schedule.owner(0, cycle=1) is b

    def test_next_transmission_honours_filter(self, schedule):
        cfg = schedule.config
        spec = FrameSpec(frame_id=1)
        schedule.assign(2, spec, CycleFilter(base=1, repetition=4))
        # Released at t=0: the first matching cycle is 1.
        t = schedule.next_transmission_time(2, 0.0, frame_id=1)
        _, end = cfg.static_slot_window(1, 2)
        assert t == pytest.approx(end)

    def test_worst_case_latency_scales_with_repetition(self, schedule):
        spec = FrameSpec(frame_id=1)
        schedule.assign(0, spec, CycleFilter(base=0, repetition=4))
        cfg = schedule.config
        assert schedule.worst_case_latency(0, frame_id=1) == pytest.approx(
            4 * cfg.cycle_length + cfg.static_slot_length
        )


class TestMultiplexedBus:
    def test_two_frames_alternate_one_slot(self):
        bus = FlexRayBus(config=paper_bus_config())
        a, b = FrameSpec(frame_id=1), FrameSpec(frame_id=2)
        bus.static.assign(0, a, CycleFilter(base=0, repetition=2))
        bus.static.assign(0, b, CycleFilter(base=1, repetition=2))
        m_a = Message(spec=a, release_time=0.0)
        m_b = Message(spec=b, release_time=0.0)
        bus._tt_queues.setdefault(0, []).extend([m_a, m_b])
        first = bus.run_cycle()
        second = bus.run_cycle()
        assert m_a in first and m_b not in first
        assert m_b in second
        assert m_b.delivery_time > m_a.delivery_time
