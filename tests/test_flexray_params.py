"""Unit tests for repro.flexray.params."""

import pytest

from repro.flexray.params import FlexRayConfig, paper_bus_config


class TestFlexRayConfig:
    def test_paper_bus_geometry(self):
        cfg = paper_bus_config()
        assert cfg.cycle_length == pytest.approx(0.005)
        assert cfg.static_slots == 10
        assert cfg.static_segment_length == pytest.approx(0.002)
        assert cfg.dynamic_segment_length == pytest.approx(0.003)
        assert cfg.minislots == 300

    def test_static_slot_window(self):
        cfg = paper_bus_config()
        start, end = cfg.static_slot_window(0, 0)
        assert start == pytest.approx(0.0)
        assert end == pytest.approx(0.0002)
        start, end = cfg.static_slot_window(2, 3)
        assert start == pytest.approx(2 * 0.005 + 3 * 0.0002)
        assert end - start == pytest.approx(cfg.static_slot_length)

    def test_dynamic_segment_start(self):
        cfg = paper_bus_config()
        assert cfg.dynamic_segment_start(1) == pytest.approx(0.005 + 0.002)

    def test_cycle_of(self):
        cfg = paper_bus_config()
        assert cfg.cycle_of(0.0) == 0
        assert cfg.cycle_of(0.0049) == 0
        assert cfg.cycle_of(0.005) == 1
        assert cfg.cycle_of(0.0123) == 2

    def test_rejects_static_segment_filling_cycle(self):
        with pytest.raises(ValueError, match="dynamic segment"):
            FlexRayConfig(
                cycle_length=0.002,
                static_slots=10,
                static_slot_length=0.0002,
            )

    def test_rejects_minislot_bigger_than_slot(self):
        with pytest.raises(ValueError, match="shorter than static slots"):
            FlexRayConfig(minislot_length=0.001)

    def test_rejects_bad_slot_index(self):
        cfg = paper_bus_config()
        with pytest.raises(ValueError):
            cfg.static_slot_window(0, 10)
        with pytest.raises(ValueError):
            cfg.static_slot_window(0, -1)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            paper_bus_config().cycle_of(-0.1)
