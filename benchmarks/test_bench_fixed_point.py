"""Benchmark E7 — closed-form bound (Eq. 20) vs exact fixed point (Eq. 5),
and against the CAN-style iterative analysis the paper contrasts with.
"""

from repro.baselines.can_rta import CanMessage, worst_case_response_time
from repro.core.schedulability import (
    AnalyzedApplication,
    max_wait_closed_form,
    max_wait_fixed_point,
)
from repro.core.timing_params import PAPER_TABLE_I
from repro.experiments.ablations import run_fixed_point_ablation


def _paper_apps():
    table = [AnalyzedApplication.from_params(p) for p in PAPER_TABLE_I]
    by_name = {a.name: a for a in table}
    subject = by_name["C5"]
    higher = [by_name["C3"], by_name["C6"], by_name["C2"], by_name["C4"]]
    lower = [by_name["C1"]]
    return subject, higher, lower


def test_bench_closed_form(benchmark):
    _, higher, lower = _paper_apps()
    wait = benchmark(lambda: max_wait_closed_form(lower, higher))
    assert wait > 0


def test_bench_fixed_point(benchmark):
    _, higher, lower = _paper_apps()
    wait = benchmark(lambda: max_wait_fixed_point(lower, higher))
    upper = max_wait_closed_form(lower, higher)
    assert wait <= upper


def test_bench_pessimism_study(benchmark):
    result = benchmark.pedantic(
        lambda: run_fixed_point_ablation(samples=100, seed=1), rounds=1, iterations=1
    )
    print("\n" + result.report())
    assert result.mean_gap >= 0


def test_bench_can_rta_baseline(benchmark):
    """The iterative CAN analysis the paper's Related Work contrasts."""
    messages = [
        CanMessage(name=f"M{i}", period=0.005 * i, transmission=0.0005, priority=i)
        for i in range(1, 9)
    ]
    subject = messages[-1]
    result = benchmark(
        lambda: worst_case_response_time(subject, messages[:-1])
    )
    assert result.response_time > 0
