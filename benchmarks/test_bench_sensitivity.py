"""Benchmark (extension) — deadline-tightness sensitivity sweep.

Shows how far the paper's deadline vector sits from the slot-count
cliffs under both dwell models.
"""

from repro.core.sensitivity import critical_scale, deadline_sensitivity
from repro.core.timing_params import PAPER_TABLE_I
from repro.experiments.reporting import format_table


def test_bench_sensitivity_sweep(benchmark):
    scales = [0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0]
    points = benchmark(lambda: deadline_sensitivity(PAPER_TABLE_I, scales))
    rows = [
        [p.scale, p.slots_non_monotonic or "infeasible", p.slots_monotonic or "infeasible"]
        for p in points
    ]
    print(
        "\nDeadline-tightness sensitivity\n"
        + format_table(["scale", "non-monotonic", "monotonic"], rows)
    )
    at_one = next(p for p in points if p.scale == 1.0)
    assert at_one.slots_non_monotonic == 3
    assert at_one.slots_monotonic == 5


def test_bench_critical_scale(benchmark):
    scale = benchmark(lambda: critical_scale(PAPER_TABLE_I))
    print(f"\ncritical deadline-tightness factor: {scale:.3f}")
    assert 0.0 < scale <= 1.0
