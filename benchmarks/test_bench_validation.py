"""Benchmarks E9-E10 — bound-soundness validation and the pure-ET baseline."""

from repro.experiments.validation import run_bound_validation, run_pure_et_baseline


def test_bench_bound_validation(benchmark, sim_apps):
    result = benchmark.pedantic(
        lambda: run_bound_validation(applications=sim_apps, seeds=5, horizon=120.0),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.report())
    assert result.sound()


def test_bench_pure_et_baseline(benchmark, sim_apps):
    result = benchmark.pedantic(
        lambda: run_pure_et_baseline(applications=sim_apps),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.report())
    assert result.pure_et_misses
    assert not result.hybrid_misses
