"""Benchmark — exact allocation at scale (ISSUE 2 satellite).

Compares the exhaustive set-partition search against the pruned
branch-and-bound backend on synthetic fleets of 8/12/16/20 applications
and records the feasibility cache's effectiveness (hit rate, memoized
entries, search nodes) in each benchmark's ``extra_info``.

The exhaustive enumeration is Bell-number-bounded and only runs at
n=8; branch-and-bound must prove the same optimum there and keep
solving — the acceptance bar is a 20-app exact solve in under 5 s.

Smoke mode for CI: set ``REPRO_SCALE_BENCH_MAX`` (e.g. ``12``) to cap
the fleet size, and run with ``--benchmark-disable`` so every case
executes exactly once as a plain regression test.
"""

import os
import random
import time

import pytest

from repro.core.allocation import make_analyzed
from repro.core.timing_params import TimingParameters
from repro.solvers import allocate

_SMOKE_MAX = int(os.environ.get("REPRO_SCALE_BENCH_MAX", "20"))
SIZES = [n for n in (8, 12, 16, 20) if n <= _SMOKE_MAX]


def synthetic_fleet(n, seed=7):
    """A reproducible n-app roster, every app feasible on its own slot.

    Utilisations and deadlines are drawn so slots typically host a
    handful of applications — enough sharing to make the exact search
    non-trivial without blowing past the deadline bracket.
    """
    rng = random.Random(seed)
    roster = []
    for i in range(n):
        xi_tt = rng.uniform(0.2, 0.6)
        xi_m = xi_tt * rng.uniform(1.1, 1.7)
        xi_et = xi_m * rng.uniform(2.5, 3.5)
        deadline = xi_m * rng.uniform(4.0, 9.0)
        roster.append(
            TimingParameters(
                name=f"S{i:02d}",
                min_inter_arrival=deadline * rng.uniform(2.0, 6.0),
                deadline=deadline,
                xi_tt=xi_tt,
                xi_et=xi_et,
                xi_m=xi_m,
                k_p=0.4 * xi_et,
                xi_m_mono=1.25 * xi_m,
            )
        )
    return make_analyzed(roster, "non-monotonic")


@pytest.mark.parametrize("n", SIZES)
def test_bench_branch_and_bound_scale(benchmark, n):
    apps = synthetic_fleet(n)
    result = benchmark.pedantic(
        lambda: allocate("branch-and-bound", apps), rounds=1, iterations=1
    )
    stats = result.stats
    benchmark.extra_info["n_apps"] = n
    benchmark.extra_info["slot_count"] = result.slot_count
    benchmark.extra_info["search_nodes"] = stats["nodes"]
    benchmark.extra_info["cache_hit_rate"] = round(
        stats["feasibility_cache"]["hit_rate"], 4
    )
    benchmark.extra_info["cache_entries"] = stats["feasibility_cache"]["entries"]
    assert result.all_schedulable()
    assert result.slot_count <= allocate("first-fit", apps).slot_count


def test_bench_exhaustive_optimum_at_8(benchmark):
    """The seed backend's comfort zone — and the agreement check."""
    apps = synthetic_fleet(8)
    exhaustive = benchmark.pedantic(
        lambda: allocate("optimal", apps), rounds=1, iterations=1
    )
    bnb = allocate("branch-and-bound", apps)
    assert bnb.slot_count == exhaustive.slot_count


def test_twenty_app_exact_solve_under_five_seconds():
    """ISSUE 2 acceptance: a 20-app exact solve finishes in < 5 s."""
    if _SMOKE_MAX < 20:
        pytest.skip("smoke mode caps the fleet below 20 apps")
    apps = synthetic_fleet(20)
    start = time.perf_counter()
    result = allocate("branch-and-bound", apps)
    elapsed = time.perf_counter() - start
    assert elapsed < 5.0, f"20-app exact solve took {elapsed:.2f}s"
    assert result.all_schedulable()
    cache = result.stats["feasibility_cache"]
    assert cache["hits"] > 0  # memoization actually engaged
    print(
        f"\n20-app branch-and-bound: {elapsed:.3f}s, "
        f"{result.slot_count} slots, {result.stats['nodes']} nodes, "
        f"cache hit rate {cache['hit_rate']:.1%} ({cache['entries']} entries)"
    )
