"""Benchmark E2 — regenerate Figure 4 (PWL dwell-model construction).

Checks the paper's safety story: the non-monotonic and conservative
monotonic models dominate the measurement, the simple monotonic model
does not.
"""

from repro.core.pwl import fit_conservative_monotonic, fit_two_segment
from repro.experiments.fig4 import run_fig4


def test_bench_fig4_models(benchmark, fig3_result):
    result = benchmark(lambda: run_fig4(curve=fig3_result.curve))
    print("\n" + result.report())
    assert result.non_monotonic.dominates(result.curve)
    assert result.conservative_monotonic.dominates(result.curve)
    assert not result.simple.dominates(result.curve)
    assert result.tightness_gap() > 0


def test_bench_two_segment_fit(benchmark, fig3_result):
    model = benchmark(lambda: fit_two_segment(fig3_result.curve))
    assert model.dominates(fig3_result.curve)


def test_bench_monotonic_fit(benchmark, fig3_result):
    model = benchmark(lambda: fit_conservative_monotonic(fig3_result.curve))
    assert model.dominates(fig3_result.curve)
