"""Benchmark E12 — quadratic QoC cost vs wait time."""

from repro.experiments.ablations import run_qoc_ablation


def test_bench_qoc_ablation(benchmark, sim_apps):
    result = benchmark(lambda: run_qoc_ablation(applications=sim_apps))
    print("\n" + result.report())
    for _name, j0, j_max, penalty in result.rows:
        assert j0 >= 0.0
        assert j_max >= j0 - 1e-9  # waiting never improves the LQ cost
        assert penalty >= -1e-9
