"""Benchmark — co-simulation throughput (ISSUE 3 tentpole, ISSUE 5/8 kernels).

Times a 32-scenario Monte-Carlo co-simulation grid (the Figure 5 fleet,
sporadic disturbances, FlexRay frame loss, seeds 0..31) through
``run_many`` with thread workers vs a process pool, plus two **three-way
kernel shoot-outs** (legacy fixed-step loop / event kernel / batch fast
path) — one on the fig5 analytic scenario and one on the loss-free
cycle-accurate FlexRay fig5 fleet, where the batch kernel precomputes
the static-segment schedule — plus one run of the ``can-cosim``
scenario (ISSUE 9's priority-arbitrated CAN backend, event kernel
only), and writes the numbers to ``BENCH_cosim.json`` at the
repository root.

The co-simulation loop is pure Python, so thread workers serialize on
the GIL; the process pool is the scaling path.  The ``>= 2x`` speedup
acceptance bar is asserted only where it is physically possible
(``cpu_count >= 4``) — the JSON records the honest measurement either
way, including the core count it was taken on.  The kernel bars
(event/legacy ratio ``<= 1.05``, analytic batch speedup ``>= 3x`` over
legacy, FlexRay batch speedup ``>= 2x`` over event) are asserted
outside smoke mode, where horizons are long enough for the ratios to
mean something; the traces-bitwise-identical cross-checks run in every
mode.

Smoke mode for CI: set ``REPRO_COSIM_BENCH_SMOKE=1`` to shrink the grid
and horizon so the job finishes in seconds while still exercising both
executors end-to-end.
"""

import json
import os
import time
from pathlib import Path

from repro.experiments import run_kernel_ablation, simulation_applications
from repro.pipeline import get_scenario, run_many
from repro.sim import GLOBAL_ZOH_CACHE

_SMOKE = os.environ.get("REPRO_COSIM_BENCH_SMOKE", "") not in ("", "0")
GRID_SIZE = 4 if _SMOKE else 32
HORIZON = 4.0 if _SMOKE else 20.0
WAIT_STEP = 16 if _SMOKE else 8
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_cosim.json"


def _grid(size):
    """``size`` co-sim scenarios: one shared design, per-seed randomness."""
    base = get_scenario("fig5-cosim").derive(
        name="bench-cosim",
        wait_step=WAIT_STEP,
        horizon=HORIZON,
        disturbance="sporadic",
        loss_rate=0.01,
    )
    return [base.derive(name=f"bench-cosim#seed{s}", seed=s) for s in range(size)]


def test_bench_cosim_grid_thread_vs_process():
    """Record the thread-vs-process wall clock on the co-sim grid."""
    # Warm the process-wide dwell cache first so both executors measure
    # pure co-simulation throughput (workers fork warm where the
    # platform supports it; thread workers share this cache directly).
    simulation_applications(wait_step=WAIT_STEP)
    scenarios = _grid(GRID_SIZE)
    workers = max(2, min(8, os.cpu_count() or 1))

    started = time.perf_counter()
    thread_results = run_many(scenarios, max_workers=workers, executor="thread")
    thread_seconds = time.perf_counter() - started

    started = time.perf_counter()
    process_results = run_many(scenarios, max_workers=workers, executor="process")
    process_seconds = time.perf_counter() - started

    assert all(r.ok for r in thread_results)
    assert all(r.ok for r in process_results)
    # Same seeds, same design: the two executors must agree on physics.
    thread_qoc = [r.artifact("cosim")["qoc"] for r in thread_results]
    process_qoc = [r.artifact("cosim")["qoc"] for r in process_results]
    assert thread_qoc == process_qoc

    kernels = run_kernel_ablation(
        wait_step=WAIT_STEP, horizon=HORIZON, repeats=1 if _SMOKE else 3
    )
    assert kernels.traces_identical

    flexray_kernels = run_kernel_ablation(
        wait_step=WAIT_STEP,
        horizon=HORIZON,
        repeats=1 if _SMOKE else 3,
        scenario="fig5-cosim",
    )
    assert flexray_kernels.traces_identical

    # ISSUE 9: the CAN backend rides the same artifact.  One run of the
    # can-cosim scenario records its throughput and bus counters; the
    # keys are new, so compare_bench.py shows them as non-blocking
    # "new/gone" rows until a committed baseline exists, then as
    # advisory timing diffs (never part of the blocking --only gate).
    can_scenario = get_scenario("can-cosim").derive(
        name="bench-can-cosim", wait_step=WAIT_STEP, horizon=HORIZON
    )
    started = time.perf_counter()
    can_result = run_many([can_scenario], max_workers=1, executor="thread")[0]
    can_seconds = time.perf_counter() - started
    assert can_result.ok
    can_artifact = can_result.artifact("cosim")
    assert can_artifact["kernel_used"] == "event"  # arbitration: never batched

    speedup = thread_seconds / process_seconds if process_seconds else float("inf")
    payload = {
        "benchmark": "cosim-throughput",
        "smoke": _SMOKE,
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "grid_size": GRID_SIZE,
        "horizon_seconds": HORIZON,
        "wait_step": WAIT_STEP,
        "thread_seconds": round(thread_seconds, 3),
        "process_seconds": round(process_seconds, 3),
        "speedup_process_vs_thread": round(speedup, 3),
        "scenarios_per_second": {
            "thread": round(GRID_SIZE / thread_seconds, 3),
            "process": round(GRID_SIZE / process_seconds, 3),
        },
        "kernel": {
            "scenario": kernels.scenario,
            "batch_cosim_seconds": round(kernels.batch_seconds, 4),
            "event_cosim_seconds": round(kernels.event_seconds, 4),
            "legacy_cosim_seconds": round(kernels.legacy_seconds, 4),
            "event_over_legacy_ratio": round(kernels.event_over_legacy, 3),
            "batch_speedup_vs_legacy": round(kernels.batch_speedup_vs_legacy, 3),
            "traces_bitwise_identical": kernels.traces_identical,
            "samples": kernels.samples,
        },
        "flexray_kernel": {
            "scenario": flexray_kernels.scenario,
            "batch_cosim_seconds": round(flexray_kernels.batch_seconds, 4),
            "event_cosim_seconds": round(flexray_kernels.event_seconds, 4),
            "legacy_cosim_seconds": round(flexray_kernels.legacy_seconds, 4),
            "batch_speedup_vs_event": round(
                flexray_kernels.batch_speedup_vs_event, 3
            ),
            "batch_speedup_vs_legacy": round(
                flexray_kernels.batch_speedup_vs_legacy, 3
            ),
            "traces_bitwise_identical": flexray_kernels.traces_identical,
            "samples": flexray_kernels.samples,
        },
        "can_cosim": {
            "scenario": "can-cosim",
            "cosim_seconds": round(can_seconds, 4),
            "kernel_used": can_artifact["kernel_used"],
            "qoc": round(can_artifact["qoc"], 6),
            "deadlines_met": int(can_artifact["all_deadlines_met"]),
            "network_stats": can_artifact["network_stats"],
        },
        "zoh_cache": GLOBAL_ZOH_CACHE.stats(),
        "generated_unix": round(time.time(), 1),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\ncosim grid ({GRID_SIZE} scenarios, {workers} workers): "
        f"thread {thread_seconds:.2f}s, process {process_seconds:.2f}s, "
        f"speedup {speedup:.2f}x -> {OUTPUT.name}"
    )
    # The acceptance bar needs real cores; a 1-2 core runner cannot
    # express a 2x parallel win and records the honest number instead.
    if not _SMOKE and (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, (
            f"process pool speedup {speedup:.2f}x below the 2x bar "
            f"on {os.cpu_count()} cores"
        )
    # ISSUE 5 kernel bars: the event kernel must be at parity with the
    # legacy loop, and the batch fast path at least 3x faster than it.
    # Smoke horizons are milliseconds of work — too noisy to assert on.
    if not _SMOKE:
        assert kernels.event_over_legacy <= 1.05, (
            f"event kernel at {kernels.event_over_legacy:.2f}x of legacy, "
            "above the 1.05 parity bar"
        )
        assert kernels.batch_speedup_vs_legacy >= 3.0, (
            f"batch kernel only {kernels.batch_speedup_vs_legacy:.2f}x "
            "faster than legacy, below the 3x bar"
        )
        # ISSUE 8 bar: on the loss-free FlexRay fleet the precomputed
        # schedule must buy at least 2x over the event kernel.
        assert flexray_kernels.batch_speedup_vs_event >= 2.0, (
            f"FlexRay batch kernel only "
            f"{flexray_kernels.batch_speedup_vs_event:.2f}x faster than "
            "the event kernel, below the 2x bar"
        )


def test_bench_cosim_json_is_valid():
    """The artifact exists (this run or a committed one) and parses."""
    assert OUTPUT.exists(), "BENCH_cosim.json missing; run the grid bench first"
    payload = json.loads(OUTPUT.read_text())
    assert payload["benchmark"] == "cosim-throughput"
    assert payload["grid_size"] >= 4
    kernel = payload["kernel"]
    assert kernel["traces_bitwise_identical"] is True
    assert {"batch_cosim_seconds", "event_cosim_seconds", "legacy_cosim_seconds"} \
        <= set(kernel)
    assert kernel["batch_speedup_vs_legacy"] > 0
    assert kernel["event_over_legacy_ratio"] > 0
    flexray = payload["flexray_kernel"]
    assert flexray["traces_bitwise_identical"] is True
    assert {"batch_cosim_seconds", "event_cosim_seconds", "legacy_cosim_seconds"} \
        <= set(flexray)
    assert flexray["batch_speedup_vs_event"] > 0
    assert flexray["batch_speedup_vs_legacy"] > 0
    can = payload["can_cosim"]
    assert can["scenario"] == "can-cosim"
    assert can["kernel_used"] == "event"
    assert can["cosim_seconds"] > 0
    assert can["network_stats"]["delivered"] > 0
    assert payload["speedup_process_vs_thread"] > 0
