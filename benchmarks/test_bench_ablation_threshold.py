"""Benchmark E8 — steady-state threshold (Eth) sweep on the servo rig.

Smaller thresholds demand longer response times in every mode; the
non-monotonic dwell phenomenon persists across the sweep.
"""

from repro.experiments.ablations import run_threshold_sweep


def test_bench_threshold_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_threshold_sweep(
            thresholds=[0.1, 0.2, 0.4], wait_step=8, max_samples=300
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.report())
    xi_tts = [row[1] for row in result.rows]
    xi_ets = [row[2] for row in result.rows]
    # Tighter thresholds (earlier rows) cannot settle faster.
    assert xi_tts == sorted(xi_tts, reverse=True)
    assert xi_ets == sorted(xi_ets, reverse=True)
