"""Benchmark E6 — PWL segment-count ablation (Sec. III's extension remark).

More segments give tighter dwell bounds and never need more TT slots.
"""

from repro.experiments.ablations import run_segment_ablation


def test_bench_segment_ablation(benchmark, sim_apps):
    result = benchmark(lambda: run_segment_ablation(applications=sim_apps))
    print("\n" + result.report())
    assert (
        result.slot_counts["concave-envelope"]
        <= result.slot_counts["two-segment"]
        <= result.slot_counts["conservative-monotonic"]
    )
