"""Benchmark E5 — regenerate Figure 5 (six-application co-simulation).

All applications are disturbed at t = 0 and must settle within their
deadlines using the TT-slot allocation from the non-monotonic analysis.
Run both over the cycle-accurate FlexRay bus and the analytic network.
"""

from repro.experiments.fig5 import run_fig5


def test_bench_fig5_flexray(benchmark, sim_apps):
    result = benchmark.pedantic(
        lambda: run_fig5(applications=sim_apps, use_flexray=True),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.report(plots=True))
    assert result.all_deadlines_met()


def test_bench_fig5_analytic(benchmark, sim_apps):
    result = benchmark(
        lambda: run_fig5(applications=sim_apps, use_flexray=False, horizon=15.0)
    )
    assert result.trace.apps  # trace recorded for every app


def test_bench_fig5_bus_throughput(benchmark):
    """Raw FlexRay bus cycles per second (substrate performance)."""
    from repro.flexray import FlexRayBus, FrameSpec, Message, paper_bus_config

    def run_bus():
        bus = FlexRayBus(config=paper_bus_config())
        spec = FrameSpec(frame_id=1)
        for _ in range(200):
            bus.submit_et(Message(spec=spec, release_time=bus.time))
            bus.run_cycle()
        return bus.statistics.et_deliveries

    delivered = benchmark(run_bus)
    assert delivered == 200
