"""Benchmark E4 — regenerate the Section V slot-allocation case study.

Paper result (asserted exactly): 3 TT slots with the non-monotonic
model, 5 with the conservative monotonic one — 67 % more communication
resources.
"""

import pytest

from repro.core.allocation import first_fit_allocation, make_analyzed, optimal_allocation
from repro.core.timing_params import PAPER_TABLE_I
from repro.experiments.allocation import run_paper_allocation, run_simulation_allocation


def test_bench_allocation_paper_case_study(benchmark):
    comparison = benchmark(run_paper_allocation)
    print("\n" + comparison.report())
    assert comparison.non_monotonic.slot_count == 3
    assert comparison.non_monotonic.slot_names == [
        ["C3", "C6"],
        ["C2", "C4"],
        ["C5", "C1"],
    ]
    assert comparison.monotonic.slot_count == 5
    assert comparison.extra_resource_fraction == pytest.approx(2 / 3)


def test_bench_allocation_first_fit(benchmark):
    apps = make_analyzed(PAPER_TABLE_I, "non-monotonic")
    result = benchmark(lambda: first_fit_allocation(apps))
    assert result.slot_count == 3


def test_bench_allocation_exhaustive_optimum(benchmark):
    apps = make_analyzed(PAPER_TABLE_I, "non-monotonic")
    result = benchmark(lambda: optimal_allocation(apps))
    assert result.slot_count == 3


def test_bench_allocation_simulation_mode(benchmark, sim_apps):
    comparison = benchmark(lambda: run_simulation_allocation(applications=sim_apps))
    print("\n" + comparison.report())
    assert comparison.non_monotonic.slot_count < comparison.monotonic.slot_count
