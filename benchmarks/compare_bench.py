#!/usr/bin/env python
"""Diff freshly measured BENCH_*.json artifacts against committed ones.

CI's smoke job regenerates the benchmark artifacts on every run; this
script compares them with the versions committed at a git reference
(``HEAD`` by default) and prints a regression table of every numeric
metric that moved, so the BENCH trajectory is visible in the job log
without downloading artifacts:

    python benchmarks/compare_bench.py            # diff vs HEAD
    python benchmarks/compare_bench.py --ref v1.0 # diff vs a tag
    python benchmarks/compare_bench.py BENCH_cosim.json  # one file only
    python benchmarks/compare_bench.py --log BENCH_history.jsonl  # and append

``--log PATH`` additionally appends every numeric leaf of the current
artifacts to an append-only trajectory log — one JSON line per
``(commit, artifact, key, value)`` — so the per-commit history of every
benchmark metric accumulates in one greppable file instead of being
reconstructed from ``git log -p``.  Lines already present for the same
``(commit, artifact, key)`` are not rewritten, so re-running a CI job
never duplicates history.

The full-table report is informational — CI wires it in as a
non-blocking step (timings on shared runners are noisy).  Exit status
is 0 unless ``--fail-above`` is given, in which case any metric whose
relative change exceeds the threshold in the bad direction fails the
run (metrics matching a ``HIGHER_IS_BETTER`` substring regress
downward; everything else — timings, counts — regresses upward).
``--only PATTERN`` restricts the diff to matching metric paths, so a
*blocking* CI gate can watch a robust ratio (e.g.
``--only 'kernel.batch_speedup*'``) while raw second-counts stay
advisory; a pattern with glob characters is matched anchored
(``fnmatch``), a plain one as a substring.  Setting
``REPRO_BENCH_NO_GATE=1`` reports regressions but forces exit 0 — the
escape hatch for landing a known, accepted regression without editing
the workflow.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Dict, Iterator, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Keys that are measurement noise or metadata, never a regression.
IGNORED_LEAVES = {"generated_unix", "cpu_count", "workers", "smoke"}

#: Substrings marking metrics where *larger* is better (speedups,
#: cache effectiveness, savings, throughput); everything else numeric —
#: timings, counts, ratios-to-a-baseline — is treated as
#: lower-is-better when deciding the regression flag.
HIGHER_IS_BETTER = (
    "speedup",
    "hit_rate",
    "hits",
    "deadlines_met",
    "saved",
    "savings",
    "per_second",
)


def flatten(node, prefix="") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            if key in IGNORED_LEAVES:
                continue
            yield from flatten(value, f"{prefix}{key}.")
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from flatten(value, f"{prefix}{index}.")
    elif isinstance(node, bool):
        return
    elif isinstance(node, (int, float)):
        yield prefix.rstrip("."), float(node)


def committed_version(path: Path, ref: str) -> Dict:
    """The artifact as committed at ``ref`` (None when not present)."""
    try:
        relative = path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        # e.g. a downloaded CI artifact outside the checkout: compare it
        # against the committed file of the same name at the repo root.
        relative = path.name
    proc = subprocess.run(
        ["git", "show", f"{ref}:{relative}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def is_regression(path: str, delta_pct: float) -> bool:
    """Whether the change moved in the bad direction for this metric."""
    lower = path.lower()
    if any(tag in lower for tag in HIGHER_IS_BETTER):
        return delta_pct < 0
    return delta_pct > 0


def matches_only(key: str, only: str) -> bool:
    """``--only`` semantics: anchored glob when the pattern has glob
    characters (lets ``kernel.*`` exclude ``flexray_kernel.*``), plain
    case-insensitive substring otherwise."""
    if any(ch in only for ch in "*?["):
        return fnmatch.fnmatchcase(key.lower(), only.lower())
    return only.lower() in key.lower()


def compare_file(path: Path, ref: str, threshold: float, only: str = None):
    """Print one artifact's diff table; returns the regression count
    above ``threshold`` (None-safe on missing baselines).  ``only``
    restricts the table to metric paths matching that pattern."""
    current = json.loads(path.read_text())
    baseline = committed_version(path, ref)
    print(f"\n== {path.name} (vs {ref}) ==")
    if baseline is None:
        print(f"  no committed baseline at {ref} — nothing to diff")
        return 0
    old = dict(flatten(baseline))
    new = dict(flatten(current))
    rows = []
    keys = sorted(set(old) | set(new))
    if only is not None:
        keys = [key for key in keys if matches_only(key, only)]
        if not keys:
            print(f"  no metric paths match --only {only!r}")
            return 0
    for key in keys:
        if key not in old:
            rows.append((key, None, new[key], None))
            continue
        if key not in new:
            rows.append((key, old[key], None, None))
            continue
        if old[key] == new[key]:
            continue
        base = abs(old[key]) if old[key] else 1.0
        rows.append((key, old[key], new[key], 100.0 * (new[key] - old[key]) / base))
    if not rows:
        print("  no numeric changes")
        return 0
    width = max(len(r[0]) for r in rows)
    failures = 0
    print(f"  {'metric'.ljust(width)}  {'committed':>12}  {'current':>12}  {'change':>9}")
    for key, old_v, new_v, delta in rows:
        old_s = "-" if old_v is None else f"{old_v:g}"
        new_s = "-" if new_v is None else f"{new_v:g}"
        if delta is None:
            delta_s, flag = "new/gone", ""
        else:
            worse = is_regression(key, delta)
            flag = ""
            if worse and abs(delta) > 10.0:
                flag = "  !"
            if worse and threshold is not None and abs(delta) > threshold:
                flag = "  !!"
                failures += 1
            delta_s = f"{delta:+.1f}%"
        print(f"  {key.ljust(width)}  {old_s:>12}  {new_s:>12}  {delta_s:>9}{flag}")
    return failures


def current_commit() -> str:
    """Short hash of the checkout's HEAD (``unknown`` outside git)."""
    proc = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip()


def append_history(paths, log_path: Path, commit: str) -> int:
    """Append the artifacts' numeric leaves to the trajectory log.

    One JSON line per ``(commit, artifact, key, value)``; entries whose
    ``(commit, artifact, key)`` is already logged are skipped, keeping
    the log append-only and idempotent.  Returns the number of lines
    appended.
    """
    seen = set()
    if log_path.exists():
        for line in log_path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            seen.add((entry.get("commit"), entry.get("artifact"), entry.get("key")))
    appended = 0
    with log_path.open("a") as handle:
        for path in paths:
            if not path.exists():
                continue
            artifact = path.name
            for key, value in flatten(json.loads(path.read_text())):
                if (commit, artifact, key) in seen:
                    continue
                handle.write(
                    json.dumps(
                        {
                            "commit": commit,
                            "artifact": artifact,
                            "key": key,
                            "value": value,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
                appended += 1
    return appended


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        help="artifacts to diff (default: every BENCH_*.json at the repo root)",
    )
    parser.add_argument(
        "--ref", default="HEAD", help="git reference holding the baseline"
    )
    parser.add_argument(
        "--fail-above",
        type=float,
        default=None,
        metavar="PCT",
        help="exit non-zero when a metric regresses by more than PCT percent",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="PATTERN",
        help="diff only metric paths matching this pattern (anchored "
        "glob when it contains */?/[, case-insensitive substring "
        "otherwise); pair with --fail-above to gate one metric",
    )
    parser.add_argument(
        "--log",
        metavar="PATH",
        default=None,
        help="append (commit, artifact, key, value) JSONL lines for the "
        "current artifacts to this trajectory log",
    )
    parser.add_argument(
        "--commit",
        default=None,
        metavar="SHA",
        help="commit to stamp --log entries with (default: HEAD's short hash)",
    )
    args = parser.parse_args(argv)
    if args.files:
        paths = [Path(f).resolve() for f in args.files]
    else:
        paths = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json artifacts found")
        return 0
    failures = 0
    for path in paths:
        if not path.exists():
            print(f"\n== {path.name} == missing on disk, skipped")
            continue
        failures += compare_file(path, args.ref, args.fail_above, args.only)
    if args.log is not None:
        commit = args.commit or current_commit()
        appended = append_history(paths, Path(args.log), commit)
        print(f"\ntrajectory log {args.log}: +{appended} entr(ies) at {commit}")
    if failures and args.fail_above is not None:
        print(f"\n{failures} metric(s) regressed beyond {args.fail_above:g}%")
        if os.environ.get("REPRO_BENCH_NO_GATE", "") not in ("", "0"):
            print("REPRO_BENCH_NO_GATE set — reporting only, exit 0")
            return 0
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
