"""Benchmark — characterisation throughput (ISSUE 8 satellite).

Characterising an application means designing both mode controllers and
simulating the switched closed loop once per candidate switch instant —
the most expensive primitive in the pipeline, and the one the
``DwellCurveCache`` exists to amortise.  This bench times the full
simulation-mode roster cold (every plant measured from scratch in a
fresh cache) and then warm (same plants, re-characterised at scaled
deadlines, so every lookup is served from memory and only the cheap PWL
fits re-run), and writes both throughputs plus the warm speedup to
``BENCH_char.json`` at the repository root — the ROADMAP's
characterisation-throughput artifact.

The warm pass exercises the deadline-sweep hot path: grids re-derive
timing parameters per deadline but must never re-measure a curve, so
the speedup is a regression canary for accidental cache-key changes.
The ``>= 20x`` warm-speedup bar is generous (measured ~600x) and is
asserted only outside smoke mode; hit/miss accounting is asserted in
every mode.  Smoke mode for CI: ``REPRO_CHAR_BENCH_SMOKE=1`` coarsens
the wait stride so the job finishes in a second.
"""

import json
import os
import time
from pathlib import Path

from repro.experiments.casestudy import SIMULATION_CASE_STUDY
from repro.pipeline import DwellCurveCache

_SMOKE = os.environ.get("REPRO_CHAR_BENCH_SMOKE", "") not in ("", "0")
WAIT_STEP = 16 if _SMOKE else 4
DEADLINE_SCALES = (1.0, 0.9, 0.75)
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_char.json"


def _characterize_roster(cache, deadline_scale):
    """One pass over the roster; returns the slowest plant's name."""
    slowest = (0.0, "")
    for plant_name, detuning, inter_arrival, deadline in SIMULATION_CASE_STUDY:
        started = time.perf_counter()
        case_app = cache.characterized(
            plant_name,
            detuning,
            inter_arrival,
            deadline * deadline_scale,
            wait_step=WAIT_STEP,
        )
        elapsed = time.perf_counter() - started
        assert case_app.params.deadline > 0
        slowest = max(slowest, (elapsed, plant_name))
    return slowest[1]


def test_bench_char_cold_vs_warm():
    """Record cold-measure vs warm-cache characterisation throughput."""
    roster = len(SIMULATION_CASE_STUDY)
    cache = DwellCurveCache()

    started = time.perf_counter()
    slowest_plant = _characterize_roster(cache, deadline_scale=1.0)
    cold_seconds = time.perf_counter() - started
    assert cache.misses == roster and cache.hits == 0

    # Deadline sweeps share one measurement per plant: the warm passes
    # must be pure cache hits, paying only the PWL fits.
    started = time.perf_counter()
    for scale in DEADLINE_SCALES[1:]:
        _characterize_roster(cache, deadline_scale=scale)
    warm_passes = len(DEADLINE_SCALES) - 1
    warm_seconds = (time.perf_counter() - started) / warm_passes
    assert cache.misses == roster and cache.hits == roster * warm_passes

    warm_speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    payload = {
        "benchmark": "char-throughput",
        "smoke": _SMOKE,
        "cpu_count": os.cpu_count(),
        "wait_step": WAIT_STEP,
        "roster_size": roster,
        "deadline_scales": list(DEADLINE_SCALES),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds_per_pass": round(warm_seconds, 5),
        "warm_speedup_vs_cold": round(warm_speedup, 1),
        "plants_per_second": {
            "cold": round(roster / cold_seconds, 3),
            "warm": round(roster / warm_seconds, 1),
        },
        "slowest_cold_plant": slowest_plant,
        "cache": {"entries": len(cache), "hits": cache.hits, "misses": cache.misses},
        "generated_unix": round(time.time(), 1),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"\ncharacterisation ({roster} plants, wait_step={WAIT_STEP}): "
        f"cold {cold_seconds:.2f}s, warm {warm_seconds * 1e3:.1f}ms/pass, "
        f"speedup {warm_speedup:.0f}x -> {OUTPUT.name}"
    )
    # Smoke strides are a handful of samples — too little work for the
    # ratio to mean anything; full mode asserts the (generous) bar.
    if not _SMOKE:
        assert warm_speedup >= 20.0, (
            f"warm characterisation only {warm_speedup:.1f}x faster than "
            "cold, below the 20x bar — is the dwell cache being bypassed?"
        )


def test_bench_char_json_is_valid():
    """The artifact exists (this run or a committed one) and parses."""
    assert OUTPUT.exists(), "BENCH_char.json missing; run the char bench first"
    payload = json.loads(OUTPUT.read_text(encoding="utf-8"))
    assert payload["benchmark"] == "char-throughput"
    assert payload["roster_size"] == len(SIMULATION_CASE_STUDY)
    assert payload["cold_seconds"] > 0
    assert payload["warm_seconds_per_pass"] > 0
    assert payload["warm_speedup_vs_cold"] > 1.0
    assert payload["cache"]["misses"] == payload["roster_size"]
