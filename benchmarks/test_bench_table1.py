"""Benchmark E3 — regenerate Table I.

Paper mode is verbatim (asserted exactly); simulation mode regenerates
the analogue table from the six plants through the characterisation
pipeline (that pipeline is what gets benchmarked).
"""


from repro.core.timing_params import PAPER_TABLE_I
from repro.experiments.casestudy import design_case_study_application
from repro.experiments.table1 import Table1Result, run_table1


def test_bench_table1_paper_mode(benchmark):
    result = benchmark(lambda: run_table1(include_simulation=False))
    print("\n" + result.paper_report())
    c3 = next(p for p in result.paper if p.name == "C3")
    assert c3.xi_tt == 0.39
    assert c3.deadline == 2.0
    assert len(result.paper) == 6


def test_bench_table1_characterization_pipeline(benchmark):
    """Cost of characterising one application end-to-end."""
    app = benchmark.pedantic(
        lambda: design_case_study_application(
            "electric-power-steering",
            et_detuning=500.0,
            min_inter_arrival=200.0,
            deadline=7.5,
            wait_step=4,
        ),
        rounds=1,
        iterations=1,
    )
    assert app.params.xi_tt <= app.params.xi_et


def test_bench_table1_simulation_mode(benchmark, sim_apps):
    result = Table1Result(paper=list(PAPER_TABLE_I), simulated=sim_apps)
    text = benchmark(result.simulated_report)
    print("\n" + text)
    for app in sim_apps:
        assert app.params.xi_m_mono >= app.params.xi_m >= app.params.xi_tt
