"""Shared fixtures for the benchmark suite.

Heavy artefacts (the servo dwell sweep and the six characterised
case-study applications) are computed once per session and reused by the
benchmarks that consume them.
"""

import pytest

from repro.experiments import run_fig3, simulation_applications


@pytest.fixture(scope="session")
def fig3_result():
    return run_fig3(wait_step=4)


@pytest.fixture(scope="session")
def sim_apps():
    return simulation_applications(wait_step=4)
