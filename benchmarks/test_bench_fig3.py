"""Benchmark E1 — regenerate Figure 3 (dwell/wait sweep on the servo rig).

Paper anchors: xi_TT = 0.68 s, xi_ET = 2.16 s, dwell peak at an interior
wait time (positive gradient up to ~0.3 s, negative after).
"""

import pytest

from repro.experiments.fig3 import run_fig3
from repro.testbed.servo import default_servo_testbed


def test_bench_fig3_dwell_sweep(benchmark):
    """Full Figure 3 regeneration (coarse stride for benchmark budget)."""
    result = benchmark.pedantic(
        lambda: run_fig3(wait_step=6, max_samples=300), rounds=1, iterations=1
    )
    print("\n" + result.report())
    assert result.xi_tt == pytest.approx(0.68, abs=0.05)
    assert result.xi_et == pytest.approx(2.16, abs=0.25)
    assert result.is_non_monotonic()


def test_bench_fig3_single_response(benchmark):
    """Cost of one switched-response measurement on the testbed."""
    testbed = default_servo_testbed()
    response = benchmark(lambda: testbed.response_time(15, max_samples=200))
    assert response > 0.0
