"""Benchmark — exact allocation at scale (ISSUE 2 satellite; ISSUE 5
promotes it from a pass/fail test to a committed ``BENCH_alloc.json``
artifact).

Compares the exhaustive set-partition search against the pruned
branch-and-bound backend on synthetic fleets of 8/12/16/20 applications
and records, per fleet size, the solve wall-clock, the slot count, the
search-node count and the feasibility cache's effectiveness.  The
numbers land both in each pytest-benchmark ``extra_info`` and in
``BENCH_alloc.json`` at the repository root, which CI's smoke job
uploads alongside the co-simulation and sweep artifacts so the
allocation trajectory is trackable across commits.

The exhaustive enumeration is Bell-number-bounded and only runs at
n=8; branch-and-bound must prove the same optimum there and keep
solving — the acceptance bar is a 20-app exact solve in under 5 s.

Smoke mode for CI: set ``REPRO_SCALE_BENCH_MAX`` (e.g. ``12``) to cap
the fleet size, and run with ``--benchmark-disable`` so every case
executes exactly once as a plain regression test.
"""

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.core.allocation import make_analyzed
from repro.core.timing_params import TimingParameters
from repro.solvers import allocate

_SMOKE_MAX = int(os.environ.get("REPRO_SCALE_BENCH_MAX", "20"))
SIZES = [n for n in (8, 12, 16, 20) if n <= _SMOKE_MAX]
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_alloc.json"

#: Accumulated per-size rows, flushed to BENCH_alloc.json as they land
#: (so a smoke run capped at n=12 still writes an honest partial file).
_ROWS = {}


def synthetic_fleet(n, seed=7):
    """A reproducible n-app roster, every app feasible on its own slot.

    Utilisations and deadlines are drawn so slots typically host a
    handful of applications — enough sharing to make the exact search
    non-trivial without blowing past the deadline bracket.
    """
    rng = random.Random(seed)
    roster = []
    for i in range(n):
        xi_tt = rng.uniform(0.2, 0.6)
        xi_m = xi_tt * rng.uniform(1.1, 1.7)
        xi_et = xi_m * rng.uniform(2.5, 3.5)
        deadline = xi_m * rng.uniform(4.0, 9.0)
        roster.append(
            TimingParameters(
                name=f"S{i:02d}",
                min_inter_arrival=deadline * rng.uniform(2.0, 6.0),
                deadline=deadline,
                xi_tt=xi_tt,
                xi_et=xi_et,
                xi_m=xi_m,
                k_p=0.4 * xi_et,
                xi_m_mono=1.25 * xi_m,
            )
        )
    return make_analyzed(roster, "non-monotonic")


def _flush_artifact():
    payload = {
        "benchmark": "allocation-scale",
        "smoke": _SMOKE_MAX < 20,
        "max_fleet_size": max(SIZES),
        "sizes": [_ROWS[n] for n in sorted(_ROWS)],
        "generated_unix": round(time.time(), 1),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.parametrize("n", SIZES)
def test_bench_branch_and_bound_scale(benchmark, n):
    apps = synthetic_fleet(n)
    started = time.perf_counter()
    result = benchmark.pedantic(
        lambda: allocate("branch-and-bound", apps), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - started
    stats = result.stats
    cache = stats["feasibility_cache"]
    benchmark.extra_info["n_apps"] = n
    benchmark.extra_info["slot_count"] = result.slot_count
    benchmark.extra_info["search_nodes"] = stats["nodes"]
    benchmark.extra_info["cache_hit_rate"] = round(cache["hit_rate"], 4)
    benchmark.extra_info["cache_entries"] = cache["entries"]
    assert result.all_schedulable()
    assert result.slot_count <= allocate("first-fit", apps).slot_count
    _ROWS[n] = {
        "n_apps": n,
        "solve_seconds": round(elapsed, 4),
        "slot_count": result.slot_count,
        "search_nodes": stats["nodes"],
        "cache_hit_rate": round(cache["hit_rate"], 4),
        "cache_entries": cache["entries"],
    }
    _flush_artifact()


def test_bench_exhaustive_optimum_at_8(benchmark):
    """The seed backend's comfort zone — and the agreement check."""
    apps = synthetic_fleet(8)
    exhaustive = benchmark.pedantic(
        lambda: allocate("optimal", apps), rounds=1, iterations=1
    )
    bnb = allocate("branch-and-bound", apps)
    assert bnb.slot_count == exhaustive.slot_count


def test_twenty_app_exact_solve_under_five_seconds():
    """ISSUE 2 acceptance: a 20-app exact solve finishes in < 5 s."""
    if _SMOKE_MAX < 20:
        pytest.skip("smoke mode caps the fleet below 20 apps")
    apps = synthetic_fleet(20)
    start = time.perf_counter()
    result = allocate("branch-and-bound", apps)
    elapsed = time.perf_counter() - start
    assert elapsed < 5.0, f"20-app exact solve took {elapsed:.2f}s"
    assert result.all_schedulable()
    cache = result.stats["feasibility_cache"]
    assert cache["hits"] > 0  # memoization actually engaged
    print(
        f"\n20-app branch-and-bound: {elapsed:.3f}s, "
        f"{result.slot_count} slots, {result.stats['nodes']} nodes, "
        f"cache hit rate {cache['hit_rate']:.1%} ({cache['entries']} entries)"
    )


def test_bench_alloc_json_is_valid():
    """The artifact exists (this run or a committed one) and parses."""
    assert OUTPUT.exists(), "BENCH_alloc.json missing; run the scale bench first"
    payload = json.loads(OUTPUT.read_text())
    assert payload["benchmark"] == "allocation-scale"
    assert payload["sizes"], "no fleet sizes recorded"
    for row in payload["sizes"]:
        assert row["solve_seconds"] >= 0
        assert row["slot_count"] >= 1
