"""Benchmark — adaptive vs fixed Monte-Carlo sweeps (ISSUE 4 tentpole).

Runs a seeded demo grid with deliberately heterogeneous variance — the
one-shot disturbance cells are deterministic across seeds while the
sporadic cells genuinely vary — first in adaptive mode (stop each cell
once its QoC 95 % half-width reaches a relative target, re-grant the
freed budget to high-variance cells), then as the fixed grid that
reaches the *same* per-cell precision (every cell gets the adaptive
worst-cell replication count).  The replication savings are recorded in
``BENCH_sweep.json`` at the repository root — the ROADMAP's second
BENCH artifact.

The savings are seed-deterministic, not timing-dependent, so the
``>= 25 %`` acceptance bar is asserted in full mode on any machine;
smoke mode (``REPRO_SWEEP_BENCH_SMOKE=1``, used by CI's 1-core runners)
shrinks the grid and asserts schema only.
"""

import json
import os
import time
from pathlib import Path

from repro.pipeline import DwellCurveCache, get_scenario, run_sweep

_SMOKE = os.environ.get("REPRO_SWEEP_BENCH_SMOKE", "") not in ("", "0")
HORIZON = 6.0 if _SMOKE else 10.0
CI_TARGET = 0.12  # relative: stop at a half-width of 12 % of |mean|
MIN_REPLICATIONS = 2
MAX_REPLICATIONS = 16 if _SMOKE else 24
AXES = (
    {"disturbance": ["one-shot", "sporadic"]}
    if _SMOKE
    else {
        "disturbance": ["one-shot", "sporadic"],
        "dwell_shape": ["non-monotonic", "conservative-monotonic"],
    }
)
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"


def _base():
    # The two-plant multirate roster subset: cheap per replication, and
    # wait_step=4 keeps the 2 ms loop's short dwell curve resolvable.
    return get_scenario("multirate-cosim-analytic").derive(
        name="bench-sweep",
        apps=("motor-current-loop", "servo-rig"),
        wait_step=4,
        horizon=HORIZON,
    )


def test_bench_sweep_adaptive_vs_fixed():
    """Record adaptive vs fixed replication counts at equal CI."""
    base = _base()

    started = time.perf_counter()
    adaptive = run_sweep(
        base,
        axes=AXES,
        replications=MIN_REPLICATIONS,
        ci_target=CI_TARGET,
        ci_relative=True,
        max_replications=MAX_REPLICATIONS,
        max_workers=1,
        cache=DwellCurveCache(),
        keep_results=False,
    )
    adaptive_seconds = time.perf_counter() - started
    assert all(cell.stopped_reason == "ci-target" for cell in adaptive.cells), (
        "every cell must converge to the CI target for the equal-precision "
        "comparison to be honest"
    )

    # The fixed grid reaching the same per-cell precision must give every
    # cell what the adaptive worst cell needed.
    worst = max(cell.runs for cell in adaptive.cells)
    started = time.perf_counter()
    fixed = run_sweep(
        base,
        axes=AXES,
        replications=worst,
        max_workers=1,
        cache=DwellCurveCache(),
        keep_results=False,
    )
    fixed_seconds = time.perf_counter() - started
    within = {}
    for cell in fixed.cells:
        qoc = cell.metrics["qoc"]
        within[cell.name] = bool(
            qoc["ci95"] <= CI_TARGET * abs(qoc["mean"]) + 1e-12
        )
    savings = 1.0 - adaptive.replications_spent / fixed.replications_spent

    payload = {
        "benchmark": "sweep-adaptive",
        "smoke": _SMOKE,
        "cpu_count": os.cpu_count(),
        "horizon_seconds": HORIZON,
        "axes": {name: list(values) for name, values in AXES.items()},
        "ci_target": {"value": CI_TARGET, "relative": True},
        "min_replications": MIN_REPLICATIONS,
        "max_replications": MAX_REPLICATIONS,
        "adaptive": {
            "total_replications": adaptive.replications_spent,
            "replications_saved_vs_cap": adaptive.replications_saved,
            "rounds": adaptive.rounds,
            "elapsed_seconds": round(adaptive_seconds, 3),
            "per_cell": {
                cell.name: {
                    "runs": cell.runs,
                    "rounds": cell.rounds,
                    "stopped_reason": cell.stopped_reason,
                    "qoc_mean": cell.metrics["qoc"]["mean"],
                    "qoc_ci95": cell.metrics["qoc"]["ci95"],
                }
                for cell in adaptive.cells
            },
        },
        "fixed": {
            "replications_per_cell": worst,
            "total_replications": fixed.replications_spent,
            "elapsed_seconds": round(fixed_seconds, 3),
            "all_cells_within_target": all(within.values()),
            "within_target_per_cell": within,
        },
        "savings_fraction": round(savings, 4),
        "generated_unix": round(time.time(), 1),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"\nadaptive sweep: {adaptive.replications_spent} replications "
        f"({adaptive.rounds} rounds, {adaptive_seconds:.1f}s) vs fixed "
        f"{fixed.replications_spent} ({fixed_seconds:.1f}s) at equal CI -> "
        f"{savings:.0%} saved -> {OUTPUT.name}"
    )
    assert all(within.values()), (
        "fixed grid at the adaptive worst-cell count missed the CI target "
        f"somewhere: {within}"
    )
    # Seed-deterministic acceptance bar; smoke mode asserts schema only
    # (see test below), matching the cosim bench's CI convention.
    if not _SMOKE:
        assert savings >= 0.25, (
            f"adaptive mode saved only {savings:.0%} replications vs the "
            f"equal-precision fixed grid (bar: 25%)"
        )


def test_bench_sweep_json_is_valid():
    """The artifact exists (this run or a committed one) and parses."""
    assert OUTPUT.exists(), "BENCH_sweep.json missing; run the sweep bench first"
    payload = json.loads(OUTPUT.read_text(encoding="utf-8"))
    assert payload["benchmark"] == "sweep-adaptive"
    assert payload["adaptive"]["total_replications"] >= 1
    assert payload["fixed"]["total_replications"] >= 1
    assert payload["fixed"]["all_cells_within_target"] is True
    assert 0.0 <= payload["savings_fraction"] < 1.0
    for cell in payload["adaptive"]["per_cell"].values():
        assert cell["stopped_reason"] == "ci-target"
