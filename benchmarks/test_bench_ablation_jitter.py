"""Benchmark E11 — delay-equalisation (jitter buffering) ablation."""

from repro.experiments.ablations import run_jitter_ablation


def test_bench_jitter_ablation(benchmark, sim_apps):
    result = benchmark.pedantic(
        lambda: run_jitter_ablation(applications=sim_apps, horizon=20.0),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.report())
    # Equalised actuation never misses; raw jitter may degrade responses.
    assert result.equalized_misses == 0
    for name, equalized in result.equalized.items():
        assert result.raw[name] >= equalized - 1e-9
