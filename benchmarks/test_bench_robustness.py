"""Benchmark (extension) — dwell-margin robustness of the allocations."""

from repro.core.allocation import first_fit_allocation, make_analyzed
from repro.core.robustness import dwell_margin
from repro.core.timing_params import PAPER_TABLE_I
from repro.experiments.reporting import format_table


def test_bench_dwell_margin(benchmark):
    allocation = first_fit_allocation(make_analyzed(PAPER_TABLE_I, "non-monotonic"))
    result = benchmark(lambda: dwell_margin(allocation.slots))
    rows = [
        [",".join(a.name for a in slot), margin]
        for slot, margin in zip(allocation.slots, result.slot_margins)
    ]
    print(
        "\nDwell-margin robustness of the paper allocation\n"
        + format_table(["slot contents", "margin (dwell scale)"], rows)
        + f"\noverall margin: {result.margin:.3f}x "
        f"(critical slot: {result.critical_slot})"
    )
    assert result.margin > 1.0  # the certified allocation has headroom
