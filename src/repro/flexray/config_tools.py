"""Turn an allocation into a concrete FlexRay bus configuration.

The analysis produces an :class:`~repro.core.allocation.AllocationResult`
— *which* applications share *how many* TT slots.  A bus integrator
still needs the concrete artefacts: which static slot index each group
uses, which frame IDs the applications transmit, and whether everything
fits the chosen bus geometry.  This module generates and validates that
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.flexray.frame import FrameSpec
from repro.flexray.params import FlexRayConfig
from repro.flexray.timing import worst_case_et_delay


class BusConfigurationError(ValueError):
    """Raised when an allocation cannot be mapped onto the bus."""


@dataclass(frozen=True)
class ApplicationBusConfig:
    """Bus-facing configuration of one application."""

    name: str
    frame: FrameSpec
    slot: int
    et_worst_delay: float


@dataclass(frozen=True)
class BusConfigurationPlan:
    """Complete mapping of an allocation onto a FlexRay bus.

    Attributes
    ----------
    bus:
        The bus geometry the plan targets.
    applications:
        Per-application frame + slot assignments, in priority order.
    reserved_slots:
        The static-slot indices used by the shared TT slots.
    """

    bus: FlexRayConfig
    applications: List[ApplicationBusConfig]
    reserved_slots: List[int]

    def frame_of(self, name: str) -> FrameSpec:
        for app in self.applications:
            if app.name == name:
                return app.frame
        raise KeyError(f"unknown application {name!r}")

    def slot_of(self, name: str) -> int:
        for app in self.applications:
            if app.name == name:
                return app.slot
        raise KeyError(f"unknown application {name!r}")

    def static_utilization(self) -> float:
        """Fraction of the static segment the plan reserves."""
        return len(self.reserved_slots) / self.bus.static_slots

    def summary(self) -> str:
        lines = [
            f"FlexRay plan: {len(self.reserved_slots)}/{self.bus.static_slots} "
            f"static slots reserved ({100 * self.static_utilization():.0f}%)"
        ]
        for app in self.applications:
            lines.append(
                f"  {app.name}: frame {app.frame.frame_id:3d}, shared TT slot "
                f"{app.slot}, ET worst delay {1e3 * app.et_worst_delay:.2f} ms"
            )
        return "\n".join(lines)


def plan_bus_configuration(
    slot_groups: Sequence[Sequence[str]],
    bus: FlexRayConfig,
    payload_bits: int = 64,
    first_slot: int = 0,
    first_frame_id: int = 1,
    max_et_delay: float = None,
) -> BusConfigurationPlan:
    """Map allocation slot groups onto concrete bus resources.

    Parameters
    ----------
    slot_groups:
        Application names per shared TT slot, highest-priority group
        first (e.g. ``AllocationResult.slot_names``).
    bus:
        Target bus geometry.
    payload_bits:
        Control-message payload size (identical for all applications).
    first_slot:
        First static-slot index to reserve.
    first_frame_id:
        Frame IDs are assigned contiguously from here in priority order,
        so earlier (more urgent) applications also win dynamic-segment
        arbitration.
    max_et_delay:
        Optional cap on the worst-case ET delay of any application
        (e.g. the sampling period the controllers were designed for).

    Raises
    ------
    BusConfigurationError
        If the groups need more static slots than the bus offers, or the
        ET worst case exceeds ``max_et_delay``.
    """
    group_count = len(slot_groups)
    if first_slot + group_count > bus.static_slots:
        raise BusConfigurationError(
            f"allocation needs {group_count} static slots starting at "
            f"{first_slot} but the bus has only {bus.static_slots}"
        )
    names = [name for group in slot_groups for name in group]
    if len(set(names)) != len(names):
        raise BusConfigurationError(f"duplicate application names in {names}")

    frames: Dict[str, FrameSpec] = {}
    slots: Dict[str, int] = {}
    frame_id = first_frame_id
    for group_index, group in enumerate(slot_groups):
        for name in group:
            frames[name] = FrameSpec(
                frame_id=frame_id, payload_bits=payload_bits, sender=name
            )
            slots[name] = first_slot + group_index
            frame_id += 1

    all_frames = list(frames.values())
    applications = []
    for name in names:
        bound = worst_case_et_delay(
            frames[name], [f for f in all_frames if f is not frames[name]], bus
        )
        if max_et_delay is not None and bound.worst_latency > max_et_delay:
            raise BusConfigurationError(
                f"{name}: worst-case ET delay {bound.worst_latency * 1e3:.2f} ms "
                f"exceeds the design assumption {max_et_delay * 1e3:.2f} ms"
            )
        applications.append(
            ApplicationBusConfig(
                name=name,
                frame=frames[name],
                slot=slots[name],
                et_worst_delay=bound.worst_latency,
            )
        )
    return BusConfigurationPlan(
        bus=bus,
        applications=applications,
        reserved_slots=list(range(first_slot, first_slot + group_count)),
    )


__all__ = [
    "ApplicationBusConfig",
    "BusConfigurationError",
    "BusConfigurationPlan",
    "plan_bus_configuration",
]
