"""FlexRay bus parameterisation (paper Section II-A and Section V).

A FlexRay communication cycle consists of a *static segment* — a number
of TDMA slots of equal length ``Psi`` implementing TT communication —
followed by a *dynamic segment* partitioned into minislots of equal
length ``psi`` (with ``psi << Psi``) implementing ET communication.

The paper's case study uses a 5 ms cycle with 10 static slots filling a
2 ms static segment (so ``Psi = 0.2 ms``), the remaining 3 ms being
dynamic;  :func:`paper_bus_config` builds exactly that bus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FlexRayConfig:
    """Geometry of one FlexRay communication cycle.

    Attributes
    ----------
    cycle_length:
        Duration of one communication cycle (seconds).
    static_slots:
        Number of TDMA slots in the static segment.
    static_slot_length:
        Length ``Psi`` of each static slot (seconds).
    minislot_length:
        Length ``psi`` of each dynamic-segment minislot (seconds).
    """

    cycle_length: float = 0.005
    static_slots: int = 10
    static_slot_length: float = 0.0002
    minislot_length: float = 0.00001

    def __post_init__(self):
        check_positive(self.cycle_length, "cycle_length")
        if self.static_slots < 1:
            raise ValueError(f"static_slots must be >= 1, got {self.static_slots}")
        check_positive(self.static_slot_length, "static_slot_length")
        check_positive(self.minislot_length, "minislot_length")
        if self.static_segment_length >= self.cycle_length:
            raise ValueError(
                "static segment "
                f"({self.static_segment_length:.6f}s) must leave room for the "
                f"dynamic segment within the {self.cycle_length:.6f}s cycle"
            )
        if self.minislot_length >= self.static_slot_length:
            raise ValueError(
                "minislots are expected to be much shorter than static slots "
                f"(psi={self.minislot_length}, Psi={self.static_slot_length})"
            )

    @property
    def static_segment_length(self) -> float:
        """Total duration of the static segment (seconds)."""
        return self.static_slots * self.static_slot_length

    @property
    def dynamic_segment_length(self) -> float:
        """Total duration of the dynamic segment (seconds)."""
        return self.cycle_length - self.static_segment_length

    @property
    def minislots(self) -> int:
        """Number of whole minislots that fit in the dynamic segment."""
        return int(self.dynamic_segment_length / self.minislot_length + 1e-9)

    def cycle_start(self, cycle: int) -> float:
        """Absolute start time of communication cycle ``cycle``."""
        if cycle < 0:
            raise ValueError(f"cycle must be non-negative, got {cycle}")
        return cycle * self.cycle_length

    def static_slot_window(self, cycle: int, slot: int):
        """``(start, end)`` of a static slot (0-based) in absolute time."""
        if not 0 <= slot < self.static_slots:
            raise ValueError(
                f"slot must lie in [0, {self.static_slots}), got {slot}"
            )
        start = self.cycle_start(cycle) + slot * self.static_slot_length
        return start, start + self.static_slot_length

    def dynamic_segment_start(self, cycle: int) -> float:
        """Absolute start time of the dynamic segment of ``cycle``."""
        return self.cycle_start(cycle) + self.static_segment_length

    def cycle_of(self, time: float) -> int:
        """Index of the communication cycle containing ``time``."""
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        return int(time / self.cycle_length + 1e-9)


def paper_bus_config() -> FlexRayConfig:
    """The Section V bus: 5 ms cycle, 10 static slots in a 2 ms TT segment."""
    return FlexRayConfig(
        cycle_length=0.005,
        static_slots=10,
        static_slot_length=0.0002,
        minislot_length=0.00001,
    )


__all__ = ["FlexRayConfig", "paper_bus_config"]
