"""Frames and messages exchanged on the FlexRay bus."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.utils.validation import check_nonnegative, check_positive

_message_counter = itertools.count()


@dataclass(frozen=True)
class FrameSpec:
    """Static description of a message stream on the bus.

    Attributes
    ----------
    frame_id:
        Arbitration identifier.  In the dynamic segment lower IDs win
        (they own earlier minislots); in the static segment the ID is
        informational only (the slot assignment decides timing).
    payload_bits:
        Frame payload size; determines how many minislots a dynamic
        transmission consumes.
    sender:
        Name of the sending application/ECU (for traces).
    """

    frame_id: int
    payload_bits: int = 64
    sender: str = ""

    def __post_init__(self):
        if self.frame_id < 1:
            raise ValueError(f"frame_id must be >= 1, got {self.frame_id}")
        if self.payload_bits < 1:
            raise ValueError(f"payload_bits must be >= 1, got {self.payload_bits}")

    def transmission_time(self, bit_time: float) -> float:
        """Wire time of one frame at the given bit duration (seconds)."""
        check_positive(bit_time, "bit_time")
        return self.payload_bits * bit_time

    def minislots_needed(self, minislot_length: float, bit_time: float) -> int:
        """Number of minislots a dynamic transmission of this frame uses."""
        wire_time = self.transmission_time(bit_time)
        slots = int(wire_time / minislot_length) + (
            1 if wire_time % minislot_length > 1e-15 else 0
        )
        return max(1, slots)


@dataclass
class Message:
    """One queued transmission of a frame.

    Attributes
    ----------
    spec:
        The frame stream this message belongs to.
    release_time:
        When the payload became available at the sender (seconds).
    payload:
        Opaque payload carried to the receiver (e.g. a control input).
    delivery_time:
        Set by the bus once the transmission window ends; ``None`` while
        the message is still queued.
    """

    spec: FrameSpec
    release_time: float
    payload: Any = None
    delivery_time: Optional[float] = None
    sequence: int = field(default_factory=lambda: next(_message_counter))

    def __post_init__(self):
        check_nonnegative(self.release_time, "release_time")

    @property
    def delivered(self) -> bool:
        return self.delivery_time is not None

    @property
    def latency(self) -> float:
        """Release-to-delivery delay; raises if not yet delivered."""
        if self.delivery_time is None:
            raise ValueError("message has not been delivered yet")
        return self.delivery_time - self.release_time


__all__ = ["FrameSpec", "Message"]
