"""Static (TT) segment: TDMA slot schedule and transmission timing.

A message assigned to a static slot is transmitted inside that slot's
fixed window, so its delivery time is known exactly in advance — this
determinism is what makes TT slots the valuable resource the paper
economises.  If the payload misses the slot start, the whole slot of
length ``Psi`` goes unused and the message waits for the slot's next
occurrence (paper Section II-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.flexray.frame import FrameSpec, Message
from repro.flexray.params import FlexRayConfig


class SlotAssignmentError(ValueError):
    """Raised on conflicting or invalid static-slot assignments."""


@dataclass(frozen=True)
class CycleFilter:
    """FlexRay cycle multiplexing: a slot owned only on matching cycles.

    A frame with filter ``(base, repetition)`` owns its slot in every
    cycle ``c`` with ``c % repetition == base``.  ``repetition`` must be
    a power of two up to 64 (the FlexRay cycle counter is 6 bits); the
    default ``(0, 1)`` means every cycle.
    """

    base: int = 0
    repetition: int = 1

    def __post_init__(self):
        if self.repetition not in (1, 2, 4, 8, 16, 32, 64):
            raise ValueError(
                f"repetition must be a power of two <= 64, got {self.repetition}"
            )
        if not 0 <= self.base < self.repetition:
            raise ValueError(
                f"base must lie in [0, {self.repetition}), got {self.base}"
            )

    def matches(self, cycle: int) -> bool:
        return cycle % self.repetition == self.base

    def overlaps(self, other: "CycleFilter") -> bool:
        """Whether two filters ever claim the same cycle."""
        step = min(self.repetition, other.repetition)
        return self.base % step == other.base % step


@dataclass
class StaticSchedule:
    """Assignment of frame streams to static slots.

    A slot may be owned outright (the default every-cycle filter) or
    cycle-multiplexed between several streams with disjoint
    :class:`CycleFilter` patterns (FlexRay slot multiplexing).  Ownership
    can also be transferred between cycles at runtime — that is exactly
    the paper's dynamic resource allocation (applications acquire and
    release a shared TT slot via the arbiter in :mod:`repro.sim.arbiter`).
    """

    config: FlexRayConfig
    _owners: Dict[int, list] = field(default_factory=dict)
    # slot -> list of (CycleFilter, FrameSpec)

    def assign(
        self, slot: int, spec: FrameSpec, cycle_filter: CycleFilter = CycleFilter()
    ) -> None:
        """Give ``spec`` ownership of ``slot`` on the filter's cycles.

        Raises
        ------
        SlotAssignmentError
            If the slot index is out of range or another stream already
            claims an overlapping cycle pattern.
        """
        self._check_slot(slot)
        entries = self._owners.setdefault(slot, [])
        for existing_filter, existing_spec in entries:
            if existing_spec.frame_id == spec.frame_id:
                continue
            if existing_filter.overlaps(cycle_filter):
                raise SlotAssignmentError(
                    f"slot {slot} is already owned by frame "
                    f"{existing_spec.frame_id} on overlapping cycles"
                )
        entries[:] = [
            (f, s) for f, s in entries if s.frame_id != spec.frame_id
        ]
        entries.append((cycle_filter, spec))

    def release(self, slot: int, frame_id: Optional[int] = None) -> None:
        """Return ``slot`` to the free pool.

        With ``frame_id`` given only that stream's assignment is removed;
        otherwise the slot is fully cleared.  No-op if already free.
        """
        self._check_slot(slot)
        if frame_id is None:
            self._owners.pop(slot, None)
            return
        entries = self._owners.get(slot)
        if entries is not None:
            entries[:] = [(f, s) for f, s in entries if s.frame_id != frame_id]

    def owner(self, slot: int, cycle: Optional[int] = None) -> Optional[FrameSpec]:
        """Stream owning ``slot`` (in ``cycle``, when given).

        With ``cycle=None`` the first assignment is returned regardless
        of its filter — convenient for singly-owned slots.
        """
        self._check_slot(slot)
        entries = self._owners.get(slot, [])
        if cycle is None:
            return entries[0][1] if entries else None
        for cycle_filter, spec in entries:
            if cycle_filter.matches(cycle):
                return spec
        return None

    def slot_of(self, frame_id: int) -> Optional[int]:
        """Slot currently owned by ``frame_id`` (None if it owns none)."""
        for slot, entries in self._owners.items():
            if any(spec.frame_id == frame_id for _, spec in entries):
                return slot
        return None

    def cycle_filter_of(self, frame_id: int) -> Optional[CycleFilter]:
        """Cycle filter under which ``frame_id`` owns its slot."""
        for entries in self._owners.values():
            for cycle_filter, spec in entries:
                if spec.frame_id == frame_id:
                    return cycle_filter
        return None

    def free_slots(self):
        """Sorted list of slot indices with no assignment at all."""
        return [
            slot
            for slot in range(self.config.static_slots)
            if not self._owners.get(slot)
        ]

    def transmit(self, message: Message, slot: int, cycle: int) -> float:
        """Deliver ``message`` in ``slot`` of ``cycle`` and return the time.

        The message must belong to the slot owner *in this cycle* and
        must have been released by the slot start; otherwise the slot
        goes unused this cycle and :class:`SlotAssignmentError` /
        :class:`ValueError` explains why.
        """
        owner = self.owner(slot, cycle)
        if owner is None or owner.frame_id != message.spec.frame_id:
            raise SlotAssignmentError(
                f"frame {message.spec.frame_id} does not own slot {slot} "
                f"in cycle {cycle}"
            )
        start, end = self.config.static_slot_window(cycle, slot)
        if message.release_time > start + 1e-12:
            raise ValueError(
                f"message released at {message.release_time:.6f}s missed the "
                f"slot start {start:.6f}s; the slot goes unused this cycle"
            )
        message.delivery_time = end
        return end

    def next_transmission_time(
        self, slot: int, release_time: float, frame_id: Optional[int] = None
    ) -> float:
        """Earliest delivery time for a payload released at ``release_time``.

        This is the deterministic TT latency: wait for the next matching
        occurrence of the slot whose start is at or after the release,
        then one slot length of wire time.  For cycle-multiplexed frames
        pass ``frame_id`` so the filter is honoured.
        """
        self._check_slot(slot)
        cfg = self.config
        cycle_filter = (
            self.cycle_filter_of(frame_id) if frame_id is not None else None
        ) or CycleFilter()
        cycle = cfg.cycle_of(release_time) if release_time > 0 else 0
        for candidate in range(cycle, cycle + cycle_filter.repetition + 1):
            if not cycle_filter.matches(candidate):
                continue
            start, end = cfg.static_slot_window(candidate, slot)
            if start >= release_time - 1e-12:
                return end
        raise AssertionError("unreachable: the filter matches within its period")

    def worst_case_latency(self, slot: int, frame_id: Optional[int] = None) -> float:
        """Maximum TT latency: just missed the slot, wait a full filter
        period (one cycle for unfiltered assignments)."""
        self._check_slot(slot)
        cycle_filter = (
            self.cycle_filter_of(frame_id) if frame_id is not None else None
        ) or CycleFilter()
        return (
            cycle_filter.repetition * self.config.cycle_length
            + self.config.static_slot_length
        )

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.config.static_slots:
            raise SlotAssignmentError(
                f"slot must lie in [0, {self.config.static_slots}), got {slot}"
            )


__all__ = ["CycleFilter", "SlotAssignmentError", "StaticSchedule"]
