"""FlexRay bus substrate: static TDMA + dynamic minislot arbitration.

Implements the hybrid communication protocol of paper Section II-A —
the static (time-triggered) segment with slots of length ``Psi``, the
dynamic (event-triggered) segment with minislots of length ``psi``, and
the worst-case latency analysis for dynamic-segment messages.
"""

from repro.flexray.bus import BusStatistics, FlexRayBus
from repro.flexray.config_tools import (
    ApplicationBusConfig,
    BusConfigurationError,
    BusConfigurationPlan,
    plan_bus_configuration,
)
from repro.flexray.dynamic_segment import DynamicSegment
from repro.flexray.frame import FrameSpec, Message
from repro.flexray.params import FlexRayConfig, paper_bus_config
from repro.flexray.static_segment import CycleFilter, SlotAssignmentError, StaticSchedule
from repro.flexray.timing import (
    EtDelayBound,
    all_et_delay_bounds,
    minislots_consumed_before,
    worst_case_et_delay,
)

__all__ = [
    "ApplicationBusConfig",
    "BusConfigurationError",
    "BusConfigurationPlan",
    "BusStatistics",
    "CycleFilter",
    "plan_bus_configuration",
    "DynamicSegment",
    "EtDelayBound",
    "FlexRayBus",
    "FlexRayConfig",
    "FrameSpec",
    "Message",
    "SlotAssignmentError",
    "StaticSchedule",
    "all_et_delay_bounds",
    "minislots_consumed_before",
    "paper_bus_config",
    "worst_case_et_delay",
]
