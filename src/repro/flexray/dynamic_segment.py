"""Dynamic (ET) segment: minislot counting and frame-ID arbitration.

FlexRay's dynamic segment works as follows (paper Section II-A, after
Pop et al.): a slot counter starts at 1 and all nodes count minislots in
lockstep.  When the counter matches a frame ID whose sender has data
pending, that frame is transmitted and occupies as many minislots as its
length requires; otherwise exactly one (empty) minislot of length
``psi`` elapses.  A frame may only start if it can finish within the
remaining dynamic segment (the ``pLatestTx`` rule); otherwise its sender
must wait for the next cycle.  Lower frame IDs therefore have higher
priority, and the latency of a message depends on the backlog of
lower-ID messages — the non-determinism that makes ET communication the
lower-quality resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.flexray.frame import Message
from repro.flexray.params import FlexRayConfig
from repro.utils.validation import check_positive


@dataclass
class DynamicSegment:
    """Arbitration state for the dynamic segment of one bus.

    Attributes
    ----------
    config:
        Bus geometry.
    bit_time:
        Wire duration of one payload bit (determines minislots per frame).
    """

    config: FlexRayConfig
    bit_time: float = 1e-7  # 10 Mbit/s
    _queues: Dict[int, List[Message]] = field(default_factory=dict)

    def __post_init__(self):
        check_positive(self.bit_time, "bit_time")

    def enqueue(self, message: Message) -> None:
        """Queue a message for ET transmission (FIFO per frame ID)."""
        self._queues.setdefault(message.spec.frame_id, []).append(message)

    def pending(self, frame_id: Optional[int] = None) -> int:
        """Number of queued messages (for one frame ID or in total)."""
        if frame_id is not None:
            return len(self._queues.get(frame_id, []))
        return sum(len(queue) for queue in self._queues.values())

    def run_cycle(self, cycle: int) -> List[Message]:
        """Arbitrate one dynamic segment; returns delivered messages.

        Only messages released before the dynamic-segment start take part
        (payloads produced mid-segment wait for the next cycle, matching
        the lockstep slot-counter semantics).
        """
        cfg = self.config
        segment_start = cfg.dynamic_segment_start(cycle)
        total_minislots = cfg.minislots
        delivered: List[Message] = []
        minislot = 0  # minislots consumed so far this segment
        counter = 1  # frame-ID slot counter
        max_id = max(self._queues.keys(), default=0)
        while minislot < total_minislots and counter <= max_id:
            message = self._eligible_head(counter, segment_start)
            if message is None:
                minislot += 1
                counter += 1
                continue
            needed = message.spec.minislots_needed(cfg.minislot_length, self.bit_time)
            if minislot + needed > total_minislots:
                # pLatestTx: cannot finish this cycle; hold the message
                # (and everything behind it in this queue) for the next.
                minislot += 1
                counter += 1
                continue
            minislot += needed
            counter += 1
            message.delivery_time = segment_start + minislot * cfg.minislot_length
            self._queues[message.spec.frame_id].pop(0)
            delivered.append(message)
        return delivered

    def _eligible_head(self, frame_id: int, segment_start: float) -> Optional[Message]:
        queue = self._queues.get(frame_id)
        if not queue:
            return None
        head = queue[0]
        if head.release_time > segment_start + 1e-12:
            return None
        return head


__all__ = ["DynamicSegment"]
