"""Cycle-stepped FlexRay bus simulator.

Combines the static TDMA schedule and the dynamic-segment arbitration
into a single bus object that the co-simulation drives cycle by cycle.
Senders submit messages tagged TT (with their currently owned slot) or
ET; :meth:`FlexRayBus.advance_to` runs whole communication cycles and
returns everything delivered on the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.flexray.dynamic_segment import DynamicSegment
from repro.flexray.frame import FrameSpec, Message
from repro.flexray.params import FlexRayConfig
from repro.flexray.static_segment import StaticSchedule


@dataclass
class BusStatistics:
    """Counters accumulated while the bus runs."""

    cycles: int = 0
    tt_deliveries: int = 0
    et_deliveries: int = 0
    unused_static_slots: int = 0

    @property
    def static_utilization(self) -> float:
        """Fraction of elapsed static-slot windows actually used."""
        total = self.tt_deliveries + self.unused_static_slots
        return self.tt_deliveries / total if total else 0.0


@dataclass
class FlexRayBus:
    """A FlexRay bus advancing one communication cycle at a time."""

    config: FlexRayConfig
    bit_time: float = 1e-7
    static: StaticSchedule = field(init=False)
    dynamic: DynamicSegment = field(init=False)
    statistics: BusStatistics = field(init=False)
    _tt_queues: Dict[int, List[Message]] = field(init=False, default_factory=dict)
    _cycle: int = field(init=False, default=0)

    def __post_init__(self):
        self.static = StaticSchedule(config=self.config)
        self.dynamic = DynamicSegment(config=self.config, bit_time=self.bit_time)
        self.statistics = BusStatistics()

    @property
    def current_cycle(self) -> int:
        """Index of the next cycle that has not run yet."""
        return self._cycle

    @property
    def time(self) -> float:
        """Simulation time at the start of the next cycle."""
        return self.config.cycle_start(self._cycle)

    def submit_tt(self, message: Message) -> None:
        """Queue a message for the sender's owned static slot.

        Raises
        ------
        ValueError
            If the frame does not currently own any static slot.
        """
        slot = self.static.slot_of(message.spec.frame_id)
        if slot is None:
            raise ValueError(
                f"frame {message.spec.frame_id} owns no static slot; "
                "submit over the dynamic segment instead"
            )
        self._tt_queues.setdefault(slot, []).append(message)

    def submit_et(self, message: Message) -> None:
        """Queue a message for the dynamic segment."""
        self.dynamic.enqueue(message)

    def run_cycle(self) -> List[Message]:
        """Run one full communication cycle; return delivered messages."""
        cycle = self._cycle
        delivered: List[Message] = []
        for slot in range(self.config.static_slots):
            owner = self.static.owner(slot, cycle)
            if owner is None:
                continue
            start, _ = self.config.static_slot_window(cycle, slot)
            queue = self._tt_queues.get(slot, [])
            ready = next(
                (m for m in queue if m.release_time <= start + 1e-12), None
            )
            if ready is None:
                # Data missed the slot start: the whole slot goes unused
                # (paper Sec. II-A).
                self.statistics.unused_static_slots += 1
                continue
            self.static.transmit(ready, slot, cycle)
            queue.remove(ready)
            delivered.append(ready)
            self.statistics.tt_deliveries += 1
        et_delivered = self.dynamic.run_cycle(cycle)
        self.statistics.et_deliveries += len(et_delivered)
        delivered.extend(et_delivered)
        self.statistics.cycles += 1
        self._cycle += 1
        return delivered

    def advance_to(self, time: float) -> List[Message]:
        """Run whole cycles until the bus clock reaches ``time``."""
        delivered: List[Message] = []
        while self.time + self.config.cycle_length <= time + 1e-12:
            delivered.extend(self.run_cycle())
        return delivered

    def grant_slot(self, slot: int, spec: FrameSpec) -> None:
        """Transfer static-slot ownership to ``spec`` (arbiter action)."""
        self.static.assign(slot, spec)

    def release_slot(self, slot: int) -> None:
        """Release a static slot; drops any messages still queued on it."""
        self.static.release(slot)
        self._tt_queues.pop(slot, None)


__all__ = ["BusStatistics", "FlexRayBus"]
