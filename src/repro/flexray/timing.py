"""Worst-case response-time analysis for dynamic-segment messages.

Simplified from Pop et al., "Timing analysis of the FlexRay communication
protocol" (the paper's reference [7]).  For a frame ``F`` the worst case
within one cycle arises when every lower-ID (higher-priority) frame has a
message pending: the slot counter must walk past all of them, each
consuming its full transmission window, before reaching ``F``'s ID.  If
the accumulated minislots exceed the segment (or ``F`` cannot finish
before the segment end — the pLatestTx rule), ``F`` slips to the next
cycle, and in the worst case the payload was released just after the
previous dynamic segment started.

The bound here assumes each interfering frame contributes at most one
message per cycle (senders are periodic with periods at least one cycle,
which holds for the paper's 20 ms control tasks on a 5 ms bus).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.flexray.frame import FrameSpec
from repro.flexray.params import FlexRayConfig
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class EtDelayBound:
    """Worst-case ET latency decomposition for one frame.

    Attributes
    ----------
    frame_id:
        The analysed frame.
    cycles_needed:
        Number of whole cycles the message can slip (1 = delivered in the
        first dynamic segment after release).
    worst_latency:
        Release-to-delivery upper bound (seconds).
    """

    frame_id: int
    cycles_needed: int
    worst_latency: float


def minislots_consumed_before(
    frame: FrameSpec,
    interferers: Sequence[FrameSpec],
    config: FlexRayConfig,
    bit_time: float,
) -> int:
    """Worst-case minislots consumed before ``frame`` may start.

    Counts one full transmission per pending lower-ID frame plus one
    empty minislot for every unclaimed ID below ``frame``'s.
    """
    check_positive(bit_time, "bit_time")
    lower = [f for f in interferers if f.frame_id < frame.frame_id]
    lower_ids = {f.frame_id for f in lower}
    if len(lower_ids) != len(lower):
        raise ValueError("interfering frames must have distinct IDs")
    busy = sum(
        f.minislots_needed(config.minislot_length, bit_time) for f in lower
    )
    empty = (frame.frame_id - 1) - len(lower)
    return busy + max(0, empty)


def worst_case_et_delay(
    frame: FrameSpec,
    interferers: Sequence[FrameSpec],
    config: FlexRayConfig,
    bit_time: float = 1e-7,
    max_cycles: int = 64,
) -> EtDelayBound:
    """Worst-case release-to-delivery latency over the dynamic segment.

    Raises
    ------
    ValueError
        If the frame cannot be guaranteed delivery within ``max_cycles``
        cycles (the dynamic segment is structurally overloaded).
    """
    own = frame.minislots_needed(config.minislot_length, bit_time)
    before = minislots_consumed_before(frame, interferers, config, bit_time)
    total = config.minislots
    if own > total:
        raise ValueError(
            f"frame {frame.frame_id} needs {own} minislots but the dynamic "
            f"segment only has {total}"
        )
    # Worst release: immediately after a dynamic segment started, so the
    # message waits for the next segment: almost one full cycle.
    wait_for_segment = config.cycle_length
    if before + own <= total:
        finish_offset = (before + own) * config.minislot_length
        latency = wait_for_segment + finish_offset
        return EtDelayBound(frame.frame_id, cycles_needed=1, worst_latency=latency)
    # The first segment is consumed by interference; in following cycles
    # the interferers (periodic, <= 1 message per cycle at worst) repeat,
    # so delivery is only guaranteed once a segment has room after the
    # worst-case backlog drains one frame per cycle.
    remaining = before + own
    cycles = 0
    while remaining > total:
        remaining -= max(1, total - before)
        cycles += 1
        if cycles > max_cycles:
            raise ValueError(
                f"frame {frame.frame_id} is not guaranteed delivery within "
                f"{max_cycles} cycles; dynamic segment overloaded"
            )
    finish_offset = remaining * config.minislot_length
    latency = wait_for_segment + cycles * config.cycle_length + finish_offset
    return EtDelayBound(frame.frame_id, cycles_needed=cycles + 1, worst_latency=latency)


def all_et_delay_bounds(
    frames: Sequence[FrameSpec],
    config: FlexRayConfig,
    bit_time: float = 1e-7,
) -> List[EtDelayBound]:
    """Worst-case ET bound for every frame against all the others."""
    return [
        worst_case_et_delay(
            frame,
            [f for f in frames if f is not frame],
            config,
            bit_time=bit_time,
        )
        for frame in frames
    ]


__all__ = [
    "EtDelayBound",
    "all_et_delay_bounds",
    "minislots_consumed_before",
    "worst_case_et_delay",
]
