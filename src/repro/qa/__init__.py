"""Static analysis for the determinism contract (``repro lint``).

The simulator's headline guarantee — bitwise-identical traces across
the legacy/event/batch kernels and seed-stable sweeps — rests on
conventions no generic linter knows about.  This package turns them
into machine-checked rules over the AST:

========  ===========================================================
QA001     no unseeded randomness (module-level ``np.random``, bare
          ``random.*``, ``default_rng()`` without a seed)
QA002     no wall-clock reads (``time.time``, ``datetime.now``) in
          ``repro.sim`` / ``repro.flexray`` / ``repro.solvers``
QA003     no float-tolerance comparison (``np.isclose``,
          ``abs(a-b) < eps``, ``np.spacing``) on event/barrier time
          values in ``repro.sim`` — times compare by integer-ns
          equality
QA004     scenario/solver/kernel name literals must resolve against
          the live registries
QA005     dataclasses shipped to process-pool workers must not carry
          unpicklable members (lambdas, open handles)
========  ===========================================================

Deliberate exceptions are annotated inline with
``# repro: allow[QA003]`` (one line, named rules only; unknown ids are
themselves findings).  Run it as ``repro lint [paths] [--json]
[--rule ID]``; exit status 1 means error findings, which is the CI
gate.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.qa.engine import (
    LintResult,
    META_RULE_ID,
    ModuleContext,
    Rule,
    lint_paths,
    lint_source,
)
from repro.qa.findings import Finding, SEVERITIES
from repro.qa.report import render_json, render_text, report_dict
from repro.qa.rules_determinism import (
    FloatTimeCompareRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.qa.rules_structure import RegistryLiteralRule, UnpicklablePayloadRule

_RULE_CLASSES = (
    UnseededRandomRule,
    WallClockRule,
    FloatTimeCompareRule,
    RegistryLiteralRule,
    UnpicklablePayloadRule,
)


def all_rules() -> Tuple[Rule, ...]:
    """Fresh instances of every built-in rule, in id order."""
    return tuple(rule_class() for rule_class in _RULE_CLASSES)


def rule_ids() -> List[str]:
    """Ids of the built-in ruleset (without :data:`META_RULE_ID`)."""
    return [rule_class.rule_id for rule_class in _RULE_CLASSES]


def rules_by_id() -> Dict[str, Rule]:
    return {rule.rule_id: rule for rule in all_rules()}


__all__ = [
    "Finding",
    "FloatTimeCompareRule",
    "LintResult",
    "META_RULE_ID",
    "ModuleContext",
    "RegistryLiteralRule",
    "Rule",
    "SEVERITIES",
    "UnpicklablePayloadRule",
    "UnseededRandomRule",
    "WallClockRule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "report_dict",
    "rule_ids",
    "rules_by_id",
]
