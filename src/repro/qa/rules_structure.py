"""Structural rules: registry-checked name literals, picklable payloads.

QA004 resolves scenario/solver/kernel name *literals* against the live
registries at lint time, so a typo'd ``Scenario(allocator="frist-fit")``
or ``get_scenario("fig5-cosmi")`` fails in CI instead of deep inside a
sweep.  QA005 structurally rejects dataclass members that cannot cross
a :class:`~concurrent.futures.ProcessPoolExecutor` boundary (lambdas,
open handles), because ``run_many(executor="process")`` and the sweep
workers pickle their payloads.
"""

from __future__ import annotations

import ast
import difflib
from typing import Dict, FrozenSet, Iterator, Optional

from repro.qa.engine import ModuleContext, Rule, dotted_name
from repro.qa.findings import Finding

#: Entry points whose first positional string argument is a registry name.
_FIRST_ARG_KINDS = {
    "get_scenario": "scenario",
    "run_study": "scenario",
    "DesignStudy": "scenario",
    "get_allocator": "allocator",
    "allocate": "allocator",
    "get_analysis_method": "analysis method",
    # network-backend registry: get_network("can") / build_network("can", ...)
    "get_network": "network",
    "build_network": "network",
    # fabric wire protocol: make_msg("lease", ...) / channel.send_msg("job", ...)
    "make_msg": "fabric message",
    "send_msg": "fabric message",
    # study-service job lifecycle: record.advance("running")
    "advance": "job state",
}

#: Keyword arguments of Scenario(...) / .derive(...) checked against a
#: registry or choice tuple.
_KEYWORD_KINDS = {
    "allocator": "allocator",
    "method": "analysis method",
    "kernel": "kernel",
    "source": "source",
    "network": "network",
    "disturbance": "disturbance",
    "dwell_shape": "dwell_shape",
}

#: scenario_grid(...) takes the plural, sequence-valued spellings.
_PLURAL_KEYWORD_KINDS = {
    "allocators": "allocator",
    "dwell_shapes": "dwell_shape",
}

_SCENARIO_CALLEES = ("Scenario", "derive", "scenario_grid")


def _last_name(node: ast.AST) -> Optional[str]:
    """Trailing identifier of a callee (``pipeline.get_scenario`` → same)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class RegistryLiteralRule(Rule):
    """QA004 — name literals must resolve against the live registries."""

    rule_id = "QA004"
    title = "registry name literals must resolve"
    rationale = (
        "Scenario, allocator, analysis-method, network, kernel and stage names "
        "are registry keys; a literal that is not registered raises "
        "only when that code path finally runs.  Checking against the "
        "live registries moves the failure to lint time."
    )
    node_types = (ast.Call, ast.Subscript)

    _REGISTRIES: Optional[Dict[str, FrozenSet[str]]] = None

    @classmethod
    def _registries(cls) -> Dict[str, FrozenSet[str]]:
        """Live registry snapshots, loaded once per process.

        Importing the pipeline registers every built-in; third-party
        backends registered before linting are accepted the same way.
        When the runtime is unavailable the rule goes inert rather
        than reporting false unknowns.
        """
        if cls._REGISTRIES is None:
            try:
                from repro.pipeline.registry import scenario_names
                from repro.pipeline.scenario import (
                    DISTURBANCES,
                    DWELL_SHAPES,
                    KERNELS,
                    SOURCES,
                )
                from repro.fabric.protocol import MESSAGE_TYPES
                from repro.fabric.service import JOB_STATES
                from repro.pipeline.stages import STAGE_ORDER
                from repro.sim.network import network_names
                from repro.solvers import allocator_names, analysis_method_names

                cls._REGISTRIES = {
                    "scenario": frozenset(scenario_names()),
                    "allocator": frozenset(allocator_names()),
                    "analysis method": frozenset(analysis_method_names()),
                    "kernel": frozenset(KERNELS),
                    "source": frozenset(SOURCES),
                    # Live registry (not the documentation tuple), so a
                    # third-party backend registered before linting is
                    # a legal literal.
                    "network": frozenset(network_names()),
                    "disturbance": frozenset(DISTURBANCES),
                    "dwell_shape": frozenset(DWELL_SHAPES),
                    "stage": frozenset(STAGE_ORDER),
                    "fabric message": frozenset(MESSAGE_TYPES),
                    "job state": frozenset(JOB_STATES),
                }
            except Exception:
                cls._REGISTRIES = {}
        return cls._REGISTRIES

    def _check(
        self, kind: str, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Finding]:
        if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
            return
        registered = self._registries().get(kind)
        if registered is None or node.value in registered:
            return
        # Lead with the closest matches (typos are the whole point).
        close = difflib.get_close_matches(node.value, sorted(registered), n=3)
        remainder = [name for name in sorted(registered) if name not in close]
        shown = (close + remainder)[:6]
        preview = ", ".join(shown)
        if len(registered) > len(shown):
            preview += ", ..."
        yield ctx.finding(
            self,
            node,
            f"unknown {kind} {node.value!r} will fail at runtime; "
            f"registered: {preview}",
        )

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if not self._registries():
            return
        if isinstance(node, ast.Subscript):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "STAGES"
                and isinstance(node.slice, ast.Constant)
            ):
                yield from self._check("stage", node.slice, ctx)
            return
        callee = _last_name(node.func)
        if callee is None:
            return
        kind = _FIRST_ARG_KINDS.get(callee)
        if kind is not None and node.args:
            yield from self._check(kind, node.args[0], ctx)
        if callee not in _SCENARIO_CALLEES:
            return
        for keyword in node.keywords:
            kind = _KEYWORD_KINDS.get(keyword.arg or "")
            if kind is not None:
                yield from self._check(kind, keyword.value, ctx)
                continue
            plural_kind = _PLURAL_KEYWORD_KINDS.get(keyword.arg or "")
            if plural_kind is not None and isinstance(
                keyword.value, (ast.Tuple, ast.List)
            ):
                for element in keyword.value.elts:
                    yield from self._check(plural_kind, element, ctx)


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target) or _last_name(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def _is_open_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "open"
    )


class UnpicklablePayloadRule(Rule):
    """QA005 — pool payload dataclasses stay picklable."""

    rule_id = "QA005"
    title = "no unpicklable members on pool payloads"
    rationale = (
        'run_many(executor="process") and the sweep workers pickle '
        "Scenario/result dataclasses to ProcessPoolExecutor workers; a "
        "lambda or open handle stored on an instance raises "
        "PicklingError only when the process pool is first used."
    )
    scope = ("repro.pipeline", "repro.sim")
    node_types = (ast.ClassDef,)

    def visit(self, node: ast.ClassDef, ctx: ModuleContext) -> Iterator[Finding]:
        if not _is_dataclass_decorated(node):
            return
        for statement in node.body:
            value = getattr(statement, "value", None)
            if isinstance(statement, (ast.Assign, ast.AnnAssign)) and value is not None:
                yield from self._check_default(node.name, value, ctx)
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign):
                continue
            for target in sub.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    if isinstance(sub.value, ast.Lambda):
                        yield ctx.finding(
                            self,
                            sub,
                            f"{node.name}.{target.attr} holds a lambda; "
                            f"instances won't pickle to process-pool workers",
                        )
                    elif _is_open_call(sub.value):
                        yield ctx.finding(
                            self,
                            sub,
                            f"{node.name}.{target.attr} holds an open file "
                            f"handle; instances won't pickle to process-pool "
                            f"workers",
                        )

    def _check_default(
        self, class_name: str, value: ast.AST, ctx: ModuleContext
    ) -> Iterator[Finding]:
        if isinstance(value, ast.Lambda):
            yield ctx.finding(
                self,
                value,
                f"{class_name} field default is a lambda; instances won't "
                f"pickle to process-pool workers (wrap it in a named "
                f"function or use default_factory)",
            )
        elif _is_open_call(value):
            yield ctx.finding(
                self,
                value,
                f"{class_name} field default is an open handle; instances "
                f"won't pickle to process-pool workers",
            )
        elif isinstance(value, ast.Call) and _last_name(value.func) == "field":
            for keyword in value.keywords:
                # default_factory=lambda is fine: the *result* is stored.
                if keyword.arg == "default" and (
                    isinstance(keyword.value, ast.Lambda)
                    or _is_open_call(keyword.value)
                ):
                    yield ctx.finding(
                        self,
                        keyword.value,
                        f"{class_name} field(default=...) stores an "
                        f"unpicklable object on every instance",
                    )


__all__ = ["RegistryLiteralRule", "UnpicklablePayloadRule"]
