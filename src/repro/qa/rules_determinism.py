"""Determinism rules: seeded randomness, no wall clocks, exact time compares.

These encode the contract behind the kernel-parity guarantee (legacy /
event / batch traces are bitwise identical) and seed-stable sweeps:
every random draw flows from an explicit seed, simulation kernels never
read the host clock, and event/barrier instants compare by integer-ns
equality rather than float tolerance.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.qa.engine import ModuleContext, Rule, dotted_name
from repro.qa.findings import Finding

_NUMPY_ALIASES = ("np", "numpy")

#: ``np.random`` entry points that are fine *when given an explicit
#: seed* — the sanctioned way to obtain randomness.
_SEEDABLE_CONSTRUCTORS = ("default_rng", "RandomState", "Generator", "Random", "SeedSequence")


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _unseeded(call: ast.Call) -> bool:
    """True when the call passes no usable seed (no args, or ``None``)."""
    if call.args and not _is_none(call.args[0]):
        return False
    for keyword in call.keywords:
        if keyword.arg == "seed" and not _is_none(keyword.value):
            return False
    return True


class UnseededRandomRule(Rule):
    """QA001 — every random draw must flow from an explicit seed."""

    rule_id = "QA001"
    title = "no unseeded randomness"
    rationale = (
        "Module-level np.random / bare random.* calls draw from hidden "
        "global state, so traces stop being a function of the scenario "
        "seed; construct a generator with an explicit seed instead "
        "(np.random.default_rng(seed), random.Random(seed))."
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: ModuleContext) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            if isinstance(node.func, ast.Name):
                name = node.func.id
            else:
                return
        parts = name.split(".")
        if len(parts) == 3 and parts[0] in _NUMPY_ALIASES and parts[1] == "random":
            function = parts[2]
            if function in _SEEDABLE_CONSTRUCTORS:
                if _unseeded(node):
                    yield ctx.finding(
                        self,
                        node,
                        f"{name}() without an explicit seed draws OS entropy; "
                        f"pass a seed derived from the scenario",
                    )
            else:
                yield ctx.finding(
                    self,
                    node,
                    f"module-level {name}() uses the hidden global RNG; "
                    f"use a seeded np.random.default_rng(seed) generator",
                )
        elif len(parts) == 2 and parts[0] == "random":
            function = parts[1]
            if function in _SEEDABLE_CONSTRUCTORS:
                if _unseeded(node):
                    yield ctx.finding(
                        self,
                        node,
                        f"{name}() without an explicit seed draws OS entropy; "
                        f"pass a seed derived from the scenario",
                    )
            else:
                yield ctx.finding(
                    self,
                    node,
                    f"bare {name}() uses the global Mersenne Twister; "
                    f"use a seeded random.Random(seed) instance",
                )
        elif len(parts) == 1 and parts[0] == "default_rng":
            if _unseeded(node):
                yield ctx.finding(
                    self,
                    node,
                    "default_rng() without an explicit seed draws OS entropy; "
                    "pass a seed derived from the scenario",
                )


#: Wall-clock reads that make kernel behaviour depend on the host.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    """QA002 — simulation/solver kernels never read the host clock."""

    rule_id = "QA002"
    title = "no wall-clock reads in kernels"
    rationale = (
        "Simulated time is integer-ns event time; reading the host clock "
        "inside repro.sim / repro.flexray / repro.solvers couples results "
        "to the machine and to NTP steps.  Duration timing belongs in the "
        "pipeline/benchmark layer and uses time.perf_counter().  The "
        "fabric layer is exempt: leases, heartbeats, retry backoff "
        "sleeps (repro.fabric.resilience) and job timestamps are about "
        "real machines, not simulated ones."
    )
    scope = (
        "repro.sim",
        "repro.flexray",
        "repro.solvers",
        "repro.pipeline",
        "repro.fabric",
    )
    #: Distributed-coordination code legitimately reads the host clock
    #: (lease deadlines, submitted_at stamps); results stay seeded.
    allow_modules = ("repro.fabric",)
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: ModuleContext) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name in _WALL_CLOCK_CALLS:
            yield ctx.finding(
                self,
                node,
                f"wall-clock read {name}() inside a kernel module; kernels "
                f"run on simulated time (durations: time.perf_counter() "
                f"outside the kernel)",
            )


#: Identifier tokens that mark a value as an event/barrier time.
_TIME_TOKENS = frozenset(
    {
        "t",
        "t0",
        "t1",
        "time",
        "times",
        "tick",
        "ticks",
        "instant",
        "instants",
        "barrier",
        "barriers",
        "timestamp",
        "timestamps",
        "ts",
        "ns",
        "release",
        "delivery",
        "grant",
        "grants",
        "transmit",
        "window",
        "windows",
        "deadline",
        "deadlines",
        "response",
        "responses",
        "horizon",
        "when",
    }
)

_ISCLOSE_CALLS = frozenset(
    {
        "np.isclose",
        "numpy.isclose",
        "np.allclose",
        "numpy.allclose",
        "math.isclose",
        "isclose",
    }
)

_SPACING_CALLS = frozenset({"np.spacing", "numpy.spacing", "spacing"})


def _is_timeish(identifier: str) -> bool:
    return any(token in _TIME_TOKENS for token in identifier.lower().split("_"))


def _mentions_time(nodes: Iterable[ast.AST]) -> bool:
    for root in nodes:
        for sub in ast.walk(root):
            if isinstance(sub, ast.Name) and _is_timeish(sub.id):
                return True
            if isinstance(sub, ast.Attribute) and _is_timeish(sub.attr):
                return True
    return False


def _abs_diff_operands(node: ast.AST):
    """The ``(a, b)`` of an ``abs(a - b)`` call, else None."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "abs"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.BinOp)
        and isinstance(node.args[0].op, ast.Sub)
    ):
        return node.args[0].left, node.args[0].right
    return None


class FloatTimeCompareRule(Rule):
    """QA003 — event/barrier times compare by integer-ns equality."""

    rule_id = "QA003"
    title = "no float-tolerance compares on event times"
    rationale = (
        "Barrier coalescing buckets events on integer-ns timestamps "
        "(the PR 5 contract); an np.isclose / abs(a-b) < eps on a time "
        "value re-introduces platform-dependent grouping and breaks "
        "bitwise kernel parity.  Compare times with == on the ns grid."
    )
    scope = ("repro.sim",)
    node_types = (ast.Call, ast.Compare)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None and isinstance(node.func, ast.Name):
                name = node.func.id
            if name in _SPACING_CALLS:
                yield ctx.finding(
                    self,
                    node,
                    f"{name}() derives a float epsilon inside the simulator; "
                    f"the kernels bucket instants on the integer-ns grid",
                )
            elif name in _ISCLOSE_CALLS and _mentions_time(
                list(node.args) + [kw.value for kw in node.keywords]
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{name}() on a time value; event/barrier instants "
                    f"compare by integer-ns equality",
                )
        elif isinstance(node, ast.Compare):
            sides = [node.left] + list(node.comparators)
            ops_ordered = any(
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)) for op in node.ops
            )
            if not ops_ordered:
                return
            for side in sides:
                operands = _abs_diff_operands(side)
                if operands is not None and _mentions_time(operands):
                    yield ctx.finding(
                        self,
                        node,
                        "abs(a - b) < eps tolerance on a time value; "
                        "event/barrier instants compare by integer-ns equality",
                    )
                    return


__all__ = ["FloatTimeCompareRule", "UnseededRandomRule", "WallClockRule"]
