"""Reporters: human-readable text and a JSON document for CI artifacts.

The JSON report is versioned and self-describing (it embeds the rule
table), round-trips through ``json.loads``, and is what the CI lint
job uploads next to the BENCH artifacts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.qa.engine import LintResult, Rule

#: Bump when the JSON document shape changes.
REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    """Compiler-style report: one ``path:line:col`` line per finding."""
    lines: List[str] = [
        f"{finding.location()}: {finding.rule_id} [{finding.severity}] "
        f"{finding.message}"
        for finding in result.findings
    ]
    checked = f"{len(result.files)} file(s) checked"
    if not result.findings:
        lines.append(f"repro lint: clean — {checked}")
    else:
        lines.append(
            f"repro lint: {result.errors} error(s), {result.warnings} "
            f"warning(s) — {checked}"
        )
    return "\n".join(lines)


def report_dict(
    result: LintResult,
    paths: Sequence[str],
    rules: Sequence[Rule],
) -> Dict[str, Any]:
    """The ``--json`` document (also the CI artifact payload)."""
    return {
        "version": REPORT_VERSION,
        "tool": "repro.qa",
        "paths": list(paths),
        "rules": [rule.describe() for rule in rules],
        "findings": [finding.to_dict() for finding in result.findings],
        "summary": {
            "files_checked": len(result.files),
            "findings": len(result.findings),
            "errors": result.errors,
            "warnings": result.warnings,
            "exit_code": result.exit_code,
        },
    }


def render_json(
    result: LintResult,
    paths: Sequence[str],
    rules: Sequence[Rule],
    indent: int = 2,
) -> str:
    return json.dumps(report_dict(result, paths, rules), indent=indent)


__all__ = ["REPORT_VERSION", "render_json", "render_text", "report_dict"]
