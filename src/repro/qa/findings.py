"""Finding records produced by the :mod:`repro.qa` rule engine.

A :class:`Finding` pins one rule violation to a source span.  Findings
are frozen and totally ordered (path, line, column, rule id), so
reports are deterministic regardless of rule-evaluation order — the
same property the rules themselves police in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

#: Recognised severities, most severe first.  ``error`` findings make
#: ``repro lint`` exit non-zero; ``warning`` findings are reported but
#: do not gate.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source span."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str
    end_line: Optional[int] = None
    end_col: Optional[int] = None
    snippet: str = ""

    def location(self) -> str:
        """``path:line:column`` with a 1-based column (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "end_col": self.end_col,
            "rule_id": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        return cls(
            path=data["path"],
            line=data["line"],
            col=data["col"],
            rule_id=data["rule_id"],
            severity=data["severity"],
            message=data["message"],
            end_line=data.get("end_line"),
            end_col=data.get("end_col"),
            snippet=data.get("snippet", ""),
        )


__all__ = ["Finding", "SEVERITIES"]
