"""Inline suppressions: ``# repro: allow[QA003]``.

A suppression comment silences exactly the named rule(s) on exactly the
physical line carrying the comment — there is no file- or block-level
form, so every deliberate exception stays visible where it happens.
Several ids may share one bracket (``allow[QA001,QA003]``) and a line
may carry several brackets; each id still binds to that line only.

Unknown rule ids are not silently ignored: the engine reports them as
:data:`~repro.qa.engine.META_RULE_ID` findings, so a typo'd suppression
(``allow[QA01]``) fails the gate instead of quietly disabling nothing.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


def parse_suppressions(source: str) -> Dict[int, List[Tuple[str, int]]]:
    """Map 1-based line numbers to ``(rule_id, column)`` suppressions.

    Ids are returned verbatim (unvalidated); the engine decides which
    are known.  Comment-looking text inside string literals is treated
    as a comment too — the pattern is specific enough that this is the
    conservative direction (a suppression that binds is visible in the
    diff either way).
    """
    table: Dict[int, List[Tuple[str, int]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        for match in _SUPPRESS_RE.finditer(text):
            entries = table.setdefault(lineno, [])
            for raw in match.group(1).split(","):
                rule_id = raw.strip()
                if rule_id:
                    entries.append((rule_id, match.start()))
    return table


__all__ = ["parse_suppressions"]
