"""AST rule engine for the repository's determinism contract.

The engine parses each module once and walks the tree once; every
:class:`Rule` declares the node types it cares about and is dispatched
only for those, so adding rules does not add passes.  Rules are scoped
by dotted module prefix (``repro.sim`` covers ``repro.sim.cosim``),
carry a per-rule severity, and honour per-rule module allowlists plus
inline suppressions of the ``# repro: allow[QA003]`` form
(:mod:`repro.qa.suppress`).

Entry points: :func:`lint_source` for one in-memory module,
:func:`lint_paths` for files/directory trees (returns a
:class:`LintResult` whose :attr:`~LintResult.exit_code` is the CLI/CI
gate).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Type

from repro.qa.findings import Finding
from repro.qa.suppress import parse_suppressions

#: Rule id for engine-level findings: syntax errors and suppressions
#: naming unknown rules.  Not suppressible by design.
META_RULE_ID = "QA000"

#: Longest snippet recorded on a finding (one line, for reports).
_SNIPPET_WIDTH = 88


def module_for_path(path: str) -> str:
    """Dotted module name for ``path``, anchored at the ``repro`` package.

    ``src/repro/sim/cosim.py`` → ``repro.sim.cosim``; paths outside a
    ``repro`` tree fall back to the file stem, which keeps scoped rules
    inert on foreign files.
    """
    parts = list(Path(path).with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``np.random.default_rng`` for the matching attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ModuleContext:
    """Everything a rule may inspect about the module being linted."""

    def __init__(self, path: str, module: str, source: str, tree: ast.AST):
        self.path = path
        self.module = module
        self.source = source
        self.tree = tree

    def segment(self, node: ast.AST) -> str:
        """First source line of ``node``, trimmed for report snippets."""
        text = ast.get_source_segment(self.source, node) or ""
        first = text.splitlines()[0] if text else ""
        if len(first) > _SNIPPET_WIDTH:
            first = first[: _SNIPPET_WIDTH - 3] + "..."
        return first

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            end_line=getattr(node, "end_lineno", None),
            end_col=getattr(node, "end_col_offset", None),
            rule_id=rule.rule_id,
            severity=rule.severity,
            message=message,
            snippet=self.segment(node),
        )


class Rule:
    """Base class for determinism-contract rules.

    Subclasses set the class attributes and implement :meth:`visit`,
    which receives every node whose type appears in :attr:`node_types`
    and yields :class:`Finding` objects (usually via
    ``ctx.finding(self, node, message)``).
    """

    #: Stable identifier (``QA001``...), the suppression key.
    rule_id: str = META_RULE_ID
    #: One-line rule name for reports.
    title: str = ""
    #: Why the rule exists — surfaced by ``repro lint --json`` and docs.
    rationale: str = ""
    severity: str = "error"
    #: Dotted module prefixes the rule applies to; empty = every module.
    scope: Tuple[str, ...] = ()
    #: Dotted module prefixes exempted (the built-in allowlist).
    allow_modules: Tuple[str, ...] = ()
    #: AST node classes dispatched to :meth:`visit` (exact types).
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, module: str) -> bool:
        return not self.scope or _prefix_match(module, self.scope)

    def begin_module(self, ctx: ModuleContext) -> None:
        """Per-module setup hook (state reset, lazy registry loads)."""

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        return {
            "id": self.rule_id,
            "title": self.title,
            "severity": self.severity,
            "scope": list(self.scope),
            "rationale": self.rationale,
        }


def _prefix_match(module: str, prefixes: Iterable[str]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in prefixes
    )


@dataclass
class LintResult:
    """Findings plus the files they were drawn from."""

    findings: List[Finding] = field(default_factory=list)
    files: List[str] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    @property
    def exit_code(self) -> int:
        """0 when the tree is clean of errors; 1 otherwise (the gate)."""
        return 1 if self.errors else 0


def _default_rules() -> Sequence[Rule]:
    from repro.qa import all_rules

    return all_rules()


def _known_rule_ids(rules: Sequence[Rule]) -> set:
    from repro.qa import rule_ids

    return set(rule_ids()) | {rule.rule_id for rule in rules} | {META_RULE_ID}


def lint_source(
    source: str,
    path: str = "<memory>",
    rules: Optional[Sequence[Rule]] = None,
    allowlist: Optional[Mapping[str, Sequence[str]]] = None,
) -> List[Finding]:
    """Lint one module's source text; returns sorted findings.

    ``allowlist`` maps rule ids to extra exempted module prefixes on
    top of each rule's built-in :attr:`Rule.allow_modules`.
    """
    if rules is None:
        rules = _default_rules()
    path = str(path)
    module = module_for_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=max((exc.offset or 1) - 1, 0),
                rule_id=META_RULE_ID,
                severity="error",
                message=f"syntax error: {exc.msg}",
            )
        ]
    extra_allow = allowlist or {}
    active = [
        rule
        for rule in rules
        if rule.applies_to(module)
        and not _prefix_match(
            module,
            tuple(rule.allow_modules) + tuple(extra_allow.get(rule.rule_id, ())),
        )
    ]
    ctx = ModuleContext(path=path, module=module, source=source, tree=tree)
    by_type: Dict[type, List[Rule]] = {}
    for rule in active:
        rule.begin_module(ctx)
        for node_type in rule.node_types:
            by_type.setdefault(node_type, []).append(rule)
    findings: List[Finding] = []
    for node in ast.walk(tree):
        for rule in by_type.get(type(node), ()):
            findings.extend(rule.visit(node, ctx))
    suppressions = parse_suppressions(source)
    known = _known_rule_ids(rules)
    kept = [
        f
        for f in findings
        if f.rule_id not in {rid for rid, _ in suppressions.get(f.line, ())}
    ]
    for line, entries in suppressions.items():
        for rule_id, col in entries:
            if rule_id not in known:
                kept.append(
                    Finding(
                        path=path,
                        line=line,
                        col=col,
                        rule_id=META_RULE_ID,
                        severity="error",
                        message=(
                            f"suppression names unknown rule {rule_id!r}; "
                            f"known rules: {', '.join(sorted(known))}"
                        ),
                    )
                )
    return sorted(kept)


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in sorted, deterministic order."""
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            yield root
        elif root.is_dir():
            for candidate in sorted(root.rglob("*.py")):
                if "__pycache__" in candidate.parts:
                    continue
                if any(part.startswith(".") for part in candidate.parts[1:]):
                    continue
                yield candidate
        else:
            raise ValueError(f"lint path {raw!r} is neither a file nor a directory")


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    allowlist: Optional[Mapping[str, Sequence[str]]] = None,
) -> LintResult:
    """Lint every python file under ``paths`` (files or directory trees)."""
    if rules is None:
        rules = _default_rules()
    result = LintResult()
    for file_path in iter_python_files(paths):
        result.files.append(str(file_path))
        source = file_path.read_text(encoding="utf-8")
        result.findings.extend(
            lint_source(source, path=str(file_path), rules=rules, allowlist=allowlist)
        )
    result.findings.sort()
    return result


__all__ = [
    "LintResult",
    "META_RULE_ID",
    "ModuleContext",
    "Rule",
    "dotted_name",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "module_for_path",
]
