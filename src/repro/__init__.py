"""repro — reproduction of "Exploiting System Dynamics for
Resource-Efficient Automotive CPS Design" (Maldonado et al., DATE 2019).

The library implements the paper's complete stack:

* :mod:`repro.control` — plants, exact delayed discretisation, LQR and
  pole-placement controller design (Section II-B);
* :mod:`repro.flexray` — the hybrid TT/ET FlexRay bus (Section II-A);
* :mod:`repro.testbed` — a simulated substitute for the paper's servo rig
  (Figure 2);
* :mod:`repro.core` — the contribution: switched-system dwell/wait
  characterisation, conservative PWL dwell models, the maximum-wait fixed
  point with closed-form bounds, and minimum TT-slot allocation
  (Sections III-IV);
* :mod:`repro.sim` — the dynamic-resource-allocation co-simulation
  (Figure 1 runtime, Figure 5 evaluation);
* :mod:`repro.baselines` — comparison analyses (CAN RTA, monotonic models,
  dedicated slots);
* :mod:`repro.solvers` — pluggable allocator and wait-analysis backends:
  decorator registries with capability metadata, the exact
  branch-and-bound search, and the annealing heuristic for large fleets;
* :mod:`repro.pipeline` — the declarative scenario API: ``Scenario`` in,
  ``DesignStudy`` runs the chain as named stages, structured
  JSON-serializable ``StudyResult`` out, with a registry of the paper's
  setups and a parallel batch executor;
* :mod:`repro.experiments` — drivers regenerating every table and figure
  (thin wrappers over the pipeline).

Quickstart::

    from repro import PAPER_TABLE_I, first_fit_allocation, make_analyzed

    apps = make_analyzed(PAPER_TABLE_I, "non-monotonic")
    allocation = first_fit_allocation(apps)
    print(allocation.slot_names)   # [['C3', 'C6'], ['C2', 'C4'], ['C5', 'C1']]

or, declaratively::

    from repro import DesignStudy, get_scenario

    study = DesignStudy(get_scenario("paper-table1")).run()
    print(study.slot_count)        # 3
"""

from repro.core import (
    PAPER_TABLE_I,
    AllocationResult,
    AnalyzedApplication,
    DwellCurve,
    LinearSwitchedSystem,
    PwlDwellModel,
    TimingParameters,
    UnschedulableError,
    analyze_application,
    analyze_slot,
    characterize_application,
    characterize_curve,
    characterize_plant,
    characterize_response_source,
    compare_resource_usage,
    conservative_monotonic,
    dedicated_allocation,
    first_fit_allocation,
    fit_concave_envelope,
    fit_conservative_monotonic,
    fit_two_segment,
    from_timing_parameters,
    is_slot_schedulable,
    make_analyzed,
    max_wait_closed_form,
    max_wait_fixed_point,
    measure_dwell_curve,
    optimal_allocation,
    paper_application,
    priority_order,
    simple_monotonic,
    two_segment,
)
from repro.control import (
    ContinuousStateSpace,
    DelayedStateSpace,
    PlantDefinition,
    SwitchedApplication,
    design_mode_controller,
    design_switched_application,
    discretize,
    discretize_with_delay,
    dlqr,
    make_plant,
    servo_rig,
    settling_time,
)
from repro.flexray import FlexRayBus, FlexRayConfig, FrameSpec, paper_bus_config
from repro.pipeline import (
    BusSpec,
    DesignStudy,
    DwellCurveCache,
    Scenario,
    StudyResult,
    get_scenario,
    run_many,
    run_study,
    scenario_grid,
    scenario_names,
)
from repro.sim import (
    AnalyticNetwork,
    CoSimApplication,
    CoSimulator,
    FlexRayNetwork,
    SimulationTrace,
    TTSlotArbiter,
)
from repro.solvers import (
    AllocatorSpec,
    AnalysisMethodSpec,
    SolverError,
    allocate,
    allocator_names,
    analysis_method_names,
    get_allocator,
    get_analysis_method,
    register_allocator,
    register_analysis_method,
    solver_table,
)
from repro.testbed import ServoRigConfig, ServoTestbed, default_servo_testbed

__version__ = "0.1.0"

__all__ = [
    "AllocationResult",
    "AllocatorSpec",
    "AnalysisMethodSpec",
    "AnalyticNetwork",
    "AnalyzedApplication",
    "BusSpec",
    "CoSimApplication",
    "CoSimulator",
    "ContinuousStateSpace",
    "DelayedStateSpace",
    "DesignStudy",
    "DwellCurve",
    "DwellCurveCache",
    "FlexRayBus",
    "FlexRayConfig",
    "FlexRayNetwork",
    "FrameSpec",
    "LinearSwitchedSystem",
    "PAPER_TABLE_I",
    "PlantDefinition",
    "PwlDwellModel",
    "Scenario",
    "ServoRigConfig",
    "ServoTestbed",
    "SimulationTrace",
    "SolverError",
    "StudyResult",
    "SwitchedApplication",
    "TTSlotArbiter",
    "TimingParameters",
    "UnschedulableError",
    "allocate",
    "allocator_names",
    "analysis_method_names",
    "analyze_application",
    "analyze_slot",
    "characterize_application",
    "characterize_curve",
    "characterize_plant",
    "characterize_response_source",
    "compare_resource_usage",
    "conservative_monotonic",
    "dedicated_allocation",
    "default_servo_testbed",
    "design_mode_controller",
    "design_switched_application",
    "discretize",
    "discretize_with_delay",
    "dlqr",
    "first_fit_allocation",
    "fit_concave_envelope",
    "fit_conservative_monotonic",
    "fit_two_segment",
    "from_timing_parameters",
    "get_allocator",
    "get_analysis_method",
    "get_scenario",
    "is_slot_schedulable",
    "make_analyzed",
    "make_plant",
    "max_wait_closed_form",
    "max_wait_fixed_point",
    "measure_dwell_curve",
    "optimal_allocation",
    "paper_application",
    "paper_bus_config",
    "priority_order",
    "register_allocator",
    "register_analysis_method",
    "run_many",
    "run_study",
    "scenario_grid",
    "scenario_names",
    "servo_rig",
    "settling_time",
    "simple_monotonic",
    "solver_table",
    "two_segment",
]
