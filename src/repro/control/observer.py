"""Luenberger observers for output-feedback operation (extension).

The paper assumes the sensing task reads the full plant state.  Real
automotive sensors often expose only part of it (e.g. the encoder of the
Figure 2 rig measures the angle but not the angular velocity); a state
observer reconstructs the rest.  This module designs discrete-time
Luenberger observers by duality with the pole-placement/LQR machinery
and provides the certainty-equivalence closed loop, so every analysis in
:mod:`repro.core` can also be run for output-feedback configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.control.dare import dlqr
from repro.control.lti import DelayedStateSpace
from repro.control.pole_placement import place_gain
from repro.utils.linalg import is_schur_stable
from repro.utils.validation import check_vector, ensure_matrix


class ObserverDesignError(RuntimeError):
    """Raised when no stable observer can be designed."""


@dataclass(frozen=True)
class LuenbergerObserver:
    """Discrete-time observer ``xhat[k+1] = Phi xhat + Gamma u + L (y - C xhat)``.

    Attributes
    ----------
    plant:
        The (delay-free part of the) discrete plant being observed.
    gain:
        Observer gain ``L`` of shape ``(n, p)``.
    """

    plant: DelayedStateSpace
    gain: np.ndarray

    def __post_init__(self):
        gain = ensure_matrix(
            self.gain, "gain", rows=self.plant.n_states, cols=self.plant.c.shape[0]
        )
        object.__setattr__(self, "gain", gain)
        if not is_schur_stable(self.error_dynamics()):
            raise ObserverDesignError("observer error dynamics are unstable")

    def error_dynamics(self) -> np.ndarray:
        """Estimation-error matrix ``Phi - L C``."""
        return self.plant.phi - self.gain @ self.plant.c

    def update(
        self,
        xhat: np.ndarray,
        u: np.ndarray,
        u_prev: np.ndarray,
        measurement: np.ndarray,
    ) -> np.ndarray:
        """One observer step given the applied inputs and the new output."""
        xhat = check_vector(xhat, "xhat", size=self.plant.n_states)
        innovation = np.asarray(measurement, float).ravel() - self.plant.c @ xhat
        prediction = (
            self.plant.phi @ xhat
            + self.plant.gamma0 @ np.asarray(u, float).ravel()
            + self.plant.gamma1 @ np.asarray(u_prev, float).ravel()
        )
        return prediction + self.gain @ innovation


def _check_observability(plant: DelayedStateSpace) -> None:
    n = plant.n_states
    rows = [plant.c]
    for _ in range(n - 1):
        rows.append(rows[-1] @ plant.phi)
    observability = np.vstack(rows)
    if np.linalg.matrix_rank(observability, tol=1e-10) < n:
        raise ObserverDesignError(
            "the pair (Phi, C) is not observable; no observer exists"
        )


def design_observer_poles(
    plant: DelayedStateSpace, poles: Sequence[complex]
) -> LuenbergerObserver:
    """Place the observer poles by duality: ``L' = place(Phi', C')``."""
    _check_observability(plant)
    gain_t = place_gain(plant.phi.T, plant.c.T, poles)
    return LuenbergerObserver(plant=plant, gain=gain_t.T)


def design_observer_lqe(
    plant: DelayedStateSpace,
    process_noise: np.ndarray,
    measurement_noise: np.ndarray,
) -> LuenbergerObserver:
    """Steady-state Kalman-style observer gain via the dual LQR.

    Solving the LQR for ``(Phi', C', Q_w, R_v)`` yields the steady-state
    filter gain ``L = K'`` for process covariance ``Q_w`` and measurement
    covariance ``R_v``.
    """
    _check_observability(plant)
    design = dlqr(
        plant.phi.T,
        plant.c.T,
        ensure_matrix(process_noise, "process_noise"),
        ensure_matrix(measurement_noise, "measurement_noise"),
    )
    return LuenbergerObserver(plant=plant, gain=design.gain.T)


__all__ = [
    "LuenbergerObserver",
    "ObserverDesignError",
    "design_observer_lqe",
    "design_observer_poles",
]
