"""Quadratic quality-of-control (QoC) cost of switched responses.

The paper's controllers are designed "using optimal control principles"
(refs [9, 10]); the natural performance metric alongside the settling
time is the infinite-horizon quadratic cost

    J = sum_k  z[k]' W z[k]

of the autonomous closed-loop trajectory.  For the switched response of
Eqs. 3-4 (ET dynamics ``A1`` for ``kwait`` samples, TT dynamics ``A2``
afterwards) the cost splits into a finite ET sum plus a TT tail that is
evaluated in closed form with a discrete Lyapunov equation:

    J = sum_{k<kwait} (A1^k x0)' W (A1^k x0)  +  (A1^kwait x0)' P x0'...

where ``P`` solves ``A2' P A2 - P + W = 0``.  This quantifies how much
control quality is lost while an application waits for its TT slot.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.linalg import is_schur_stable
from repro.utils.validation import check_square, check_vector, ensure_matrix

try:  # pragma: no cover - import guard
    from scipy.linalg import solve_discrete_lyapunov as _scipy_dlyap
except ImportError:  # pragma: no cover
    _scipy_dlyap = None


class LyapunovError(RuntimeError):
    """Raised when a discrete Lyapunov equation cannot be solved."""


def solve_dlyap(a: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Solve ``A' P A - P + W = 0`` for Schur-stable ``A``.

    Uses scipy when available and a doubling iteration otherwise; the
    residual is verified either way.
    """
    a = check_square(a, "a")
    w = ensure_matrix(w, "w", rows=a.shape[0], cols=a.shape[0])
    if not is_schur_stable(a):
        raise LyapunovError("A must be Schur stable for a summable cost")
    if _scipy_dlyap is not None:
        import warnings

        with warnings.catch_warnings():
            # scipy warns about ill-conditioned slices for loops with
            # near-nilpotent blocks (e.g. held-input states with tiny
            # gamma1); the explicit residual check below validates the
            # solution regardless.
            warnings.simplefilter("ignore")
            p = np.asarray(_scipy_dlyap(a.T, w))
    else:  # pragma: no cover - scipy is an install requirement
        p = _dlyap_doubling(a, w)
    p = 0.5 * (p + p.T)
    residual = float(np.max(np.abs(a.T @ p @ a - p + w)))
    if residual > 1e-6 * max(1.0, float(np.max(np.abs(p)))):
        raise LyapunovError(f"Lyapunov residual too large: {residual:.3e}")
    return p


def _dlyap_doubling(a: np.ndarray, w: np.ndarray, iterations: int = 200) -> np.ndarray:
    """Doubling iteration: P = sum (A^k)' W A^k via repeated squaring."""
    p = w.copy()
    power = a.copy()
    for _ in range(iterations):
        update = power.T @ p @ power
        if np.max(np.abs(update)) < 1e-16 * max(1.0, np.max(np.abs(p))):
            return p
        p = p + update
        power = power @ power
    raise LyapunovError("doubling iteration did not converge")  # pragma: no cover


def autonomous_cost(
    a: np.ndarray, x0: np.ndarray, weight: Optional[np.ndarray] = None
) -> float:
    """Infinite-horizon cost ``sum_k x[k]' W x[k]`` of ``x[k+1] = A x[k]``."""
    a = check_square(a, "a")
    x0 = check_vector(x0, "x0", size=a.shape[0])
    w = np.eye(a.shape[0]) if weight is None else ensure_matrix(
        weight, "weight", rows=a.shape[0], cols=a.shape[0]
    )
    p = solve_dlyap(a, w)
    return float(x0 @ p @ x0)


def switched_cost(
    a1: np.ndarray,
    a2: np.ndarray,
    x0: np.ndarray,
    wait_samples: int,
    weight: Optional[np.ndarray] = None,
) -> float:
    """Cost of the switched response of paper Eqs. 3-4.

    ``A1`` runs for ``wait_samples`` steps, ``A2`` forever after; both
    must be Schur stable (the paper's switching-stability requirement).
    """
    a1 = check_square(a1, "a1")
    a2 = ensure_matrix(a2, "a2", rows=a1.shape[0], cols=a1.shape[0])
    x0 = check_vector(x0, "x0", size=a1.shape[0])
    if wait_samples < 0:
        raise ValueError(f"wait_samples must be non-negative, got {wait_samples}")
    w = np.eye(a1.shape[0]) if weight is None else ensure_matrix(
        weight, "weight", rows=a1.shape[0], cols=a1.shape[0]
    )
    cost = 0.0
    x = x0.copy()
    for _ in range(wait_samples):
        cost += float(x @ w @ x)
        x = a1 @ x
    p_tail = solve_dlyap(a2, w)
    return cost + float(x @ p_tail @ x)


def waiting_penalty(
    a1: np.ndarray,
    a2: np.ndarray,
    x0: np.ndarray,
    wait_samples: int,
    weight: Optional[np.ndarray] = None,
) -> float:
    """Extra quadratic cost incurred by waiting instead of switching now.

    ``switched_cost(kwait) - switched_cost(0)``; positive whenever ET
    communication degrades the transient (the common case).
    """
    return switched_cost(a1, a2, x0, wait_samples, weight) - switched_cost(
        a1, a2, x0, 0, weight
    )


__all__ = [
    "LyapunovError",
    "autonomous_cost",
    "solve_dlyap",
    "switched_cost",
    "waiting_penalty",
]
