"""Control-theory substrate: LTI models, discretisation, LQR, plants.

This package provides everything the paper's Section II-B relies on:
plant modelling (Eq. 1), exact ZOH discretisation with sensor-to-actuator
delay, optimal state-feedback design for the ET and TT communication
modes, a plant zoo, disturbance processes, and transient analysis.
"""

from repro.control.analysis import (
    SettlingError,
    TransientProfile,
    norm_trajectory,
    settle_index,
    settling_time,
    transient_profile,
)
from repro.control.controller import (
    ModeController,
    SwitchedApplication,
    design_mode_controller,
    design_switched_application,
)
from repro.control.cost import (
    LyapunovError,
    autonomous_cost,
    solve_dlyap,
    switched_cost,
    waiting_penalty,
)
from repro.control.dare import LqrResult, RiccatiError, dlqr, solve_dare, solve_dare_iterative
from repro.control.observer import (
    LuenbergerObserver,
    ObserverDesignError,
    design_observer_lqe,
    design_observer_poles,
)
from repro.control.pole_placement import (
    PolePlacementError,
    design_mode_controller_poles,
    place_gain,
)
from repro.control.discretization import discretize, discretize_with_delay, zoh_integrals
from repro.control.disturbance import (
    DisturbanceEvent,
    DisturbanceProcess,
    OneShotDisturbance,
    PeriodicDisturbance,
    SporadicDisturbance,
    validate_deadline_against_arrivals,
)
from repro.control.lti import (
    AugmentedStateSpace,
    ContinuousStateSpace,
    DelayedStateSpace,
    simulate_autonomous,
)
from repro.control.plants import (
    CASE_STUDY_PLANTS,
    PLANT_REGISTRY,
    PlantDefinition,
    make_plant,
    servo_rig,
)

__all__ = [
    "AugmentedStateSpace",
    "CASE_STUDY_PLANTS",
    "ContinuousStateSpace",
    "DelayedStateSpace",
    "DisturbanceEvent",
    "DisturbanceProcess",
    "LqrResult",
    "LuenbergerObserver",
    "LyapunovError",
    "ModeController",
    "ObserverDesignError",
    "design_observer_lqe",
    "design_observer_poles",
    "OneShotDisturbance",
    "PolePlacementError",
    "PLANT_REGISTRY",
    "PeriodicDisturbance",
    "PlantDefinition",
    "RiccatiError",
    "SettlingError",
    "SporadicDisturbance",
    "SwitchedApplication",
    "TransientProfile",
    "autonomous_cost",
    "design_mode_controller",
    "design_mode_controller_poles",
    "design_switched_application",
    "discretize",
    "place_gain",
    "solve_dlyap",
    "switched_cost",
    "waiting_penalty",
    "discretize_with_delay",
    "dlqr",
    "make_plant",
    "norm_trajectory",
    "servo_rig",
    "settle_index",
    "settling_time",
    "simulate_autonomous",
    "solve_dare",
    "solve_dare_iterative",
    "transient_profile",
    "validate_deadline_against_arrivals",
    "zoh_integrals",
]
