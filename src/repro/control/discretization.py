"""Zero-order-hold discretisation with intra-sample input delay.

Implements the classic Åström–Wittenmark construction used implicitly by
the paper's Eq. 1: sampling period ``h``, sensor-to-actuator delay
``d in [0, h]``, input held by a zero-order hold.  Over one sampling
interval the previous input ``u[k-1]`` is still applied during
``[t_k, t_k + d)`` and the new input ``u[k]`` during ``[t_k + d, t_{k+1})``,
which yields::

    Phi    = e^{A h}
    Gamma1 = e^{A (h - d)} * Integral_0^d e^{A s} ds * B      (old input)
    Gamma0 =                 Integral_0^{h-d} e^{A s} ds * B  (new input)

All matrix integrals are evaluated exactly with a single block-matrix
exponential (Van Loan's method), so the result is exact for LTI plants —
no Euler approximation anywhere.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

from repro.control.lti import ContinuousStateSpace, DelayedStateSpace
from repro.utils.validation import check_in_range, check_positive


def zoh_integrals(a: np.ndarray, b: np.ndarray, tau: float):
    """Exact ``(e^{A tau}, Integral_0^tau e^{A s} ds B)`` via Van Loan.

    Builds the block matrix ``[[A, B], [0, 0]]``, exponentiates it, and
    reads off the two blocks.  Works for singular ``A`` (e.g. integrator
    chains), unlike formulas involving ``A^{-1}``.
    """
    n, m = b.shape
    if tau < 0:
        raise ValueError(f"tau must be non-negative, got {tau}")
    block = np.zeros((n + m, n + m))
    block[:n, :n] = a
    block[:n, n:] = b
    exp_block = expm(block * tau)
    return exp_block[:n, :n], exp_block[:n, n:]


def discretize(plant: ContinuousStateSpace, period: float) -> DelayedStateSpace:
    """Standard delay-free ZOH discretisation (``Gamma1 = 0``)."""
    return discretize_with_delay(plant, period=period, delay=0.0)


def discretize_with_delay(
    plant: ContinuousStateSpace, period: float, delay: float
) -> DelayedStateSpace:
    """Discretise ``plant`` with sampling period ``h`` and input delay ``d``.

    Parameters
    ----------
    plant:
        Continuous-time model.
    period:
        Sampling period ``h`` (seconds).
    delay:
        Sensor-to-actuator delay ``d`` (seconds), ``0 <= d <= h``.  The paper
        uses ``d ~ 0`` for TT communication and the worst-case bus delay
        (up to ``h``) for ET communication.

    Returns
    -------
    DelayedStateSpace
        The discrete model ``(Phi, Gamma0, Gamma1, C)`` of paper Eq. 1.
    """
    period = check_positive(period, "period")
    delay = check_in_range(delay, "delay", low=0.0, high=period)

    phi, gamma_full = zoh_integrals(plant.a, plant.b, period)
    if delay == 0.0:
        gamma0 = gamma_full
        gamma1 = np.zeros_like(gamma_full)
    elif delay == period:
        gamma0 = np.zeros_like(gamma_full)
        gamma1 = gamma_full
    else:
        # Gamma0 integrates the new input over the trailing (h - d) of the
        # interval; Gamma1 is what remains of the full-interval integral
        # after propagating the leading d-portion forward by (h - d).
        phi_lead, gamma_lead = zoh_integrals(plant.a, plant.b, delay)
        exp_trail, gamma0 = zoh_integrals(plant.a, plant.b, period - delay)
        gamma1 = exp_trail @ gamma_lead
        # Consistency: Phi = exp_trail @ phi_lead and
        # gamma_full = gamma1 + gamma0 must hold up to rounding.
        del phi_lead
    return DelayedStateSpace(
        phi=phi,
        gamma0=gamma0,
        gamma1=gamma1,
        c=plant.c,
        period=period,
        delay=delay,
        name=plant.name,
    )


__all__ = ["discretize", "discretize_with_delay", "zoh_integrals"]
