"""Continuous- and discrete-time LTI state-space models.

The paper's plant model (Eq. 1) is a discrete-time LTI system with a
one-step split of the input influence::

    x[k+1] = Phi x[k] + Gamma0 u[k] + Gamma1 u[k-1]
    y[k]   = C x[k]

:class:`DelayedStateSpace` represents exactly this form; it is produced
from a :class:`ContinuousStateSpace` by
:func:`repro.control.discretization.discretize_with_delay`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.linalg import is_schur_stable, spectral_radius
from repro.utils.validation import check_vector, ensure_matrix


@dataclass(frozen=True)
class ContinuousStateSpace:
    """Continuous-time LTI model ``dx/dt = A x + B u``, ``y = C x``.

    Attributes
    ----------
    a:
        State matrix of shape ``(n, n)``.
    b:
        Input matrix of shape ``(n, m)``.
    c:
        Output matrix of shape ``(p, n)``; defaults to identity (full state
        output) when omitted.
    name:
        Optional human-readable plant name, used in reports.
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray = None
    name: str = ""

    def __post_init__(self):
        a = ensure_matrix(self.a, "a")
        if a.shape[0] != a.shape[1]:
            raise ValueError(f"a must be square, got shape {a.shape}")
        b = ensure_matrix(self.b, "b", rows=a.shape[0])
        c = self.c
        if c is None:
            c = np.eye(a.shape[0])
        c = ensure_matrix(c, "c", cols=a.shape[0])
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "c", c)

    @property
    def n_states(self) -> int:
        return self.a.shape[0]

    @property
    def n_inputs(self) -> int:
        return self.b.shape[1]

    @property
    def n_outputs(self) -> int:
        return self.c.shape[0]

    def is_stable(self) -> bool:
        """Whether all eigenvalues of ``A`` have negative real part."""
        return bool(np.all(np.linalg.eigvals(self.a).real < 0))


@dataclass(frozen=True)
class DelayedStateSpace:
    """Discrete-time plant with intra-sample input delay (paper Eq. 1).

    ``x[k+1] = phi x[k] + gamma0 u[k] + gamma1 u[k-1]``, ``y[k] = c x[k]``.

    ``gamma0`` carries the part of the input applied *within* the current
    sampling interval (after the sensor-to-actuator delay ``d``), while
    ``gamma1`` carries the leftover influence of the previous input that is
    still held during ``[t_k, t_k + d)``.

    Attributes
    ----------
    phi, gamma0, gamma1, c:
        System matrices.
    period:
        Sampling period ``h`` in seconds.
    delay:
        Sensor-to-actuator delay ``d`` in seconds, with ``0 <= d <= h``.
    name:
        Optional plant name carried over from the continuous model.
    """

    phi: np.ndarray
    gamma0: np.ndarray
    gamma1: np.ndarray
    c: np.ndarray
    period: float
    delay: float = 0.0
    name: str = ""

    def __post_init__(self):
        phi = ensure_matrix(self.phi, "phi")
        n = phi.shape[0]
        if phi.shape[0] != phi.shape[1]:
            raise ValueError(f"phi must be square, got shape {phi.shape}")
        gamma0 = ensure_matrix(self.gamma0, "gamma0", rows=n)
        gamma1 = ensure_matrix(self.gamma1, "gamma1", rows=n, cols=gamma0.shape[1])
        c = ensure_matrix(self.c, "c", cols=n)
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if not 0.0 <= self.delay <= self.period + 1e-12:
            raise ValueError(
                f"delay must lie in [0, period]; got delay={self.delay}, period={self.period}"
            )
        object.__setattr__(self, "phi", phi)
        object.__setattr__(self, "gamma0", gamma0)
        object.__setattr__(self, "gamma1", gamma1)
        object.__setattr__(self, "c", c)

    @property
    def n_states(self) -> int:
        return self.phi.shape[0]

    @property
    def n_inputs(self) -> int:
        return self.gamma0.shape[1]

    @property
    def n_augmented(self) -> int:
        """Dimension of the augmented state ``[x; u_prev]``."""
        return self.n_states + self.n_inputs

    def augmented(self) -> "AugmentedStateSpace":
        """Lift to the delay-free augmented form ``z[k] = [x[k]; u[k-1]]``.

        ``z[k+1] = A z[k] + B u[k]`` with::

            A = [phi  gamma1]     B = [gamma0]
                [ 0     0   ]         [  I   ]

        State feedback designed on ``(A, B)`` is then a *dynamic* feedback
        ``u[k] = -Kx x[k] - Ku u[k-1]`` on the original plant.
        """
        n, m = self.n_states, self.n_inputs
        a = np.zeros((n + m, n + m))
        a[:n, :n] = self.phi
        a[:n, n:] = self.gamma1
        b = np.zeros((n + m, m))
        b[:n, :] = self.gamma0
        b[n:, :] = np.eye(m)
        return AugmentedStateSpace(a=a, b=b, n_plant_states=n, period=self.period)

    def step(self, x: np.ndarray, u: np.ndarray, u_prev: np.ndarray) -> np.ndarray:
        """Advance the plant one sampling period."""
        x = check_vector(x, "x", size=self.n_states)
        u = check_vector(u, "u", size=self.n_inputs)
        u_prev = check_vector(u_prev, "u_prev", size=self.n_inputs)
        return self.phi @ x + self.gamma0 @ u + self.gamma1 @ u_prev


@dataclass(frozen=True)
class AugmentedStateSpace:
    """Delay-free lifting ``z[k+1] = A z[k] + B u[k]`` of a delayed plant."""

    a: np.ndarray
    b: np.ndarray
    n_plant_states: int
    period: float

    def __post_init__(self):
        a = ensure_matrix(self.a, "a")
        b = ensure_matrix(self.b, "b", rows=a.shape[0])
        if not 0 < self.n_plant_states <= a.shape[0]:
            raise ValueError("n_plant_states must lie in (0, dim(a)]")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)

    @property
    def n_states(self) -> int:
        return self.a.shape[0]

    @property
    def n_inputs(self) -> int:
        return self.b.shape[1]

    def closed_loop(self, gain: np.ndarray) -> np.ndarray:
        """Closed-loop matrix ``A - B K`` for ``u[k] = -K z[k]``."""
        gain = ensure_matrix(gain, "gain", rows=self.n_inputs, cols=self.n_states)
        return self.a - self.b @ gain

    def plant_norm_selector(self) -> np.ndarray:
        """Matrix ``S`` extracting plant states from the augmented state.

        The paper's switching threshold compares ``||x||`` (plant states
        only), not the norm of the lifted state; multiply trajectories by
        this selector before taking norms.
        """
        n = self.n_plant_states
        selector = np.zeros((n, self.n_states))
        selector[:, :n] = np.eye(n)
        return selector


def simulate_autonomous(a: np.ndarray, x0: np.ndarray, steps: int) -> np.ndarray:
    """Trajectory of ``x[k+1] = A x[k]`` for ``k = 0..steps`` inclusive.

    Returns an array of shape ``(steps + 1, n)`` whose first row is ``x0``.
    """
    a = ensure_matrix(a, "a")
    x0 = check_vector(x0, "x0", size=a.shape[0])
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    out = np.empty((steps + 1, a.shape[0]))
    out[0] = x0
    x = x0
    for k in range(steps):
        x = a @ x
        out[k + 1] = x
    return out


__all__ = [
    "AugmentedStateSpace",
    "ContinuousStateSpace",
    "DelayedStateSpace",
    "is_schur_stable",
    "simulate_autonomous",
    "spectral_radius",
]
