"""Transient analysis of closed-loop trajectories.

The central quantity throughout the paper is the *settling time*: the
first instant after which the plant-state norm stays at or below the
threshold ``Eth`` forever.  :func:`settling_time` computes it robustly
for autonomous linear systems by simulating past the last threshold
crossing and verifying the tail is genuinely settled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.control.lti import simulate_autonomous
from repro.utils.linalg import is_schur_stable, spectral_radius, state_norms
from repro.utils.validation import check_positive, check_square, check_vector, ensure_matrix


class SettlingError(RuntimeError):
    """Raised when a trajectory cannot be shown to settle."""


def settle_index(norms: np.ndarray, threshold: float) -> Optional[int]:
    """First index ``k`` with ``norms[j] <= threshold`` for all ``j >= k``.

    Returns ``None`` when the trajectory ends above the threshold (no
    settled tail exists within the data).
    """
    norms = np.asarray(norms, dtype=float)
    threshold = check_positive(threshold, "threshold")
    above = np.flatnonzero(norms > threshold)
    if above.size == 0:
        return 0
    last_above = int(above[-1])
    if last_above == norms.size - 1:
        return None
    return last_above + 1


def settling_time(
    a: np.ndarray,
    x0: np.ndarray,
    threshold: float,
    norm_selector: Optional[np.ndarray] = None,
    period: float = 1.0,
    max_steps: int = 200_000,
    tail_margin: float = 10.0,
) -> float:
    """Settling time of ``x[k+1] = A x[k]`` in seconds.

    Simulates until the selected-state norm has decayed ``tail_margin``
    times below ``threshold`` (doubling the horizon as needed), then finds
    the last sample above the threshold.  Decay that far below ``Eth``,
    combined with Schur stability of ``A``, makes a later re-crossing a
    practical impossibility for the well-damped loops used here, and the
    doubling search would catch it anyway because the settle index is
    recomputed on the extended trajectory.

    Parameters
    ----------
    a:
        Schur-stable autonomous closed-loop matrix.
    x0:
        Initial (augmented) state.
    threshold:
        Threshold ``Eth`` on the selected-state norm.
    norm_selector:
        Optional matrix ``S``; the norm monitored is ``||S x||``
        (used to monitor plant states inside an augmented state).
    period:
        Seconds per step, used to convert the settle index to seconds.
    max_steps:
        Hard cap on the simulated horizon.
    tail_margin:
        How far below threshold the tail must fall before we trust it.

    Raises
    ------
    SettlingError
        If ``A`` is not Schur stable, or the cap is hit before the tail
        decays.
    """
    a = check_square(a, "a")
    x0 = check_vector(x0, "x0", size=a.shape[0])
    threshold = check_positive(threshold, "threshold")
    period = check_positive(period, "period")
    if not is_schur_stable(a):
        raise SettlingError(
            f"closed-loop matrix is not Schur stable (rho={spectral_radius(a):.6f})"
        )
    selector = _selector(norm_selector, a.shape[0])

    steps = 256
    while True:
        trajectory = simulate_autonomous(a, x0, steps)
        norms = state_norms(trajectory @ selector.T)
        tail = norms[-max(1, steps // 8):]
        if np.all(tail <= threshold / tail_margin):
            index = settle_index(norms, threshold)
            if index is None:  # pragma: no cover - excluded by the tail check
                raise SettlingError("tail below threshold but settle index missing")
            return index * period
        if steps >= max_steps:
            raise SettlingError(
                f"trajectory did not settle within {max_steps} steps "
                f"(threshold={threshold}, last norm={norms[-1]:.3e})"
            )
        steps = min(2 * steps, max_steps)


def norm_trajectory(
    a: np.ndarray,
    x0: np.ndarray,
    steps: int,
    norm_selector: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Norm sequence ``||S A^k x0||`` for ``k = 0..steps``."""
    a = check_square(a, "a")
    selector = _selector(norm_selector, a.shape[0])
    trajectory = simulate_autonomous(a, x0, steps)
    return state_norms(trajectory @ selector.T)


@dataclass(frozen=True)
class TransientProfile:
    """Summary of the transient of an autonomous loop from ``x0``.

    Attributes
    ----------
    peak_norm:
        Maximum selected-state norm along the trajectory.
    peak_time:
        Time (seconds) at which the peak occurs.
    settling:
        Settling time (seconds) to the threshold.
    monotone:
        Whether the norm decreased monotonically (no transient growth).
    """

    peak_norm: float
    peak_time: float
    settling: float
    monotone: bool


def transient_profile(
    a: np.ndarray,
    x0: np.ndarray,
    threshold: float,
    norm_selector: Optional[np.ndarray] = None,
    period: float = 1.0,
) -> TransientProfile:
    """Characterise the transient of ``x[k+1] = A x[k]`` from ``x0``.

    A non-monotone profile of the ET loop is the mechanism behind the
    paper's non-monotonic dwell/wait relation (Section III).
    """
    settling = settling_time(
        a, x0, threshold, norm_selector=norm_selector, period=period
    )
    steps = max(int(round(settling / period)) + 1, 8)
    norms = norm_trajectory(a, x0, steps, norm_selector=norm_selector)
    peak_index = int(np.argmax(norms))
    monotone = bool(np.all(np.diff(norms) <= 1e-12))
    return TransientProfile(
        peak_norm=float(norms[peak_index]),
        peak_time=peak_index * period,
        settling=settling,
        monotone=monotone,
    )


def _selector(norm_selector: Optional[np.ndarray], dim: int) -> np.ndarray:
    if norm_selector is None:
        return np.eye(dim)
    return ensure_matrix(norm_selector, "norm_selector", cols=dim)


__all__ = [
    "SettlingError",
    "TransientProfile",
    "norm_trajectory",
    "settle_index",
    "settling_time",
    "transient_profile",
]
