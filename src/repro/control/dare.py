"""Discrete algebraic Riccati equation (DARE) and discrete LQR design.

The paper designs its ET and TT state-feedback controllers "using optimal
control principles" [refs 9, 10]; we provide a discrete LQR with two
interchangeable DARE backends:

* :func:`solve_dare_iterative` — a plain fixed-point (value) iteration of
  the Riccati recursion, self-contained and easy to audit;
* :func:`solve_dare` — delegates to ``scipy.linalg.solve_discrete_are``
  when available and falls back to the iteration otherwise.

Both are cross-checked against each other in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.linalg import is_schur_stable
from repro.utils.validation import check_positive, check_square, ensure_matrix

try:  # pragma: no cover - import guard exercised implicitly
    from scipy.linalg import solve_discrete_are as _scipy_dare
except ImportError:  # pragma: no cover
    _scipy_dare = None


class RiccatiError(RuntimeError):
    """Raised when a DARE solve fails to converge or produce a stabiliser."""


def solve_dare_iterative(
    a: np.ndarray,
    b: np.ndarray,
    q: np.ndarray,
    r: np.ndarray,
    max_iterations: int = 100_000,
    tolerance: float = 1e-12,
) -> np.ndarray:
    """Solve ``P = A'PA - A'PB (R + B'PB)^-1 B'PA + Q`` by value iteration.

    Converges for stabilisable ``(A, B)`` and detectable ``(A, Q^{1/2})``;
    raises :class:`RiccatiError` if the iterate has not settled after
    ``max_iterations`` sweeps.
    """
    a = check_square(a, "a")
    b = ensure_matrix(b, "b", rows=a.shape[0])
    q = check_square(q, "q")
    r = check_square(r, "r")
    _check_weights(a, b, q, r)

    p = q.copy()
    for _ in range(int(check_positive(max_iterations, "max_iterations"))):
        btp = b.T @ p
        gain_term = np.linalg.solve(r + btp @ b, btp @ a)
        p_next = a.T @ p @ a - (a.T @ p @ b) @ gain_term + q
        p_next = 0.5 * (p_next + p_next.T)  # keep symmetric against drift
        if np.max(np.abs(p_next - p)) <= tolerance * max(1.0, np.max(np.abs(p_next))):
            return p_next
        p = p_next
    raise RiccatiError(
        f"DARE value iteration did not converge in {max_iterations} iterations"
    )


def solve_dare(a: np.ndarray, b: np.ndarray, q: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Solve the DARE, preferring the scipy backend, verifying the residual."""
    a = check_square(a, "a")
    b = ensure_matrix(b, "b", rows=a.shape[0])
    q = check_square(q, "q")
    r = check_square(r, "r")
    _check_weights(a, b, q, r)

    if _scipy_dare is not None:
        p = np.asarray(_scipy_dare(a, b, q, r))
        p = 0.5 * (p + p.T)
    else:  # pragma: no cover - scipy is an install requirement
        p = solve_dare_iterative(a, b, q, r)
    residual = dare_residual(a, b, q, r, p)
    if residual > 1e-6 * max(1.0, float(np.max(np.abs(p)))):
        raise RiccatiError(f"DARE residual too large: {residual:.3e}")
    return p


def dare_residual(a, b, q, r, p) -> float:
    """Max-abs residual of the DARE at candidate solution ``P``."""
    btp = np.asarray(b).T @ p
    gain_term = np.linalg.solve(np.asarray(r) + btp @ b, btp @ a)
    lhs = np.asarray(a).T @ p @ a - (np.asarray(a).T @ p @ b) @ gain_term + q
    return float(np.max(np.abs(lhs - p)))


@dataclass(frozen=True)
class LqrResult:
    """Discrete LQR design output.

    Attributes
    ----------
    gain:
        Feedback gain ``K`` for the control law ``u[k] = -K x[k]``.
    cost_matrix:
        Stabilising DARE solution ``P`` (cost-to-go ``x' P x``).
    closed_loop:
        Closed-loop matrix ``A - B K``.
    """

    gain: np.ndarray
    cost_matrix: np.ndarray
    closed_loop: np.ndarray

    def is_stabilizing(self) -> bool:
        return is_schur_stable(self.closed_loop)


def dlqr(a, b, q, r, solver: str = "auto") -> LqrResult:
    """Design a discrete-time LQR ``u[k] = -K x[k]``.

    Parameters
    ----------
    a, b:
        System matrices of ``x[k+1] = A x[k] + B u[k]``.
    q, r:
        State and input cost weights (``Q >= 0``, ``R > 0``).
    solver:
        ``"auto"`` (scipy with residual check), or ``"iterative"`` for the
        self-contained value iteration.

    Raises
    ------
    RiccatiError
        If the DARE cannot be solved or the resulting loop is unstable.
    """
    a = check_square(a, "a")
    b = ensure_matrix(b, "b", rows=a.shape[0])
    if solver == "auto":
        p = solve_dare(a, b, q, r)
    elif solver == "iterative":
        p = solve_dare_iterative(a, b, q, r)
    else:
        raise ValueError(f"unknown solver {solver!r}; use 'auto' or 'iterative'")
    btp = b.T @ p
    gain = np.linalg.solve(np.asarray(r) + btp @ b, btp @ a)
    closed_loop = a - b @ gain
    result = LqrResult(gain=gain, cost_matrix=p, closed_loop=closed_loop)
    if not result.is_stabilizing():
        raise RiccatiError(
            "LQR design produced an unstable closed loop; "
            "check stabilisability of (A, B)"
        )
    return result


def _check_weights(a, b, q, r) -> None:
    if q.shape[0] != a.shape[0]:
        raise ValueError(f"q must match state dimension {a.shape[0]}, got {q.shape}")
    if r.shape[0] != b.shape[1]:
        raise ValueError(f"r must match input dimension {b.shape[1]}, got {r.shape}")
    if np.min(np.linalg.eigvalsh(0.5 * (q + q.T))) < -1e-10:
        raise ValueError("q must be positive semi-definite")
    if np.min(np.linalg.eigvalsh(0.5 * (r + r.T))) <= 0:
        raise ValueError("r must be positive definite")


__all__ = [
    "LqrResult",
    "RiccatiError",
    "dare_residual",
    "dlqr",
    "solve_dare",
    "solve_dare_iterative",
]
