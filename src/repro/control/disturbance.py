"""Disturbance arrival processes.

Section II-C of the paper assumes independent periodic or sporadic
disturbances with a minimum inter-arrival time ``r_i`` and requires the
deadline ``xi_d <= r_i`` so each disturbance is rejected before the next
can arrive.  These generators drive the co-simulation (Figure 5) and the
randomised schedulability experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class DisturbanceEvent:
    """A single disturbance hitting one application at ``time`` seconds."""

    time: float
    magnitude: float = 1.0

    def __post_init__(self):
        check_nonnegative(self.time, "time")
        check_positive(self.magnitude, "magnitude")


class DisturbanceProcess:
    """Base class: iterate to obtain disturbance events in time order."""

    def events_until(self, horizon: float) -> List[DisturbanceEvent]:
        """All events with ``time < horizon``, in increasing time order."""
        out = []
        for event in self:
            if event.time >= horizon:
                break
            out.append(event)
        return out

    def __iter__(self) -> Iterator[DisturbanceEvent]:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class PeriodicDisturbance(DisturbanceProcess):
    """Disturbances at ``offset + k * period`` for ``k = 0, 1, ...``."""

    period: float
    offset: float = 0.0
    magnitude: float = 1.0

    def __post_init__(self):
        check_positive(self.period, "period")
        check_nonnegative(self.offset, "offset")

    @property
    def min_inter_arrival(self) -> float:
        return self.period

    def __iter__(self) -> Iterator[DisturbanceEvent]:
        k = 0
        while True:
            yield DisturbanceEvent(time=self.offset + k * self.period, magnitude=self.magnitude)
            k += 1


@dataclass(frozen=True)
class SporadicDisturbance(DisturbanceProcess):
    """Random arrivals separated by at least ``min_inter_arrival`` seconds.

    Gaps are ``min_inter_arrival + Exponential(mean_extra_gap)``, which
    respects the paper's sporadic model (a *minimum* inter-arrival time
    with otherwise unconstrained arrivals).
    """

    min_inter_arrival: float
    mean_extra_gap: float = 0.0
    offset: float = 0.0
    magnitude: float = 1.0
    seed: int = 0

    def __post_init__(self):
        check_positive(self.min_inter_arrival, "min_inter_arrival")
        check_nonnegative(self.mean_extra_gap, "mean_extra_gap")
        check_nonnegative(self.offset, "offset")

    def __iter__(self) -> Iterator[DisturbanceEvent]:
        rng = np.random.default_rng(self.seed)
        time = self.offset
        while True:
            yield DisturbanceEvent(time=time, magnitude=self.magnitude)
            extra = rng.exponential(self.mean_extra_gap) if self.mean_extra_gap > 0 else 0.0
            time += self.min_inter_arrival + extra


@dataclass(frozen=True)
class OneShotDisturbance(DisturbanceProcess):
    """A single disturbance at ``time`` (Figure 5 uses ``time = 0``)."""

    time: float = 0.0
    magnitude: float = 1.0

    def __iter__(self) -> Iterator[DisturbanceEvent]:
        yield DisturbanceEvent(time=self.time, magnitude=self.magnitude)


def validate_deadline_against_arrivals(deadline: float, min_inter_arrival: float) -> None:
    """Enforce the paper's assumption ``xi_d <= r`` (Sec. II-C).

    Raises
    ------
    ValueError
        If a new disturbance could arrive before the previous one is
        guaranteed rejected.
    """
    deadline = check_positive(deadline, "deadline")
    min_inter_arrival = check_positive(min_inter_arrival, "min_inter_arrival")
    if deadline > min_inter_arrival:
        raise ValueError(
            f"deadline ({deadline}) must not exceed the minimum disturbance "
            f"inter-arrival time ({min_inter_arrival}); the paper's analysis "
            "assumes each disturbance is rejected before the next arrives"
        )


__all__ = [
    "DisturbanceEvent",
    "DisturbanceProcess",
    "OneShotDisturbance",
    "PeriodicDisturbance",
    "SporadicDisturbance",
    "validate_deadline_against_arrivals",
]
