"""Pole-placement design of mode controllers.

The LQR designs in :mod:`repro.control.dare` cannot place closed-loop
poles slower than the expensive-control limit (the stable mirror of any
unstable plant pole).  The paper's measured ET loop is deliberately
low-bandwidth — its response time is ~3x the TT loop's — so the servo
testbed uses explicit pole placement for the ET mode.  This module wraps
``scipy.signal.place_poles`` to produce the same :class:`ModeController`
objects as the LQR path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.signal import place_poles

from repro.control.controller import ModeController
from repro.control.discretization import discretize_with_delay
from repro.control.lti import ContinuousStateSpace
from repro.utils.linalg import is_schur_stable
from repro.utils.validation import check_in_range, check_positive


class PolePlacementError(RuntimeError):
    """Raised when the requested pole set cannot be placed."""


def place_gain(a: np.ndarray, b: np.ndarray, poles: Sequence[complex]) -> np.ndarray:
    """Feedback gain ``K`` so that ``A - B K`` has the requested poles.

    Poles must be conjugate-closed and strictly inside the unit circle.
    """
    poles = np.asarray(poles, dtype=complex)
    if poles.size != np.asarray(a).shape[0]:
        raise PolePlacementError(
            f"need exactly {np.asarray(a).shape[0]} poles, got {poles.size}"
        )
    if np.max(np.abs(poles)) >= 1.0:
        raise PolePlacementError("all placed poles must lie inside the unit circle")
    if not np.allclose(np.sort_complex(poles), np.sort_complex(poles.conj())):
        raise PolePlacementError("pole set must be closed under conjugation")
    try:
        result = place_poles(np.asarray(a, float), np.asarray(b, float), poles)
    except ValueError as exc:
        raise PolePlacementError(f"pole placement failed: {exc}") from exc
    return np.asarray(result.gain_matrix)


def design_mode_controller_poles(
    plant: ContinuousStateSpace,
    period: float,
    delay: float,
    poles: Sequence[complex],
) -> ModeController:
    """Design a mode controller by placing augmented closed-loop poles.

    The plant is discretised with the mode delay, lifted to the augmented
    state ``z = [x; u_prev]``, and a static gain on ``z`` is computed so
    the closed loop has exactly ``poles`` (one pole per augmented state).

    Raises
    ------
    PolePlacementError
        If the poles are infeasible or the resulting loop is not Schur
        stable (numerical failure).
    """
    period = check_positive(period, "period")
    delay = check_in_range(delay, "delay", low=0.0, high=period)
    discrete = discretize_with_delay(plant, period=period, delay=delay)
    augmented = discrete.augmented()
    gain = place_gain(augmented.a, augmented.b, poles)
    closed_loop = augmented.closed_loop(gain)
    if not is_schur_stable(closed_loop):  # pragma: no cover - placement guarantees
        raise PolePlacementError("placed closed loop is not Schur stable")
    return ModeController(plant=discrete, gain=gain, closed_loop=closed_loop)


__all__ = ["PolePlacementError", "design_mode_controller_poles", "place_gain"]
