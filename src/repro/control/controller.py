"""Mode controllers and switched closed-loop construction.

For each control application the paper designs two state-feedback
controllers (Section II-B):

* an **ET controller** for the loop closed over the dynamic segment, which
  must tolerate the worst-case (large, up to one period) sensor-to-actuator
  delay; and
* a **TT controller** for the loop closed over a static slot, where the
  delay is small and deterministic.

Both loops are represented on the *same* augmented state
``z[k] = [x[k]; u[k-1]]`` so the switched trajectory of Section III
(Eqs. 3–4) is a plain product of the two closed-loop matrices ``A1``
(ET) and ``A2`` (TT).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control.dare import LqrResult, dlqr
from repro.control.discretization import discretize_with_delay
from repro.control.lti import ContinuousStateSpace, DelayedStateSpace
from repro.utils.linalg import is_schur_stable
from repro.utils.validation import check_in_range, check_positive, ensure_matrix


@dataclass(frozen=True)
class ModeController:
    """A designed state-feedback controller for one communication mode.

    The control law is ``u[k] = -K z[k]`` on the augmented state
    ``z[k] = [x[k]; u[k-1]]`` (for delay-free modes the trailing block of
    ``K`` is typically ~0, but keeping the shape uniform makes switching
    trivial).

    Attributes
    ----------
    plant:
        The mode-specific discretisation (its ``delay`` distinguishes
        ET from TT).
    gain:
        Augmented feedback gain ``K`` with shape ``(m, n + m)``.
    closed_loop:
        Augmented closed-loop matrix ``A - B K``.
    """

    plant: DelayedStateSpace
    gain: np.ndarray
    closed_loop: np.ndarray

    def __post_init__(self):
        n_aug = self.plant.n_augmented
        gain = ensure_matrix(self.gain, "gain", rows=self.plant.n_inputs, cols=n_aug)
        closed_loop = ensure_matrix(self.closed_loop, "closed_loop", rows=n_aug, cols=n_aug)
        object.__setattr__(self, "gain", gain)
        object.__setattr__(self, "closed_loop", closed_loop)

    def control(self, x: np.ndarray, u_prev: np.ndarray) -> np.ndarray:
        """Compute ``u[k]`` from the current plant state and previous input."""
        z = np.concatenate([np.asarray(x, float).ravel(), np.asarray(u_prev, float).ravel()])
        return -self.gain @ z

    def is_stabilizing(self) -> bool:
        return is_schur_stable(self.closed_loop)


def design_mode_controller(
    plant: ContinuousStateSpace,
    period: float,
    delay: float,
    q: np.ndarray,
    r: np.ndarray,
    input_weight: float = 1e-6,
) -> ModeController:
    """Design an LQR controller for one communication mode.

    The continuous plant is discretised at ``period`` with the mode's
    sensor-to-actuator ``delay``, lifted to the delay-free augmented form,
    and an LQR is designed on the lifted system.  The augmented state cost
    extends ``q`` with a tiny weight ``input_weight`` on the held-input
    component so the lifted ``Q`` stays positive semi-definite without
    distorting the plant-state objective.

    Parameters
    ----------
    plant:
        Continuous-time plant model.
    period:
        Sampling period ``h``.
    delay:
        Mode delay ``d`` (``~0`` for TT, worst-case bus delay for ET).
    q, r:
        LQR weights on the plant state and the input.
    input_weight:
        Weight placed on the ``u[k-1]`` component of the lifted state.
    """
    period = check_positive(period, "period")
    delay = check_in_range(delay, "delay", low=0.0, high=period)
    discrete = discretize_with_delay(plant, period=period, delay=delay)
    augmented = discrete.augmented()
    n, m = discrete.n_states, discrete.n_inputs
    q = ensure_matrix(q, "q", rows=n, cols=n)
    q_aug = np.zeros((n + m, n + m))
    q_aug[:n, :n] = q
    q_aug[n:, n:] = input_weight * np.eye(m)
    design: LqrResult = dlqr(augmented.a, augmented.b, q_aug, r)
    return ModeController(plant=discrete, gain=design.gain, closed_loop=design.closed_loop)


@dataclass(frozen=True)
class SwitchedApplication:
    """A control application with its ET and TT mode loops (paper Sec. II-B).

    Attributes
    ----------
    name:
        Application identifier (e.g. ``"C3"``).
    et:
        ET-mode controller; its closed loop is the paper's ``A1``.
    tt:
        TT-mode controller; its closed loop is the paper's ``A2``.
    threshold:
        Steady-state threshold ``Eth`` on the plant-state norm.
    """

    name: str
    et: ModeController
    tt: ModeController
    threshold: float

    def __post_init__(self):
        if self.et.plant.n_augmented != self.tt.plant.n_augmented:
            raise ValueError("ET and TT loops must share the augmented state dimension")
        if abs(self.et.plant.period - self.tt.plant.period) > 1e-12:
            raise ValueError("ET and TT loops must share the sampling period")
        check_positive(self.threshold, "threshold")

    @property
    def a1(self) -> np.ndarray:
        """ET closed-loop matrix (paper's ``A1``)."""
        return self.et.closed_loop

    @property
    def a2(self) -> np.ndarray:
        """TT closed-loop matrix (paper's ``A2``)."""
        return self.tt.closed_loop

    @property
    def period(self) -> float:
        return self.et.plant.period

    @property
    def n_plant_states(self) -> int:
        return self.et.plant.n_states

    def plant_norm_selector(self) -> np.ndarray:
        """Selector extracting plant states ``x`` from ``z = [x; u_prev]``."""
        return self.et.plant.augmented().plant_norm_selector()

    def initial_state(self, x0: np.ndarray) -> np.ndarray:
        """Augmented initial condition for a disturbance that sets ``x = x0``.

        The held input is zero immediately after a disturbance hits a
        system at rest, matching the paper's experiment (load displaced,
        zero angular velocity, no control history).
        """
        x0 = np.asarray(x0, dtype=float).ravel()
        if x0.size != self.n_plant_states:
            raise ValueError(
                f"x0 must have {self.n_plant_states} entries, got {x0.size}"
            )
        return np.concatenate([x0, np.zeros(self.et.plant.n_inputs)])


def design_switched_application(
    name: str,
    plant: ContinuousStateSpace,
    period: float,
    et_delay: float,
    tt_delay: float,
    q: np.ndarray,
    r: np.ndarray,
    threshold: float,
) -> SwitchedApplication:
    """Design both mode controllers for a plant and bundle them.

    This is the library's main entry point for constructing the switched
    system of paper Section III from a physical plant description.
    """
    if not 0.0 <= tt_delay < et_delay <= period + 1e-12:
        raise ValueError(
            "expected 0 <= tt_delay < et_delay <= period; "
            f"got tt_delay={tt_delay}, et_delay={et_delay}, period={period}"
        )
    et = design_mode_controller(plant, period=period, delay=et_delay, q=q, r=r)
    tt = design_mode_controller(plant, period=period, delay=tt_delay, q=q, r=r)
    return SwitchedApplication(name=name, et=et, tt=tt, threshold=threshold)


__all__ = [
    "ModeController",
    "SwitchedApplication",
    "design_mode_controller",
    "design_switched_application",
]
