"""Library of automotive plant models.

The paper's Figure 2/3 experiment uses a physical servo rig (a rigid
stick with a 300 g end mass mounted on a Harmonic Drive servo motor, held
upright by torque control).  We cannot access that hardware, so
:func:`servo_rig` provides the linearised dynamics of the same mechanical
arrangement; DESIGN.md records the substitution.

The six case-study applications of Section V are not disclosed in the
paper, so :data:`CASE_STUDY_PLANTS` assembles six standard automotive
control plants with comparable dynamic ranges to exercise the full
characterisation pipeline end-to-end.

Every factory returns a :class:`PlantDefinition` bundling the continuous
model with reasonable LQR weights, a canonical disturbance, the
steady-state threshold, and the sampling period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.control.lti import ContinuousStateSpace
from repro.utils.validation import check_positive, check_vector, ensure_matrix


@dataclass(frozen=True)
class PlantDefinition:
    """A plant plus everything needed to characterise it.

    Attributes
    ----------
    model:
        Continuous-time dynamics.
    q, r:
        Default LQR weights for both mode controllers.
    disturbance:
        Canonical post-disturbance plant state ``x0`` (the state the
        disturbance instantaneously pushes the plant to).
    threshold:
        Steady-state threshold ``Eth`` on ``||x||``.
    period:
        Recommended sampling period ``h`` in seconds.
    """

    model: ContinuousStateSpace
    q: np.ndarray
    r: np.ndarray
    disturbance: np.ndarray
    threshold: float
    period: float

    def __post_init__(self):
        n = self.model.n_states
        object.__setattr__(self, "q", ensure_matrix(self.q, "q", rows=n, cols=n))
        object.__setattr__(
            self, "r", ensure_matrix(self.r, "r", rows=self.model.n_inputs, cols=self.model.n_inputs)
        )
        object.__setattr__(self, "disturbance", check_vector(self.disturbance, "disturbance", size=n))
        check_positive(self.threshold, "threshold")
        check_positive(self.period, "period")

    @property
    def name(self) -> str:
        return self.model.name


def servo_rig(
    mass: float = 0.3,
    length: float = 0.2,
    damping: float = 0.012,
    gravity: float = 9.81,
    q_scale: float = 1.0,
    r_scale: float = 1.0,
) -> PlantDefinition:
    """Inverted stick on a servo motor shaft (paper Figure 2).

    Linearised about the upright equilibrium the plant is the unstable
    second-order system::

        d/dt [theta, omega] = [[0, 1], [g/l, -b/J]] [theta, omega] + [0, 1/J] tau

    with ``J = m l^2`` the end-mass inertia.  Defaults use the paper's
    300 g end mass on a 20 cm stick.  The canonical disturbance displaces
    the stick by 45 degrees with zero angular velocity and the threshold
    is the paper's ``Eth = 0.1``; the sampling period is the paper's
    ``h = 20 ms``.
    """
    mass = check_positive(mass, "mass")
    length = check_positive(length, "length")
    inertia = mass * length**2
    a = np.array([[0.0, 1.0], [gravity / length, -damping / inertia]])
    b = np.array([[0.0], [1.0 / inertia]])
    model = ContinuousStateSpace(a=a, b=b, name="servo-rig")
    return PlantDefinition(
        model=model,
        q=q_scale * np.diag([10.0, 0.1]),
        r=r_scale * np.array([[0.08]]),
        disturbance=np.array([np.deg2rad(45.0), 0.0]),
        threshold=0.1,
        period=0.020,
    )


def dc_motor_speed(
    inertia: float = 0.01,
    damping: float = 0.1,
    torque_constant: float = 0.05,
    resistance: float = 1.0,
    inductance: float = 0.5,
) -> PlantDefinition:
    """DC-motor speed control (states: shaft speed, armature current)."""
    a = np.array(
        [
            [-damping / inertia, torque_constant / inertia],
            [-torque_constant / inductance, -resistance / inductance],
        ]
    )
    b = np.array([[0.0], [1.0 / inductance]])
    model = ContinuousStateSpace(a=a, b=b, name="dc-motor-speed")
    return PlantDefinition(
        model=model,
        q=np.diag([5.0, 0.05]),
        r=np.array([[0.5]]),
        disturbance=np.array([1.0, 0.0]),
        threshold=0.05,
        period=0.020,
    )


def cruise_control(mass: float = 1200.0, drag: float = 60.0) -> PlantDefinition:
    """Vehicle longitudinal speed regulation (single state: speed error)."""
    a = np.array([[-drag / mass]])
    b = np.array([[1.0 / mass]])
    model = ContinuousStateSpace(a=a, b=b, name="cruise-control")
    return PlantDefinition(
        model=model,
        q=np.array([[2.0]]),
        r=np.array([[1e-5]]),
        disturbance=np.array([1.5]),
        threshold=0.05,
        period=0.020,
    )


def active_suspension(
    sprung_mass: float = 300.0,
    unsprung_mass: float = 40.0,
    spring: float = 16_000.0,
    tire_spring: float = 160_000.0,
    damper: float = 1_000.0,
) -> PlantDefinition:
    """Quarter-car active suspension with an actuator force input.

    States: sprung-mass displacement/velocity, unsprung-mass
    displacement/velocity (displacements relative to equilibrium).
    """
    ms, mu = sprung_mass, unsprung_mass
    ks, kt, bs = spring, tire_spring, damper
    a = np.array(
        [
            [0.0, 1.0, 0.0, 0.0],
            [-ks / ms, -bs / ms, ks / ms, bs / ms],
            [0.0, 0.0, 0.0, 1.0],
            [ks / mu, bs / mu, -(ks + kt) / mu, -bs / mu],
        ]
    )
    b = np.array([[0.0], [1.0 / ms], [0.0], [-1.0 / mu]])
    model = ContinuousStateSpace(a=a, b=b, name="active-suspension")
    return PlantDefinition(
        model=model,
        q=np.diag([4_000.0, 20.0, 80.0, 2.0]),
        r=np.array([[1e-6]]),
        disturbance=np.array([0.05, 0.0, 0.02, 0.0]),
        threshold=0.005,
        period=0.020,
    )


def electric_power_steering(
    inertia: float = 0.04,
    damping: float = 0.3,
    stiffness: float = 2.0,
) -> PlantDefinition:
    """Steering-column angle tracking with assist-torque input."""
    a = np.array([[0.0, 1.0], [-stiffness / inertia, -damping / inertia]])
    b = np.array([[0.0], [1.0 / inertia]])
    model = ContinuousStateSpace(a=a, b=b, name="electric-power-steering")
    return PlantDefinition(
        model=model,
        q=np.diag([8.0, 0.2]),
        r=np.array([[0.1]]),
        disturbance=np.array([0.5, 0.0]),
        threshold=0.05,
        period=0.020,
    )


def throttle_by_wire(
    inertia: float = 0.002,
    damping: float = 0.03,
    return_spring: float = 0.4,
) -> PlantDefinition:
    """Electronic throttle plate positioning against a return spring."""
    a = np.array([[0.0, 1.0], [-return_spring / inertia, -damping / inertia]])
    b = np.array([[0.0], [1.0 / inertia]])
    model = ContinuousStateSpace(a=a, b=b, name="throttle-by-wire")
    return PlantDefinition(
        model=model,
        q=np.diag([6.0, 0.05]),
        r=np.array([[0.4]]),
        disturbance=np.array([0.8, 0.0]),
        threshold=0.08,
        period=0.020,
    )


def lateral_dynamics(
    mass: float = 1500.0,
    yaw_inertia: float = 2500.0,
    front_stiffness: float = 80_000.0,
    rear_stiffness: float = 80_000.0,
    front_axle: float = 1.2,
    rear_axle: float = 1.5,
    speed: float = 25.0,
) -> PlantDefinition:
    """Single-track (bicycle) lateral vehicle model with steering input.

    States: lateral velocity and yaw rate; input: front steering angle.
    Used as a lane-keeping substrate plant.
    """
    cf, cr, lf, lr = front_stiffness, rear_stiffness, front_axle, rear_axle
    m, iz, v = mass, yaw_inertia, speed
    a = np.array(
        [
            [-(cf + cr) / (m * v), (cr * lr - cf * lf) / (m * v) - v],
            [(cr * lr - cf * lf) / (iz * v), -(cf * lf**2 + cr * lr**2) / (iz * v)],
        ]
    )
    b = np.array([[cf / m], [cf * lf / iz]])
    model = ContinuousStateSpace(a=a, b=b, name="lateral-dynamics")
    return PlantDefinition(
        model=model,
        q=np.diag([0.5, 4.0]),
        r=np.array([[8.0]]),
        disturbance=np.array([0.8, 0.3]),
        threshold=0.05,
        period=0.020,
    )


def engine_idle_speed(
    inertia: float = 0.2,
    damping: float = 0.9,
    torque_lag: float = 0.15,
) -> PlantDefinition:
    """Engine idle-speed regulation with intake-torque lag.

    States: engine-speed error and delivered torque (first-order lag on
    the commanded torque); input: torque command.
    """
    a = np.array(
        [
            [-damping / inertia, 1.0 / inertia],
            [0.0, -1.0 / torque_lag],
        ]
    )
    b = np.array([[0.0], [1.0 / torque_lag]])
    model = ContinuousStateSpace(a=a, b=b, name="engine-idle-speed")
    return PlantDefinition(
        model=model,
        q=np.diag([3.0, 0.02]),
        r=np.array([[0.2]]),
        disturbance=np.array([5.0, 0.0]),
        threshold=0.5,
        period=0.020,
    )


def motor_current_loop(
    resistance: float = 0.05,
    inductance: float = 0.005,
) -> PlantDefinition:
    """PM-motor q-axis current regulation (``di/dt = (-R i + u) / L``).

    The one fast loop in the zoo: a low-resistance machine barely damps
    its own current (open-loop pole at ``-R/L = -10``), so tight
    regulation falls entirely on the controller, which samples at
    ``h = 2 ms`` — an order of magnitude faster than the 20 ms chassis
    loops.  That makes it the canonical *multi-rate* companion
    application.  State: current error; input: drive voltage.
    """
    a = np.array([[-resistance / inductance]])
    b = np.array([[1.0 / inductance]])
    model = ContinuousStateSpace(a=a, b=b, name="motor-current-loop")
    return PlantDefinition(
        model=model,
        q=np.array([[50.0]]),
        r=np.array([[0.01]]),
        disturbance=np.array([1.0]),
        threshold=0.02,
        period=0.002,
    )


def wiper_positioning(
    inertia: float = 0.015,
    damping: float = 0.12,
    linkage_stiffness: float = 1.2,
) -> PlantDefinition:
    """Windshield-wiper arm positioning through a compliant linkage."""
    a = np.array(
        [[0.0, 1.0], [-linkage_stiffness / inertia, -damping / inertia]]
    )
    b = np.array([[0.0], [1.0 / inertia]])
    model = ContinuousStateSpace(a=a, b=b, name="wiper-positioning")
    return PlantDefinition(
        model=model,
        q=np.diag([5.0, 0.1]),
        r=np.array([[0.3]]),
        disturbance=np.array([0.6, 0.0]),
        threshold=0.06,
        period=0.020,
    )


PLANT_REGISTRY: Dict[str, Callable[[], PlantDefinition]] = {
    "servo-rig": servo_rig,
    "dc-motor-speed": dc_motor_speed,
    "cruise-control": cruise_control,
    "active-suspension": active_suspension,
    "electric-power-steering": electric_power_steering,
    "throttle-by-wire": throttle_by_wire,
    "lateral-dynamics": lateral_dynamics,
    "engine-idle-speed": engine_idle_speed,
    "motor-current-loop": motor_current_loop,
    "wiper-positioning": wiper_positioning,
}
"""All plant factories by name."""


CASE_STUDY_PLANTS = (
    "servo-rig",
    "dc-motor-speed",
    "active-suspension",
    "electric-power-steering",
    "throttle-by-wire",
    "lateral-dynamics",
)
"""The six plants used for the simulation-mode case study (paper Sec. V)."""


def make_plant(name: str) -> PlantDefinition:
    """Instantiate a registered plant by name."""
    try:
        factory = PLANT_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(PLANT_REGISTRY))
        raise KeyError(f"unknown plant {name!r}; known plants: {known}") from None
    return factory()


__all__ = [
    "CASE_STUDY_PLANTS",
    "PLANT_REGISTRY",
    "PlantDefinition",
    "active_suspension",
    "cruise_control",
    "dc_motor_speed",
    "electric_power_steering",
    "engine_idle_speed",
    "lateral_dynamics",
    "make_plant",
    "motor_current_loop",
    "servo_rig",
    "throttle_by_wire",
    "wiper_positioning",
]
