"""Command-line interface: regenerate any paper artefact from a shell.

Usage::

    python -m repro fig3 [--wait-step N]
    python -m repro fig4
    python -m repro table1 [--paper-only]
    python -m repro allocation [--simulated]
    python -m repro fig5 [--plots] [--analytic]
    python -m repro ablations [--which segments|fixed-point|threshold|all]
    python -m repro validate [--seeds N]
    python -m repro sensitivity [--scales 0.5 1.0 2.0]
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.sensitivity import deadline_sensitivity
from repro.core.timing_params import PAPER_TABLE_I
from repro.experiments import (
    run_bound_validation,
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fixed_point_ablation,
    run_jitter_ablation,
    run_paper_allocation,
    run_pure_et_baseline,
    run_segment_ablation,
    run_simulation_allocation,
    run_table1,
    run_threshold_sweep,
)
from repro.experiments.reporting import format_table


def _cmd_fig1(args) -> str:
    return run_fig1().report()


def _cmd_fig3(args) -> str:
    return run_fig3(wait_step=args.wait_step).report()


def _cmd_fig4(args) -> str:
    return run_fig4(wait_step=args.wait_step).report()


def _cmd_table1(args) -> str:
    result = run_table1(
        include_simulation=not args.paper_only, wait_step=args.wait_step
    )
    return result.report() if not args.paper_only else result.paper_report()


def _cmd_allocation(args) -> str:
    out = [run_paper_allocation().report()]
    if args.simulated:
        out.append(run_simulation_allocation(wait_step=args.wait_step).report())
    return "\n\n".join(out)


def _cmd_fig5(args) -> str:
    result = run_fig5(use_flexray=not args.analytic, wait_step=args.wait_step)
    return result.report(plots=args.plots)


def _cmd_ablations(args) -> str:
    out = []
    if args.which in ("segments", "all"):
        out.append(run_segment_ablation(wait_step=args.wait_step).report())
    if args.which in ("fixed-point", "all"):
        out.append(run_fixed_point_ablation().report())
    if args.which in ("threshold", "all"):
        out.append(run_threshold_sweep().report())
    if args.which in ("jitter", "all"):
        out.append(run_jitter_ablation(wait_step=args.wait_step).report())
    return "\n\n".join(out)


def _cmd_validate(args) -> str:
    bound = run_bound_validation(seeds=args.seeds, wait_step=args.wait_step)
    pure = run_pure_et_baseline(wait_step=args.wait_step)
    return bound.report() + "\n\n" + pure.report()


def _cmd_sensitivity(args) -> str:
    points = deadline_sensitivity(PAPER_TABLE_I, args.scales)
    rows = [
        [
            p.scale,
            p.slots_non_monotonic if p.slots_non_monotonic is not None else "infeasible",
            p.slots_monotonic if p.slots_monotonic is not None else "infeasible",
        ]
        for p in points
    ]
    return "Deadline-tightness sensitivity (paper Table I)\n" + format_table(
        ["scale", "slots (non-monotonic)", "slots (monotonic)"], rows
    )


def _cmd_all(args) -> str:
    """Regenerate every artefact in one pass (paper-exact parts first)."""
    sections = [
        _cmd_allocation(args),
        _cmd_table1(args),
        _cmd_fig1(args),
        _cmd_fig3(args),
        _cmd_fig4(args),
        _cmd_fig5(args),
        _cmd_ablations(args),
        _cmd_validate(args),
        _cmd_sensitivity(args),
    ]
    rule = "\n" + "=" * 72 + "\n"
    return rule.join(sections)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts of the DATE 2019 CPS resource paper.",
    )
    parser.add_argument(
        "--wait-step",
        type=int,
        default=2,
        help="dwell-sweep stride in samples (higher = faster, coarser)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig1", help="Figure 1: scheme state-machine demonstration")
    sub.add_parser("fig3", help="Figure 3: dwell/wait relation on the servo rig")
    sub.add_parser("fig4", help="Figure 4: PWL dwell models")

    p_table = sub.add_parser("table1", help="Table I timing parameters")
    p_table.add_argument("--paper-only", action="store_true")

    p_alloc = sub.add_parser("allocation", help="Section V slot allocation")
    p_alloc.add_argument("--simulated", action="store_true")

    p_fig5 = sub.add_parser("fig5", help="Figure 5 co-simulation")
    p_fig5.add_argument("--plots", action="store_true")
    p_fig5.add_argument("--analytic", action="store_true")

    p_abl = sub.add_parser("ablations", help="E6-E8 ablations")
    p_abl.add_argument(
        "--which",
        choices=["segments", "fixed-point", "threshold", "jitter", "all"],
        default="all",
    )

    p_val = sub.add_parser("validate", help="E9-E10 soundness validation")
    p_val.add_argument("--seeds", type=int, default=5)

    p_sens = sub.add_parser("sensitivity", help="deadline-tightness sweep")
    p_sens.add_argument(
        "--scales", type=float, nargs="+", default=[0.5, 0.75, 1.0, 1.5, 2.0]
    )

    p_all = sub.add_parser("all", help="regenerate every artefact in one pass")
    p_all.add_argument("--paper-only", action="store_true")
    p_all.add_argument("--simulated", action="store_true")
    p_all.add_argument("--plots", action="store_true")
    p_all.add_argument("--analytic", action="store_true")
    p_all.add_argument("--which", default="all")
    p_all.add_argument("--seeds", type=int, default=3)
    p_all.add_argument(
        "--scales", type=float, nargs="+", default=[0.5, 0.75, 1.0, 1.5, 2.0]
    )

    return parser


_COMMANDS = {
    "fig1": _cmd_fig1,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "table1": _cmd_table1,
    "allocation": _cmd_allocation,
    "fig5": _cmd_fig5,
    "ablations": _cmd_ablations,
    "validate": _cmd_validate,
    "sensitivity": _cmd_sensitivity,
    "all": _cmd_all,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    print(_COMMANDS[args.command](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
