"""Command-line interface: regenerate any paper artefact from a shell.

Usage::

    python -m repro fig3 [--wait-step N] [--json]
    python -m repro fig4
    python -m repro table1 [--paper-only]
    python -m repro allocation [--simulated]
    python -m repro fig5 [--plots] [--analytic]
    python -m repro ablations [--which segments|fixed-point|threshold|all]
    python -m repro validate [--seeds N]
    python -m repro sensitivity [--scales 0.5 1.0 2.0]
    python -m repro study [--scenario NAME ...] [--grid] [--jobs N] [--seed N]
    python -m repro sweep [--scenario NAME] [--axis FIELD=V1,V2] [--replications N]
                          [--ci-target HW [--ci-relative] --max-replications N --budget N]
                          [--fabric N [--worker-mode process] [--resume]
                           [--chaos-profile P --chaos-seed N]]
    python -m repro worker --connect HOST:PORT [--id NAME]
                           [--chaos-profile P --chaos-seed N]
    python -m repro serve [--host H] [--port P] [--pool-size N]
    python -m repro solvers
    python -m repro networks
    python -m repro lint [paths ...] [--rule ID] [--json]

Every command accepts ``--json`` to emit machine-readable results
instead of ASCII reports; ``study`` runs declarative
:mod:`repro.pipeline` scenarios and prints
:class:`~repro.pipeline.result.StudyResult` documents that round-trip
through ``StudyResult.from_json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.sensitivity import deadline_sensitivity
from repro.core.timing_params import PAPER_TABLE_I
from repro.experiments import (
    run_bound_validation,
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fixed_point_ablation,
    run_jitter_ablation,
    run_kernel_ablation,
    run_paper_allocation,
    run_pure_et_baseline,
    run_segment_ablation,
    run_simulation_allocation,
    run_table1,
    run_threshold_sweep,
)
from repro.experiments.reporting import format_table
from repro.fabric.resilience import CHAOS_PROFILES as _CHAOS_PROFILES
from repro.pipeline.scenario import KERNELS
from repro.pipeline.serialize import to_jsonable

# Each command handler returns ``(text, data)``: the classic ASCII report
# and a structure for ``--json`` (serialised via ``to_jsonable``).


def _wait_step(args) -> int:
    """Effective dwell-sweep stride (flag left unset means 2)."""
    return 2 if args.wait_step is None else args.wait_step


def _cmd_fig1(args):
    result = run_fig1()
    return result.report(), result


def _cmd_fig3(args):
    result = run_fig3(wait_step=_wait_step(args))
    return result.report(), result


def _cmd_fig4(args):
    result = run_fig4(wait_step=_wait_step(args))
    return result.report(), result


def _cmd_table1(args):
    result = run_table1(
        include_simulation=not args.paper_only, wait_step=_wait_step(args)
    )
    text = result.paper_report() if args.paper_only else result.report()
    return text, result


def _cmd_allocation(args):
    paper = run_paper_allocation()
    texts = [paper.report()]
    data = {"paper": paper, "simulated": None}
    if args.simulated:
        simulated = run_simulation_allocation(wait_step=_wait_step(args))
        texts.append(simulated.report())
        data["simulated"] = simulated
    return "\n\n".join(texts), data


def _cmd_fig5(args):
    result = run_fig5(
        use_flexray=not args.analytic,
        wait_step=_wait_step(args),
        kernel=getattr(args, "kernel", "auto"),
    )
    data = {
        "slot_names": result.slot_names,
        "all_deadlines_met": result.all_deadlines_met(),
        "summary": result.trace.summary_rows(),
    }
    return result.report(plots=args.plots), data


def _cmd_ablations(args):
    texts = []
    data = {}
    if args.which in ("segments", "all"):
        data["segments"] = run_segment_ablation(wait_step=_wait_step(args))
        texts.append(data["segments"].report())
    if args.which in ("fixed-point", "all"):
        data["fixed_point"] = run_fixed_point_ablation()
        texts.append(data["fixed_point"].report())
    if args.which in ("threshold", "all"):
        data["threshold"] = run_threshold_sweep()
        texts.append(data["threshold"].report())
    if args.which in ("jitter", "all"):
        data["jitter"] = run_jitter_ablation(wait_step=_wait_step(args))
        texts.append(data["jitter"].report())
    if args.which in ("kernel", "all"):
        data["kernel"] = run_kernel_ablation(wait_step=_wait_step(args))
        texts.append(data["kernel"].report())
        data["kernel_flexray"] = run_kernel_ablation(
            wait_step=_wait_step(args), scenario="fig5-cosim"
        )
        texts.append(data["kernel_flexray"].report())
    return "\n\n".join(texts), data


def _cmd_validate(args):
    bound = run_bound_validation(seeds=args.seeds, wait_step=_wait_step(args))
    pure = run_pure_et_baseline(wait_step=_wait_step(args))
    data = {"bound_validation": bound, "pure_et_baseline": pure}
    return bound.report() + "\n\n" + pure.report(), data


def _cmd_sensitivity(args):
    points = deadline_sensitivity(PAPER_TABLE_I, args.scales)
    rows = [
        [
            p.scale,
            p.slots_non_monotonic if p.slots_non_monotonic is not None else "infeasible",
            p.slots_monotonic if p.slots_monotonic is not None else "infeasible",
        ]
        for p in points
    ]
    text = "Deadline-tightness sensitivity (paper Table I)\n" + format_table(
        ["scale", "slots (non-monotonic)", "slots (monotonic)"], rows
    )
    return text, points


def _cmd_study(args):
    from repro.pipeline import get_scenario, run_many, scenario_grid, scenarios

    if args.list:
        registered = scenarios()
        text = "Registered scenarios\n" + format_table(
            ["name", "source", "description"],
            [[s.name, s.source, s.description] for s in registered],
        )
        return text, {s.name: s.to_dict() for s in registered}

    try:
        selected = [
            get_scenario(name) for name in (args.scenario or ["paper-table1"])
        ]
    except KeyError as exc:
        # surface unknown names as a domain error, not a traceback
        raise ValueError(exc.args[0]) from None
    if args.wait_step is not None:
        selected = [
            s.derive(name=s.name, wait_step=_wait_step(args)) for s in selected
        ]
    if args.seed is not None:
        # Reproducible co-simulation from the shell: the seed reaches
        # FlexRayNetwork.loss_seed and the sporadic disturbance streams.
        selected = [s.derive(name=s.name, seed=args.seed) for s in selected]
    if args.grid:
        selected = [point for s in selected for point in scenario_grid(s)]
    results = run_many(selected, max_workers=args.jobs, executor=args.executor)
    text = "\n\n".join(result.summary() for result in results)
    data = results[0].to_dict() if len(results) == 1 else [r.to_dict() for r in results]
    return text, data


def _parse_axis(text: str):
    """``field=v1,v2,...`` with ints/floats/bools parsed, else strings."""
    if "=" not in text:
        raise ValueError(
            f"bad --axis {text!r}; expected FIELD=VALUE[,VALUE...]"
        )
    name, _, raw = text.partition("=")
    values = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        lowered = token.lower()
        if lowered in ("true", "false"):
            values.append(lowered == "true")
            continue
        for kind in (int, float):
            try:
                values.append(kind(token))
                break
            except ValueError:
                continue
        else:
            values.append(token)
    if not values:
        raise ValueError(f"--axis {text!r} has no values")
    return name.strip(), values


def _cmd_sweep(args):
    from repro.pipeline import get_scenario, run_sweep

    try:
        base = get_scenario(args.scenario)
    except KeyError as exc:
        raise ValueError(exc.args[0]) from None
    if args.wait_step is not None:
        base = base.derive(name=base.name, wait_step=_wait_step(args))
    axes = {}
    for text in args.axis or []:
        name, values = _parse_axis(text)
        if name in axes:
            raise ValueError(
                f"--axis {name!r} given twice; put every value in one flag, "
                f"e.g. --axis {name}={','.join(map(str, axes[name] + values))}"
            )
        axes[name] = values
    if args.fabric is not None:
        return _run_fabric_sweep_cmd(args, base, axes)
    if args.resume:
        raise ValueError("--resume needs --fabric (it resumes a fabric JSONL)")
    if args.chaos_profile is not None or args.chaos_seed is not None:
        raise ValueError(
            "--chaos-profile/--chaos-seed need --fabric (chaos storms "
            "exercise the fleet's recovery machinery)"
        )
    result = run_sweep(
        base,
        axes=axes,
        replications=args.replications,
        seed0=args.seed0,
        executor=args.executor,
        max_workers=args.jobs,
        jsonl_path=args.output,
        keep_results=False,
        ci_target=args.ci_target,
        ci_relative=args.ci_relative,
        max_replications=args.max_replications,
        budget=args.budget,
    )
    text = result.report()
    if args.output:
        text += f"\nper-run JSONL streamed to {args.output}"
    return text, result.to_dict()


def _run_fabric_sweep_cmd(args, base, axes):
    """``repro sweep --fabric N``: run the grid on a local worker fleet.

    Bitwise identical to the serial path on the same spec; ``--resume``
    re-reads the ``--output`` JSONL as the done-set, so a killed sweep
    continues where it stopped instead of recomputing landed rows (a
    torn final line — the killed-writer artifact — is recovered and
    reported).  ``--chaos-profile``/``--chaos-seed`` run the fleet
    under a named seeded fault storm; the result must still match the
    serial path bitwise.
    """
    from repro.fabric import run_fabric_sweep

    if args.ci_target is not None or args.budget is not None or args.max_replications is not None:
        raise ValueError(
            "adaptive stopping (--ci-target/--max-replications/--budget) "
            "needs round barriers and runs single-host; drop --fabric or "
            "the adaptive flags"
        )
    if args.fabric < 1:
        raise ValueError(f"--fabric needs at least 1 worker, got {args.fabric}")
    if args.resume and not args.output:
        raise ValueError("--resume needs --output (the JSONL to resume from)")
    if args.chaos_seed is not None and args.chaos_profile is None:
        raise ValueError(
            "--chaos-seed needs --chaos-profile (the storm to seed)"
        )
    result = run_fabric_sweep(
        base,
        axes=axes,
        replications=args.replications,
        seed0=args.seed0,
        workers=args.fabric,
        worker_mode=args.worker_mode,
        lease_timeout=args.lease_timeout,
        max_attempts=args.max_attempts,
        jsonl_path=args.output,
        resume_path=args.output if args.resume else None,
        keep_results=False,
        chaos_seed=args.chaos_seed,
        chaos_profile=args.chaos_profile,
    )
    fabric = result.config.get("fabric", {})
    text = result.report()
    text += (
        f"\nfabric: {args.fabric} {args.worker_mode} worker(s), "
        f"{len(fabric.get('requeues', []))} requeue(s), "
        f"{fabric.get('resumed', 0)} row(s) resumed, "
        f"{fabric.get('recovered_tail', 0)} torn row(s) recovered"
    )
    if args.chaos_profile is not None:
        chaos = fabric.get("chaos", {})
        text += (
            f"\nchaos: profile {chaos.get('profile')} seed {chaos.get('seed')}, "
            f"{fabric.get('protocol_errors', 0)} protocol error(s), "
            f"{fabric.get('read_timeouts', 0)} read timeout(s), "
            f"{fabric.get('duplicates_ignored', 0)} duplicate(s) ignored"
        )
    if args.output:
        text += f"\nper-run JSONL streamed to {args.output}"
    return text, result.to_dict()


def _cmd_worker(args):
    """``repro worker --connect HOST:PORT``: one fabric worker loop."""
    from repro.fabric import FabricWorker, chaos_plan, parse_endpoint

    host, port = parse_endpoint(args.connect)
    if args.chaos_seed is not None and args.chaos_profile is None:
        raise ValueError("--chaos-seed needs --chaos-profile (the storm to seed)")
    fault_plan = None
    if args.chaos_profile is not None:
        fault_plan = chaos_plan(
            args.chaos_profile,
            args.chaos_seed if args.chaos_seed is not None else 0,
            worker_index=args.chaos_index,
            fleet_size=args.chaos_fleet,
        )
    worker = FabricWorker(
        host,
        port,
        worker_id=args.id,
        die_after=args.die_after,
        fault_plan=fault_plan,
    )
    done = worker.run()
    text = f"{worker.worker_id}: {done} job(s) completed"
    data = {
        "worker": worker.worker_id,
        "jobs_done": done,
        "stats": dict(worker.stats),
    }
    return text, data


def _cmd_serve(args):
    """``repro serve``: run the content-addressed design-study service."""
    from repro.fabric import StudyService

    service = StudyService(host=args.host, port=args.port, pool_size=args.pool_size)
    service.start()
    # announce the bound endpoint up-front (port 0 means "pick one"),
    # so scripts can read it before the server blocks
    print(f"study service listening on {service.host}:{service.port}", flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    jobs = {job_id: record.snapshot() for job_id, record in service.jobs.items()}
    return f"study service stopped after {len(jobs)} job(s)", {"jobs": jobs}


def _cmd_lint(args):
    """Static determinism-contract analysis (``repro.qa``).

    Returns a third tuple element — the process exit code — so a dirty
    tree gates CI (0 clean, 1 error findings, 2 usage errors).
    """
    from repro.qa import all_rules, lint_paths, render_text, report_dict, rules_by_id

    rules = list(all_rules())
    if args.rule:
        by_id = rules_by_id()
        unknown = [rule_id for rule_id in args.rule if rule_id not in by_id]
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {', '.join(unknown)}; "
                f"available: {', '.join(sorted(by_id))}"
            )
        rules = [by_id[rule_id] for rule_id in args.rule]
    paths = args.paths or ["src"]
    result = lint_paths(paths, rules=rules)
    return (
        render_text(result),
        report_dict(result, paths, rules),
        result.exit_code,
    )


def _cmd_solvers(args):
    """List registered solver backends with their capability metadata."""
    from repro.solvers import solver_table

    table = solver_table()
    allocator_rows = [
        [
            spec["name"],
            "yes" if spec["optimal"] else "no",
            spec["complexity"],
            "any" if spec["methods"] is None else ",".join(spec["methods"]),
            spec["max_apps"] if spec["max_apps"] is not None else "-",
            "yes" if spec["randomized"] else "no",
            spec["summary"],
        ]
        for spec in table["allocators"]
    ]
    method_rows = [
        [
            spec["name"],
            "yes" if spec["exact"] else "no",
            spec["bound"],
            "yes" if spec["safe"] else "no",
            spec["summary"],
        ]
        for spec in table["analysis_methods"]
    ]
    text = (
        "Registered allocators\n"
        + format_table(
            ["name", "optimal", "complexity", "methods", "max apps", "randomized", "summary"],
            allocator_rows,
        )
        + "\n\nRegistered analysis methods\n"
        + format_table(
            ["name", "exact", "bound", "safe", "summary"], method_rows
        )
    )
    return text, table


def _cmd_networks(args):
    """List registered network backends with their capability metadata."""
    from repro.sim.network import network_table

    table = network_table()
    rows = [
        [
            spec["name"],
            "yes" if spec["deterministic"] else "no",
            "yes" if spec["analytic_delays"] else "no",
            spec["batch"] if spec["batch"] is not None else "-",
            spec["loss"],
            spec["summary"],
        ]
        for spec in table
    ]
    text = "Registered network backends\n" + format_table(
        ["name", "deterministic", "analytic", "batch", "loss", "summary"], rows
    )
    return text, {"networks": table}


def _cmd_all(args):
    """Regenerate every artefact in one pass (paper-exact parts first)."""
    sections = [
        ("allocation", _cmd_allocation),
        ("table1", _cmd_table1),
        ("fig1", _cmd_fig1),
        ("fig3", _cmd_fig3),
        ("fig4", _cmd_fig4),
        ("fig5", _cmd_fig5),
        ("ablations", _cmd_ablations),
        ("validate", _cmd_validate),
        ("sensitivity", _cmd_sensitivity),
    ]
    texts = []
    data = {}
    for name, command in sections:
        text, section_data = command(args)
        texts.append(text)
        data[name] = section_data
    rule = "\n" + "=" * 72 + "\n"
    return rule.join(texts), data


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts of the DATE 2019 CPS resource paper.",
    )
    parser.add_argument(
        "--wait-step",
        type=int,
        default=None,
        help="dwell-sweep stride in samples (higher = faster, coarser)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        default=False,
        help="emit machine-readable JSON instead of ASCII reports",
    )
    # The same flags are accepted after the subcommand (the documented
    # position); SUPPRESS keeps the subparser from clobbering top-level
    # values when the flag is omitted there.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--wait-step", type=int, default=argparse.SUPPRESS)
    common.add_argument("--json", action="store_true", default=argparse.SUPPRESS)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "fig1", parents=[common], help="Figure 1: scheme state-machine demonstration"
    )
    sub.add_parser(
        "fig3", parents=[common], help="Figure 3: dwell/wait relation on the servo rig"
    )
    sub.add_parser("fig4", parents=[common], help="Figure 4: PWL dwell models")

    p_table = sub.add_parser(
        "table1", parents=[common], help="Table I timing parameters"
    )
    p_table.add_argument("--paper-only", action="store_true")

    p_alloc = sub.add_parser(
        "allocation", parents=[common], help="Section V slot allocation"
    )
    p_alloc.add_argument("--simulated", action="store_true")

    p_fig5 = sub.add_parser("fig5", parents=[common], help="Figure 5 co-simulation")
    p_fig5.add_argument("--plots", action="store_true")
    p_fig5.add_argument("--analytic", action="store_true")
    p_fig5.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default="auto",
        help=(
            "co-simulation kernel (auto = batch fast path when the fleet "
            "is capable — analytic network, or loss-free static-slot "
            "FlexRay; traces are identical across kernels)"
        ),
    )

    p_abl = sub.add_parser("ablations", parents=[common], help="E6-E8 ablations")
    p_abl.add_argument(
        "--which",
        choices=["segments", "fixed-point", "threshold", "jitter", "kernel", "all"],
        default="all",
    )

    p_val = sub.add_parser(
        "validate", parents=[common], help="E9-E10 soundness validation"
    )
    p_val.add_argument("--seeds", type=int, default=5)

    p_sens = sub.add_parser(
        "sensitivity", parents=[common], help="deadline-tightness sweep"
    )
    p_sens.add_argument(
        "--scales", type=float, nargs="+", default=[0.5, 0.75, 1.0, 1.5, 2.0]
    )

    p_study = sub.add_parser(
        "study",
        parents=[common],
        help="run declarative pipeline scenarios (see --list)",
    )
    p_study.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="registered scenario name (repeatable; default paper-table1)",
    )
    p_study.add_argument(
        "--grid",
        action="store_true",
        help="expand each scenario into the default sweep grid "
        "(deadline scales x dwell shapes x allocators)",
    )
    p_study.add_argument(
        "--jobs", type=int, default=None, help="parallel workers for the sweep"
    )
    p_study.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="thread",
        help="worker pool kind (process sidesteps the GIL for co-sim grids)",
    )
    p_study.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base random seed (frame loss + sporadic disturbance arrivals)",
    )
    p_study.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )

    p_sweep = sub.add_parser(
        "sweep",
        parents=[common],
        help="seeded Monte-Carlo replication grid over one scenario",
    )
    p_sweep.add_argument(
        "--scenario",
        default="multirate-cosim-analytic",
        metavar="NAME",
        help="base scenario to expand (default multirate-cosim-analytic)",
    )
    p_sweep.add_argument(
        "--axis",
        action="append",
        metavar="FIELD=V1,V2,...",
        help="grid axis over a scenario field (repeatable), "
        "e.g. --axis loss_rate=0,0.05 --axis deadline_scale=1,0.75",
    )
    p_sweep.add_argument(
        "--replications",
        type=int,
        default=3,
        help="seeded repeats per grid cell (default 3); with --ci-target "
        "this is the per-cell minimum before stopping is considered",
    )
    p_sweep.add_argument(
        "--ci-target",
        type=float,
        default=None,
        metavar="HW",
        help="adaptive mode: stop a cell once its QoC 95%% CI half-width "
        "is <= HW and re-grant the freed budget to high-variance cells "
        "(needs --max-replications and/or --budget)",
    )
    p_sweep.add_argument(
        "--ci-relative",
        action="store_true",
        default=False,
        help="interpret --ci-target as a fraction of each cell's |mean| "
        "instead of an absolute half-width",
    )
    p_sweep.add_argument(
        "--max-replications",
        type=int,
        default=None,
        metavar="N",
        help="adaptive mode: per-cell replication ceiling",
    )
    p_sweep.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="adaptive mode: global replication ceiling across all cells",
    )
    p_sweep.add_argument(
        "--seed0", type=int, default=0, help="first replication seed"
    )
    p_sweep.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="thread",
        help="worker pool kind (process recommended for co-sim grids)",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=None, help="parallel workers"
    )
    p_sweep.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="stream one JSON line per finished run to this file",
    )
    p_sweep.add_argument(
        "--fabric",
        type=int,
        default=None,
        metavar="N",
        help="run the grid on a local fleet of N fabric workers "
        "(content-addressed jobs; bitwise identical to the serial path)",
    )
    p_sweep.add_argument(
        "--worker-mode",
        choices=["thread", "process"],
        default="thread",
        help="fabric worker kind (process = real subprocesses over TCP)",
    )
    p_sweep.add_argument(
        "--resume",
        action="store_true",
        default=False,
        help="adopt finished rows from the --output JSONL before "
        "dispatching (worker-failed rows are retried)",
    )
    p_sweep.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        metavar="SEC",
        help="fabric: seconds a leased job may go without result or "
        "heartbeat before re-queueing (default 30)",
    )
    p_sweep.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="fabric: lease attempts per job before it is recorded as a "
        "worker failure (default 3)",
    )
    p_sweep.add_argument(
        "--chaos-profile",
        choices=list(_CHAOS_PROFILES),
        default=None,
        metavar="PROFILE",
        help="fabric: run the fleet under this named seeded fault storm "
        f"({', '.join(_CHAOS_PROFILES)}); the merged result must still "
        "match the serial path bitwise",
    )
    p_sweep.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="N",
        help="fabric: chaos storm seed (default 0); the same seed "
        "reproduces the same fault sequence and recovery counts",
    )

    p_worker = sub.add_parser(
        "worker",
        parents=[common],
        help="fabric worker: lease sweep jobs from a coordinator",
    )
    p_worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator endpoint to lease jobs from",
    )
    p_worker.add_argument(
        "--id", default=None, metavar="NAME", help="worker id (default pid-derived)"
    )
    p_worker.add_argument(
        "--die-after",
        type=int,
        default=None,
        metavar="N",
        help="fault injection: drop the connection when leasing job N+1",
    )
    p_worker.add_argument(
        "--chaos-profile",
        choices=list(_CHAOS_PROFILES),
        default=None,
        metavar="PROFILE",
        help="run this worker's connection under a named seeded fault storm",
    )
    p_worker.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="N",
        help="chaos storm seed (default 0)",
    )
    p_worker.add_argument(
        "--chaos-index",
        type=int,
        default=0,
        metavar="I",
        help="this worker's index in the chaos fleet plan (default 0)",
    )
    p_worker.add_argument(
        "--chaos-fleet",
        type=int,
        default=1,
        metavar="N",
        help="chaos fleet size the plan is derived for (default 1)",
    )

    p_serve = sub.add_parser(
        "serve",
        parents=[common],
        help="content-addressed design-study service (submit/status/fetch)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port", type=int, default=0, help="bind port (default 0 = ephemeral)"
    )
    p_serve.add_argument(
        "--pool-size",
        type=int,
        default=2,
        metavar="N",
        help="study executor threads (default 2)",
    )

    sub.add_parser(
        "solvers",
        parents=[common],
        help="list registered allocator/analysis backends and capabilities",
    )

    sub.add_parser(
        "networks",
        parents=[common],
        help="list registered co-simulation network backends and capabilities",
    )

    p_lint = sub.add_parser(
        "lint",
        parents=[common],
        help="static determinism-contract analysis (QA001-QA005)",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        help="run only this rule (repeatable), e.g. --rule QA003",
    )

    p_all = sub.add_parser(
        "all", parents=[common], help="regenerate every artefact in one pass"
    )
    p_all.add_argument("--paper-only", action="store_true")
    p_all.add_argument("--simulated", action="store_true")
    p_all.add_argument("--plots", action="store_true")
    p_all.add_argument("--analytic", action="store_true")
    p_all.add_argument("--which", default="all")
    p_all.add_argument("--seeds", type=int, default=3)
    p_all.add_argument(
        "--scales", type=float, nargs="+", default=[0.5, 0.75, 1.0, 1.5, 2.0]
    )

    return parser


_COMMANDS = {
    "fig1": _cmd_fig1,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "table1": _cmd_table1,
    "allocation": _cmd_allocation,
    "fig5": _cmd_fig5,
    "ablations": _cmd_ablations,
    "validate": _cmd_validate,
    "sensitivity": _cmd_sensitivity,
    "study": _cmd_study,
    "sweep": _cmd_sweep,
    "worker": _cmd_worker,
    "serve": _cmd_serve,
    "solvers": _cmd_solvers,
    "networks": _cmd_networks,
    "lint": _cmd_lint,
    "all": _cmd_all,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        # Handlers return (text, data) or (text, data, exit_code);
        # ``lint`` uses the third form to gate CI on findings.
        outcome = _COMMANDS[args.command](args)
    except ValueError as exc:
        # Domain errors (unknown scenario, bad stride, infeasible set)
        # surface as a clean CLI diagnostic, not a traceback.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    text, data = outcome[0], outcome[1]
    code = outcome[2] if len(outcome) == 3 else 0
    if args.json:
        print(json.dumps(to_jsonable(data), indent=2))
    else:
        print(text)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
