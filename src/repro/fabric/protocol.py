"""Line-delimited-JSON wire protocol shared by every fabric endpoint.

One message is one JSON object on one ``\\n``-terminated UTF-8 line;
every message carries a ``type`` drawn from :data:`MESSAGE_TYPES`.  The
same framing serves both fabric roles:

* **sweep plane** (worker ⇄ coordinator): ``hello``, ``lease`` /
  ``job`` / ``wait`` / ``shutdown``, ``heartbeat``, ``result``;
* **service plane** (client ⇄ study service): ``submit``, ``status``,
  ``fetch``, answered by ``ok`` / ``error``.

Scenarios travel as their ``to_dict()`` JSON (workers never need the
registry), and dwell-cache entries ride along as pickled-and-armoured
strings (:func:`repro.pipeline.cache.encode_entries`).  ``make_msg`` /
``send_msg`` validate the message kind against :data:`MESSAGE_TYPES` at
runtime, and ``repro lint`` (QA004) resolves kind *literals* against
the same tuple at lint time, so a typo'd message type fails in CI
rather than as a mid-sweep protocol error.

Failure taxonomy — three typed outcomes every reader must handle:

* ``recv_msg() is None`` — clean EOF, the peer hung up after a
  complete line;
* :class:`ChannelTimeout` — the read deadline passed before a full
  line arrived (a half-open or stalled peer; any bytes already
  buffered stay buffered, so a later call can still finish the line);
* :class:`ProtocolError` — a garbled line, an unknown message kind,
  or a peer that died mid-line (torn write on the wire).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Any, Dict, Optional

#: Every message kind either fabric plane may put on the wire.
MESSAGE_TYPES = (
    # sweep plane
    "hello",
    "lease",
    "job",
    "wait",
    "shutdown",
    "heartbeat",
    "result",
    # service plane
    "submit",
    "status",
    "fetch",
    # replies
    "ok",
    "error",
)

#: Bytes pulled from the socket per read while assembling a line.
_RECV_CHUNK = 65536


class ProtocolError(ValueError):
    """A malformed or unknown-kind message crossed the wire."""


class ChannelTimeout(TimeoutError):
    """A read deadline expired before a complete message arrived.

    Raised by :meth:`LineChannel.recv_msg` when ``timeout`` is given —
    the typed signal that a peer is stalled or half-open, distinct from
    a clean EOF (``None``) and from garbage (:class:`ProtocolError`).
    Partial data stays buffered: catching this and calling ``recv_msg``
    again resumes the same line.
    """


def make_msg(kind: str, **fields: Any) -> Dict[str, Any]:
    """A validated protocol message as a plain dict."""
    if kind not in MESSAGE_TYPES:
        raise ProtocolError(
            f"unknown message type {kind!r}; expected one of {list(MESSAGE_TYPES)}"
        )
    if "type" in fields:
        raise ProtocolError("'type' is set from the kind argument")
    return {"type": kind, **fields}


def encode_msg(kind: str, **fields: Any) -> bytes:
    """One validated message as its wire form (one ``\\n``-ended line)."""
    payload = json.dumps(make_msg(kind, **fields), separators=(",", ":"))
    return (payload + "\n").encode("utf-8")


class LineChannel:
    """One socket wrapped for line-JSON messaging.

    Writes are serialised under a lock so a heartbeat thread can share
    the channel with the main job loop; reads are expected from a
    single thread.  ``recv_msg`` returns ``None`` on a clean EOF — the
    peer hung up — which the coordinator treats as worker death.

    The channel does its own line buffering (no ``makefile``) so read
    deadlines are sound: ``recv_msg(timeout=...)`` arms a socket
    timeout, raises :class:`ChannelTimeout` when no complete line
    lands in time, and keeps any partial line buffered for the next
    call.  A peer that dies mid-line (EOF with bytes still buffered)
    raises :class:`ProtocolError` — a torn write is corruption, not a
    clean hangup.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._rbuf = bytearray()
        self._eof = False
        self._wlock = threading.Lock()

    def send_msg(self, kind: str, **fields: Any) -> None:
        self.send_raw(encode_msg(kind, **fields))

    def send_raw(self, data: bytes) -> None:
        """Put pre-encoded line bytes on the wire (one serialised write).

        The seam the fault injector uses: duplicated or garbled lines
        go through here so framing stays one-message-one-line.
        """
        with self._wlock:
            self._sock.sendall(data)

    def recv_msg(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Next message, ``None`` on clean EOF.

        ``timeout`` (seconds) bounds the wait for one *complete* line;
        expiry raises :class:`ChannelTimeout` and leaves any partial
        line buffered.  ``None`` waits forever (legacy behaviour).
        """
        line = self._recv_line(timeout)
        if line is None:
            return None
        try:
            msg = json.loads(line)
        except ValueError as exc:
            # JSONDecodeError and UnicodeDecodeError both subclass
            # ValueError; garbage of any flavour is one typed error
            raise ProtocolError(f"undecodable message line: {exc}") from None
        if not isinstance(msg, dict) or msg.get("type") not in MESSAGE_TYPES:
            raise ProtocolError(f"message without a known type: {line!r}")
        return msg

    def _recv_line(self, timeout: Optional[float]) -> Optional[bytes]:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            newline = self._rbuf.find(b"\n")
            if newline >= 0:
                line = bytes(self._rbuf[:newline])
                del self._rbuf[: newline + 1]
                return line
            if self._eof:
                return None
            if deadline is None:
                self._sock.settimeout(None)
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ChannelTimeout(
                        f"no complete message within {timeout:g}s "
                        f"({len(self._rbuf)} byte(s) of a partial line buffered)"
                    )
                self._sock.settimeout(remaining)
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except socket.timeout:
                raise ChannelTimeout(
                    f"no complete message within {timeout:g}s "
                    f"({len(self._rbuf)} byte(s) of a partial line buffered)"
                ) from None
            if not chunk:
                self._eof = True
                if self._rbuf:
                    torn = len(self._rbuf)
                    del self._rbuf[:]
                    raise ProtocolError(
                        f"peer hung up mid-message ({torn} byte(s) of a torn line)"
                    )
                return None
            self._rbuf += chunk

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def connect(host: str, port: int, timeout: Optional[float] = None) -> LineChannel:
    """Dial a fabric endpoint and wrap the socket as a channel.

    ``timeout`` bounds the dial only; the socket is returned blocking
    and per-read deadlines belong to ``recv_msg(timeout=...)``.
    """
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return LineChannel(sock)


def parse_endpoint(text: str) -> tuple:
    """``"host:port"`` → ``(host, port)`` with a friendly error."""
    host, sep, port = text.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(
            f"bad endpoint {text!r}; expected HOST:PORT, e.g. 127.0.0.1:7465"
        )
    return host, int(port)


__all__ = [
    "ChannelTimeout",
    "LineChannel",
    "MESSAGE_TYPES",
    "ProtocolError",
    "connect",
    "encode_msg",
    "make_msg",
    "parse_endpoint",
]
