"""Line-delimited-JSON wire protocol shared by every fabric endpoint.

One message is one JSON object on one ``\\n``-terminated UTF-8 line;
every message carries a ``type`` drawn from :data:`MESSAGE_TYPES`.  The
same framing serves both fabric roles:

* **sweep plane** (worker ⇄ coordinator): ``hello``, ``lease`` /
  ``job`` / ``wait`` / ``shutdown``, ``heartbeat``, ``result``;
* **service plane** (client ⇄ study service): ``submit``, ``status``,
  ``fetch``, answered by ``ok`` / ``error``.

Scenarios travel as their ``to_dict()`` JSON (workers never need the
registry), and dwell-cache entries ride along as pickled-and-armoured
strings (:func:`repro.pipeline.cache.encode_entries`).  ``make_msg`` /
``send_msg`` validate the message kind against :data:`MESSAGE_TYPES` at
runtime, and ``repro lint`` (QA004) resolves kind *literals* against
the same tuple at lint time, so a typo'd message type fails in CI
rather than as a mid-sweep protocol error.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, Optional

#: Every message kind either fabric plane may put on the wire.
MESSAGE_TYPES = (
    # sweep plane
    "hello",
    "lease",
    "job",
    "wait",
    "shutdown",
    "heartbeat",
    "result",
    # service plane
    "submit",
    "status",
    "fetch",
    # replies
    "ok",
    "error",
)


class ProtocolError(ValueError):
    """A malformed or unknown-kind message crossed the wire."""


def make_msg(kind: str, **fields: Any) -> Dict[str, Any]:
    """A validated protocol message as a plain dict."""
    if kind not in MESSAGE_TYPES:
        raise ProtocolError(
            f"unknown message type {kind!r}; expected one of {list(MESSAGE_TYPES)}"
        )
    if "type" in fields:
        raise ProtocolError("'type' is set from the kind argument")
    return {"type": kind, **fields}


class LineChannel:
    """One socket wrapped for line-JSON messaging.

    Writes are serialised under a lock so a heartbeat thread can share
    the channel with the main job loop; reads are expected from a
    single thread.  ``recv_msg`` returns ``None`` on a clean EOF — the
    peer hung up — which the coordinator treats as worker death.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._rfile = sock.makefile("r", encoding="utf-8", newline="\n")
        self._wlock = threading.Lock()

    def send_msg(self, kind: str, **fields: Any) -> None:
        payload = json.dumps(
            make_msg(kind, **fields), separators=(",", ":")
        )
        data = (payload + "\n").encode("utf-8")
        with self._wlock:
            self._sock.sendall(data)

    def recv_msg(self) -> Optional[Dict[str, Any]]:
        line = self._rfile.readline()
        if not line:
            return None
        try:
            msg = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"undecodable message line: {exc}") from None
        if not isinstance(msg, dict) or msg.get("type") not in MESSAGE_TYPES:
            raise ProtocolError(f"message without a known type: {line!r}")
        return msg

    def close(self) -> None:
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


def connect(host: str, port: int, timeout: Optional[float] = None) -> LineChannel:
    """Dial a fabric endpoint and wrap the socket as a channel."""
    sock = socket.create_connection((host, port), timeout=timeout)
    return LineChannel(sock)


def parse_endpoint(text: str) -> tuple:
    """``"host:port"`` → ``(host, port)`` with a friendly error."""
    host, sep, port = text.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(
            f"bad endpoint {text!r}; expected HOST:PORT, e.g. 127.0.0.1:7465"
        )
    return host, int(port)


__all__ = [
    "LineChannel",
    "MESSAGE_TYPES",
    "ProtocolError",
    "connect",
    "make_msg",
    "parse_endpoint",
]
