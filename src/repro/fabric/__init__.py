"""Distributed sweep fabric and content-addressed study service.

``repro.fabric`` moves the pipeline's work across processes and hosts
without changing a single bit of it:

* :mod:`~repro.fabric.protocol` — the line-JSON wire format both
  planes share (:data:`~repro.fabric.protocol.MESSAGE_TYPES`), with
  per-read deadlines (:class:`~repro.fabric.protocol.ChannelTimeout`)
  and a typed error for garbage on the wire
  (:class:`~repro.fabric.protocol.ProtocolError`);
* :mod:`~repro.fabric.store` — the content-addressed result store
  (one row per ``fingerprint+seed`` address) behind dedup and resume,
  including torn-tail recovery of a killed writer's JSONL;
* :mod:`~repro.fabric.coordinator` — sweep decomposition, leases with
  heartbeat/timeout re-queueing, deterministic merge
  (:func:`~repro.fabric.coordinator.run_fabric_sweep` is the drop-in
  distributed twin of :func:`~repro.pipeline.sweep.run_sweep`);
* :mod:`~repro.fabric.worker` — the lease-run-report loop
  (``repro worker``), including fleet-wide dwell-cache sharing and
  retry-backed dialing/reconnection;
* :mod:`~repro.fabric.service` — the long-lived study endpoint
  (``repro serve``) with submit/status/fetch and a scenario-hash
  result cache;
* :mod:`~repro.fabric.resilience` — the chaos layer: one seeded
  :class:`~repro.fabric.resilience.RetryPolicy` for every backoff in
  the fabric, and deterministic fault injection
  (:class:`~repro.fabric.resilience.FaultPlan` /
  :class:`~repro.fabric.resilience.FaultyChannel`, named storms via
  :func:`~repro.fabric.resilience.chaos_plan`) that drops, delays,
  duplicates, garbles, stalls and crashes on a fixed seed — the chaos
  tests prove the merged sweep stays bitwise identical to serial.

Everything here may legitimately read wall-clock time (leases,
timeouts, backoff sleeps, job timestamps) — the determinism lint
(QA002) exempts this package for exactly that reason; simulation code
still may not.
"""

from repro.fabric.coordinator import (
    FabricTimeout,
    SweepCoordinator,
    run_fabric_sweep,
)
from repro.fabric.protocol import (
    MESSAGE_TYPES,
    ChannelTimeout,
    LineChannel,
    ProtocolError,
    connect,
    make_msg,
    parse_endpoint,
)
from repro.fabric.resilience import (
    CHAOS_PROFILES,
    FaultInjector,
    FaultPlan,
    FaultyChannel,
    InjectedCrash,
    RetryExhausted,
    RetryPolicy,
    chaos_plan,
    fleet_plans,
    tear_jsonl_tail,
)
from repro.fabric.service import (
    JOB_STATES,
    JobRecord,
    ServiceClient,
    StudyService,
    sweep_address,
)
from repro.fabric.store import ResultStore, ResumeReport
from repro.fabric.worker import FabricWorker, WorkerDied, spawn_worker_process

__all__ = [
    "CHAOS_PROFILES",
    "ChannelTimeout",
    "FabricTimeout",
    "FabricWorker",
    "FaultInjector",
    "FaultPlan",
    "FaultyChannel",
    "InjectedCrash",
    "JOB_STATES",
    "JobRecord",
    "LineChannel",
    "MESSAGE_TYPES",
    "ProtocolError",
    "ResultStore",
    "ResumeReport",
    "RetryExhausted",
    "RetryPolicy",
    "ServiceClient",
    "StudyService",
    "SweepCoordinator",
    "WorkerDied",
    "chaos_plan",
    "connect",
    "fleet_plans",
    "make_msg",
    "parse_endpoint",
    "run_fabric_sweep",
    "spawn_worker_process",
    "sweep_address",
    "tear_jsonl_tail",
]
