"""Distributed sweep fabric and content-addressed study service.

``repro.fabric`` moves the pipeline's work across processes and hosts
without changing a single bit of it:

* :mod:`~repro.fabric.protocol` — the line-JSON wire format both
  planes share (:data:`~repro.fabric.protocol.MESSAGE_TYPES`);
* :mod:`~repro.fabric.store` — the content-addressed result store
  (one row per ``fingerprint+seed`` address) behind dedup and resume;
* :mod:`~repro.fabric.coordinator` — sweep decomposition, leases with
  heartbeat/timeout re-queueing, deterministic merge
  (:func:`~repro.fabric.coordinator.run_fabric_sweep` is the drop-in
  distributed twin of :func:`~repro.pipeline.sweep.run_sweep`);
* :mod:`~repro.fabric.worker` — the lease-run-report loop
  (``repro worker``), including fleet-wide dwell-cache sharing;
* :mod:`~repro.fabric.service` — the long-lived study endpoint
  (``repro serve``) with submit/status/fetch and a scenario-hash
  result cache.

Everything here may legitimately read wall-clock time (leases,
timeouts, job timestamps) — the determinism lint (QA002) exempts this
package for exactly that reason; simulation code still may not.
"""

from repro.fabric.coordinator import (
    FabricTimeout,
    SweepCoordinator,
    run_fabric_sweep,
)
from repro.fabric.protocol import (
    MESSAGE_TYPES,
    LineChannel,
    ProtocolError,
    connect,
    make_msg,
    parse_endpoint,
)
from repro.fabric.service import (
    JOB_STATES,
    JobRecord,
    ServiceClient,
    StudyService,
    sweep_address,
)
from repro.fabric.store import ResultStore
from repro.fabric.worker import FabricWorker, WorkerDied, spawn_worker_process

__all__ = [
    "FabricTimeout",
    "FabricWorker",
    "JOB_STATES",
    "JobRecord",
    "LineChannel",
    "MESSAGE_TYPES",
    "ProtocolError",
    "ResultStore",
    "ServiceClient",
    "StudyService",
    "SweepCoordinator",
    "WorkerDied",
    "connect",
    "make_msg",
    "parse_endpoint",
    "run_fabric_sweep",
    "spawn_worker_process",
    "sweep_address",
]
