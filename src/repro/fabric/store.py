"""Content-addressed result store backing the sweep coordinator.

Each entry is one finished replication row keyed by the scenario's
content address (``fingerprint+seed``,
:meth:`~repro.pipeline.scenario.Scenario.content_address`).  The
address is the whole identity: a row computed on any worker, in any
run, satisfies every job with the same address, which is what makes
reruns cache hits and killed sweeps resumable.

:meth:`ResultStore.load_jsonl` rebuilds the done-set from a streamed
sweep JSONL (both :func:`~repro.pipeline.sweep.run_sweep` and the
fabric write ``address`` on every row).  Rows whose
``failed_stage == "worker"`` are *not* adopted: a worker-transport
failure says nothing about the scenario, so resuming retries those
jobs — whereas domain failures (infeasible allocation, overload) are
deterministic and reusable like any other row.

Torn tails: a killed writer leaves exactly one artifact — the final
line cut mid-byte with no trailing newline.  ``load_jsonl`` recovers
the intact prefix and reports the torn row in
:attr:`ResumeReport.recovered_tail`; an undecodable line anywhere
*else* (mid-file, or a complete newline-terminated final line) is real
corruption and still raises, so a damaged log stops the sweep instead
of silently recomputing everything.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, NamedTuple, Optional


class ResumeReport(NamedTuple):
    """What :meth:`ResultStore.load_jsonl` found in a resume log."""

    #: Rows adopted into the done-set.
    adopted: int
    #: ``failed_stage == "worker"`` rows deliberately left for a retry.
    skipped: int
    #: Torn final lines dropped (0 or 1 — the killed-writer artifact).
    recovered_tail: int


class ResultStore:
    """In-memory map of content address → finished row."""

    def __init__(self) -> None:
        self._rows: Dict[str, Dict[str, Any]] = {}
        self.hits = 0

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, address: str) -> bool:
        return address in self._rows

    def get(self, address: str) -> Optional[Dict[str, Any]]:
        return self._rows.get(address)

    def put(self, address: str, row: Dict[str, Any]) -> bool:
        """Adopt ``row`` for ``address``; returns False when the address
        is already filled (the newcomer — e.g. a zombie worker's late
        duplicate — is dropped, keeping the store one-row-per-address)."""
        if address in self._rows:
            return False
        self._rows[address] = row
        return True

    def lookup(self, address: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`get` but counts a hit when the row exists."""
        row = self._rows.get(address)
        if row is not None:
            self.hits += 1
        return row

    def rows(self) -> List[Dict[str, Any]]:
        return list(self._rows.values())

    def load_jsonl(
        self,
        path: str,
        wanted: Optional[Iterable[str]] = None,
    ) -> ResumeReport:
        """Rebuild the done-set from a sweep JSONL stream.

        Adopts every addressed, non-worker-failed row (optionally
        restricted to the ``wanted`` addresses of the sweep being
        resumed, so a shared log cannot leak foreign rows in).

        A torn **final** line — undecodable *and* missing its trailing
        newline, the artifact a killed writer leaves — is dropped and
        counted in :attr:`ResumeReport.recovered_tail`; the intact
        prefix still resumes.  An undecodable line anywhere else
        raises: mid-file corruption should stop the sweep, not
        silently recompute everything.
        """
        adopted = 0
        skipped = 0
        recovered_tail = 0
        wanted_set = None if wanted is None else set(wanted)
        text = Path(path).read_text(encoding="utf-8")
        complete = text.endswith("\n")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines) and not complete:
                    # killed mid-write: recover the prefix, drop the tear
                    recovered_tail += 1
                    break
                raise ValueError(
                    f"{path}:{lineno}: unreadable resume row: {exc}"
                ) from None
            address = row.get("address") if isinstance(row, dict) else None
            if address is None or (wanted_set is not None and address not in wanted_set):
                continue
            if row.get("failed_stage") == "worker":
                skipped += 1
                continue
            if self.put(address, row):
                adopted += 1
        return ResumeReport(adopted, skipped, recovered_tail)


__all__ = ["ResultStore", "ResumeReport"]
