"""Deterministic chaos layer and unified retry machinery for the fabric.

The fabric's fault tolerance (leases, re-queueing, resume) is only
trustworthy if it is *exercised* — this module makes the exercising
reproducible, the same way a scenario seed makes a co-simulation
reproducible:

* :class:`FaultPlan` — a frozen description of one endpoint's fault
  storm: per-direction drop / delay / duplicate / garble
  probabilities, a crash-at-message-N hook, and a stall-for-S hook,
  all driven by one ``numpy`` Generator seed.  The same plan produces
  the same fault sequence every run.
* :class:`FaultyChannel` — wraps any
  :class:`~repro.fabric.protocol.LineChannel` and applies a plan to
  the data-plane messages crossing it, so any coordinator / worker /
  service pairing can run under a seeded storm without either side
  knowing.
* :class:`RetryPolicy` — exponential backoff with seeded,
  deterministic jitter plus attempt and deadline caps; the one retry
  implementation behind worker dial/reconnect, the lease-denied wait
  loop, and :class:`~repro.fabric.service.ServiceClient` calls.
* :func:`tear_jsonl_tail` — the torn-write injector: truncates a
  sweep JSONL mid-final-line, the exact artifact a killed writer
  leaves, for resume-path tests
  (:meth:`~repro.fabric.store.ResultStore.load_jsonl` recovers it).
* :data:`CHAOS_PROFILES` / :func:`chaos_plan` — named storm recipes
  (``drop-delay``, ``dup-garble``, ``stall-crash``) behind the
  ``--chaos-seed`` / ``--chaos-profile`` CLI flags.

Determinism contract: a plan's fault decisions are indexed by each
endpoint's *own* counter of eligible messages (send and receive
streams draw from independent child generators), never by wall-clock
time — so a single worker's fault sequence is a pure function of the
seed, and fleet-level requeue/retry counts reproduce run over run.

This module coordinates real machines, so (like the rest of
``repro.fabric``) it is on the QA002 wall-clock allow-list: sleeps and
monotonic deadlines are legitimate here; simulation kernels still may
not touch the host clock.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.fabric.protocol import LineChannel, encode_msg


class InjectedCrash(RuntimeError):
    """A :class:`FaultPlan` ``crash_at_message`` hook fired.

    The channel's socket is already closed when this propagates — the
    process vanished mid-protocol as far as the peer can tell, which
    is exactly what the lease/re-queue machinery must survive.
    """


class RetryExhausted(RuntimeError):
    """A :meth:`RetryPolicy.call` ran out of attempts or deadline."""


class RetryPolicy:
    """Exponential backoff with seeded deterministic jitter.

    One policy object owns one jitter stream: given the same seed, the
    sequence of computed delays is identical run over run, so retry
    timing in chaos tests is as reproducible as the faults themselves.

    Parameters
    ----------
    max_attempts:
        Attempts before :meth:`call` gives up (>= 1).
    base_delay, factor, max_delay:
        Attempt ``k`` backs off ``min(base_delay * factor**(k-1),
        max_delay)`` seconds before jitter.
    jitter:
        Fractional spread: the raw delay is scaled by a seeded uniform
        draw from ``[1, 1 + jitter]``.  Zero disables jitter (and
        consumes no draws).
    deadline:
        Optional overall cap in seconds across all attempts of one
        :meth:`call` (monotonic clock).
    seed:
        Jitter stream seed.
    """

    def __init__(
        self,
        *,
        max_attempts: int = 5,
        base_delay: float = 0.05,
        factor: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        deadline: Optional[float] = None,
        seed: int = 0,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0 or jitter < 0:
            raise ValueError("base_delay, max_delay and jitter must be >= 0")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter
        self.deadline = deadline
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._sleep: Callable[[float], None] = time.sleep

    def delay_for(self, attempt: int, floor: float = 0.0) -> float:
        """Backoff before retrying after failed attempt ``attempt`` (1-based).

        ``floor`` is a server-supplied minimum (the coordinator's
        ``retry_after`` hint): the exponential delay never undercuts
        it, and jitter is applied on top so a fleet of denied workers
        does not re-ask in lockstep.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        raw = min(self.base_delay * self.factor ** (attempt - 1), self.max_delay)
        raw = max(raw, floor)
        if self.jitter:
            raw *= 1.0 + self.jitter * float(self._rng.random())
        return raw

    def sleep(self, attempt: int, floor: float = 0.0) -> float:
        """Sleep :meth:`delay_for` seconds; returns the delay used."""
        delay = self.delay_for(attempt, floor=floor)
        if delay > 0:
            self._sleep(delay)
        return delay

    def call(self, fn: Callable[[], Any], *, retry_on: Tuple[type, ...] = (OSError,)) -> Any:
        """Run ``fn`` under this policy; return its first success.

        Retries on ``retry_on`` exceptions up to ``max_attempts``,
        backing off between attempts; a configured ``deadline`` bounds
        the whole call.  Exhaustion raises :class:`RetryExhausted`
        chained from the last failure.
        """
        cutoff = None if self.deadline is None else time.monotonic() + self.deadline
        last: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except retry_on as exc:
                last = exc
                if attempt >= self.max_attempts:
                    break
                delay = self.delay_for(attempt)
                if cutoff is not None and time.monotonic() + delay > cutoff:
                    break
                self._sleep(delay)
        raise RetryExhausted(
            f"gave up after {self.max_attempts} attempt(s): {last!r}"
        ) from last


#: Message kinds the injector considers data-plane and thus faultable.
#: Control traffic (hello/ok, lease, wait, heartbeat, shutdown) passes
#: untouched so fault decisions stay a function of the seed, not of
#: timing-dependent chatter like heartbeats and nap loops.
DEFAULT_FAULT_TYPES: Tuple[str, ...] = ("job", "result")


@dataclass(frozen=True)
class FaultPlan:
    """One endpoint's seeded fault storm, as data.

    Probabilities are per eligible message (see ``fault_types``); the
    count-based hooks index the endpoint's own eligible-send counter,
    1-based: ``crash_at_message=3`` kills the connection in place of
    the third data-plane send.
    """

    seed: int = 0
    #: Per-eligible-send probabilities.
    drop_send: float = 0.0
    delay_send: float = 0.0
    duplicate_send: float = 0.0
    garble_send: float = 0.0
    #: Per-eligible-receive probabilities.
    drop_recv: float = 0.0
    delay_recv: float = 0.0
    duplicate_recv: float = 0.0
    #: Injected delays draw uniformly from ``(0, delay_max]`` seconds.
    delay_max: float = 0.02
    #: Abruptly close the socket in place of eligible send N (1-based).
    crash_at_message: Optional[int] = None
    #: Stall eligible send N for ``stall_for`` seconds while holding
    #: the channel write path — heartbeats queue behind the stall, so
    #: a lease really does go silent.
    stall_at_message: Optional[int] = None
    stall_for: float = 0.0
    #: Read deadline a worker running under this plan should adopt
    #: (dropped grants are only recoverable if reads time out).
    recv_timeout: Optional[float] = None
    #: Message kinds eligible for faults.
    fault_types: Tuple[str, ...] = DEFAULT_FAULT_TYPES

    def __post_init__(self) -> None:
        for name in (
            "drop_send",
            "delay_send",
            "duplicate_send",
            "garble_send",
            "drop_recv",
            "delay_recv",
            "duplicate_recv",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.delay_max < 0 or self.stall_for < 0:
            raise ValueError("delay_max and stall_for must be >= 0")
        for name in ("crash_at_message", "stall_at_message"):
            n = getattr(self, name)
            if n is not None and n < 1:
                raise ValueError(f"{name} is 1-based, got {n}")

    @property
    def quiet(self) -> bool:
        """True when the plan injects nothing (a clean fleet member)."""
        return (
            not any(
                (
                    self.drop_send,
                    self.delay_send,
                    self.duplicate_send,
                    self.garble_send,
                    self.drop_recv,
                    self.delay_recv,
                    self.duplicate_recv,
                )
            )
            and self.crash_at_message is None
            and self.stall_at_message is None
        )

    def injector(self) -> "FaultInjector":
        """A fresh stateful injector for this plan (one per endpoint;
        carry it across reconnects so the fault stream stays one
        deterministic sequence)."""
        return FaultInjector(self)


class FaultInjector:
    """The stateful half of a :class:`FaultPlan`: counters and streams.

    Send and receive decisions draw from independent child generators
    of the plan seed, so receive-side faults do not shift send-side
    decisions (and vice versa).  ``events`` tallies every injected
    fault by kind — what chaos tests assert reproduces under one seed.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        send_seq, recv_seq = np.random.SeedSequence(plan.seed).spawn(2)
        self._send_rng = np.random.default_rng(send_seq)
        self._recv_rng = np.random.default_rng(recv_seq)
        self.sends_seen = 0
        self.recvs_seen = 0
        self.events: Dict[str, int] = {
            "drop_send": 0,
            "delay_send": 0,
            "duplicate_send": 0,
            "garble_send": 0,
            "drop_recv": 0,
            "delay_recv": 0,
            "duplicate_recv": 0,
            "stall": 0,
            "crash": 0,
        }

    def send_fate(self) -> Dict[str, Any]:
        """Decide the fate of the next eligible send.

        Always consumes the same number of draws per call (four
        probabilities plus one delay magnitude), so the decision for
        send *k* depends only on the seed and *k*.
        """
        plan = self.plan
        self.sends_seen += 1
        rng = self._send_rng
        draws = rng.random(4)
        magnitude = float(rng.random()) * plan.delay_max
        fate = {
            "stall": self.sends_seen == plan.stall_at_message,
            "crash": self.sends_seen == plan.crash_at_message,
            "drop": bool(draws[0] < plan.drop_send),
            "garble": bool(draws[1] < plan.garble_send),
            "duplicate": bool(draws[2] < plan.duplicate_send),
            "delay": magnitude if draws[3] < plan.delay_send else 0.0,
        }
        for key in ("stall", "crash", "drop", "garble", "duplicate"):
            if fate[key]:
                self.events[_SEND_EVENT[key]] += 1
        if fate["delay"]:
            self.events["delay_send"] += 1
        return fate

    def recv_fate(self) -> Dict[str, Any]:
        """Decide the fate of the next eligible receive (three
        probability draws plus one delay magnitude per call)."""
        plan = self.plan
        self.recvs_seen += 1
        rng = self._recv_rng
        draws = rng.random(3)
        magnitude = float(rng.random()) * plan.delay_max
        fate = {
            "drop": bool(draws[0] < plan.drop_recv),
            "duplicate": bool(draws[1] < plan.duplicate_recv),
            "delay": magnitude if draws[2] < plan.delay_recv else 0.0,
        }
        if fate["drop"]:
            self.events["drop_recv"] += 1
        if fate["duplicate"]:
            self.events["duplicate_recv"] += 1
        if fate["delay"]:
            self.events["delay_recv"] += 1
        return fate


_SEND_EVENT = {
    "stall": "stall",
    "crash": "crash",
    "drop": "drop_send",
    "garble": "garble_send",
    "duplicate": "duplicate_send",
}


def garble_line(data: bytes) -> bytes:
    """Corrupt one wire line while keeping the one-line framing.

    The result still ends in exactly one ``\\n`` but can never parse
    as JSON, so the peer sees a :class:`ProtocolError`, not a silently
    wrong message.
    """
    body = data.rstrip(b"\n")
    return b"!garbled!" + body[: len(body) // 2] + b"\n"


class FaultyChannel:
    """A :class:`LineChannel` running under a :class:`FaultPlan`.

    Drop-in for the wrapped channel: same ``send_msg`` /
    ``recv_msg(timeout=...)`` / ``close`` surface, so workers,
    coordinators and service clients take it without changes.  Control
    messages (anything outside ``plan.fault_types``) pass through
    untouched; eligible messages are dropped, delayed, duplicated or
    garbled per the injector's deterministic streams.

    All sends — control ones included — serialise on one lock, which
    is what makes the stall hook honest: while a data send stalls, the
    heartbeat thread's sends queue behind it and the lease genuinely
    goes silent.
    """

    def __init__(self, inner: LineChannel, injector: FaultInjector):
        self._inner = inner
        self._fault = injector
        self._lock = threading.Lock()
        self._replay: deque = deque()

    @property
    def injector(self) -> FaultInjector:
        return self._fault

    def send_msg(self, kind: str, **fields: Any) -> None:
        plan = self._fault.plan
        with self._lock:
            if kind not in plan.fault_types:
                self._inner.send_msg(kind, **fields)
                return
            fate = self._fault.send_fate()
            if fate["stall"]:
                time.sleep(plan.stall_for)
            if fate["crash"]:
                self._inner.close()
                raise InjectedCrash(
                    f"fault plan crashed the channel at eligible send "
                    f"#{self._fault.sends_seen}"
                )
            if fate["drop"]:
                return
            data = encode_msg(kind, **fields)
            if fate["garble"]:
                data = garble_line(data)
            if fate["delay"]:
                time.sleep(fate["delay"])
            self._inner.send_raw(data)
            if fate["duplicate"]:
                self._inner.send_raw(data)

    def recv_msg(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        if self._replay:
            return self._replay.popleft()
        plan = self._fault.plan
        while True:
            msg = self._inner.recv_msg(timeout=timeout)
            if msg is None or msg.get("type") not in plan.fault_types:
                return msg
            fate = self._fault.recv_fate()
            if fate["drop"]:
                continue
            if fate["delay"]:
                time.sleep(fate["delay"])
            if fate["duplicate"]:
                self._replay.append(dict(msg))
            return msg

    def close(self) -> None:
        self._inner.close()


def tear_jsonl_tail(path: str, keep_fraction: float = 0.5) -> int:
    """Truncate ``path`` mid-final-line — the torn-write injector.

    Simulates the artifact a killed writer actually leaves: the last
    JSONL row cut partway through with no trailing newline.  Returns
    the number of bytes removed (0 when the file is empty).
    :meth:`~repro.fabric.store.ResultStore.load_jsonl` recovers the
    intact prefix and reports the torn row.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
    target = Path(path)
    data = target.read_bytes()
    stripped = data.rstrip(b"\n")
    if not stripped:
        return 0
    line_start = stripped.rfind(b"\n") + 1
    line = stripped[line_start:]
    keep = max(1, int(len(line) * keep_fraction)) if len(line) > 1 else 0
    torn = data[: line_start + keep]
    target.write_bytes(torn)
    return len(data) - len(torn)


#: Named storm recipes for ``--chaos-profile``.  Probabilities are per
#: data-plane message; each profile also carries the read deadline a
#: worker should run under so injected losses are recoverable.
CHAOS_PROFILES: Tuple[str, ...] = ("drop-delay", "dup-garble", "stall-crash")


def chaos_plan(
    profile: str,
    seed: int,
    worker_index: int = 0,
    fleet_size: int = 1,
    lease_timeout: Optional[float] = None,
) -> FaultPlan:
    """The :class:`FaultPlan` for one fleet member under a named storm.

    Per-worker plan seeds derive from ``(seed, worker_index)`` through
    a :class:`numpy.random.SeedSequence`, so every fleet member rides
    its own deterministic stream and the whole storm is reproducible
    from one ``--chaos-seed``.

    Profiles:

    * ``drop-delay`` — message loss plus latency on both directions;
      exercises read deadlines, lease expiry and re-queueing.
    * ``dup-garble`` — duplicated and corrupted lines; exercises
      content-address dedup and per-connection ProtocolError isolation.
    * ``stall-crash`` — worker 0 stalls past the lease deadline
      (heartbeats blocked), the last worker crashes mid-protocol;
      needs a fleet of at least two so someone survives to finish.
    """
    if profile not in CHAOS_PROFILES:
        raise ValueError(
            f"unknown chaos profile {profile!r}; expected one of {list(CHAOS_PROFILES)}"
        )
    if not 0 <= worker_index < fleet_size:
        raise ValueError(
            f"worker_index {worker_index} outside fleet of {fleet_size}"
        )
    derived = int(
        np.random.SeedSequence([int(seed), int(worker_index)]).generate_state(1)[0]
    )
    if profile == "drop-delay":
        return FaultPlan(
            seed=derived,
            drop_send=0.15,
            drop_recv=0.15,
            delay_send=0.25,
            delay_recv=0.25,
            delay_max=0.02,
            recv_timeout=0.75,
        )
    if profile == "dup-garble":
        return FaultPlan(
            seed=derived,
            duplicate_send=0.25,
            duplicate_recv=0.2,
            garble_send=0.15,
            recv_timeout=1.0,
        )
    # stall-crash
    if fleet_size < 2:
        raise ValueError(
            "stall-crash chaos needs a fleet of at least 2 workers "
            "(one stalls, one crashes, somebody must survive)"
        )
    stall_for = 2.5 if lease_timeout is None else max(2.5, 1.6 * lease_timeout)
    if worker_index == 0:
        return FaultPlan(
            seed=derived,
            stall_at_message=2,
            stall_for=stall_for,
            recv_timeout=1.0,
        )
    if worker_index == fleet_size - 1:
        return FaultPlan(seed=derived, crash_at_message=2, recv_timeout=1.0)
    return FaultPlan(seed=derived, recv_timeout=1.0)


def fleet_plans(
    profile: str,
    seed: int,
    fleet_size: int,
    lease_timeout: Optional[float] = None,
) -> Tuple[FaultPlan, ...]:
    """Plans for a whole fleet under one storm (index-aligned)."""
    return tuple(
        chaos_plan(
            profile,
            seed,
            worker_index=index,
            fleet_size=fleet_size,
            lease_timeout=lease_timeout,
        )
        for index in range(fleet_size)
    )


__all__ = [
    "CHAOS_PROFILES",
    "DEFAULT_FAULT_TYPES",
    "FaultInjector",
    "FaultPlan",
    "FaultyChannel",
    "InjectedCrash",
    "RetryExhausted",
    "RetryPolicy",
    "chaos_plan",
    "fleet_plans",
    "garble_line",
    "tear_jsonl_tail",
]
