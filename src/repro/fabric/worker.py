"""Fabric worker: lease jobs, run studies, ship rows and cache entries.

A worker is a thin loop around the same :class:`DesignStudy` engine the
serial sweep uses — given the identical scenario and seed it produces
the identical :class:`StudyResult`, which is the whole bitwise-parity
story: the fabric only moves work, it never changes it.

Per job the worker:

1. merges the coordinator-shipped dwell-cache delta into its local
   cache (fleet-wide sharing, PR 3's ``merge_entries`` seam);
2. heartbeats on a side thread every ``lease_timeout / 3`` so a slow
   study keeps its lease while a dead process loses it;
3. runs the study and sends the result row back together with the
   dwell entries it newly measured (``export_entries`` minus what it
   already knows the coordinator has).

Resilience (PR 10): every improvised wait became
:class:`~repro.fabric.resilience.RetryPolicy` — dialing a coordinator
that is not up yet backs off instead of failing instantly, the
lease-denied nap honours the coordinator's ``retry_after`` with seeded
jitter, and a broken session (EOF, garbled line, read deadline hit)
reconnects with backoff instead of killing the worker.  Every read
carries a deadline (``recv_timeout``) so a half-open coordinator can
never hang the process; :attr:`FabricWorker.stats` tallies the
recoveries.

Fault injection: ``die_after=N`` abruptly drops the connection when
leasing job ``N+1`` (the PR 7 hook), and ``fault_plan`` runs the whole
connection under a seeded
:class:`~repro.fabric.resilience.FaultyChannel` storm — drop / delay /
duplicate / garble / stall / crash — for the chaos matrix and the CI
``chaos-smoke`` job.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import zlib
from pathlib import Path
from typing import Optional, Union

from repro.fabric.protocol import (
    ChannelTimeout,
    LineChannel,
    ProtocolError,
    connect,
)
from repro.fabric.resilience import (
    FaultPlan,
    FaultyChannel,
    InjectedCrash,
    RetryPolicy,
)
from repro.pipeline.cache import (
    DwellCurveCache,
    GLOBAL_DWELL_CACHE,
    decode_entries,
    encode_entries,
)
from repro.pipeline.runner import DesignStudy
from repro.pipeline.scenario import Scenario


class WorkerDied(RuntimeError):
    """Raised by the ``die_after`` fault-injection hook."""


class FabricWorker:
    """One worker process/thread's connection to a sweep coordinator.

    ``retry`` governs every backoff the worker performs (dial,
    reconnect, lease-denied wait); its jitter stream is seeded from the
    worker id by default so fleet members never nap in lockstep.
    ``recv_timeout`` is the per-read deadline: a coordinator that goes
    half-open mid-conversation surfaces as a typed
    :class:`~repro.fabric.protocol.ChannelTimeout` and a reconnect, not
    a hung process.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        worker_id: Optional[str] = None,
        cache: Optional[DwellCurveCache] = None,
        die_after: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        recv_timeout: Optional[float] = 60.0,
    ):
        self.host = host
        self.port = port
        self.worker_id = worker_id or f"worker-{os.getpid()}-{id(self) & 0xFFFF:04x}"
        self.cache = cache if cache is not None else GLOBAL_DWELL_CACHE
        self.die_after = die_after
        self.fault_plan = fault_plan
        self.retry = (
            retry
            if retry is not None
            else RetryPolicy(seed=zlib.crc32(self.worker_id.encode("utf-8")))
        )
        if fault_plan is not None and fault_plan.recv_timeout is not None:
            recv_timeout = fault_plan.recv_timeout
        self.recv_timeout = recv_timeout
        self.jobs_done = 0
        #: Recovery ledger: dial retries, session reconnects, read
        #: deadlines hit, lease-denied waits — the retry machinery's
        #: own accounting, assertable in chaos tests.
        self.stats = {
            "connect_retries": 0,
            "reconnects": 0,
            "read_timeouts": 0,
            "wait_naps": 0,
        }
        self._injector = fault_plan.injector() if fault_plan is not None else None
        self._shipped: set = set()
        self._channel: Optional[Union[LineChannel, FaultyChannel]] = None

    def run(self) -> int:
        """Lease-and-run until the coordinator says ``shutdown``.

        Returns the number of jobs completed.  Transport failures —
        refused dials, EOF mid-session, garbled replies, read
        deadlines — retry under :attr:`retry`; ``die_after`` and an
        injected crash exit by dropping the socket mid-lease
        (simulated crash), leaving any leased job for the coordinator
        to re-queue.
        """
        failures = 0
        try:
            while True:
                try:
                    channel = self._dial()
                except OSError:
                    failures += 1
                    self.stats["connect_retries"] += 1
                    if failures >= self.retry.max_attempts:
                        break
                    self.retry.sleep(failures)
                    continue
                jobs_before = self.jobs_done
                try:
                    finished = self._session(channel)
                except (ChannelTimeout, ProtocolError, OSError):
                    finished = False
                finally:
                    channel.close()
                    self._channel = None
                if finished:
                    break
                if self.jobs_done > jobs_before:
                    # the session made progress before breaking: a live
                    # but lossy fleet, not a dead coordinator — keep the
                    # full retry budget for the next reconnect
                    failures = 0
                # the session ended without a shutdown: the connection
                # broke (or went silent past its read deadline) — back
                # off and reconnect, resuming the same fault stream
                failures += 1
                self.stats["reconnects"] += 1
                if failures >= self.retry.max_attempts:
                    break
                self.retry.sleep(failures)
        except (WorkerDied, InjectedCrash):
            pass
        return self.jobs_done

    def _dial(self) -> Union[LineChannel, FaultyChannel]:
        channel: Union[LineChannel, FaultyChannel] = connect(self.host, self.port)
        if self._injector is not None:
            channel = FaultyChannel(channel, self._injector)
        return channel

    def _session(self, channel: Union[LineChannel, FaultyChannel]) -> bool:
        """One connection's lease loop; True when shut down cleanly."""
        self._channel = channel
        channel.send_msg("hello", worker=self.worker_id)
        if channel.recv_msg(timeout=self.recv_timeout) is None:
            return False
        wait_attempt = 0
        timeout_strikes = 0
        while True:
            channel.send_msg("lease", worker=self.worker_id)
            try:
                msg = channel.recv_msg(timeout=self.recv_timeout)
            except ChannelTimeout:
                # a dropped grant (or a stalled coordinator): re-ask;
                # the undelivered job's lease expires and re-queues
                self.stats["read_timeouts"] += 1
                timeout_strikes += 1
                if timeout_strikes >= self.retry.max_attempts:
                    raise
                continue
            timeout_strikes = 0
            if msg is None or msg["type"] == "shutdown":
                return msg is not None
            if msg["type"] == "wait":
                wait_attempt += 1
                self.stats["wait_naps"] += 1
                self.retry.sleep(
                    wait_attempt, floor=float(msg.get("retry_after", 0.05))
                )
                continue
            if msg["type"] != "job":
                continue
            if self.die_after is not None and self.jobs_done >= self.die_after:
                # simulated crash: vanish mid-lease without releasing it
                raise WorkerDied(
                    f"{self.worker_id} died after {self.jobs_done} job(s)"
                )
            wait_attempt = 0
            self._run_job(msg)
            self.jobs_done += 1

    def _run_job(self, msg: dict) -> None:
        channel = self._channel
        assert channel is not None
        address = msg["job_id"]
        attempt = msg.get("attempt")
        blob = msg.get("cache")
        if blob:
            entries = decode_entries(blob)
            self.cache.merge_entries(entries)
            self._shipped.update(entries)
        scenario = Scenario.from_dict(msg["scenario"])
        lease_timeout = float(msg.get("lease_timeout", 30.0))

        stop_beat = threading.Event()

        def _heartbeat() -> None:
            while not stop_beat.wait(lease_timeout / 3.0):
                try:
                    channel.send_msg(
                        "heartbeat", worker=self.worker_id, job_id=address
                    )
                except OSError:
                    return

        beat = threading.Thread(
            target=_heartbeat, name=f"{self.worker_id}-heartbeat", daemon=True
        )
        beat.start()
        error: Optional[str] = None
        result_dict = None
        exports_blob = None
        try:
            try:
                result = DesignStudy(scenario, cache=self.cache).run()
            except Exception as exc:  # non-domain crash: report, don't die
                error = repr(exc)
            else:
                result = result.with_provenance(
                    worker=self.worker_id, attempt=attempt
                )
                result_dict = result.to_dict()
                exports = self.cache.export_entries(exclude=self._shipped)
                if exports:
                    self._shipped.update(exports)
                    exports_blob = encode_entries(exports)
        finally:
            stop_beat.set()
        channel.send_msg(
            "result",
            worker=self.worker_id,
            job_id=address,
            attempt=attempt,
            result=result_dict,
            error=error,
            cache=exports_blob,
        )


def spawn_worker_process(
    host: str,
    port: int,
    *,
    worker_id: Optional[str] = None,
    die_after: Optional[int] = None,
    chaos_seed: Optional[int] = None,
    chaos_profile: Optional[str] = None,
    chaos_index: int = 0,
    chaos_fleet: int = 1,
) -> subprocess.Popen:
    """Launch ``python -m repro worker --connect host:port`` as a child.

    The child gets ``PYTHONPATH`` pointing at this package's ``src``
    tree so the CLI resolves regardless of the caller's cwd.  Chaos
    flags put the child's connection under the named seeded fault
    storm (``chaos_index`` / ``chaos_fleet`` pin its role in the
    fleet's plan).
    """
    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [sys.executable, "-m", "repro", "worker", "--connect", f"{host}:{port}"]
    if worker_id:
        cmd += ["--id", worker_id]
    if die_after is not None:
        cmd += ["--die-after", str(die_after)]
    if chaos_profile is not None:
        cmd += [
            "--chaos-profile",
            chaos_profile,
            "--chaos-seed",
            str(chaos_seed if chaos_seed is not None else 0),
            "--chaos-index",
            str(chaos_index),
            "--chaos-fleet",
            str(chaos_fleet),
        ]
    return subprocess.Popen(
        cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )


__all__ = ["FabricWorker", "WorkerDied", "spawn_worker_process"]
