"""Fabric worker: lease jobs, run studies, ship rows and cache entries.

A worker is a thin loop around the same :class:`DesignStudy` engine the
serial sweep uses — given the identical scenario and seed it produces
the identical :class:`StudyResult`, which is the whole bitwise-parity
story: the fabric only moves work, it never changes it.

Per job the worker:

1. merges the coordinator-shipped dwell-cache delta into its local
   cache (fleet-wide sharing, PR 3's ``merge_entries`` seam);
2. heartbeats on a side thread every ``lease_timeout / 3`` so a slow
   study keeps its lease while a dead process loses it;
3. runs the study and sends the result row back together with the
   dwell entries it newly measured (``export_entries`` minus what it
   already knows the coordinator has).

``die_after=N`` makes the worker abruptly drop its connection when it
leases its ``N+1``-th job — the fault-injection hook the kill/resume
tests and the CI smoke job use to exercise re-queueing.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path
from typing import Optional

from repro.fabric.protocol import LineChannel, connect
from repro.pipeline.cache import (
    DwellCurveCache,
    GLOBAL_DWELL_CACHE,
    decode_entries,
    encode_entries,
)
from repro.pipeline.runner import DesignStudy
from repro.pipeline.scenario import Scenario


class WorkerDied(RuntimeError):
    """Raised by the ``die_after`` fault-injection hook."""


class FabricWorker:
    """One worker process/thread's connection to a sweep coordinator."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        worker_id: Optional[str] = None,
        cache: Optional[DwellCurveCache] = None,
        die_after: Optional[int] = None,
    ):
        self.host = host
        self.port = port
        self.worker_id = worker_id or f"worker-{os.getpid()}-{id(self) & 0xFFFF:04x}"
        self.cache = cache if cache is not None else GLOBAL_DWELL_CACHE
        self.die_after = die_after
        self.jobs_done = 0
        self._shipped: set = set()
        self._channel: Optional[LineChannel] = None

    def run(self) -> int:
        """Lease-and-run until the coordinator says ``shutdown``.

        Returns the number of jobs completed.  ``die_after`` exits by
        dropping the socket mid-lease (simulated crash), leaving the
        leased job for the coordinator to re-queue.
        """
        self._channel = connect(self.host, self.port)
        try:
            self._channel.send_msg("hello", worker=self.worker_id)
            hello_ack = self._channel.recv_msg()
            if hello_ack is None:
                return self.jobs_done
            while True:
                self._channel.send_msg("lease", worker=self.worker_id)
                msg = self._channel.recv_msg()
                if msg is None or msg["type"] == "shutdown":
                    break
                if msg["type"] == "wait":
                    threading.Event().wait(float(msg.get("retry_after", 0.05)))
                    continue
                if msg["type"] != "job":
                    continue
                if self.die_after is not None and self.jobs_done >= self.die_after:
                    # simulated crash: vanish without releasing the lease
                    raise WorkerDied(
                        f"{self.worker_id} died after {self.jobs_done} job(s)"
                    )
                self._run_job(msg)
                self.jobs_done += 1
        except WorkerDied:
            pass
        finally:
            self._channel.close()
            self._channel = None
        return self.jobs_done

    def _run_job(self, msg: dict) -> None:
        channel = self._channel
        assert channel is not None
        address = msg["job_id"]
        attempt = msg.get("attempt")
        blob = msg.get("cache")
        if blob:
            entries = decode_entries(blob)
            self.cache.merge_entries(entries)
            self._shipped.update(entries)
        scenario = Scenario.from_dict(msg["scenario"])
        lease_timeout = float(msg.get("lease_timeout", 30.0))

        stop_beat = threading.Event()

        def _heartbeat() -> None:
            while not stop_beat.wait(lease_timeout / 3.0):
                try:
                    channel.send_msg(
                        "heartbeat", worker=self.worker_id, job_id=address
                    )
                except OSError:
                    return

        beat = threading.Thread(
            target=_heartbeat, name=f"{self.worker_id}-heartbeat", daemon=True
        )
        beat.start()
        error: Optional[str] = None
        result_dict = None
        exports_blob = None
        try:
            try:
                result = DesignStudy(scenario, cache=self.cache).run()
            except Exception as exc:  # non-domain crash: report, don't die
                error = repr(exc)
            else:
                result = result.with_provenance(
                    worker=self.worker_id, attempt=attempt
                )
                result_dict = result.to_dict()
                exports = self.cache.export_entries(exclude=self._shipped)
                if exports:
                    self._shipped.update(exports)
                    exports_blob = encode_entries(exports)
        finally:
            stop_beat.set()
        channel.send_msg(
            "result",
            worker=self.worker_id,
            job_id=address,
            attempt=attempt,
            result=result_dict,
            error=error,
            cache=exports_blob,
        )


def spawn_worker_process(
    host: str,
    port: int,
    *,
    worker_id: Optional[str] = None,
    die_after: Optional[int] = None,
) -> subprocess.Popen:
    """Launch ``python -m repro worker --connect host:port`` as a child.

    The child gets ``PYTHONPATH`` pointing at this package's ``src``
    tree so the CLI resolves regardless of the caller's cwd.
    """
    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [sys.executable, "-m", "repro", "worker", "--connect", f"{host}:{port}"]
    if worker_id:
        cmd += ["--id", worker_id]
    if die_after is not None:
        cmd += ["--die-after", str(die_after)]
    return subprocess.Popen(
        cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )


__all__ = ["FabricWorker", "WorkerDied", "spawn_worker_process"]
