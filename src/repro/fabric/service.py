"""Content-addressed design-study service (``repro serve``).

The service turns the pipeline into a long-lived endpoint: clients
``submit`` a scenario (inline ``to_dict()`` JSON or a registry name)
or a fixed sweep spec, get back a job id, and poll ``status`` /
``fetch`` for the finished artifact.  Jobs run on a thread pool; their
records walk the :data:`JOB_STATES` lifecycle
(``queued -> running -> done | failed``) under
:meth:`JobRecord.advance`, which rejects any transition not in that
order — a job can never un-finish.

Results are cached by **content address** — the same
``scenario_fingerprint+seed`` key the sweep fabric uses — so
resubmitting an identical study (whatever its name) returns the
already-computed artifact immediately, with ``cache_hit`` marked in
both the job record and the result provenance.

Resilience (PR 10): the request handler reads under a deadline
(``read_deadline``) so an idle half-open client releases its handler
thread instead of pinning it forever, and a garbled request fails only
that connection.  :class:`ServiceClient` retries each call (dial +
round-trip) under a seeded
:class:`~repro.fabric.resilience.RetryPolicy`, and ``wait_for`` polls
with the same jittered backoff instead of a fixed nap — a briefly
unreachable service looks slow, not broken.
"""

from __future__ import annotations

import hashlib
import json
import socketserver
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from repro.fabric.protocol import ChannelTimeout, LineChannel, connect
from repro.fabric.resilience import RetryPolicy
from repro.pipeline.cache import DwellCurveCache, GLOBAL_DWELL_CACHE
from repro.pipeline.runner import DesignStudy
from repro.pipeline.scenario import Scenario
from repro.pipeline.serialize import to_jsonable

#: Lifecycle of a submitted job, in order; transitions only move right.
JOB_STATES = ("queued", "running", "done", "failed")


class JobRecord:
    """One submitted job's lifecycle and (eventually) its artifact."""

    def __init__(self, job_id: str, address: str, kind: str):
        self.job_id = job_id
        self.address = address
        self.kind = kind
        self.state = "queued"
        self.submitted_at = time.time()
        self.finished_at: Optional[float] = None
        self.error: Optional[str] = None
        self.cache_hit = False

    def advance(self, state: str) -> None:
        """Move to ``state``; only forward transitions through
        :data:`JOB_STATES` are legal."""
        if state not in JOB_STATES:
            raise ValueError(
                f"unknown job state {state!r}; expected one of {list(JOB_STATES)}"
            )
        if JOB_STATES.index(state) <= JOB_STATES.index(self.state):
            raise ValueError(
                f"job {self.job_id} cannot go {self.state!r} -> {state!r}"
            )
        self.state = state
        if state in ("done", "failed"):
            self.finished_at = time.time()

    def snapshot(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "address": self.address,
            "job_kind": self.kind,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "cache_hit": self.cache_hit,
        }


def sweep_address(
    base: Scenario,
    axes: Optional[Dict[str, Any]],
    replications: int,
    seed0: int,
) -> str:
    """Content address of a whole fixed sweep spec: the base scenario's
    fingerprint crossed with the axes/replication plan."""
    spec = {
        "base": base.fingerprint(),
        "axes": axes or {},
        "replications": replications,
        "seed0": seed0,
    }
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"), default=list)
    return "sweep-" + hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class StudyService:
    """Socket front-end running studies on a bounded thread pool."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        pool_size: int = 2,
        cache: Optional[DwellCurveCache] = None,
        read_deadline: Optional[float] = 120.0,
    ):
        if read_deadline is not None and read_deadline <= 0:
            raise ValueError(f"read_deadline must be positive, got {read_deadline}")
        self.host = host
        self.port = port
        self.read_deadline = read_deadline
        self.cache = cache if cache is not None else GLOBAL_DWELL_CACHE
        self.jobs: Dict[str, JobRecord] = {}
        self._by_address: Dict[str, str] = {}
        self._artifacts: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="study"
        )
        self._server: Optional[socketserver.ThreadingTCPServer] = None
        self._server_thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        service = self

        class _Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:
                service._serve_connection(LineChannel(self.request))

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((self.host, self.port), _Handler)
        self.port = self._server.server_address[1]
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, name="study-service", daemon=True
        )
        self._server_thread.start()

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        self._pool.shutdown(wait=False)

    def serve_forever(self) -> None:
        """Blocking variant for the ``repro serve`` CLI."""
        if self._server is None:
            self.start()
        assert self._server_thread is not None
        self._server_thread.join()

    # -- request plane ------------------------------------------------

    def _serve_connection(self, channel: LineChannel) -> None:
        try:
            while True:
                try:
                    msg = channel.recv_msg(timeout=self.read_deadline)
                except ChannelTimeout:
                    # idle half-open client: reclaim the handler thread
                    break
                except Exception as exc:
                    try:
                        channel.send_msg("error", detail=str(exc))
                    except OSError:
                        pass
                    break
                if msg is None:
                    break
                try:
                    self._dispatch(channel, msg)
                except Exception as exc:
                    channel.send_msg("error", detail=repr(exc))
        finally:
            channel.close()

    def _dispatch(self, channel: LineChannel, msg: Dict[str, Any]) -> None:
        kind = msg["type"]
        if kind == "submit":
            job_id, record = self.submit(msg)
            channel.send_msg("ok", **record.snapshot())
        elif kind == "status":
            record = self._record(msg.get("job_id"))
            channel.send_msg("ok", **record.snapshot())
        elif kind == "fetch":
            record = self._record(msg.get("job_id"))
            artifact = self._artifacts.get(record.address)
            channel.send_msg(
                "ok", artifact=artifact, **record.snapshot()
            )
        else:
            channel.send_msg(
                "error", detail=f"unexpected {kind!r} on the service plane"
            )

    def _record(self, job_id: Optional[str]) -> JobRecord:
        with self._lock:
            record = self.jobs.get(job_id or "")
        if record is None:
            raise KeyError(f"unknown job id {job_id!r}")
        return record

    # -- job intake ---------------------------------------------------

    def submit(self, msg: Dict[str, Any]) -> Tuple[str, JobRecord]:
        """Register a study or sweep job; content-address dedup means an
        identical resubmission reuses the existing record/artifact."""
        if msg.get("scenario") is not None:
            scenario = Scenario.from_dict(msg["scenario"])
            address = scenario.content_address()
            kind = "study"
            runner = lambda: self._run_study(scenario)  # noqa: E731
        elif msg.get("name") is not None:
            from repro.pipeline.registry import get_scenario

            scenario = get_scenario(msg["name"])
            if msg.get("seed") is not None:
                scenario = scenario.derive(seed=int(msg["seed"]))
            address = scenario.content_address()
            kind = "study"
            runner = lambda: self._run_study(scenario)  # noqa: E731
        elif msg.get("sweep") is not None:
            spec = dict(msg["sweep"])
            base = (
                Scenario.from_dict(spec["base"])
                if isinstance(spec.get("base"), dict)
                else None
            )
            if base is None:
                from repro.pipeline.registry import get_scenario

                base = get_scenario(spec["base"])
            axes = spec.get("axes")
            replications = int(spec.get("replications", 1))
            seed0 = int(spec.get("seed0", 0))
            address = sweep_address(base, axes, replications, seed0)
            kind = "sweep"
            runner = lambda: self._run_sweep(base, axes, replications, seed0)  # noqa: E731
        else:
            raise ValueError(
                "submit needs one of 'scenario' (inline dict), 'name' "
                "(registry scenario), or 'sweep' (fixed sweep spec)"
            )

        with self._lock:
            existing = self._by_address.get(address)
            if existing is not None and self.jobs[existing].state != "failed":
                record = self.jobs[existing]
                record.cache_hit = True
                return existing, record
            job_id = f"job-{uuid.uuid4().hex[:12]}"
            record = JobRecord(job_id, address, kind)
            self.jobs[job_id] = record
            self._by_address[address] = job_id
        self._pool.submit(self._execute, record, runner)
        return job_id, record

    def _execute(self, record: JobRecord, runner) -> None:
        record.advance("running")
        try:
            artifact = runner()
        except Exception as exc:
            record.error = repr(exc)
            record.advance("failed")
            return
        with self._lock:
            self._artifacts[record.address] = artifact
        record.advance("done")

    def _run_study(self, scenario: Scenario) -> Dict[str, Any]:
        result = DesignStudy(scenario, cache=self.cache).run()
        result = result.with_provenance(service=True)
        return to_jsonable(result.to_dict())

    def _run_sweep(
        self,
        base: Scenario,
        axes: Optional[Dict[str, Any]],
        replications: int,
        seed0: int,
    ) -> Dict[str, Any]:
        from repro.pipeline.sweep import run_sweep

        result = run_sweep(
            base,
            axes,
            replications=replications,
            seed0=seed0,
            max_workers=1,
            cache=self.cache,
        )
        return to_jsonable(result.to_dict())


class ServiceClient:
    """Tiny blocking client for the study service (one dial per call).

    Every call retries the whole dial-and-round-trip under ``retry``
    (refused dials, EOF, reply deadline) — safe because the service is
    content-addressed, so a replayed ``submit`` dedups to the same job.
    ``timeout`` bounds both the dial and the wait for the reply line.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        *,
        retry: Optional[RetryPolicy] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = (
            retry
            if retry is not None
            else RetryPolicy(max_attempts=4, base_delay=0.05, seed=0)
        )

    def _call(self, kind: str, **fields: Any) -> Dict[str, Any]:
        def round_trip() -> Dict[str, Any]:
            channel = connect(self.host, self.port, timeout=self.timeout)
            try:
                channel.send_msg(kind, **fields)
                reply = channel.recv_msg(timeout=self.timeout)
            finally:
                channel.close()
            if reply is None:
                raise ConnectionError("service hung up without replying")
            return reply

        # ChannelTimeout is a TimeoutError, itself an OSError: one
        # retry_on class covers refused dials, EOF and reply deadlines
        reply = self.retry.call(round_trip, retry_on=(OSError,))
        if reply["type"] == "error":
            raise RuntimeError(f"service error: {reply.get('detail')}")
        return reply

    def submit_scenario(self, scenario: Scenario) -> Dict[str, Any]:
        return self._call("submit", scenario=scenario.to_dict())

    def submit_name(self, name: str, seed: Optional[int] = None) -> Dict[str, Any]:
        return self._call("submit", name=name, seed=seed)

    def submit_sweep(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        return self._call("submit", sweep=spec)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._call("status", job_id=job_id)

    def fetch(self, job_id: str) -> Dict[str, Any]:
        return self._call("fetch", job_id=job_id)

    def wait_for(
        self, job_id: str, timeout: float = 60.0, poll: float = 0.1
    ) -> Dict[str, Any]:
        """Poll ``status`` until the job finishes, then ``fetch`` it.

        Polls back off under :attr:`retry`'s jittered schedule with
        ``poll`` as the floor, so a fleet of waiting clients spreads
        its polls instead of hammering in lockstep."""
        deadline = time.monotonic() + timeout
        attempt = 0
        while True:
            snap = self.status(job_id)
            if snap["state"] in ("done", "failed"):
                return self.fetch(job_id)
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {snap['state']!r} after {timeout:g}s"
                )
            attempt += 1
            self.retry.sleep(attempt, floor=poll)


__all__ = [
    "JOB_STATES",
    "JobRecord",
    "ServiceClient",
    "StudyService",
    "sweep_address",
]
