"""Sweep coordinator: decompose, lease, collect, merge — deterministically.

The coordinator turns one fixed sweep spec into content-addressed
:class:`~repro.pipeline.sweep.SweepJob` s
(:func:`~repro.pipeline.sweep.fixed_jobs`), serves them to workers over
the line-JSON protocol, and folds finished rows back together with
:func:`~repro.pipeline.sweep.merge_rows` **in dispatch order** — so the
distributed result is bitwise identical (row values, per-cell Welford
statistics) to serial :func:`~repro.pipeline.sweep.run_sweep` on the
same spec, whatever order the fleet lands rows in.

Fault model:

* every grant is a **lease** with a deadline; workers heartbeat
  long-running studies to renew it;
* a worker that disconnects or lets its lease expire gets the job
  **re-queued** (the event is recorded) until ``max_attempts``, after
  which the job lands as PR 4's synthetic ``failed_stage="worker"``
  row — the sweep always completes;
* rows live in a content-addressed :class:`~repro.fabric.store.ResultStore`,
  so an address is computed at most once per fleet (late duplicates
  from zombie workers are dropped) and ``resume_path`` rebuilds the
  done-set from a previous run's JSONL — a killed sweep continues
  instead of restarting;
* workers ship the dwell-curve entries they measured with each result;
  the coordinator merges them and forwards the fleet-wide cache with
  every grant, so one worker's measurement is every worker's hit;
* every connection read carries a deadline (``read_deadline``,
  default ``4 x lease_timeout``): a half-open worker surfaces as a
  typed :class:`~repro.fabric.protocol.ChannelTimeout`, its
  connection is dropped and its leases re-queued, and the handler
  thread is reclaimed — it can never hang the coordinator;
* a garbled line (:class:`~repro.fabric.protocol.ProtocolError`)
  fails only the connection that sent it — counted in
  ``config["fabric"]["protocol_errors"]``, leases re-queued, accept
  loop untouched;
* resuming from a torn JSONL (the artifact of a killed writer)
  recovers the intact prefix and reports the torn row in
  ``config["fabric"]["recovered_tail"]``.

Every recovery is accounted: ``config["fabric"]`` carries the requeue
ledger, protocol-error / read-timeout / duplicate counters, resume
statistics and (when a chaos storm is active) the chaos seed and
profile — so a sweep that survived a fault storm says exactly what it
survived.
"""

from __future__ import annotations

import json
import socketserver
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Sequence, Union

from repro.fabric.protocol import ChannelTimeout, LineChannel, ProtocolError
from repro.fabric.store import ResultStore
from repro.pipeline.cache import (
    DwellCurveCache,
    GLOBAL_DWELL_CACHE,
    decode_entries,
    encode_entries,
)
from repro.pipeline.result import StudyResult
from repro.pipeline.scenario import Scenario
from repro.pipeline.serialize import to_jsonable
from repro.pipeline.sweep import (
    SweepResult,
    crash_row,
    expand_cells,
    fixed_jobs,
    merge_rows,
    open_jsonl,
    study_row,
)


class FabricTimeout(RuntimeError):
    """The fleet did not finish the sweep within the caller's timeout."""


@dataclass
class _Lease:
    worker: str
    deadline: float
    attempt: int


class SweepCoordinator:
    """Serves one fixed sweep to a worker fleet and merges the rows.

    Parameters
    ----------
    base, axes, replications, seed0:
        The sweep spec, exactly as :func:`run_sweep` takes it (fixed
        mode; the adaptive stopping rule needs round barriers and stays
        a single-host feature).
    host, port:
        Listen endpoint; port 0 picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    lease_timeout:
        Seconds a leased job may go without a result or heartbeat
        before it is re-queued.
    read_deadline:
        Per-read timeout on worker connections (defaults to
        ``4 x lease_timeout``).  A healthy worker leases or heartbeats
        far more often; a connection silent past this is treated as
        half-open, closed, and its leases re-queued.
    max_attempts:
        Lease attempts per job before it is recorded as a synthetic
        ``failed_stage="worker"`` row instead of re-queued.
    cache:
        Fleet-shared dwell-curve cache (defaults to the process-wide
        one); worker exports merge into it, grants ship it out.
    jsonl_path:
        Stream every finished row as one JSON line (written once per
        content address — resumed rows are not rewritten).
    resume_path:
        Rebuild the done-set from this JSONL before dispatching;
        usually the same file as ``jsonl_path`` (the coordinator then
        appends).  Missing file is fine — there is nothing to resume.
    """

    def __init__(
        self,
        base: Union[Scenario, str],
        axes: Optional[Dict[str, Sequence[Any]]] = None,
        replications: int = 1,
        seed0: int = 0,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 30.0,
        read_deadline: Optional[float] = None,
        max_attempts: int = 3,
        cache: Optional[DwellCurveCache] = None,
        jsonl_path: Optional[str] = None,
        resume_path: Optional[str] = None,
        keep_results: bool = False,
    ):
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be positive, got {lease_timeout}")
        if read_deadline is not None and read_deadline <= 0:
            raise ValueError(f"read_deadline must be positive, got {read_deadline}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if isinstance(base, str):
            from repro.pipeline.registry import get_scenario

            base = get_scenario(base)
        self.base = base
        self._cells = expand_cells(base, axes)
        self.jobs = fixed_jobs(base, axes, replications, seed0)
        self._spec_config = {
            "mode": "fixed",
            "min_replications": replications,
            "seed0": seed0,
        }
        self._jobs_by_address: Dict[str, Any] = {}
        for job in self.jobs:
            self._jobs_by_address.setdefault(job.address, job)
        self.host = host
        self.port = port
        self.lease_timeout = lease_timeout
        self.read_deadline = (
            read_deadline if read_deadline is not None else 4.0 * lease_timeout
        )
        self.max_attempts = max_attempts
        self.cache = cache if cache is not None else GLOBAL_DWELL_CACHE
        self.keep_results = keep_results
        self.store = ResultStore()
        self.requeues: List[Dict[str, Any]] = []
        self.duplicates_ignored = 0
        self.resumed = 0
        self.retried_worker_failures = 0
        self.recovered_tail = 0
        self.protocol_errors = 0
        self.read_timeouts = 0
        #: Chaos storm descriptor (seed/profile), attached by
        #: :func:`run_fabric_sweep` when the fleet runs faulted —
        #: surfaced in ``config["fabric"]["chaos"]``.
        self.chaos_info: Optional[Dict[str, Any]] = None
        #: Thread-mode worker recovery ledgers, aggregated by
        #: :func:`run_fabric_sweep` after the fleet joins.
        self.worker_stats: Optional[Dict[str, Dict[str, int]]] = None
        self._results: Dict[str, StudyResult] = {}
        self._pending: Deque[str] = deque()
        self._leases: Dict[str, _Lease] = {}
        self._attempts: Dict[str, int] = {}
        self._shipped: Dict[str, set] = {}
        self._workers_seen: List[str] = []
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._server: Optional[socketserver.ThreadingTCPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._elapsed: Optional[float] = None

        if resume_path is not None:
            try:
                report = self.store.load_jsonl(
                    resume_path, wanted=self._jobs_by_address
                )
            except FileNotFoundError:
                report = None
            if report is not None:
                self.resumed = report.adopted
                self.retried_worker_failures = report.skipped
                self.recovered_tail = report.recovered_tail
                if report.recovered_tail and resume_path == jsonl_path:
                    # heal the torn stub before appending, or the next
                    # streamed row would fuse with it into one corrupt
                    # line and poison the *next* resume
                    raw = Path(resume_path).read_bytes()
                    Path(resume_path).write_bytes(raw[: raw.rfind(b"\n") + 1])
            for address in list(self._jobs_by_address):
                row = self.store.get(address)
                if row is not None:
                    row["cache_hit"] = True
        jsonl_mode = "a" if resume_path is not None and resume_path == jsonl_path else "w"
        self._writer = open_jsonl(jsonl_path, mode=jsonl_mode)
        for address in dict.fromkeys(job.address for job in self.jobs):
            if address not in self.store:
                self._pending.append(address)
        self._check_complete_locked()

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Bind the listen socket and serve worker connections."""
        coordinator = self

        class _Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:  # one thread per worker connection
                coordinator._serve_connection(LineChannel(self.request))

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((self.host, self.port), _Handler)
        self.port = self._server.server_address[1]
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, name="fabric-coordinator", daemon=True
        )
        self._started_at = time.perf_counter()
        self._server_thread.start()

    def stop(self) -> None:
        if self._elapsed is None and self._started_at is not None:
            self._elapsed = time.perf_counter() - self._started_at
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until every job has a row; reap leases while waiting."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._done.wait(0.2):
            with self._lock:
                self._reap_locked()
            if deadline is not None and time.monotonic() > deadline:
                raise FabricTimeout(
                    f"sweep incomplete after {timeout:g}s "
                    f"({len(self.store)}/{len(self._jobs_by_address)} rows); "
                    f"rows streamed so far can seed a --resume run"
                )

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    # -- worker connection plane --------------------------------------

    def _serve_connection(self, channel: LineChannel) -> None:
        worker = None
        try:
            while True:
                try:
                    msg = channel.recv_msg(timeout=self.read_deadline)
                except ChannelTimeout:
                    # half-open or stalled peer: reclaim the handler
                    # thread; any leases re-queue on release below
                    with self._lock:
                        self.read_timeouts += 1
                    break
                except ProtocolError:
                    # a garbled line fails only this connection — the
                    # accept loop and every other worker keep going
                    with self._lock:
                        self.protocol_errors += 1
                    break
                except OSError:
                    break
                if msg is None:
                    break
                kind = msg["type"]
                if kind == "hello":
                    worker = str(msg.get("worker", "anonymous"))
                    with self._lock:
                        if worker not in self._workers_seen:
                            self._workers_seen.append(worker)
                        self._shipped.setdefault(worker, set())
                    channel.send_msg("ok", worker=worker)
                elif kind == "lease":
                    worker = str(msg.get("worker", worker or "anonymous"))
                    self._grant(channel, worker)
                elif kind == "heartbeat":
                    self._renew(str(msg.get("worker", worker)), msg.get("job_id"))
                elif kind == "result":
                    self._land(str(msg.get("worker", worker)), msg)
                else:
                    channel.send_msg(
                        "error", detail=f"unexpected {kind!r} on the sweep plane"
                    )
        finally:
            channel.close()
            if worker is not None:
                self._release_worker(worker)

    def _grant(self, channel: LineChannel, worker: str) -> None:
        with self._lock:
            self._reap_locked()
            job = None
            attempt = 0
            while self._pending:
                address = self._pending.popleft()
                if address in self.store:
                    continue
                job = self._jobs_by_address[address]
                attempt = self._attempts.get(address, 0) + 1
                self._attempts[address] = attempt
                self._leases[address] = _Lease(
                    worker=worker,
                    deadline=time.monotonic() + self.lease_timeout,
                    attempt=attempt,
                )
                break
            finished = self._done.is_set()
        if job is None:
            if finished:
                channel.send_msg("shutdown")
            else:
                # everything is leased out; the worker naps and re-asks
                # (an expired lease may put a job back on the queue)
                channel.send_msg("wait", retry_after=0.05)
            return
        exports = self.cache.export_entries(exclude=self._shipped.get(worker, set()))
        if exports:
            with self._lock:
                self._shipped.setdefault(worker, set()).update(exports)
        channel.send_msg(
            "job",
            job_id=job.address,
            cell=job.cell,
            rep=job.rep,
            attempt=attempt,
            scenario=job.scenario.to_dict(),
            lease_timeout=self.lease_timeout,
            cache=encode_entries(exports) if exports else None,
        )

    def _renew(self, worker: str, address: Optional[str]) -> None:
        if address is None:
            return
        with self._lock:
            lease = self._leases.get(address)
            if lease is not None and lease.worker == worker:
                lease.deadline = time.monotonic() + self.lease_timeout

    def _land(self, worker: str, msg: Dict[str, Any]) -> None:
        address = msg.get("job_id")
        job = self._jobs_by_address.get(address)
        if job is None:
            return
        blob = msg.get("cache")
        if blob:
            entries = decode_entries(blob)
            self.cache.merge_entries(entries)
            with self._lock:
                self._shipped.setdefault(worker, set()).update(entries)
        result: Optional[StudyResult] = None
        if msg.get("error") is not None:
            # the study itself raised inside the worker — terminal, the
            # same crash-proof accounting run_sweep applies in-process
            row = crash_row(job.cell, job.scenario, 0, RuntimeError(msg["error"]))
            row["detail"] = str(msg["error"])
        else:
            result = StudyResult.from_dict(msg["result"])
            row = study_row(job.cell, result, 0)
        row["worker"] = worker
        row["attempt"] = msg.get("attempt")
        with self._lock:
            self._leases.pop(address, None)
            self._record_locked(address, row, result)

    def _release_worker(self, worker: str) -> None:
        with self._lock:
            held = [
                address
                for address, lease in self._leases.items()
                if lease.worker == worker
            ]
            for address in held:
                self._requeue_locked(address, reason="disconnect")

    # -- lease bookkeeping (all *_locked under self._lock) -------------

    def _reap_locked(self) -> None:
        now = time.monotonic()
        expired = [
            address
            for address, lease in self._leases.items()
            if lease.deadline < now
        ]
        for address in expired:
            self._requeue_locked(address, reason="lease-expired")

    def _requeue_locked(self, address: str, reason: str) -> None:
        lease = self._leases.pop(address, None)
        if address in self.store:
            return
        job = self._jobs_by_address[address]
        attempt = self._attempts.get(address, 0)
        self.requeues.append(
            {
                "address": address,
                "cell": job.cell,
                "seed": job.scenario.seed,
                "worker": lease.worker if lease else None,
                "attempt": attempt,
                "reason": reason,
            }
        )
        if attempt >= self.max_attempts:
            row = crash_row(
                job.cell,
                job.scenario,
                0,
                RuntimeError(
                    f"worker {reason} after {attempt} lease attempt(s)"
                ),
            )
            row["worker"] = lease.worker if lease else None
            row["attempt"] = attempt
            self._record_locked(address, row, None)
        else:
            self._pending.appendleft(address)

    def _record_locked(
        self,
        address: str,
        row: Dict[str, Any],
        result: Optional[StudyResult],
    ) -> None:
        if not self.store.put(address, row):
            self.duplicates_ignored += 1
            return
        if self.keep_results and result is not None:
            self._results[address] = result
        if self._writer is not None:
            self._writer.write(json.dumps(to_jsonable(row)) + "\n")
            self._writer.flush()
        self._check_complete_locked()

    def _check_complete_locked(self) -> None:
        if len(self.store) >= len(self._jobs_by_address):
            if self._elapsed is None and self._started_at is not None:
                self._elapsed = time.perf_counter() - self._started_at
            self._done.set()

    # -- merge ---------------------------------------------------------

    def result(self) -> SweepResult:
        """Merge the collected rows into a :class:`SweepResult` that is
        bitwise identical (row values, per-cell statistics) to serial
        ``run_sweep`` on the same spec — rows fold in dispatch order,
        not arrival order."""
        if not self._done.is_set():
            raise RuntimeError(
                "sweep incomplete; call wait() before result()"
            )
        rows = [self.store.get(job.address) for job in self.jobs]
        results = [
            self._results[job.address]
            for job in self.jobs
            if job.address in self._results
        ]
        config = dict(self._spec_config)
        config["fabric"] = {
            "workers": list(self._workers_seen),
            "lease_timeout": self.lease_timeout,
            "read_deadline": self.read_deadline,
            "max_attempts": self.max_attempts,
            "requeues": list(self.requeues),
            "resumed": self.resumed,
            "retried_worker_failures": self.retried_worker_failures,
            "recovered_tail": self.recovered_tail,
            "duplicates_ignored": self.duplicates_ignored,
            "protocol_errors": self.protocol_errors,
            "read_timeouts": self.read_timeouts,
            "cache_hits": self.resumed + self.store.hits,
        }
        if self.chaos_info is not None:
            config["fabric"]["chaos"] = dict(self.chaos_info)
        if self.worker_stats is not None:
            config["fabric"]["worker_stats"] = {
                worker: dict(stats) for worker, stats in self.worker_stats.items()
            }
        elapsed = self._elapsed if self._elapsed is not None else 0.0
        return merge_rows(
            self.base,
            self._cells,
            rows,
            executor="fabric",
            elapsed=elapsed,
            results=results,
            config=config,
        )


def run_fabric_sweep(
    base: Union[Scenario, str],
    axes: Optional[Dict[str, Sequence[Any]]] = None,
    replications: int = 1,
    seed0: int = 0,
    *,
    workers: int = 2,
    worker_mode: str = "thread",
    host: str = "127.0.0.1",
    port: int = 0,
    lease_timeout: float = 30.0,
    read_deadline: Optional[float] = None,
    max_attempts: int = 3,
    cache: Optional[DwellCurveCache] = None,
    jsonl_path: Optional[str] = None,
    resume_path: Optional[str] = None,
    keep_results: bool = False,
    worker_caches: Optional[Sequence[DwellCurveCache]] = None,
    timeout: Optional[float] = None,
    chaos_seed: Optional[int] = None,
    chaos_profile: Optional[str] = None,
    fault_plans: Optional[Sequence[Any]] = None,
    worker_recv_timeout: Optional[float] = 60.0,
) -> SweepResult:
    """Run one fixed sweep on a local fleet; the drop-in distributed
    twin of :func:`~repro.pipeline.sweep.run_sweep`.

    Starts a :class:`SweepCoordinator`, spins up ``workers`` local
    workers (in-process threads by default, ``worker_mode="process"``
    for real subprocesses), waits for every row, and merges.  The
    returned :class:`SweepResult` is bitwise identical in rows and
    per-cell statistics to serial ``run_sweep`` on the same spec.

    ``worker_caches`` (thread mode) pins each worker to its own
    :class:`DwellCurveCache` — the default, and what the cache-sharing
    tests use to prove entries travel over the wire rather than through
    shared process memory.

    Chaos: ``chaos_profile`` + ``chaos_seed`` run the whole fleet
    under a named seeded fault storm
    (:func:`~repro.fabric.resilience.chaos_plan` per worker), or pass
    explicit per-worker ``fault_plans`` (thread mode).  The merged
    result must *still* be bitwise identical to serial — faults only
    exercise the recovery machinery, never the data — and the storm is
    recorded in ``config["fabric"]["chaos"]``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if worker_mode not in ("thread", "process"):
        raise ValueError(f"worker_mode must be 'thread' or 'process', got {worker_mode!r}")
    if chaos_seed is not None and chaos_profile is None:
        raise ValueError("chaos_seed needs chaos_profile (the storm to seed)")
    if fault_plans is not None and chaos_profile is not None:
        raise ValueError("pass either fault_plans or chaos_profile, not both")
    if fault_plans is not None and worker_mode != "thread":
        raise ValueError("explicit fault_plans need worker_mode='thread'")
    from repro.fabric.resilience import fleet_plans
    from repro.fabric.worker import FabricWorker, spawn_worker_process

    if chaos_profile is not None:
        chaos_seed = 0 if chaos_seed is None else chaos_seed
        fault_plans = fleet_plans(
            chaos_profile, chaos_seed, workers, lease_timeout=lease_timeout
        )

    coordinator = SweepCoordinator(
        base,
        axes,
        replications,
        seed0,
        host=host,
        port=port,
        lease_timeout=lease_timeout,
        read_deadline=read_deadline,
        max_attempts=max_attempts,
        cache=cache,
        jsonl_path=jsonl_path,
        resume_path=resume_path,
        keep_results=keep_results,
    )
    if chaos_profile is not None:
        coordinator.chaos_info = {"seed": chaos_seed, "profile": chaos_profile}
    elif fault_plans is not None:
        coordinator.chaos_info = {"seed": None, "profile": "custom"}
    coordinator.start()
    threads: List[threading.Thread] = []
    fleet: List[Any] = []
    procs = []
    try:
        if not coordinator.finished:
            if worker_mode == "thread":
                for i in range(workers):
                    worker_cache = (
                        worker_caches[i]
                        if worker_caches is not None and i < len(worker_caches)
                        else DwellCurveCache()
                    )
                    fw = FabricWorker(
                        coordinator.host,
                        coordinator.port,
                        worker_id=f"local-{i}",
                        cache=worker_cache,
                        fault_plan=(
                            fault_plans[i]
                            if fault_plans is not None and i < len(fault_plans)
                            else None
                        ),
                        recv_timeout=worker_recv_timeout,
                    )
                    fleet.append(fw)
                    t = threading.Thread(
                        target=fw.run, name=f"fabric-{fw.worker_id}", daemon=True
                    )
                    t.start()
                    threads.append(t)
            else:
                procs = [
                    spawn_worker_process(
                        coordinator.host,
                        coordinator.port,
                        worker_id=f"proc-{i}",
                        chaos_seed=chaos_seed,
                        chaos_profile=chaos_profile,
                        chaos_index=i,
                        chaos_fleet=workers,
                    )
                    for i in range(workers)
                ]
        coordinator.wait(timeout=timeout)
    finally:
        coordinator.stop()
        for t in threads:
            t.join(timeout=5.0)
        for p in procs:
            p.terminate()
            p.wait(timeout=10.0)
    if fleet:
        coordinator.worker_stats = {fw.worker_id: fw.stats for fw in fleet}
    return coordinator.result()


__all__ = ["FabricTimeout", "SweepCoordinator", "run_fabric_sweep"]
