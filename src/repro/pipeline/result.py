"""Structured, serializable study results.

A :class:`StudyResult` is the machine-readable record of one
:class:`~repro.pipeline.runner.DesignStudy` run: the scenario that was
executed, one :class:`~repro.pipeline.stages.StageRecord` per pipeline
stage (artifact + status + timing), and provenance.  It round-trips
losslessly through JSON — ``StudyResult.from_json(result.to_json())``
compares equal — so results can be archived, diffed, and post-processed
without re-running anything.

Rich, non-serializable objects (allocations, traces, characterised
applications) ride along in :class:`StudyAttachments`, which is excluded
from comparison and serialisation.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.pipeline.scenario import Scenario
from repro.pipeline.stages import StageRecord


@dataclass
class StudyAttachments:
    """Rich in-process objects produced by a run (not serialized)."""

    params: list = field(default_factory=list)
    case_apps: Optional[list] = None
    analyzed: list = field(default_factory=list)
    allocation: Optional[object] = None
    trace: Optional[object] = None


@dataclass(frozen=True)
class StudyResult:
    """Outcome of running one scenario through the design pipeline."""

    scenario: Scenario
    stages: Tuple[StageRecord, ...]
    provenance: Dict[str, Any] = field(default_factory=dict)
    attachments: Optional[StudyAttachments] = field(
        default=None, compare=False, repr=False
    )

    @property
    def ok(self) -> bool:
        """Whether no stage failed (skipped stages are fine)."""
        return all(record.status != "failed" for record in self.stages)

    @property
    def stage_names(self) -> List[str]:
        return [record.name for record in self.stages]

    def stage(self, name: str) -> StageRecord:
        for record in self.stages:
            if record.name == name:
                return record
        raise KeyError(
            f"no stage {name!r}; stages are {self.stage_names}"
        )

    def artifact(self, name: str) -> Dict[str, Any]:
        """The named stage's artifact dict (empty if skipped/failed)."""
        return self.stage(name).artifact

    @property
    def slot_count(self) -> Optional[int]:
        """TT slots used by the allocation stage (``None`` if it did not run)."""
        record = self.stage("allocate")
        return record.artifact.get("slot_count") if record.ok else None

    @property
    def duration(self) -> float:
        """Total wall-clock seconds across all stages."""
        return sum(record.elapsed for record in self.stages)

    def raise_for_failure(self) -> "StudyResult":
        """Raise :class:`ValueError` with the failed stage's diagnostic.

        Callers that need the legacy raise-on-infeasible semantics (the
        experiment drivers, programmatic pipelines) use this instead of
        silently consuming ``None`` attachments.
        """
        for record in self.stages:
            if record.status == "failed":
                raise ValueError(
                    f"study {self.scenario.name!r} failed at stage "
                    f"{record.name!r}: {record.detail}"
                )
        return self

    def with_provenance(self, **extra: Any) -> "StudyResult":
        """A copy with ``extra`` merged into the provenance record.

        The sweep fabric uses this to tag execution metadata that is a
        property of *where* the study ran, not what it computed: the
        reserved keys are ``worker`` (fabric worker id), ``attempt``
        (1-based lease attempt), and ``cache_hit`` (the result was
        served from a content-addressed store without re-running).
        Stage artifacts are untouched, so provenance never perturbs the
        bitwise parity of result rows.
        """
        return dataclasses.replace(
            self, provenance={**self.provenance, **extra}
        )

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "stages": [record.to_dict() for record in self.stages],
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StudyResult":
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            stages=tuple(
                StageRecord.from_dict(record) for record in data["stages"]
            ),
            provenance=data.get("provenance", {}),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "StudyResult":
        return cls.from_dict(json.loads(text))

    # -- reporting --------------------------------------------------------

    def summary(self) -> str:
        """Human-readable run summary (stages, allocation, verdicts)."""
        from repro.experiments.reporting import format_table

        rows = []
        for record in self.stages:
            note = record.detail
            if record.name == "allocate" and record.ok:
                note = (
                    f"{record.artifact['slot_count']} TT slots: "
                    + " | ".join(",".join(s) for s in record.artifact["slots"])
                )
            elif record.name == "characterize" and record.ok:
                note = f"{len(record.artifact['applications'])} applications"
            elif record.name == "cosim" and record.ok:
                met = record.artifact["all_deadlines_met"]
                note = "all deadlines met" if met else "DEADLINE MISS"
            rows.append([record.name, record.status, f"{record.elapsed:.3f}", note])
        table = format_table(["stage", "status", "elapsed [s]", "notes"], rows)
        head = f"Study {self.scenario.name!r} — {'ok' if self.ok else 'FAILED'}"
        if self.scenario.description:
            head += f"\n{self.scenario.description}"
        return f"{head}\n{table}"


__all__ = ["StudyAttachments", "StudyResult"]
