"""Unified scenario pipeline: declarative studies, structured results.

The paper's workflow — plant model -> dwell characterisation -> PWL
model fit -> wait-time analysis -> TT-slot allocation -> co-simulation
verification — as a composable API:

* :class:`~repro.pipeline.scenario.Scenario` — a run described as data
  (source, dwell shape, analysis method, allocator, bus, co-sim);
* :class:`~repro.pipeline.runner.DesignStudy` — executes the chain as
  named, introspectable stages;
* :class:`~repro.pipeline.result.StudyResult` — per-stage artifacts,
  timings, and provenance; round-trips to/from JSON;
* :mod:`~repro.pipeline.registry` — the paper's Table I / Fig 3-5
  setups by name, plus :func:`scenario_grid` sweeps;
* :func:`~repro.pipeline.runner.run_many` — parallel batch execution
  with memoized dwell-curve measurements
  (:class:`~repro.pipeline.cache.DwellCurveCache`).

Quickstart::

    from repro.pipeline import DesignStudy, get_scenario, run_many, scenario_grid

    study = DesignStudy(get_scenario("paper-table1")).run()
    print(study.slot_count)          # 3
    print(study.to_json(indent=2))   # machine-readable artifacts

    sweep = run_many(scenario_grid("paper-table1"))
"""

from repro.pipeline.adaptive import AdaptiveScheduler, CellState
from repro.pipeline.cache import (
    GLOBAL_DWELL_CACHE,
    DwellCurveCache,
    MeasuredApplication,
    ServoMeasurement,
)
from repro.pipeline.registry import (
    get_scenario,
    register_scenario,
    scenario_grid,
    scenario_names,
    scenarios,
)
from repro.pipeline.result import StudyAttachments, StudyResult
from repro.pipeline.runner import DesignStudy, run_many, run_study
from repro.pipeline.scenario import (
    ALLOCATORS,
    DISTURBANCES,
    DWELL_SHAPES,
    KERNELS,
    METHODS,
    NETWORKS,
    SOURCES,
    BusSpec,
    Scenario,
)
from repro.pipeline.serialize import to_jsonable
from repro.pipeline.stages import STAGE_ORDER, StageRecord, StudyContext
from repro.pipeline.sweep import (
    CellStats,
    SweepJob,
    SweepResult,
    crash_row,
    expand_cells,
    expand_sweep,
    fixed_jobs,
    merge_rows,
    run_sweep,
    study_row,
)

__all__ = [
    "ALLOCATORS",
    "AdaptiveScheduler",
    "BusSpec",
    "CellState",
    "CellStats",
    "DISTURBANCES",
    "DWELL_SHAPES",
    "DesignStudy",
    "DwellCurveCache",
    "GLOBAL_DWELL_CACHE",
    "KERNELS",
    "METHODS",
    "MeasuredApplication",
    "NETWORKS",
    "SOURCES",
    "STAGE_ORDER",
    "Scenario",
    "ServoMeasurement",
    "StageRecord",
    "StudyAttachments",
    "StudyContext",
    "StudyResult",
    "SweepJob",
    "SweepResult",
    "crash_row",
    "expand_cells",
    "expand_sweep",
    "fixed_jobs",
    "get_scenario",
    "merge_rows",
    "study_row",
    "register_scenario",
    "run_many",
    "run_study",
    "run_sweep",
    "scenario_grid",
    "scenario_names",
    "scenarios",
    "sweep",
    "to_jsonable",
]
