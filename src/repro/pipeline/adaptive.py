"""Adaptive Monte-Carlo replication scheduling for sweeps.

Fixed replication grids spend the same budget on every cell even though
variance is wildly heterogeneous: a deterministic one-shot disturbance
cell is fully characterised after two replications while a sporadic
high-loss cell may need dozens.  The classic sequential-stopping remedy
(e.g. Law, *Simulation Modeling and Analysis*) is to keep replicating a
cell only until the confidence half-width of its estimate reaches a
target, and to spend the freed budget where variance remains.

:class:`AdaptiveScheduler` implements that policy for
:func:`repro.pipeline.sweep.run_sweep`:

* replications are dispatched in **rounds**; between rounds each open
  cell's QoC statistics (incremental :class:`~repro.sim.stats.Welford`
  accumulators — no row re-scans) are checked against the stopping rule;
* a cell **stops** when its Student-t 95 % half-width falls to
  ``ci_target`` (absolute, or relative to ``|mean|``), when it reaches
  ``max_replications``, when the global ``budget`` runs out, or when
  every attempt failed;
* the budget freed by stopped cells is granted to the **highest-variance
  open cells** first, so precision is bought where it is cheapest to
  lose.

Seed discipline: replication ``r`` of a cell always runs with seed
``seed0 + r`` regardless of which round scheduled it, so adaptive and
fixed sweeps over the same grid draw identical sample paths for the
replications they share.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.pipeline.scenario import Scenario
from repro.sim.stats import Welford

#: Per-study metrics aggregated across a cell's replications.
METRICS = ("qoc", "worst_response", "jitter_violations", "duration")

#: Values ``CellState.stopped_reason`` can take once scheduling ends.
STOP_REASONS = ("fixed", "ci-target", "max-replications", "budget", "failed")


class CellState:
    """Mutable per-cell bookkeeping while a sweep is in flight.

    Holds one :class:`~repro.sim.stats.Welford` accumulator per metric
    (updated as each replication row lands, so cell statistics are always
    current in O(1)), failure/deadline counters, the next unscheduled
    replication index, and — once the scheduler retires the cell — the
    reason it stopped.
    """

    __slots__ = (
        "name",
        "scenario",
        "index",
        "stats",
        "attempts",
        "failures",
        "met_true",
        "met_seen",
        "next_rep",
        "last_round",
        "stopped_reason",
    )

    def __init__(self, name: str, scenario: Scenario, index: int):
        self.name = name
        self.scenario = scenario
        self.index = index
        self.stats: Dict[str, Welford] = {metric: Welford() for metric in METRICS}
        self.attempts = 0
        self.failures = 0
        self.met_true = 0
        self.met_seen = 0
        self.next_rep = 0
        self.last_round = -1
        self.stopped_reason: Optional[str] = None

    @property
    def qoc(self) -> Welford:
        return self.stats["qoc"]

    @property
    def rounds(self) -> int:
        """How many dispatch rounds this cell participated in."""
        return self.last_round + 1

    def record(self, row: Dict[str, Any]) -> None:
        """Fold one landed replication row into the running statistics."""
        self.attempts += 1
        self.last_round = max(self.last_round, int(row.get("round", 0)))
        if not row.get("ok", False):
            self.failures += 1
        for metric, acc in self.stats.items():
            value = row.get(metric)
            if value is not None:
                acc.push(float(value))
        met = row.get("all_deadlines_met")
        if met is not None:
            self.met_seen += 1
            self.met_true += bool(met)

    def deadlines_met_rate(self) -> Optional[float]:
        if self.met_seen == 0:
            return None
        return self.met_true / self.met_seen


class AdaptiveScheduler:
    """Round-based replication dispatcher with CI-driven early stopping.

    With ``ci_target=None`` the scheduler degenerates to the fixed grid:
    one round of ``min_replications`` per cell, after which every cell
    stops with reason ``"fixed"`` — :func:`~repro.pipeline.sweep.run_sweep`
    runs both modes through this single code path.

    Parameters
    ----------
    cells:
        ``(name, scenario)`` grid cells (seed-free; the runner derives
        per-replication seeds as ``seed0 + r``).
    min_replications:
        Replications every cell receives in round 0; in adaptive mode
        also the floor below which the stopping rule never fires
        (a CI from fewer than two samples is meaningless, so >= 2).
    ci_target:
        QoC 95 % half-width at which a cell stops.  Interpreted as an
        absolute half-width, or as a fraction of ``|mean|`` when
        ``ci_relative`` is true.  ``None`` selects fixed mode.
    max_replications:
        Per-cell ceiling (adaptive mode).
    budget:
        Global ceiling on total replications across all cells
        (adaptive mode).  At least one of ``max_replications`` /
        ``budget`` must bound an adaptive sweep or a never-converging
        cell would replicate forever.
    step:
        Nominal per-cell grant per follow-up round; defaults to
        ``min_replications``.  The round's total pool is
        ``len(cells) * step`` — stopped cells still contribute their
        share, which is what gets re-granted to high-variance cells.
    """

    def __init__(
        self,
        cells: Sequence[Tuple[str, Scenario]],
        *,
        min_replications: int,
        ci_target: Optional[float] = None,
        ci_relative: bool = False,
        max_replications: Optional[int] = None,
        budget: Optional[int] = None,
        step: Optional[int] = None,
    ):
        if not cells:
            raise ValueError("a sweep needs at least one cell")
        if min_replications < 1:
            raise ValueError(
                f"replications must be >= 1, got {min_replications}"
            )
        if ci_target is None:
            if max_replications is not None or budget is not None:
                raise ValueError(
                    "max_replications/budget only apply to adaptive sweeps; "
                    "set ci_target to enable adaptive stopping"
                )
            if ci_relative:
                raise ValueError("ci_relative needs ci_target")
        else:
            if ci_target <= 0:
                raise ValueError(f"ci_target must be positive, got {ci_target}")
            if min_replications < 2:
                raise ValueError(
                    "adaptive mode needs replications >= 2 (a confidence "
                    "interval from one sample is meaningless)"
                )
            if max_replications is None and budget is None:
                raise ValueError(
                    "adaptive mode needs max_replications and/or budget — "
                    "without a cap a never-converging cell replicates forever"
                )
            if max_replications is not None and max_replications < min_replications:
                raise ValueError(
                    f"max_replications ({max_replications}) must be >= "
                    f"replications ({min_replications})"
                )
            if budget is not None and budget < 1:
                raise ValueError(f"budget must be >= 1, got {budget}")
        if step is not None and step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        self.cells = [
            CellState(name, scenario, index)
            for index, (name, scenario) in enumerate(cells)
        ]
        self.min_replications = min_replications
        self.ci_target = ci_target
        self.ci_relative = ci_relative
        self.max_replications = max_replications
        self.budget = budget
        self.step = step if step is not None else min_replications
        self.granted = 0

    # -- mode ---------------------------------------------------------

    @property
    def adaptive(self) -> bool:
        return self.ci_target is not None

    def config(self) -> Dict[str, Any]:
        """The scheduling knobs, for result provenance."""
        return {
            "mode": "adaptive" if self.adaptive else "fixed",
            "min_replications": self.min_replications,
            "ci_target": self.ci_target,
            "ci_relative": self.ci_relative,
            "max_replications": self.max_replications,
            "budget": self.budget,
            "step": self.step,
        }

    # -- stopping rule ------------------------------------------------

    def threshold(self, cell: CellState) -> float:
        """The half-width this cell must reach to stop on target."""
        assert self.ci_target is not None
        if self.ci_relative:
            return self.ci_target * abs(cell.qoc.mean)
        return self.ci_target

    def _close_finished(self) -> None:
        for cell in self.cells:
            if cell.stopped_reason is not None:
                continue
            qoc = cell.qoc
            if cell.attempts >= self.min_replications and qoc.n == 0:
                # every attempt failed; more seeds cannot produce a CI
                cell.stopped_reason = "failed"
            elif qoc.n >= self.min_replications and qoc.ci95() <= self.threshold(cell):
                cell.stopped_reason = "ci-target"
            elif (
                self.max_replications is not None
                and cell.next_rep >= self.max_replications
            ):
                cell.stopped_reason = "max-replications"

    def _open(self) -> List[CellState]:
        return [cell for cell in self.cells if cell.stopped_reason is None]

    def _headroom(self, cell: CellState) -> float:
        if self.max_replications is None:
            return math.inf
        return self.max_replications - cell.next_rep

    # -- grant rounds -------------------------------------------------

    def initial_grants(self) -> List[Tuple[CellState, int]]:
        """Round 0: ``min_replications`` per cell, budget permitting.

        Distribution is replication-major (cell 0 rep 0, cell 1 rep 0,
        ...), so a budget smaller than the grid clips every cell fairly
        instead of starving the last ones entirely.
        """
        budget_left = math.inf if self.budget is None else self.budget
        jobs: List[Tuple[CellState, int]] = []
        for _ in range(self.min_replications):
            for cell in self.cells:
                if budget_left <= 0:
                    break
                jobs.append((cell, cell.next_rep))
                cell.next_rep += 1
                budget_left -= 1
        self.granted = len(jobs)
        return jobs

    def next_grants(self) -> List[Tuple[CellState, int]]:
        """Retire finished cells, then grant the next round's budget.

        Returns ``[]`` when the sweep is complete; every cell then has a
        ``stopped_reason``.  Each returned grant is ``(cell, r)`` — run
        replication index ``r`` of that cell (seed ``seed0 + r``).
        """
        if not self.adaptive:
            for cell in self._open():
                cell.stopped_reason = "fixed"
            return []
        self._close_finished()
        open_cells = self._open()
        if not open_cells:
            return []
        pool = len(self.cells) * self.step
        if self.budget is not None:
            pool = min(pool, self.budget - self.granted)
        if pool <= 0:
            for cell in open_cells:
                cell.stopped_reason = "budget"
            return []
        # Highest variance first; cells without two successful samples
        # yet rank ahead of everything (their variance is unknown and
        # they cannot stop until they have a CI at all).
        ranked = sorted(
            open_cells,
            key=lambda c: (
                -(math.inf if c.qoc.n < 2 else c.qoc.variance),
                c.index,
            ),
        )
        grants = {id(cell): 0 for cell in ranked}
        remaining = pool
        for cell in ranked:
            give = int(min(self.step, self._headroom(cell), remaining))
            grants[id(cell)] = give
            remaining -= give
        # Freed budget (stopped cells' share of the pool) goes to the
        # open cells one replication at a time, variance order.
        moved = True
        while remaining > 0 and moved:
            moved = False
            for cell in ranked:
                if remaining <= 0:
                    break
                if self._headroom(cell) - grants[id(cell)] > 0:
                    grants[id(cell)] += 1
                    remaining -= 1
                    moved = True
        jobs: List[Tuple[CellState, int]] = []
        for cell in ranked:
            for _ in range(grants[id(cell)]):
                jobs.append((cell, cell.next_rep))
                cell.next_rep += 1
        self.granted += len(jobs)
        return jobs

    # -- accounting ---------------------------------------------------

    def saved(self, cell: CellState) -> int:
        """Replications the stopping rule saved this cell vs. its cap."""
        if (
            self.max_replications is None
            or cell.stopped_reason not in ("ci-target", "failed")
        ):
            return 0
        return max(0, self.max_replications - cell.attempts)


__all__ = ["AdaptiveScheduler", "CellState", "METRICS", "STOP_REASONS"]
