"""Scenario registry: the paper's setups plus user registrations.

Pre-populated with declarative versions of the paper's artefacts —
Table I, the Section V allocation variants, the Figure 3/4 servo
characterisation, and the Figure 5 co-simulation — so

>>> from repro.pipeline import DesignStudy, get_scenario
>>> DesignStudy(get_scenario("paper-table1")).run().slot_count
3

reproduces the headline result.  :func:`scenario_grid` expands any base
scenario into a sweep over deadline tightness, dwell-model shape, and
allocator — the batch workload :func:`~repro.pipeline.runner.run_many`
is built for.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

from repro.pipeline.scenario import BusSpec, Scenario

_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, overwrite: bool = False) -> Scenario:
    """Add a scenario to the registry (keyed by its name)."""
    if not overwrite and scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def scenarios() -> List[Scenario]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


def scenario_grid(
    base: Union[Scenario, str] = "paper-table1",
    deadline_scales: Sequence[float] = (0.75, 1.0, 1.5),
    dwell_shapes: Sequence[str] = ("non-monotonic", "conservative-monotonic"),
    allocators: Sequence[str] = ("first-fit", "best-fit"),
    **overrides,
) -> List[Scenario]:
    """Expand a base scenario into a full sweep grid.

    The default axes (3 scales x 2 shapes x 2 allocators) yield 12
    scenarios.  Extra keyword overrides (e.g. ``wait_step=8`` or
    ``apps=("servo-rig",)``) are applied to every grid point.
    """
    if isinstance(base, str):
        base = get_scenario(base)
    grid = []
    for scale in deadline_scales:
        for shape in dwell_shapes:
            for allocator in allocators:
                grid.append(
                    base.derive(
                        name=(
                            f"{base.name}@scale={scale:g}"
                            f"/{shape}/{allocator}"
                        ),
                        deadline_scale=scale,
                        dwell_shape=shape,
                        allocator=allocator,
                        **overrides,
                    )
                )
    return grid


# ---------------------------------------------------------------------------
# Built-in scenarios (the paper's artefacts, declaratively).
# ---------------------------------------------------------------------------

register_scenario(
    Scenario(
        name="paper-table1",
        description=(
            "Table I applications, non-monotonic dwell model, Section V "
            "first-fit allocation (expected: 3 TT slots)"
        ),
        source="paper",
    )
)
register_scenario(
    Scenario(
        name="paper-table1-monotonic",
        description=(
            "Table I under prior work's conservative monotonic model "
            "(expected: 5 TT slots, +67% resources)"
        ),
        source="paper",
        dwell_shape="conservative-monotonic",
    )
)
register_scenario(
    Scenario(
        name="paper-table1-fixed-point",
        description="Table I analysed with the exact Eq. 5 fixed point",
        source="paper",
        method="fixed-point",
    )
)
register_scenario(
    Scenario(
        name="paper-table1-optimal",
        description="Table I packed by exhaustive minimum-slot search",
        source="paper",
        allocator="optimal",
    )
)
register_scenario(
    Scenario(
        name="paper-table1-bnb",
        description=(
            "Table I packed by the branch-and-bound exact search "
            "(same optimum as exhaustive, scales to ~20 apps)"
        ),
        source="paper",
        allocator="branch-and-bound",
    )
)
register_scenario(
    Scenario(
        name="paper-table1-anneal",
        description=(
            "Table I packed by the seeded annealing heuristic "
            "(the large-fleet backend, on the small roster)"
        ),
        source="paper",
        allocator="anneal",
    )
)
register_scenario(
    Scenario(
        name="paper-table1-dedicated",
        description="Table I baseline: one dedicated TT slot per application",
        source="paper",
        allocator="dedicated",
    )
)
register_scenario(
    Scenario(
        name="fig3-servo",
        description=(
            "Figure 3: dwell/wait characterisation of the servo rig, "
            "non-monotonic PWL fit"
        ),
        source="servo",
    )
)
register_scenario(
    Scenario(
        name="fig4-servo-monotonic",
        description=(
            "Figure 4 companion: the servo curve under the conservative "
            "monotonic model"
        ),
        source="servo",
        dwell_shape="conservative-monotonic",
    )
)
register_scenario(
    Scenario(
        name="sim-table1",
        description=(
            "Table I analogue: six plant-zoo applications characterised "
            "end-to-end (paper simulation mode)"
        ),
        source="simulation",
    )
)
register_scenario(
    Scenario(
        name="sim-table1-monotonic",
        description="Simulated roster under the conservative monotonic model",
        source="simulation",
        dwell_shape="conservative-monotonic",
    )
)
register_scenario(
    Scenario(
        name="fig5-cosim",
        description=(
            "Figure 5: co-simulated disturbance rejection over the "
            "cycle-accurate FlexRay bus"
        ),
        source="simulation",
        cosim=True,
        network="flexray",
    )
)
register_scenario(
    Scenario(
        name="fig5-cosim-analytic",
        description=(
            "Figure 5 over the analytic worst-case network (fast, "
            "deterministic)"
        ),
        source="simulation",
        cosim=True,
        network="analytic",
    )
)
register_scenario(
    Scenario(
        name="multirate-cosim",
        description=(
            "Multi-rate fleet — a 2 ms motor current loop beside 20 ms "
            "chassis loops — co-simulated over a 1 ms-cycle FlexRay bus "
            "(loss-free static-slot schedule: batch-kernel eligible)"
        ),
        source="multirate",
        cosim=True,
        network="flexray",
        bus=BusSpec(
            cycle_length=0.001,
            static_slots=3,
            static_slot_length=0.0002,
            minislot_length=0.00001,
        ),
    )
)
register_scenario(
    Scenario(
        name="multirate-cosim-analytic",
        description=(
            "Multi-rate fleet over the analytic worst-case network "
            "(fast, deterministic)"
        ),
        source="multirate",
        cosim=True,
        network="analytic",
    )
)
register_scenario(
    Scenario(
        name="can-cosim",
        description=(
            "Figure 5 fleet co-simulated over a priority-arbitrated "
            "500 kbit/s CAN bus (non-preemptive, lowest frame id wins; "
            "event kernel — arbitration is contention-dependent)"
        ),
        source="simulation",
        cosim=True,
        network="can",
    )
)


__all__ = [
    "get_scenario",
    "register_scenario",
    "scenario_grid",
    "scenario_names",
    "scenarios",
]
