"""Memoized dwell-curve measurements — the sweep hot path.

Measuring a dwell/wait curve means designing both mode controllers and
simulating the switched closed loop once per candidate switch instant;
at the default stride this costs seconds per plant.  Every scenario in a
grid sweep that shares (plant, ET detuning, stride) re-measures the
*same* curve — deadlines, dwell-model shape, analysis method and
allocator all apply downstream of the measurement — so the cache keys on
exactly those three inputs and serves everything else from memory.

The cache is thread-safe and single-flight: concurrent
:func:`~repro.pipeline.runner.run_many` workers asking for the same key
block on one in-flight measurement instead of duplicating it.
"""

from __future__ import annotations

import base64
import pickle
import threading
import zlib
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.control.controller import SwitchedApplication, design_mode_controller
from repro.control.plants import PlantDefinition, make_plant
from repro.core.pwl import DwellCurve
from repro.core.switching import LinearSwitchedSystem, measure_dwell_curve
from repro.testbed.servo import ServoRigConfig, ServoTestbed, default_servo_testbed

#: TT-mode sensor-to-actuator delay (the paper's 0.7 ms); re-exported by
#: :mod:`repro.experiments.casestudy` for the legacy API.
TT_DELAY = 0.0007


@dataclass(frozen=True)
class MeasuredApplication:
    """A designed switched application plus its measured dwell curve."""

    plant: PlantDefinition
    app: SwitchedApplication
    curve: DwellCurve


@dataclass(frozen=True)
class ServoMeasurement:
    """Servo-rig sweep output: curve plus the raw mode response times."""

    curve: DwellCurve
    xi_tt: float
    xi_et: float
    period: float


class DwellCurveCache:
    """Single-flight memo cache for dwell-curve measurements."""

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: Dict[Tuple, Future] = {}
        self._hits = 0
        self._misses = 0

    @property
    def hits(self) -> int:
        """Number of lookups served from memory (or an in-flight run)."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of lookups that had to measure."""
        return self._misses

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def keys_snapshot(self) -> set:
        """The cache keys currently present (completed or in flight)."""
        with self._lock:
            return set(self._entries)

    def export_entries(self, exclude=frozenset()) -> Dict[Tuple, object]:
        """Completed measurements, keyed for :meth:`merge_entries`.

        Process-pool workers call this after each study and ship only
        the entries *they* measured (``exclude`` holds what the worker
        already had or already shipped), so the parent can fold worker
        caches back into the shared one.
        """
        with self._lock:
            items = list(self._entries.items())
        return {
            key: future.result()
            for key, future in items
            if key not in exclude and future.done() and future.exception() is None
        }

    def merge_entries(self, entries: Dict[Tuple, object]) -> int:
        """Adopt measurements computed elsewhere; returns how many were new."""
        added = 0
        with self._lock:
            for key, value in entries.items():
                if key in self._entries:
                    continue
                future: Future = Future()
                future.set_result(value)
                self._entries[key] = future
                added += 1
        return added

    def _get_or_measure(self, key: Tuple, measure):
        """Return ``(value, hit)``; ``hit`` attributes this call exactly
        once so per-caller stats stay correct under concurrency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = Future()
                self._entries[key] = entry
                self._misses += 1
                owner = True
            else:
                self._hits += 1
                owner = False
        if not owner:
            return entry.result(), True
        try:
            value = measure()
        except BaseException as exc:
            with self._lock:
                self._entries.pop(key, None)
            entry.set_exception(exc)
            raise
        entry.set_result(value)
        return value, False

    def measurement_info(
        self, plant_name: str, et_detuning: float, wait_step: int = 2
    ) -> Tuple[MeasuredApplication, bool]:
        """Like :meth:`measurement`, also reporting whether this call hit."""
        key = ("plant", plant_name, float(et_detuning), int(wait_step))
        return self._get_or_measure(
            key, lambda: _measure_plant(plant_name, et_detuning, wait_step)
        )

    def measurement(
        self, plant_name: str, et_detuning: float, wait_step: int = 2
    ) -> MeasuredApplication:
        """Design the mode controllers and measure the dwell curve for one
        plant-zoo application (memoized)."""
        return self.measurement_info(plant_name, et_detuning, wait_step)[0]

    def servo_measurement_info(
        self,
        threshold: Optional[float] = None,
        wait_step: int = 2,
        max_samples: int = 400,
    ) -> Tuple[ServoMeasurement, bool]:
        """Like :meth:`servo_measurement`, also reporting a per-call hit."""
        key = (
            "servo",
            None if threshold is None else float(threshold),
            int(wait_step),
            int(max_samples),
        )
        return self._get_or_measure(
            key, lambda: _measure_servo(threshold, wait_step, max_samples)
        )

    def servo_measurement(
        self,
        threshold: Optional[float] = None,
        wait_step: int = 2,
        max_samples: int = 400,
    ) -> ServoMeasurement:
        """Sweep the (simulated) servo rig's dwell curve (memoized)."""
        return self.servo_measurement_info(threshold, wait_step, max_samples)[0]

    def characterized_info(
        self,
        plant_name: str,
        et_detuning: float,
        min_inter_arrival: float,
        deadline: float,
        wait_step: int = 2,
    ):
        """Like :meth:`characterized`, also reporting a per-call hit."""
        from repro.core.characterization import characterize_curve
        from repro.experiments.casestudy import CaseStudyApplication

        measured, hit = self.measurement_info(plant_name, et_detuning, wait_step)
        characterization = characterize_curve(
            name=plant_name,
            curve=measured.curve,
            deadline=deadline,
            min_inter_arrival=min_inter_arrival,
        )
        case_app = CaseStudyApplication(
            plant=measured.plant, app=measured.app, characterization=characterization
        )
        return case_app, hit

    def characterized(
        self,
        plant_name: str,
        et_detuning: float,
        min_inter_arrival: float,
        deadline: float,
        wait_step: int = 2,
    ):
        """A fully characterised case-study application.

        Only the measurement is cached; the (cheap) PWL fits and timing
        parameters are derived fresh for the requested deadline, so
        deadline sweeps share one measurement per plant.
        """
        return self.characterized_info(
            plant_name, et_detuning, min_inter_arrival, deadline, wait_step
        )[0]


def encode_entries(entries: Dict[Tuple, object]) -> str:
    """Pack :meth:`DwellCurveCache.export_entries` output for the wire.

    The sweep fabric ships dwell-cache entries between coordinator and
    workers inside line-delimited JSON messages; measurements carry
    numpy arrays and nested dataclasses, so the payload is pickled,
    compressed, and base64-armoured into a JSON-safe string.
    """
    return base64.b64encode(
        zlib.compress(pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL))
    ).decode("ascii")


def decode_entries(blob: str) -> Dict[Tuple, object]:
    """Inverse of :func:`encode_entries`; feed to :meth:`merge_entries`."""
    return pickle.loads(zlib.decompress(base64.b64decode(blob.encode("ascii"))))


def _measure_plant(
    plant_name: str, et_detuning: float, wait_step: int
) -> MeasuredApplication:
    plant = make_plant(plant_name)
    tt = design_mode_controller(
        plant.model, period=plant.period, delay=TT_DELAY, q=plant.q, r=plant.r
    )
    et = design_mode_controller(
        plant.model,
        period=plant.period,
        delay=plant.period,
        q=plant.q,
        r=np.asarray(plant.r) * et_detuning,
    )
    app = SwitchedApplication(name=plant_name, et=et, tt=tt, threshold=plant.threshold)
    system = LinearSwitchedSystem.from_application(app, plant.disturbance)
    curve = measure_dwell_curve(
        system.response_source(),
        pure_et_response=system.pure_et_response(),
        period=app.period,
        wait_step=wait_step,
    )
    return MeasuredApplication(plant=plant, app=app, curve=curve)


def _measure_servo(
    threshold: Optional[float], wait_step: int, max_samples: int
) -> ServoMeasurement:
    testbed: ServoTestbed
    if threshold is None:
        testbed = default_servo_testbed()
    else:
        testbed = default_servo_testbed(ServoRigConfig(threshold=threshold))
    period = testbed.config.period
    xi_tt = testbed.response_time(0, max_samples=max_samples)
    xi_et = testbed.response_time(10**9, max_samples=max_samples)
    curve = measure_dwell_curve(
        lambda wait: testbed.response_time(wait, max_samples=max_samples),
        pure_et_response=xi_et,
        period=period,
        wait_step=wait_step,
    )
    return ServoMeasurement(curve=curve, xi_tt=xi_tt, xi_et=xi_et, period=period)


#: Process-wide default cache shared by the legacy free functions, the
#: pipeline runner, and the CLI.  Pass a private cache to
#: :class:`~repro.pipeline.runner.DesignStudy` for isolation.
GLOBAL_DWELL_CACHE = DwellCurveCache()


__all__ = [
    "DwellCurveCache",
    "GLOBAL_DWELL_CACHE",
    "MeasuredApplication",
    "ServoMeasurement",
    "TT_DELAY",
    "decode_entries",
    "encode_entries",
]
