"""Named, introspectable stages of the design chain.

The paper's workflow is a fixed pipeline::

    characterize -> model -> analyze -> allocate -> cosim

Each stage function consumes a mutable :class:`StudyContext` (scenario +
rich upstream objects) and returns a JSON-safe artifact dict; the runner
wraps that into a :class:`StageRecord` with status and timing.  The rich
objects (curves, models, allocations, traces) stay on the context so
programmatic callers — the legacy experiment drivers among them — can
reuse them without re-parsing artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.control.disturbance import OneShotDisturbance, SporadicDisturbance
from repro.core.allocation import AllocationResult
from repro.core.characterization import characterize_curve
from repro.core.pwl import from_timing_parameters
from repro.core.schedulability import AnalyzedApplication, is_slot_schedulable
from repro.core.sensitivity import static_segment_usage
from repro.core.timing_params import PAPER_TABLE_I, TimingParameters
from repro.flexray.frame import FrameSpec
from repro.flexray.params import paper_bus_config
from repro.pipeline.cache import DwellCurveCache
from repro.pipeline.scenario import Scenario
from repro.pipeline.serialize import to_jsonable
from repro.sim.cosim import CoSimApplication, CoSimulator
from repro.sim.network import build_network
from repro.sim.trace import SimulationTrace

#: Canonical stage order.
STAGE_ORDER = ("characterize", "model", "analyze", "allocate", "cosim")

#: Servo-rig deadline/inter-arrival defaults (the Figure 3 setup).
SERVO_DEADLINE = 6.0
SERVO_MIN_INTER_ARRIVAL = 6.0


@dataclass(frozen=True)
class StageRecord:
    """Outcome of one pipeline stage.

    ``artifact`` holds only JSON-safe containers so a
    :class:`~repro.pipeline.result.StudyResult` round-trips losslessly.
    """

    name: str
    status: str  # "ok" | "failed" | "skipped"
    elapsed: float
    artifact: Dict[str, Any]
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "elapsed": self.elapsed,
            "artifact": self.artifact,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StageRecord":
        return cls(
            name=data["name"],
            status=data["status"],
            elapsed=data["elapsed"],
            artifact=data["artifact"],
            detail=data.get("detail", ""),
        )


class StageSkipped(Exception):
    """Raised by a stage that does not apply to the scenario."""


@dataclass
class StudyContext:
    """Mutable carrier of rich objects flowing between stages."""

    scenario: Scenario
    cache: DwellCurveCache
    params: List[TimingParameters] = field(default_factory=list)
    case_apps: Optional[list] = None  # List[CaseStudyApplication] (sim/servo)
    analyzed: List[AnalyzedApplication] = field(default_factory=list)
    allocation: Optional[AllocationResult] = None
    trace: Optional[SimulationTrace] = None


def _scaled_deadline(deadline: float, min_inter_arrival: float, scale: float) -> float:
    """Apply the deadline-tightness factor, clamped to the inter-arrival
    time (the paper requires deadline <= r)."""
    return min(deadline * scale, min_inter_arrival)


def _params_row(p: TimingParameters) -> Dict[str, Any]:
    return {
        "name": p.name,
        "min_inter_arrival": p.min_inter_arrival,
        "deadline": p.deadline,
        "xi_tt": p.xi_tt,
        "xi_et": p.xi_et,
        "xi_m": p.xi_m,
        "k_p": p.k_p,
        "xi_m_mono": p.xi_m_mono,
    }


def _curve_dict(curve) -> Dict[str, Any]:
    return {
        "waits": to_jsonable(curve.waits),
        "dwells": to_jsonable(curve.dwells),
        "xi_et": curve.xi_et,
    }


def stage_characterize(ctx: StudyContext) -> Dict[str, Any]:
    """Plant models -> dwell characterisation -> timing parameters."""
    scenario = ctx.scenario
    artifact: Dict[str, Any] = {
        "source": scenario.source,
        "deadline_scale": scenario.deadline_scale,
    }
    if scenario.source == "paper":
        rows = _select_named(
            list(PAPER_TABLE_I), scenario.apps, lambda p: p.name, "application"
        )
        from repro.core.sensitivity import scale_deadlines

        ctx.params = scale_deadlines(rows, scenario.deadline_scale)
        ctx.case_apps = None
    elif scenario.source in ("simulation", "multirate"):
        from repro.experiments.casestudy import (
            MULTIRATE_CASE_STUDY,
            SIMULATION_CASE_STUDY,
        )

        full_roster = (
            SIMULATION_CASE_STUDY
            if scenario.source == "simulation"
            else MULTIRATE_CASE_STUDY
        )
        roster = _select_named(
            list(full_roster), scenario.apps, lambda e: e[0], "plant"
        )
        hits = 0
        ctx.case_apps = []
        for plant_name, detuning, inter_arrival, deadline in roster:
            case_app, hit = ctx.cache.characterized_info(
                plant_name,
                et_detuning=detuning,
                min_inter_arrival=inter_arrival,
                deadline=_scaled_deadline(
                    deadline, inter_arrival, scenario.deadline_scale
                ),
                wait_step=scenario.wait_step,
            )
            ctx.case_apps.append(case_app)
            hits += hit
        ctx.params = [app.params for app in ctx.case_apps]
        artifact["cache"] = {"hits": hits, "misses": len(roster) - hits}
        artifact["curves"] = {
            app.name: _curve_dict(app.characterization.curve)
            for app in ctx.case_apps
        }
    else:  # servo
        from repro.experiments.casestudy import CaseStudyApplication

        _select_named(["servo-rig"], scenario.apps, lambda n: n, "application")
        measured, hit = ctx.cache.servo_measurement_info(
            wait_step=scenario.wait_step
        )
        characterization = characterize_curve(
            name="servo-rig",
            curve=measured.curve,
            deadline=_scaled_deadline(
                SERVO_DEADLINE, SERVO_MIN_INTER_ARRIVAL, scenario.deadline_scale
            ),
            min_inter_arrival=SERVO_MIN_INTER_ARRIVAL,
        )
        ctx.case_apps = [
            CaseStudyApplication(
                plant=None, app=None, characterization=characterization
            )
        ]
        ctx.params = [characterization.params]
        artifact["cache"] = {"hits": int(hit), "misses": int(not hit)}
        artifact["curves"] = {"servo-rig": _curve_dict(measured.curve)}
        artifact["measured"] = {"xi_tt": measured.xi_tt, "xi_et": measured.xi_et}
    artifact["applications"] = [_params_row(p) for p in ctx.params]
    return artifact


def stage_model(ctx: StudyContext) -> Dict[str, Any]:
    """Fit/instantiate the scenario's PWL dwell models."""
    scenario = ctx.scenario
    shape = scenario.dwell_shape
    if ctx.case_apps is not None:
        models = []
        for case_app in ctx.case_apps:
            characterization = case_app.characterization
            if shape == "non-monotonic":
                models.append(characterization.non_monotonic_model)
            else:
                models.append(characterization.monotonic_model)
        ctx.analyzed = [
            AnalyzedApplication(params=params, dwell_model=model)
            for params, model in zip(ctx.params, models)
        ]
        curves = [app.characterization.curve for app in ctx.case_apps]
    else:
        ctx.analyzed = [
            AnalyzedApplication(
                params=params, dwell_model=from_timing_parameters(params, shape)
            )
            for params in ctx.params
        ]
        curves = [None] * len(ctx.params)
    rows = []
    for app, curve in zip(ctx.analyzed, curves):
        model = app.dwell_model
        rows.append(
            {
                "name": app.name,
                "label": model.label,
                "breakpoints": to_jsonable(model.breakpoints),
                "max_dwell": model.max_dwell,
                "peak_wait": model.peak_wait,
                "dominates_measurement": (
                    None if curve is None else bool(model.dominates(curve))
                ),
            }
        )
    return {"shape": shape, "models": rows}


def stage_analyze(ctx: StudyContext) -> Dict[str, Any]:
    """Per-application wait-time pre-analysis (feasibility + utilisation)."""
    method = ctx.scenario.method
    rows = []
    total_utilization = 0.0
    for app in ctx.analyzed:
        utilization = app.max_dwell / app.min_inter_arrival
        total_utilization += utilization
        rows.append(
            {
                "name": app.name,
                "deadline": app.deadline,
                "max_dwell": app.max_dwell,
                "utilization": utilization,
                "feasible_alone": bool(is_slot_schedulable([app], method=method)),
            }
        )
    return {
        "method": method,
        "applications": rows,
        "total_utilization": total_utilization,
    }


def stage_allocate(ctx: StudyContext) -> Dict[str, Any]:
    """Pack the applications onto shared TT slots.

    Dispatches through the :mod:`repro.solvers` allocator registry, so
    any registered backend — built-in or third-party — runs here with no
    pipeline changes.  Backend capability metadata and search
    diagnostics (when the backend reports them) land in the artifact.
    """
    from repro.solvers import get_allocator, get_analysis_method

    scenario = ctx.scenario
    spec = get_allocator(scenario.allocator)
    method_spec = get_analysis_method(scenario.method)
    ctx.allocation = spec(ctx.analyzed, method=scenario.method)
    allocation = ctx.allocation
    bus = (scenario.bus.to_config() if scenario.bus else paper_bus_config())
    usage = static_segment_usage(allocation.slot_count, bus.static_slots)
    return {
        "allocator": scenario.allocator,
        "allocator_capabilities": spec.to_dict(),
        "solver_stats": to_jsonable(allocation.stats),
        "method": scenario.method,
        # Carries `safe`: results from a lower-bound method are
        # optimistic and must not be read as deadline guarantees.
        "method_capabilities": method_spec.to_dict(),
        "slot_count": allocation.slot_count,
        "slots": to_jsonable(allocation.slot_names),
        "analyses": {
            name: {
                "max_wait": analysis.max_wait,
                "worst_response": analysis.worst_response,
                "deadline": analysis.deadline,
                "schedulable": bool(analysis.schedulable),
            }
            for name, analysis in sorted(allocation.analyses.items())
        },
        "all_schedulable": bool(allocation.all_schedulable()),
        "static_segment": {
            "slots_used": usage.slots_used,
            "slots_available": usage.slots_available,
            "fraction": usage.fraction,
            "fits": bool(usage.fits),
        },
    }


def stage_cosim(ctx: StudyContext) -> Dict[str, Any]:
    """Verify the allocation by co-simulating all disturbed plants.

    The scenario picks the kernel (``"auto"`` by default — the batched
    analytic fast path when eligible, the event kernel otherwise; the
    legacy fixed-step loop rejects multi-rate rosters), the disturbance
    process, and — through ``seed`` — the randomness of sporadic
    arrivals and FlexRay frame loss, so co-simulation runs are exactly
    reproducible from a scenario document.
    """
    scenario = ctx.scenario
    if not scenario.cosim:
        raise StageSkipped("co-simulation disabled by scenario")
    if scenario.source not in ("simulation", "multirate"):
        raise StageSkipped(
            "co-simulation requires plant models "
            "(source='simulation' or 'multirate')"
        )
    assert ctx.case_apps is not None and ctx.allocation is not None
    horizon = scenario.horizon
    if horizon is None:
        horizon = 1.2 * max(app.params.deadline for app in ctx.case_apps)
    cosim_apps = []
    for index, case_app in enumerate(ctx.case_apps):
        if scenario.disturbance == "sporadic":
            disturbances: Any = SporadicDisturbance(
                min_inter_arrival=case_app.params.min_inter_arrival,
                mean_extra_gap=0.5 * case_app.params.min_inter_arrival,
                seed=scenario.seed * 1009 + index,
            )
        else:
            disturbances = OneShotDisturbance(time=0.0)
        cosim_apps.append(
            CoSimApplication(
                app=case_app.app,
                dynamics=case_app.plant.model,
                disturbance_state=case_app.plant.disturbance,
                disturbances=disturbances,
                deadline=case_app.params.deadline,
                slot=ctx.allocation.slot_of(case_app.name),
                frame=FrameSpec(frame_id=index + 1, sender=case_app.name),
            )
        )
    # Backends resolve by registry name (see repro.sim.network), so a
    # third-party network registered under a new name runs here with no
    # pipeline changes — the same dispatch stage_allocate does through
    # the solver registry.
    network = build_network(
        scenario.network,
        bus=scenario.bus.to_config() if scenario.bus else None,
        loss_rate=scenario.loss_rate,
        seed=scenario.seed,
    )
    simulator = CoSimulator(cosim_apps, network, kernel=scenario.kernel)
    ctx.trace = simulator.run(horizon)
    rows = []
    for row in ctx.trace.summary_rows():
        rows.append(
            {
                "name": row["app"],
                "worst_response": row["worst_response"],
                "deadline": row["deadline"],
                "deadline_met": bool(row["deadline_met"]),
                "tt_episodes": len(row["tt_intervals"]),
            }
        )
    artifact = {
        "network": scenario.network,
        "kernel": scenario.kernel,
        # "auto"/"batch" resolve at run time (eligibility detection);
        # this records the kernel that actually executed.
        "kernel_used": simulator.last_kernel,
        "disturbance": scenario.disturbance,
        "seed": scenario.seed,
        "horizon": horizon,
        "slots": to_jsonable(ctx.allocation.slot_names),
        "applications": rows,
        "all_deadlines_met": bool(ctx.trace.all_deadlines_met()),
        "qoc": ctx.trace.qoc(),
        "jitter_violations": simulator.jitter_violations,
    }
    if scenario.network == "flexray":
        artifact["loss"] = {
            "rate": scenario.loss_rate,
            "lost": network.lost,
            "clamped": network.clamped,
        }
    elif scenario.network != "analytic" and hasattr(network, "statistics"):
        # Newer protocol backends (CAN, third-party): record their own
        # counters; the flexray/analytic blocks above stay byte-stable
        # for existing consumers.
        artifact["network_stats"] = to_jsonable(network.statistics())
    return artifact


STAGES = {
    "characterize": stage_characterize,
    "model": stage_model,
    "analyze": stage_analyze,
    "allocate": stage_allocate,
    "cosim": stage_cosim,
}


def _select_named(items, names, key, kind):
    """Filter ``items`` by the scenario's ``apps`` subset, preserving
    roster order; unknown names raise."""
    if names is None:
        return items
    by_name = {key(item): item for item in items}
    unknown = [name for name in names if name not in by_name]
    if unknown:
        raise ValueError(
            f"unknown {kind} name(s) {unknown}; expected a subset of "
            f"{sorted(by_name)}"
        )
    wanted = set(names)
    return [item for item in items if key(item) in wanted]


__all__ = [
    "STAGES",
    "STAGE_ORDER",
    "StageRecord",
    "StageSkipped",
    "StudyContext",
    "stage_allocate",
    "stage_analyze",
    "stage_characterize",
    "stage_cosim",
    "stage_model",
]
