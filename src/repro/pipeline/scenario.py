"""Declarative scenario description for the design-study pipeline.

A :class:`Scenario` is *data*: it names every knob of the paper's design
chain — where the applications come from, which dwell-model shape and
wait-time analysis to use, how to pack TT slots, the bus geometry, and
whether to verify by co-simulation — without executing anything.  The
:class:`~repro.pipeline.runner.DesignStudy` runner turns a scenario into
a :class:`~repro.pipeline.result.StudyResult`; because scenarios
round-trip to JSON they can be stored, diffed, swept over, and shipped
to batch executors.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.flexray.params import FlexRayConfig
from repro.sim.cosim import KERNELS

#: Where the application set comes from.
SOURCES = ("paper", "simulation", "multirate", "servo")
#: Dwell-model shapes supported by the characterisation pipeline.
DWELL_SHAPES = ("non-monotonic", "conservative-monotonic")
#: Built-in wait-time analysis methods.  Validation goes through the
#: :mod:`repro.solvers` registry, so third-party registrations are
#: accepted too; this tuple documents what ships in the box.
METHODS = ("closed-form", "fixed-point", "lower-bound")
#: Built-in TT-slot allocator backends (same registry-backed deal).
ALLOCATORS = (
    "first-fit",
    "best-fit",
    "worst-fit",
    "dedicated",
    "optimal",
    "branch-and-bound",
    "anneal",
)
#: Built-in co-simulation network backends.  Like METHODS/ALLOCATORS
#: this tuple documents what ships in the box; validation runs against
#: the live :mod:`repro.sim.network` registry, so third-party backends
#: registered with ``register_network`` are accepted too.
NETWORKS = ("analytic", "can", "flexray")
# Co-simulation kernels: KERNELS is re-exported from repro.sim.cosim
# (imported above) so the accepted names live in one place.  "auto"
# (default) picks the batched analytic fast path when the fleet is
# eligible and the event kernel otherwise; all kernels produce
# bitwise-identical traces on fleets they accept, so the choice is
# purely about speed and diagnostics.
#: Disturbance arrival processes for the co-simulation stage.
DISTURBANCES = ("one-shot", "sporadic")


@dataclass(frozen=True)
class BusSpec:
    """Serializable FlexRay-cycle geometry (mirrors :class:`FlexRayConfig`)."""

    cycle_length: float = 0.005
    static_slots: int = 10
    static_slot_length: float = 0.0002
    minislot_length: float = 0.00001

    def to_config(self) -> FlexRayConfig:
        return FlexRayConfig(
            cycle_length=self.cycle_length,
            static_slots=self.static_slots,
            static_slot_length=self.static_slot_length,
            minislot_length=self.minislot_length,
        )

    @classmethod
    def from_config(cls, config: FlexRayConfig) -> "BusSpec":
        return cls(
            cycle_length=config.cycle_length,
            static_slots=config.static_slots,
            static_slot_length=config.static_slot_length,
            minislot_length=config.minislot_length,
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BusSpec":
        return cls(**data)


@dataclass(frozen=True)
class Scenario:
    """One fully specified run of the paper's design chain.

    Attributes
    ----------
    name:
        Identifier (registry key and provenance tag).
    description:
        One-line human summary.
    source:
        ``"paper"`` (Table I parameters, verbatim), ``"simulation"``
        (plant-zoo roster characterised end-to-end), or ``"servo"``
        (the Figure 3 servo-rig testbed).
    apps:
        Optional subset of application/plant names to include;
        ``None`` means the full roster.
    dwell_shape:
        PWL dwell-model shape used for the analysis.
    method:
        Wait-time analysis method (any name in the
        :mod:`repro.solvers` analysis-method registry).
    allocator:
        TT-slot packing strategy (any name in the allocator registry).
        Names are validated at construction time, so deserializing a
        scenario that used a third-party backend requires importing the
        module that registers it first.
    deadline_scale:
        Multiplicative deadline-tightness factor (clamped to each
        application's minimum inter-arrival time).
    wait_step:
        Dwell-sweep stride in samples for characterised sources.
    bus:
        FlexRay geometry; ``None`` means the paper's 5 ms / 10-slot bus.
    cosim:
        Whether to run the co-simulation verification stage.
    network:
        Co-simulation network backend (any name in the
        :mod:`repro.sim.network` registry; ``"analytic"``,
        ``"flexray"`` and ``"can"`` ship in the box).  Like
        ``allocator``, names are validated at construction time against
        the live registry.
    horizon:
        Co-simulation length in seconds; ``None`` derives
        1.2x the largest deadline.
    kernel:
        Co-simulation kernel: ``"auto"`` (default; the batched analytic
        fast path when eligible, the event kernel otherwise),
        ``"batch"`` (force the fast path, falling back to the event
        kernel for ineligible fleets), ``"event"`` (multi-rate capable)
        or ``"legacy"`` (the original fixed-step loop, shared-period
        fleets only).  Traces are bitwise identical across kernels, so
        sweeps inherit the fast path for free.
    disturbance:
        Arrival process driving the co-simulation: ``"one-shot"`` (every
        plant disturbed once at ``t = 0``, the paper's Figure 5 setup)
        or ``"sporadic"`` (seeded random arrivals at each application's
        minimum inter-arrival spacing — the Monte-Carlo workload).
    seed:
        Base random seed for sporadic disturbance arrivals and FlexRay
        frame-loss injection; replication sweeps vary it per cell.
    loss_rate:
        Frame-corruption probability in ``[0, 1)``, fed to the network
        backend's seeded i.i.d. loss process (FlexRay's historical
        ``loss_rate``; the CAN backend wraps itself in
        :class:`~repro.sim.network.IIDLoss`; ignored by the analytic
        network).
    """

    name: str
    description: str = ""
    source: str = "paper"
    apps: Optional[Tuple[str, ...]] = None
    dwell_shape: str = "non-monotonic"
    method: str = "closed-form"
    allocator: str = "first-fit"
    deadline_scale: float = 1.0
    wait_step: int = 2
    bus: Optional[BusSpec] = None
    cosim: bool = False
    network: str = "analytic"
    horizon: Optional[float] = None
    kernel: str = "auto"
    disturbance: str = "one-shot"
    seed: int = 0
    loss_rate: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        _check_choice("source", self.source, SOURCES)
        _check_choice("dwell_shape", self.dwell_shape, DWELL_SHAPES)
        _check_registered_method(self.method)
        _check_registered_allocator(self.allocator)
        _check_registered_network(self.network)
        if self.apps is not None:
            object.__setattr__(self, "apps", tuple(str(a) for a in self.apps))
        if self.deadline_scale <= 0:
            raise ValueError(
                f"deadline_scale must be positive, got {self.deadline_scale}"
            )
        if int(self.wait_step) != self.wait_step or self.wait_step < 1:
            raise ValueError(f"wait_step must be an integer >= 1, got {self.wait_step}")
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        _check_choice("kernel", self.kernel, KERNELS)
        _check_choice("disturbance", self.disturbance, DISTURBANCES)
        if int(self.seed) != self.seed:
            raise ValueError(f"seed must be an integer, got {self.seed}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(
                f"loss_rate must lie in [0, 1), got {self.loss_rate}"
            )

    def derive(self, name: Optional[str] = None, **changes: Any) -> "Scenario":
        """A modified copy (a grid point, a what-if variant, ...).

        ``name`` defaults to the parent name plus a summary of the
        overridden fields, so derived scenarios stay distinguishable in
        sweep outputs.
        """
        if name is None:
            summary = ",".join(f"{key}={value}" for key, value in sorted(changes.items()))
            name = f"{self.name}[{summary}]" if summary else self.name
        return dataclasses.replace(self, name=name, **changes)

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["apps"] = list(self.apps) if self.apps is not None else None
        data["bus"] = self.bus.to_dict() if self.bus is not None else None
        return data

    def fingerprint(self) -> str:
        """Semantic hash of the scenario, blind to labels and seed.

        Two scenarios share a fingerprint exactly when they describe the
        same computation: ``name`` and ``description`` are excluded (a
        rename must not bust result caches) and so is ``seed`` —
        replication machinery pairs the fingerprint with an explicit
        seed via :meth:`content_address`.
        """
        data = self.to_dict()
        data.pop("name")
        data.pop("description")
        data.pop("seed")
        blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def content_address(self) -> str:
        """``fingerprint+seed`` — the identity of one simulated row.

        This is the sweep fabric's cache key: a result row computed for
        this address is valid for *any* job with the same address, on
        any host, in any run, so reruns are cache hits and resumed
        sweeps can skip everything already on disk.
        """
        return f"{self.fingerprint()}+{int(self.seed)}"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        payload = dict(data)
        if payload.get("apps") is not None:
            payload["apps"] = tuple(payload["apps"])
        if payload.get("bus") is not None:
            payload["bus"] = BusSpec.from_dict(payload["bus"])
        return cls(**payload)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))


def _check_choice(field_name: str, value: str, choices: Tuple[str, ...]) -> None:
    if value not in choices:
        raise ValueError(
            f"unknown {field_name} {value!r}; expected one of {list(choices)}"
        )


def _check_registered_allocator(value: str) -> None:
    """Validate against the live solver registry (not a frozen tuple),
    so an allocator registered by a third party is immediately a legal
    scenario value.  Imported lazily: the backends import ``repro.core``
    and must not load while this module does."""
    from repro.solvers import UnknownSolverError, get_allocator

    try:
        get_allocator(value)
    except UnknownSolverError as exc:
        raise ValueError(
            f"{exc} (register your own with repro.solvers.register_allocator)"
        ) from None


def _check_registered_method(value: str) -> None:
    """Same registry-backed validation for the wait-analysis method."""
    from repro.solvers import UnknownSolverError, get_analysis_method

    try:
        get_analysis_method(value)
    except UnknownSolverError as exc:
        raise ValueError(
            f"{exc} (register your own with repro.solvers.register_analysis_method)"
        ) from None


def _check_registered_network(value: str) -> None:
    """Same registry-backed validation for the network backend."""
    from repro.sim.network import UnknownNetworkError, get_network

    try:
        get_network(value)
    except UnknownNetworkError as exc:
        raise ValueError(
            f"{exc} (register your own with repro.sim.network.register_network)"
        ) from None


__all__ = [
    "ALLOCATORS",
    "BusSpec",
    "DISTURBANCES",
    "DWELL_SHAPES",
    "KERNELS",
    "METHODS",
    "NETWORKS",
    "SOURCES",
    "Scenario",
]
