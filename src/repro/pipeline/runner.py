"""Execute scenarios: the :class:`DesignStudy` runner and batch sweeps.

``DesignStudy(scenario).run()`` walks the pipeline stage by stage,
recording per-stage artifacts and timings into a
:class:`~repro.pipeline.result.StudyResult`.  A stage that raises a
domain error (infeasible allocation, overloaded slot, bad roster name)
marks the study failed and skips the remaining stages — sweeps over
aggressive grids keep going instead of crashing.

:func:`run_many` executes a scenario list with
:mod:`concurrent.futures` thread workers sharing one
:class:`~repro.pipeline.cache.DwellCurveCache`, so a grid that varies
deadlines, shapes, and allocators measures each dwell curve exactly
once.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, List, Optional, Sequence, Union

from repro.core.schedulability import UnschedulableError
from repro.pipeline.cache import DwellCurveCache, GLOBAL_DWELL_CACHE
from repro.pipeline.result import StudyAttachments, StudyResult
from repro.pipeline.scenario import Scenario
from repro.pipeline.stages import (
    STAGE_ORDER,
    STAGES,
    StageRecord,
    StageSkipped,
    StudyContext,
)


class DesignStudy:
    """Runs one scenario through the full design chain.

    Parameters
    ----------
    scenario:
        The declarative run description (or a registry name).
    cache:
        Dwell-measurement cache; defaults to the process-wide
        :data:`~repro.pipeline.cache.GLOBAL_DWELL_CACHE`.
    """

    def __init__(
        self,
        scenario: Union[Scenario, str],
        cache: Optional[DwellCurveCache] = None,
    ):
        if isinstance(scenario, str):
            from repro.pipeline.registry import get_scenario

            scenario = get_scenario(scenario)
        self.scenario = scenario
        self.cache = cache if cache is not None else GLOBAL_DWELL_CACHE

    def run(self) -> StudyResult:
        ctx = StudyContext(scenario=self.scenario, cache=self.cache)
        records: List[StageRecord] = []
        started = time.time()
        failed = False
        for name in STAGE_ORDER:
            if failed:
                records.append(
                    StageRecord(
                        name=name,
                        status="skipped",
                        elapsed=0.0,
                        artifact={},
                        detail="upstream stage failed",
                    )
                )
                continue
            stage = STAGES[name]
            t0 = time.perf_counter()
            try:
                artifact = stage(ctx)
            except StageSkipped as skip:
                records.append(
                    StageRecord(
                        name=name,
                        status="skipped",
                        elapsed=time.perf_counter() - t0,
                        artifact={},
                        detail=str(skip),
                    )
                )
            except (ValueError, UnschedulableError, KeyError) as exc:
                failed = True
                records.append(
                    StageRecord(
                        name=name,
                        status="failed",
                        elapsed=time.perf_counter() - t0,
                        artifact={},
                        detail=str(exc),
                    )
                )
            else:
                records.append(
                    StageRecord(
                        name=name,
                        status="ok",
                        elapsed=time.perf_counter() - t0,
                        artifact=artifact,
                    )
                )
        from repro import __version__

        provenance = {
            "repro_version": __version__,
            "scenario_name": self.scenario.name,
            "started_at": started,
            "stage_order": list(STAGE_ORDER),
        }
        attachments = StudyAttachments(
            params=ctx.params,
            case_apps=ctx.case_apps,
            analyzed=ctx.analyzed,
            allocation=ctx.allocation,
            trace=ctx.trace,
        )
        return StudyResult(
            scenario=self.scenario,
            stages=tuple(records),
            provenance=provenance,
            attachments=attachments,
        )


def run_study(
    scenario: Union[Scenario, str], cache: Optional[DwellCurveCache] = None
) -> StudyResult:
    """Convenience wrapper: ``DesignStudy(scenario, cache).run()``."""
    return DesignStudy(scenario, cache=cache).run()


def run_many(
    scenarios: Iterable[Union[Scenario, str]],
    max_workers: Optional[int] = None,
    cache: Optional[DwellCurveCache] = None,
) -> List[StudyResult]:
    """Execute many scenarios, sharing one dwell-measurement cache.

    Results come back in input order.  Thread workers suit this
    workload: the dwell sweeps spend their time in vectorised numpy
    calls, and a shared in-process cache de-duplicates the measurements
    that dominate a sweep's cost.

    Parameters
    ----------
    scenarios:
        Scenario objects or registry names.
    max_workers:
        Thread count; defaults to ``min(len(scenarios), cpu_count)``.
        ``1`` forces serial execution.
    cache:
        Shared dwell cache; defaults to the process-wide one.
    """
    scenario_list = list(scenarios)
    cache = cache if cache is not None else GLOBAL_DWELL_CACHE
    if not scenario_list:
        return []
    if max_workers is None:
        max_workers = min(len(scenario_list), os.cpu_count() or 4)
    if max_workers <= 1 or len(scenario_list) == 1:
        return [DesignStudy(s, cache=cache).run() for s in scenario_list]
    with ThreadPoolExecutor(max_workers=max_workers) as executor:
        return list(
            executor.map(lambda s: DesignStudy(s, cache=cache).run(), scenario_list)
        )


__all__ = ["DesignStudy", "run_many", "run_study"]
