"""Execute scenarios: the :class:`DesignStudy` runner and batch sweeps.

``DesignStudy(scenario).run()`` walks the pipeline stage by stage,
recording per-stage artifacts and timings into a
:class:`~repro.pipeline.result.StudyResult`.  A stage that raises a
domain error (infeasible allocation, overloaded slot, bad roster name)
marks the study failed and skips the remaining stages — sweeps over
aggressive grids keep going instead of crashing.

:func:`run_many` executes a scenario list with
:mod:`concurrent.futures` thread workers sharing one
:class:`~repro.pipeline.cache.DwellCurveCache`, so a grid that varies
deadlines, shapes, and allocators measures each dwell curve exactly
once.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.schedulability import UnschedulableError
from repro.pipeline.cache import DwellCurveCache, GLOBAL_DWELL_CACHE
from repro.pipeline.result import StudyAttachments, StudyResult
from repro.pipeline.scenario import Scenario
from repro.pipeline.stages import (
    STAGE_ORDER,
    STAGES,
    StageRecord,
    StageSkipped,
    StudyContext,
)


class DesignStudy:
    """Runs one scenario through the full design chain.

    Parameters
    ----------
    scenario:
        The declarative run description (or a registry name).
    cache:
        Dwell-measurement cache; defaults to the process-wide
        :data:`~repro.pipeline.cache.GLOBAL_DWELL_CACHE`.
    """

    def __init__(
        self,
        scenario: Union[Scenario, str],
        cache: Optional[DwellCurveCache] = None,
    ):
        if isinstance(scenario, str):
            from repro.pipeline.registry import get_scenario

            scenario = get_scenario(scenario)
        self.scenario = scenario
        self.cache = cache if cache is not None else GLOBAL_DWELL_CACHE

    def run(self) -> StudyResult:
        ctx = StudyContext(scenario=self.scenario, cache=self.cache)
        records: List[StageRecord] = []
        # Durations come from the monotonic clock, symmetrically with the
        # per-stage timings below — time.time() is NTP-step sensitive and
        # would let a clock slew corrupt the recorded elapsed time.
        t0_run = time.perf_counter()
        failed = False
        for name in STAGE_ORDER:
            if failed:
                records.append(
                    StageRecord(
                        name=name,
                        status="skipped",
                        elapsed=0.0,
                        artifact={},
                        detail="upstream stage failed",
                    )
                )
                continue
            stage = STAGES[name]
            t0 = time.perf_counter()
            try:
                artifact = stage(ctx)
            except StageSkipped as skip:
                records.append(
                    StageRecord(
                        name=name,
                        status="skipped",
                        elapsed=time.perf_counter() - t0,
                        artifact={},
                        detail=str(skip),
                    )
                )
            except (ValueError, UnschedulableError, KeyError) as exc:
                failed = True
                records.append(
                    StageRecord(
                        name=name,
                        status="failed",
                        elapsed=time.perf_counter() - t0,
                        artifact={},
                        detail=str(exc),
                    )
                )
            else:
                records.append(
                    StageRecord(
                        name=name,
                        status="ok",
                        elapsed=time.perf_counter() - t0,
                        artifact=artifact,
                    )
                )
        from repro import __version__

        provenance = {
            "repro_version": __version__,
            "scenario_name": self.scenario.name,
            # Total run duration on the same monotonic clock as the
            # per-stage `elapsed` fields (so the sum and the total agree).
            "elapsed": time.perf_counter() - t0_run,
            "stage_order": list(STAGE_ORDER),
        }
        attachments = StudyAttachments(
            params=ctx.params,
            case_apps=ctx.case_apps,
            analyzed=ctx.analyzed,
            allocation=ctx.allocation,
            trace=ctx.trace,
        )
        return StudyResult(
            scenario=self.scenario,
            stages=tuple(records),
            provenance=provenance,
            attachments=attachments,
        )


def run_study(
    scenario: Union[Scenario, str], cache: Optional[DwellCurveCache] = None
) -> StudyResult:
    """Convenience wrapper: ``DesignStudy(scenario, cache).run()``."""
    return DesignStudy(scenario, cache=cache).run()


#: Dwell-cache keys a pool worker already held (inherited via fork) or
#: already shipped back; lazily initialised on the worker's first task.
_WORKER_SHIPPED: Optional[set] = None


def _process_worker(
    scenario: Scenario,
) -> Tuple[StudyResult, Dict[Tuple, object]]:
    """Run one study in a pool worker and report new cache entries.

    Each worker keeps its own process-global dwell cache (warm from the
    start under a fork start method); whatever it measures *beyond* that
    baseline is returned alongside the result so the parent can merge it
    — later thread-mode or serial runs in the parent then hit instead of
    re-measuring.
    """
    global _WORKER_SHIPPED
    if _WORKER_SHIPPED is None:
        _WORKER_SHIPPED = GLOBAL_DWELL_CACHE.keys_snapshot()
    result = DesignStudy(scenario, cache=GLOBAL_DWELL_CACHE).run()
    exports = GLOBAL_DWELL_CACHE.export_entries(exclude=_WORKER_SHIPPED)
    _WORKER_SHIPPED.update(exports)
    return result, exports


def run_many(
    scenarios: Iterable[Union[Scenario, str]],
    max_workers: Optional[int] = None,
    cache: Optional[DwellCurveCache] = None,
    executor: str = "thread",
) -> List[StudyResult]:
    """Execute many scenarios, sharing one dwell-measurement cache.

    Results come back in input order.

    Thread workers (the default) share one in-process cache, so a grid
    that varies deadlines, shapes, and allocators measures each dwell
    curve exactly once — but the co-simulation stage is pure-Python and
    GIL-bound, so co-sim-heavy grids gain little wall-clock from
    threads.  ``executor="process"`` fans those out over a
    :class:`~concurrent.futures.ProcessPoolExecutor` instead: scenarios
    are pickled to the workers, each worker keeps a per-process dwell
    cache (inherited warm where the platform forks), and whatever a
    worker measures is merged back into the parent's cache when its
    results return.

    Parameters
    ----------
    scenarios:
        Scenario objects or registry names (names are resolved in the
        calling process, so registry state need not exist in workers).
    max_workers:
        Worker count; defaults to ``min(len(scenarios), cpu_count)``.
        ``1`` forces serial execution.
    cache:
        Shared dwell cache; defaults to the process-wide one.
    executor:
        ``"thread"`` or ``"process"``.
    """
    if executor not in ("thread", "process"):
        raise ValueError(
            f"unknown executor {executor!r}; expected 'thread' or 'process'"
        )
    scenario_list: List[Scenario] = []
    for scenario in scenarios:
        if isinstance(scenario, str):
            from repro.pipeline.registry import get_scenario

            scenario = get_scenario(scenario)
        scenario_list.append(scenario)
    cache = cache if cache is not None else GLOBAL_DWELL_CACHE
    if not scenario_list:
        return []
    if max_workers is None:
        max_workers = min(len(scenario_list), os.cpu_count() or 4)
    if max_workers <= 1 or len(scenario_list) == 1:
        return [DesignStudy(s, cache=cache).run() for s in scenario_list]
    if executor == "process":
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            outcomes = list(pool.map(_process_worker, scenario_list))
        results = []
        for result, exports in outcomes:
            cache.merge_entries(exports)
            results.append(result)
        return results
    with ThreadPoolExecutor(max_workers=max_workers) as executor_pool:
        return list(
            executor_pool.map(
                lambda s: DesignStudy(s, cache=cache).run(), scenario_list
            )
        )


__all__ = ["DesignStudy", "run_many", "run_study"]
