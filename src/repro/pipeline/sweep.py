"""Seeded Monte-Carlo sweeps over scenario grids.

A *sweep* is a two-level expansion of one base scenario:

* **axes** — named scenario fields crossed into a cartesian grid
  (``{"loss_rate": [0.0, 0.05], "deadline_scale": [1.0, 0.75]}`` gives
  four *cells*);
* **replications** — every cell is run with consecutive seeds
  (``seed0 + r``), which re-draws sporadic disturbance arrivals and
  FlexRay frame loss while holding the design fixed.

:func:`run_sweep` dispatches replications in **rounds** through an
:class:`~repro.pipeline.adaptive.AdaptiveScheduler` (thread or process
pools; co-sim-heavy grids want ``executor="process"`` — the simulation
loop is pure Python and GIL-bound).  In the default *fixed* mode every
cell receives exactly ``replications`` runs.  Passing ``ci_target``
switches to *adaptive* mode: a cell stops as soon as the Student-t 95 %
half-width of its QoC mean reaches the target, and the freed budget is
re-granted to the highest-variance open cells, up to
``max_replications`` per cell and an optional global ``budget``.

Per-cell statistics are maintained incrementally (Welford accumulators
updated as rows land — aggregation never re-scans the row log), each
finished study can stream one JSON line to disk as it completes (rows
carry the dispatch ``round``), and a replication that *crashes* inside
the pool is recorded as a synthetic failed row
(``failed_stage="worker"``) instead of aborting the sweep — the rows
already landed stay aggregated.
"""

from __future__ import annotations

import itertools
import json
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Sequence, Tuple, Union

from repro.pipeline.adaptive import METRICS, AdaptiveScheduler, CellState
from repro.pipeline.cache import DwellCurveCache, GLOBAL_DWELL_CACHE
from repro.pipeline.result import StudyResult
from repro.pipeline.runner import DesignStudy, _process_worker
from repro.pipeline.scenario import Scenario
from repro.pipeline.serialize import to_jsonable


def expand_cells(
    base: Union[Scenario, str],
    axes: Optional[Dict[str, Sequence[Any]]] = None,
) -> List[Tuple[str, Scenario]]:
    """Cross the axis values into ``(cell_name, scenario)`` grid cells.

    Axis insertion order is preserved, so cell order — and therefore
    scheduling order — is deterministic.  Cells carry no seed; the
    replication machinery derives ``seed0 + r`` per run.
    """
    if isinstance(base, str):
        from repro.pipeline.registry import get_scenario

        base = get_scenario(base)
    axes = dict(axes or {})
    if "seed" in axes:
        raise ValueError(
            "the replication machinery owns the 'seed' field (seeds run "
            "seed0 .. seed0+replications-1); sweep a different axis or "
            "adjust replications/seed0"
        )
    for axis, values in axes.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise ValueError(
                f"axis {axis!r} needs a non-empty list of values, got {values!r}"
            )
    cells: List[Tuple[str, Scenario]] = []
    names = list(axes)
    for combo in itertools.product(*(axes[name] for name in names)):
        overrides = dict(zip(names, combo))
        try:
            cell = base.derive(**overrides) if overrides else base
        except TypeError as exc:
            raise ValueError(
                f"unknown scenario field in sweep axes: {exc}"
            ) from None
        cells.append((cell.name, cell))
    return cells


def _replication_scenario(cell: Scenario, seed0: int, r: int) -> Scenario:
    """Replication ``r`` of a cell runs with seed ``seed0 + r`` — the
    same deterministic map in fixed and adaptive mode, so the two are
    seed-compatible on the replications they share."""
    seed = seed0 + r
    return cell.derive(name=f"{cell.name}#seed{seed}", seed=seed)


def expand_sweep(
    base: Union[Scenario, str],
    axes: Optional[Dict[str, Sequence[Any]]] = None,
    replications: int = 1,
    seed0: int = 0,
) -> List[Tuple[str, Scenario]]:
    """Expand ``base`` into the fixed grid's ``(cell_name, scenario)`` runs.

    Cells are the cartesian product of the axis values; each cell is
    replicated with seeds ``seed0 .. seed0 + replications - 1``.  (This
    is the precomputed run list adaptive mode generalises; it remains
    the public way to inspect a grid without running it.)
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    return [
        (name, _replication_scenario(cell, seed0, r))
        for name, cell in expand_cells(base, axes)
        for r in range(replications)
    ]


@dataclass(frozen=True)
class SweepJob:
    """One schedulable replication of a fixed sweep grid.

    ``index`` is the job's position in the dispatch order (the order
    serial :func:`run_sweep` would execute), ``address`` its content
    address — the fabric's cache / dedup / resume key.
    """

    index: int
    cell_index: int
    cell: str
    rep: int
    scenario: Scenario
    address: str


def fixed_jobs(
    base: Union[Scenario, str],
    axes: Optional[Dict[str, Sequence[Any]]] = None,
    replications: int = 1,
    seed0: int = 0,
) -> List[SweepJob]:
    """Decompose a fixed grid into content-addressed jobs.

    Jobs come out in the same replication-major dispatch order the
    :class:`~repro.pipeline.adaptive.AdaptiveScheduler` grants a fixed
    sweep (cell 0 rep 0, cell 1 rep 0, ..., cell 0 rep 1, ...), so a
    distributed executor that merges rows back in ``index`` order
    reproduces serial :func:`run_sweep` bit for bit.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    cells = expand_cells(base, axes)
    jobs: List[SweepJob] = []
    for r in range(replications):
        for cell_index, (name, cell) in enumerate(cells):
            scenario = _replication_scenario(cell, seed0, r)
            jobs.append(
                SweepJob(
                    index=len(jobs),
                    cell_index=cell_index,
                    cell=name,
                    rep=r,
                    scenario=scenario,
                    address=scenario.content_address(),
                )
            )
    return jobs


def merge_rows(
    base: Union[Scenario, str],
    cells: Sequence[Tuple[str, Scenario]],
    rows: Sequence[Dict[str, Any]],
    *,
    executor: str,
    elapsed: float,
    results: Sequence[StudyResult] = (),
    config: Optional[Dict[str, Any]] = None,
) -> SweepResult:
    """Fold result rows (in dispatch order) into a fixed-mode
    :class:`SweepResult`.

    This is the aggregation half of :func:`run_sweep`, split out so the
    sweep fabric — which collects rows from remote workers in whatever
    order they land — can re-impose the deterministic job order and
    produce per-cell statistics bitwise identical to a serial run.
    """
    if isinstance(base, str):
        from repro.pipeline.registry import get_scenario

        base = get_scenario(base)
    states = [
        CellState(name, scenario, index)
        for index, (name, scenario) in enumerate(cells)
    ]
    by_name = {state.name: state for state in states}
    for row in rows:
        by_name[row["cell"]].record(row)
    for state in states:
        state.stopped_reason = "fixed"
    cell_stats = [
        CellStats(
            name=state.name,
            runs=state.attempts,
            failures=state.failures,
            deadlines_met_rate=state.deadlines_met_rate(),
            metrics={
                metric: acc.to_dict()
                for metric, acc in state.stats.items()
                if acc.n > 0
            },
            stopped_reason=state.stopped_reason,
            rounds=state.rounds,
            saved=0,
        )
        for state in states
    ]
    return SweepResult(
        base=base,
        executor=executor,
        elapsed=elapsed,
        rows=list(rows),
        cells=cell_stats,
        results=list(results),
        mode="fixed",
        rounds=1,
        config=dict(config or {}),
    )


def study_row(cell: str, result: StudyResult, round_no: int) -> Dict[str, Any]:
    """One JSONL record / aggregation input per finished study.

    Every row carries the scenario's content address
    (:meth:`~repro.pipeline.scenario.Scenario.content_address`), so a
    streamed JSONL doubles as a content-addressed done-set: the fabric
    coordinator's ``--resume`` rebuilds its store from these lines.
    """
    cosim = result.stage("cosim")
    row: Dict[str, Any] = {
        "cell": cell,
        "scenario": result.scenario.name,
        "seed": result.scenario.seed,
        "address": result.scenario.content_address(),
        "round": round_no,
        "ok": result.ok,
        "duration": result.duration,
        "slot_count": result.slot_count,
    }
    if not result.ok:
        failed = next(r for r in result.stages if r.status == "failed")
        row["failed_stage"] = failed.name
        row["detail"] = failed.detail
    if cosim.ok:
        responses = [
            app["worst_response"]
            for app in cosim.artifact["applications"]
            if app["worst_response"] is not None
        ]
        row.update(
            {
                "qoc": cosim.artifact["qoc"],
                "worst_response": max(responses) if responses else None,
                "all_deadlines_met": cosim.artifact["all_deadlines_met"],
                "jitter_violations": cosim.artifact["jitter_violations"],
            }
        )
        if "loss" in cosim.artifact:
            row["lost_frames"] = cosim.artifact["loss"]["lost"]
    return row


def crash_row(
    cell: str, scenario: Scenario, round_no: int, exc: BaseException
) -> Dict[str, Any]:
    """Synthetic failed row for a replication that died *inside* the
    pool (worker crash, pickling error, non-domain exception) — the
    sweep keeps aggregating instead of losing every landed row.  The
    fabric coordinator reuses it for jobs whose lease expired past the
    attempt cap, so dead remote workers land in the same accounting."""
    return {
        "cell": cell,
        "scenario": scenario.name,
        "seed": scenario.seed,
        "address": scenario.content_address(),
        "round": round_no,
        "ok": False,
        "duration": None,
        "slot_count": None,
        "failed_stage": "worker",
        "detail": repr(exc),
    }


@dataclass(frozen=True)
class CellStats:
    """Aggregated outcome of one sweep cell across its replications."""

    name: str
    runs: int
    failures: int
    deadlines_met_rate: Optional[float]
    metrics: Dict[str, Dict[str, float]]
    stopped_reason: Optional[str] = None
    rounds: int = 1
    saved: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "runs": self.runs,
            "failures": self.failures,
            "deadlines_met_rate": self.deadlines_met_rate,
            "metrics": self.metrics,
            "stopped_reason": self.stopped_reason,
            "rounds": self.rounds,
            "saved": self.saved,
        }


@dataclass
class SweepResult:
    """Everything one sweep produced: raw rows plus per-cell statistics."""

    base: Scenario
    executor: str
    elapsed: float
    rows: List[Dict[str, Any]]
    cells: List[CellStats]
    results: List[StudyResult] = field(default_factory=list, repr=False)
    mode: str = "fixed"
    rounds: int = 1
    config: Dict[str, Any] = field(default_factory=dict)

    @property
    def run_count(self) -> int:
        return len(self.rows)

    @property
    def replications_spent(self) -> int:
        """Total replications dispatched (crashed attempts included)."""
        return len(self.rows)

    @property
    def replications_saved(self) -> int:
        """Replications early stopping left unspent vs. the per-cell cap."""
        return sum(cell.saved for cell in self.cells)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base_scenario": self.base.to_dict(),
            "executor": self.executor,
            "elapsed": self.elapsed,
            "mode": self.mode,
            "rounds": self.rounds,
            "config": dict(self.config),
            "replications_spent": self.replications_spent,
            "replications_saved": self.replications_saved,
            "runs": to_jsonable(self.rows),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def report(self) -> str:
        """ASCII summary: one row per cell, QoC mean +/- CI."""
        from repro.experiments.reporting import format_table

        rows = []
        for cell in self.cells:
            qoc = cell.metrics.get("qoc")
            resp = cell.metrics.get("worst_response")
            rows.append(
                [
                    cell.name,
                    cell.runs,
                    cell.failures,
                    "-"
                    if qoc is None
                    else f"{qoc['mean']:.4g} ± {qoc['ci95']:.2g}",
                    "-"
                    if resp is None
                    else f"{resp['mean']:.4g} ± {resp['ci95']:.2g}",
                    "-"
                    if cell.deadlines_met_rate is None
                    else f"{cell.deadlines_met_rate:.0%}",
                    cell.stopped_reason or "-",
                ]
            )
        table = format_table(
            ["cell", "runs", "failed", "QoC (mean ± CI95)",
             "worst response [s]", "deadlines met", "stopped"],
            rows,
        )
        head = (
            f"Sweep of {self.base.name!r}: {self.run_count} runs in "
            f"{self.elapsed:.1f}s ({self.executor} executor, {self.mode} "
            f"mode, {self.rounds} round{'s' if self.rounds != 1 else ''})"
        )
        if self.mode == "adaptive" and self.replications_saved:
            head += (
                f"\nadaptive stopping saved {self.replications_saved} "
                f"replications vs. the per-cell cap"
            )
        return f"{head}\n{table}"


def open_jsonl(jsonl_path: Optional[str], mode: str = "w") -> Optional[IO[str]]:
    """UTF-8 stream with parent directories created on demand, so
    ``repro sweep -o out/rows.jsonl`` works on a fresh checkout.
    The fabric coordinator appends (``mode="a"``) when resuming, so the
    done-set it just adopted is not clobbered."""
    if jsonl_path is None:
        return None
    path = Path(jsonl_path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    return path.open(mode, encoding="utf-8")


def run_sweep(
    base: Union[Scenario, str],
    axes: Optional[Dict[str, Sequence[Any]]] = None,
    replications: int = 1,
    seed0: int = 0,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    cache: Optional[DwellCurveCache] = None,
    jsonl_path: Optional[str] = None,
    keep_results: bool = True,
    ci_target: Optional[float] = None,
    ci_relative: bool = False,
    max_replications: Optional[int] = None,
    budget: Optional[int] = None,
    round_size: Optional[int] = None,
) -> SweepResult:
    """Run a seeded replication grid and aggregate per-cell statistics.

    Parameters
    ----------
    base:
        Base scenario (object or registry name).
    axes:
        Scenario fields to cross into the grid, e.g.
        ``{"loss_rate": [0.0, 0.05]}``.
    replications:
        Fixed mode: seeded repeats per cell (seeds ``seed0..seed0+n-1``).
        Adaptive mode: the first-round minimum per cell (>= 2).
    executor:
        ``"thread"`` shares one in-process dwell cache (best when
        measurements dominate); ``"process"`` sidesteps the GIL for
        co-simulation-heavy grids and merges worker caches on return.
    max_workers:
        Pool size; defaults to ``min(first round, cpu_count)``.
    jsonl_path:
        If given, stream one JSON line per finished study (written as
        results land, so a long sweep is inspectable while running;
        parent directories are created, encoding is UTF-8).
    keep_results:
        Keep the full :class:`StudyResult` objects on the returned
        :class:`SweepResult` (set False for very large sweeps).
    ci_target:
        Enable adaptive stopping: a cell stops once the Student-t 95 %
        half-width of its QoC mean is <= this target (absolute, or a
        fraction of ``|mean|`` with ``ci_relative``), and its remaining
        budget is granted to the highest-variance open cells.
    ci_relative:
        Interpret ``ci_target`` relative to each cell's ``|mean|``.
    max_replications:
        Adaptive per-cell ceiling.
    budget:
        Adaptive global replication ceiling across all cells.  Adaptive
        mode requires ``max_replications`` and/or ``budget``.
    round_size:
        Nominal per-cell replications granted per adaptive round
        (default: ``replications``).
    """
    import os

    cells = expand_cells(base, axes)
    if isinstance(base, str):
        from repro.pipeline.registry import get_scenario

        base_scenario = get_scenario(base)
    else:
        base_scenario = base
    cache = cache if cache is not None else GLOBAL_DWELL_CACHE
    if executor not in ("thread", "process"):
        raise ValueError(
            f"unknown executor {executor!r}; expected 'thread' or 'process'"
        )
    scheduler = AdaptiveScheduler(
        cells,
        min_replications=replications,
        ci_target=ci_target,
        ci_relative=ci_relative,
        max_replications=max_replications,
        budget=budget,
        step=round_size,
    )
    jobs = scheduler.initial_grants()
    if max_workers is None:
        max_workers = min(len(jobs), os.cpu_count() or 4)
    serial = max_workers <= 1 or len(jobs) == 1

    started = time.perf_counter()
    rows: List[Dict[str, Any]] = []
    results: List[StudyResult] = []
    writer = open_jsonl(jsonl_path)
    pool: Optional[Executor] = None
    round_no = 0
    try:
        if not serial:
            pool_cls = (
                ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
            )
            pool = pool_cls(max_workers=max_workers)
        while jobs:
            prepared = [
                (cell, _replication_scenario(cell.scenario, seed0, r))
                for cell, r in jobs
            ]
            outcomes = _run_round(
                prepared, round_no, executor, pool, cache, writer
            )
            # Rows fold into the Welford accumulators in job order — a
            # deterministic order regardless of pool completion order,
            # so thread/process/serial sweeps agree bit-for-bit.
            for (cell, _), (row, result) in zip(prepared, outcomes):
                rows.append(row)
                cell.record(row)
                if keep_results and result is not None:
                    results.append(result)
            round_no += 1
            jobs = scheduler.next_grants()
    finally:
        if pool is not None:
            pool.shutdown()
        if writer is not None:
            writer.close()
    elapsed = time.perf_counter() - started

    cell_stats = [
        CellStats(
            name=state.name,
            runs=state.attempts,
            failures=state.failures,
            deadlines_met_rate=state.deadlines_met_rate(),
            metrics={
                metric: acc.to_dict()
                for metric, acc in state.stats.items()
                if acc.n > 0
            },
            stopped_reason=state.stopped_reason,
            rounds=state.rounds,
            saved=scheduler.saved(state),
        )
        for state in scheduler.cells
    ]
    return SweepResult(
        base=base_scenario,
        executor="serial" if serial else executor,
        elapsed=elapsed,
        rows=rows,
        cells=cell_stats,
        results=results,
        mode="adaptive" if scheduler.adaptive else "fixed",
        rounds=round_no,
        config=scheduler.config(),
    )


def _run_round(
    prepared: List[Tuple[CellState, Scenario]],
    round_no: int,
    executor: str,
    pool: Optional[Executor],
    cache: DwellCurveCache,
    writer: Optional[IO[str]],
) -> List[Optional[Tuple[Dict[str, Any], Optional[StudyResult]]]]:
    """Execute one dispatch round; returns ``(row, result)`` in job order.

    Rows are streamed to ``writer`` the moment each study lands
    (completion order), while the returned list preserves job order for
    deterministic aggregation.  A replication that raises — in a worker
    process, a thread, or inline — becomes a synthetic failed row
    (``failed_stage="worker"``) rather than aborting the round.
    """
    outcomes: List[Optional[Tuple[Dict[str, Any], Optional[StudyResult]]]] = [
        None
    ] * len(prepared)

    def land(index: int, result: Optional[StudyResult], exc: Optional[BaseException]):
        cell, scenario = prepared[index]
        if exc is not None:
            row = crash_row(cell.name, scenario, round_no, exc)
            outcomes[index] = (row, None)
        else:
            assert result is not None
            row = study_row(cell.name, result, round_no)
            outcomes[index] = (row, result)
        if writer is not None:
            writer.write(json.dumps(to_jsonable(row)) + "\n")
            writer.flush()

    if pool is None:
        for index, (_, scenario) in enumerate(prepared):
            try:
                result = DesignStudy(scenario, cache=cache).run()
            except Exception as exc:  # crash-proof: record, keep sweeping
                land(index, None, exc)
            else:
                land(index, result, None)
        return outcomes

    if executor == "process":
        pending = {
            pool.submit(_process_worker, scenario): index
            for index, (_, scenario) in enumerate(prepared)
        }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = pending.pop(future)
                try:
                    result, exports = future.result()
                except Exception as exc:  # worker died mid-replication
                    land(index, None, exc)
                else:
                    cache.merge_entries(exports)
                    land(index, result, None)
    else:
        pending = {
            pool.submit(DesignStudy(scenario, cache=cache).run): index
            for index, (_, scenario) in enumerate(prepared)
        }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = pending.pop(future)
                try:
                    result = future.result()
                except Exception as exc:
                    land(index, None, exc)
                else:
                    land(index, result, None)
    return outcomes


__all__ = [
    "CellStats",
    "METRICS",
    "SweepJob",
    "SweepResult",
    "crash_row",
    "expand_cells",
    "expand_sweep",
    "fixed_jobs",
    "merge_rows",
    "run_sweep",
    "study_row",
]
