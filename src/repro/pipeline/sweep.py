"""Seeded Monte-Carlo sweeps over scenario grids.

A *sweep* is a two-level expansion of one base scenario:

* **axes** — named scenario fields crossed into a cartesian grid
  (``{"loss_rate": [0.0, 0.05], "deadline_scale": [1.0, 0.75]}`` gives
  four *cells*);
* **replications** — every cell is run ``n`` times with consecutive
  seeds (``seed0 + r``), which re-draws sporadic disturbance arrivals
  and FlexRay frame loss while holding the design fixed.

:func:`run_sweep` executes the expansion through
:func:`~repro.pipeline.runner.run_many`-style workers (thread or
process pools; co-sim-heavy grids want ``executor="process"`` — the
simulation loop is pure Python and GIL-bound), optionally streaming one
JSON line per finished study to disk as it lands, and aggregates each
cell's quality-of-control statistics (mean / standard deviation / 95 %
confidence half-width) so a 32-run grid collapses into a table you can
read.
"""

from __future__ import annotations

import itertools
import json
import math
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Sequence, Tuple, Union

from repro.pipeline.cache import DwellCurveCache, GLOBAL_DWELL_CACHE
from repro.pipeline.result import StudyResult
from repro.pipeline.runner import DesignStudy, _process_worker
from repro.pipeline.scenario import Scenario
from repro.pipeline.serialize import to_jsonable

#: Per-study metrics aggregated across a cell's replications.
METRICS = ("qoc", "worst_response", "jitter_violations", "duration")


def expand_sweep(
    base: Union[Scenario, str],
    axes: Optional[Dict[str, Sequence[Any]]] = None,
    replications: int = 1,
    seed0: int = 0,
) -> List[Tuple[str, Scenario]]:
    """Expand ``base`` into ``(cell_name, scenario)`` runs.

    Cells are the cartesian product of the axis values (axis insertion
    order is preserved, so run order is deterministic); each cell is
    replicated with seeds ``seed0 .. seed0 + replications - 1``.
    """
    if isinstance(base, str):
        from repro.pipeline.registry import get_scenario

        base = get_scenario(base)
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    axes = dict(axes or {})
    if "seed" in axes:
        raise ValueError(
            "the replication machinery owns the 'seed' field (seeds run "
            "seed0 .. seed0+replications-1); sweep a different axis or "
            "adjust replications/seed0"
        )
    for axis, values in axes.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise ValueError(
                f"axis {axis!r} needs a non-empty list of values, got {values!r}"
            )
    runs: List[Tuple[str, Scenario]] = []
    names = list(axes)
    for combo in itertools.product(*(axes[name] for name in names)):
        overrides = dict(zip(names, combo))
        try:
            cell = base.derive(**overrides) if overrides else base
        except TypeError as exc:
            raise ValueError(
                f"unknown scenario field in sweep axes: {exc}"
            ) from None
        for r in range(replications):
            scenario = cell.derive(
                name=f"{cell.name}#seed{seed0 + r}", seed=seed0 + r
            )
            runs.append((cell.name, scenario))
    return runs


def _study_row(cell: str, result: StudyResult) -> Dict[str, Any]:
    """One JSONL record / aggregation input per finished study."""
    cosim = result.stage("cosim")
    row: Dict[str, Any] = {
        "cell": cell,
        "scenario": result.scenario.name,
        "seed": result.scenario.seed,
        "ok": result.ok,
        "duration": result.duration,
        "slot_count": result.slot_count,
    }
    if not result.ok:
        failed = next(r for r in result.stages if r.status == "failed")
        row["failed_stage"] = failed.name
        row["detail"] = failed.detail
    if cosim.ok:
        responses = [
            app["worst_response"]
            for app in cosim.artifact["applications"]
            if app["worst_response"] is not None
        ]
        row.update(
            {
                "qoc": cosim.artifact["qoc"],
                "worst_response": max(responses) if responses else None,
                "all_deadlines_met": cosim.artifact["all_deadlines_met"],
                "jitter_violations": cosim.artifact["jitter_violations"],
            }
        )
        if "loss" in cosim.artifact:
            row["lost_frames"] = cosim.artifact["loss"]["lost"]
    return row


def _aggregate(values: List[float]) -> Dict[str, float]:
    """Mean / sample std / 95 % normal CI half-width / extremes."""
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    return {
        "n": n,
        "mean": mean,
        "std": std,
        "ci95": 1.96 * std / math.sqrt(n),
        "min": min(values),
        "max": max(values),
    }


@dataclass(frozen=True)
class CellStats:
    """Aggregated outcome of one sweep cell across its replications."""

    name: str
    runs: int
    failures: int
    deadlines_met_rate: Optional[float]
    metrics: Dict[str, Dict[str, float]]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "runs": self.runs,
            "failures": self.failures,
            "deadlines_met_rate": self.deadlines_met_rate,
            "metrics": self.metrics,
        }


@dataclass
class SweepResult:
    """Everything one sweep produced: raw rows plus per-cell statistics."""

    base: Scenario
    executor: str
    elapsed: float
    rows: List[Dict[str, Any]]
    cells: List[CellStats]
    results: List[StudyResult] = field(default_factory=list, repr=False)

    @property
    def run_count(self) -> int:
        return len(self.rows)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base_scenario": self.base.to_dict(),
            "executor": self.executor,
            "elapsed": self.elapsed,
            "runs": to_jsonable(self.rows),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def report(self) -> str:
        """ASCII summary: one row per cell, QoC mean +/- CI."""
        from repro.experiments.reporting import format_table

        rows = []
        for cell in self.cells:
            qoc = cell.metrics.get("qoc")
            resp = cell.metrics.get("worst_response")
            rows.append(
                [
                    cell.name,
                    cell.runs,
                    cell.failures,
                    "-"
                    if qoc is None
                    else f"{qoc['mean']:.4g} ± {qoc['ci95']:.2g}",
                    "-"
                    if resp is None
                    else f"{resp['mean']:.4g} ± {resp['ci95']:.2g}",
                    "-"
                    if cell.deadlines_met_rate is None
                    else f"{cell.deadlines_met_rate:.0%}",
                ]
            )
        table = format_table(
            ["cell", "runs", "failed", "QoC (mean ± CI95)",
             "worst response [s]", "deadlines met"],
            rows,
        )
        head = (
            f"Sweep of {self.base.name!r}: {self.run_count} runs in "
            f"{self.elapsed:.1f}s ({self.executor} executor)"
        )
        return f"{head}\n{table}"


def run_sweep(
    base: Union[Scenario, str],
    axes: Optional[Dict[str, Sequence[Any]]] = None,
    replications: int = 1,
    seed0: int = 0,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    cache: Optional[DwellCurveCache] = None,
    jsonl_path: Optional[str] = None,
    keep_results: bool = True,
) -> SweepResult:
    """Run a seeded replication grid and aggregate per-cell statistics.

    Parameters
    ----------
    base:
        Base scenario (object or registry name).
    axes:
        Scenario fields to cross into the grid, e.g.
        ``{"loss_rate": [0.0, 0.05]}``.
    replications:
        Seeded repeats per cell (seeds ``seed0 .. seed0+n-1``).
    executor:
        ``"thread"`` shares one in-process dwell cache (best when
        measurements dominate); ``"process"`` sidesteps the GIL for
        co-simulation-heavy grids and merges worker caches on return.
    max_workers:
        Pool size; defaults to ``min(runs, cpu_count)``.
    jsonl_path:
        If given, stream one JSON line per finished study (written as
        results land, so a long sweep is inspectable while running).
    keep_results:
        Keep the full :class:`StudyResult` objects on the returned
        :class:`SweepResult` (set False for very large sweeps).
    """
    import os

    runs = expand_sweep(base, axes, replications=replications, seed0=seed0)
    if isinstance(base, str):
        from repro.pipeline.registry import get_scenario

        base_scenario = get_scenario(base)
    else:
        base_scenario = base
    cache = cache if cache is not None else GLOBAL_DWELL_CACHE
    if max_workers is None:
        max_workers = min(len(runs), os.cpu_count() or 4)
    if executor not in ("thread", "process"):
        raise ValueError(
            f"unknown executor {executor!r}; expected 'thread' or 'process'"
        )
    started = time.perf_counter()
    results: List[Optional[StudyResult]] = [None] * len(runs)
    rows: List[Optional[Dict[str, Any]]] = [None] * len(runs)
    writer: Optional[IO[str]] = open(jsonl_path, "w") if jsonl_path else None
    try:
        if max_workers <= 1 or len(runs) == 1:
            for i, (cell, scenario) in enumerate(runs):
                result = DesignStudy(scenario, cache=cache).run()
                _land(i, cell, result, results, rows, writer)
        elif executor == "process":
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                pending = {
                    pool.submit(_process_worker, scenario): i
                    for i, (_, scenario) in enumerate(runs)
                }
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        i = pending.pop(future)
                        result, exports = future.result()
                        cache.merge_entries(exports)
                        _land(i, runs[i][0], result, results, rows, writer)
        else:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                pending = {
                    pool.submit(DesignStudy(scenario, cache=cache).run): i
                    for i, (_, scenario) in enumerate(runs)
                }
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        i = pending.pop(future)
                        _land(i, runs[i][0], future.result(), results, rows, writer)
    finally:
        if writer is not None:
            writer.close()
    elapsed = time.perf_counter() - started

    by_cell: Dict[str, List[Dict[str, Any]]] = {}
    for cell, _ in runs:
        by_cell.setdefault(cell, [])
    for row in rows:
        assert row is not None
        by_cell[row["cell"]].append(row)
    cells = []
    for name, cell_rows in by_cell.items():
        metrics: Dict[str, Dict[str, float]] = {}
        for metric in METRICS:
            values = [
                row[metric]
                for row in cell_rows
                if row.get(metric) is not None
            ]
            if values:
                metrics[metric] = _aggregate([float(v) for v in values])
        met = [
            row["all_deadlines_met"]
            for row in cell_rows
            if "all_deadlines_met" in row
        ]
        cells.append(
            CellStats(
                name=name,
                runs=len(cell_rows),
                failures=sum(1 for row in cell_rows if not row["ok"]),
                deadlines_met_rate=(
                    sum(met) / len(met) if met else None
                ),
                metrics=metrics,
            )
        )
    final_results = [r for r in results if r is not None] if keep_results else []
    return SweepResult(
        base=base_scenario,
        executor=executor if max_workers > 1 and len(runs) > 1 else "serial",
        elapsed=elapsed,
        rows=[row for row in rows if row is not None],
        cells=cells,
        results=final_results,
    )


def _land(
    index: int,
    cell: str,
    result: StudyResult,
    results: List[Optional[StudyResult]],
    rows: List[Optional[Dict[str, Any]]],
    writer: Optional[IO[str]],
) -> None:
    """Record one finished study; stream its JSONL row immediately."""
    results[index] = result
    row = _study_row(cell, result)
    rows[index] = row
    if writer is not None:
        writer.write(json.dumps(to_jsonable(row)) + "\n")
        writer.flush()


__all__ = [
    "CellStats",
    "METRICS",
    "SweepResult",
    "expand_sweep",
    "run_sweep",
]
