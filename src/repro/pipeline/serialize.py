"""JSON-safe conversion of arbitrary result objects.

Pipeline artifacts must survive a ``json.dumps``/``json.loads`` round
trip unchanged, so everything recorded in a
:class:`~repro.pipeline.result.StudyResult` is converted to plain
Python containers *at creation time* via :func:`to_jsonable`.  The same
helper backs the CLI's ``--json`` flag, where it has to digest the
legacy experiment result dataclasses (which carry numpy arrays, nested
dataclasses and tuples).
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np


def to_jsonable(value: Any) -> Any:
    """Convert ``value`` to JSON-serialisable plain Python containers.

    Handles dataclasses (recursively, by field), numpy scalars and
    arrays, mappings, and iterables; tuples and sets become lists.
    Objects providing a ``to_dict`` method are serialised through it.
    Anything else falls back to ``str`` so the output never fails to
    serialise.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return to_jsonable(to_dict())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    return str(value)


__all__ = ["to_jsonable"]
