"""Shared helpers: argument validation and small linear-algebra utilities.

These are deliberately dependency-light; everything else in :mod:`repro`
builds on top of them.
"""

from repro.utils.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
    check_square,
    check_vector,
    ensure_matrix,
)
from repro.utils.linalg import (
    is_schur_stable,
    matrix_powers,
    spectral_radius,
    state_norms,
    transient_growth_bound,
)

__all__ = [
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_square",
    "check_vector",
    "ensure_matrix",
    "is_schur_stable",
    "matrix_powers",
    "spectral_radius",
    "state_norms",
    "transient_growth_bound",
]
