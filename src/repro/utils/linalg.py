"""Small linear-algebra utilities shared by the control and core packages.

The switching analysis in :mod:`repro.core` repeatedly evaluates matrix
powers and transient norm envelopes of closed-loop matrices; the helpers
here centralise those computations.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils.validation import check_positive, check_square


def spectral_radius(matrix) -> float:
    """Largest absolute eigenvalue of a square matrix."""
    matrix = check_square(matrix, "matrix")
    return float(np.max(np.abs(np.linalg.eigvals(matrix))))


def is_schur_stable(matrix, tol: float = 1e-9) -> bool:
    """Whether all eigenvalues lie strictly inside the unit circle.

    A discrete-time LTI system ``x[k+1] = A x[k]`` is asymptotically stable
    iff ``A`` is Schur stable.
    """
    return spectral_radius(matrix) < 1.0 - tol


def matrix_powers(matrix, count: int) -> Iterator[np.ndarray]:
    """Yield ``I, A, A^2, ..., A^(count-1)`` without re-multiplying from scratch.

    Parameters
    ----------
    matrix:
        Square matrix ``A``.
    count:
        Number of powers to yield (must be positive).
    """
    matrix = check_square(matrix, "matrix")
    count = int(check_positive(count, "count"))
    power = np.eye(matrix.shape[0])
    for _ in range(count):
        yield power
        power = matrix @ power


def state_norms(states: np.ndarray, ord: int = 2) -> np.ndarray:
    """Row-wise vector norms of a trajectory array of shape ``(steps, n)``."""
    states = np.asarray(states, dtype=float)
    if states.ndim == 1:
        states = states[:, None]
    if states.ndim != 2:
        raise ValueError(f"states must be 1-D or 2-D, got ndim={states.ndim}")
    return np.linalg.norm(states, ord=ord, axis=1)


def transient_growth_bound(matrix, horizon: int) -> float:
    """Peak induced 2-norm ``max_k ||A^k||_2`` over ``k in [0, horizon]``.

    For a Schur-stable but non-normal matrix this peak can exceed 1, which
    is exactly the mechanism behind the paper's non-monotonic dwell/wait
    relation: the ET closed loop amplifies the state transiently before the
    asymptotic decay takes over.
    """
    matrix = check_square(matrix, "matrix")
    horizon = int(check_positive(horizon, "horizon"))
    peak = 0.0
    for power in matrix_powers(matrix, horizon + 1):
        peak = max(peak, float(np.linalg.norm(power, 2)))
    return peak


def is_non_normal(matrix, tol: float = 1e-9) -> bool:
    """Whether ``A A* != A* A`` (the matrix is not normal).

    Normal matrices have monotone ``||A^k x||`` envelopes when Schur
    stable; non-normality is a necessary condition for transient growth.
    """
    matrix = check_square(matrix, "matrix")
    commutator = matrix @ matrix.T - matrix.T @ matrix
    return bool(np.linalg.norm(commutator) > tol * max(1.0, np.linalg.norm(matrix) ** 2))
