"""Argument-validation helpers used across the library.

All helpers raise :class:`ValueError` (or :class:`TypeError` for wrong
types) with messages that name the offending argument, so errors surface
close to the caller's mistake rather than deep inside numerics.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np

Number = Union[int, float]


def check_positive(value: Number, name: str) -> float:
    """Return ``value`` as float after checking it is finite and > 0."""
    value = _as_finite_float(value, name)
    if value <= 0.0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_nonnegative(value: Number, name: str) -> float:
    """Return ``value`` as float after checking it is finite and >= 0."""
    value = _as_finite_float(value, name)
    if value < 0.0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(value: Number, name: str) -> float:
    """Return ``value`` as float after checking it lies in [0, 1]."""
    return check_in_range(value, name, low=0.0, high=1.0)


def check_in_range(
    value: Number,
    name: str,
    low: float = -math.inf,
    high: float = math.inf,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Return ``value`` as float after checking it lies in the interval.

    Parameters
    ----------
    value:
        The number to validate.
    name:
        Argument name used in error messages.
    low, high:
        Interval endpoints.
    low_inclusive, high_inclusive:
        Whether each endpoint is allowed.
    """
    value = _as_finite_float(value, name)
    low_ok = value >= low if low_inclusive else value > low
    high_ok = value <= high if high_inclusive else value < high
    if not (low_ok and high_ok):
        lo = "[" if low_inclusive else "("
        hi = "]" if high_inclusive else ")"
        raise ValueError(
            f"{name} must lie in {lo}{low}, {high}{hi}, got {value!r}"
        )
    return value


def ensure_matrix(value, name: str, rows: int = None, cols: int = None) -> np.ndarray:
    """Convert ``value`` to a 2-D float array, optionally checking its shape.

    Scalars and 1-D inputs are rejected: state-space code in this library
    always works with explicit 2-D matrices so dimension bugs fail fast.
    """
    arr = np.asarray(value, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D matrix, got ndim={arr.ndim}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    if rows is not None and arr.shape[0] != rows:
        raise ValueError(f"{name} must have {rows} rows, got {arr.shape[0]}")
    if cols is not None and arr.shape[1] != cols:
        raise ValueError(f"{name} must have {cols} columns, got {arr.shape[1]}")
    return arr


def check_square(value, name: str) -> np.ndarray:
    """Convert ``value`` to a 2-D float array and check it is square."""
    arr = ensure_matrix(value, name)
    if arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    return arr


def check_vector(value, name: str, size: int = None) -> np.ndarray:
    """Convert ``value`` to a 1-D float array, optionally checking length.

    Column/row vectors of shape ``(n, 1)`` / ``(1, n)`` are flattened; other
    2-D inputs are rejected.
    """
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 2 and 1 in arr.shape:
        arr = arr.ravel()
    if arr.ndim != 1:
        raise ValueError(f"{name} must be a vector, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    if size is not None and arr.shape[0] != size:
        raise ValueError(f"{name} must have length {size}, got {arr.shape[0]}")
    return arr


def check_sorted_unique(values: Sequence[Number], name: str) -> np.ndarray:
    """Return ``values`` as a float array, checking strict ascending order."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    if arr.size >= 2 and not np.all(np.diff(arr) > 0):
        raise ValueError(f"{name} must be strictly increasing")
    return arr


def _as_finite_float(value: Number, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value
