"""Robustness margins of a schedulable allocation.

The dwell models come from measurements; if the real system dwells
*longer* than modelled (ageing, unmodelled load), the certified
deadlines erode.  :func:`dwell_margin` answers "by how much can every
maximum dwell grow before the allocation stops being schedulable?" — a
one-number robustness certificate for a deployed configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.pwl import PwlDwellModel
from repro.core.schedulability import AnalyzedApplication, is_slot_schedulable
from repro.utils.validation import check_positive


def scale_dwell_model(model: PwlDwellModel, factor: float) -> PwlDwellModel:
    """Scale every modelled dwell by ``factor`` (waits unchanged)."""
    check_positive(factor, "factor")
    return PwlDwellModel(
        breakpoints=tuple((w, d * factor) for w, d in model.breakpoints),
        label=model.label,
    )


def scale_applications(
    apps: Sequence[AnalyzedApplication], factor: float
) -> List[AnalyzedApplication]:
    """Scale the dwell model of every application by ``factor``."""
    return [
        AnalyzedApplication(
            params=app.params,
            dwell_model=scale_dwell_model(app.dwell_model, factor),
        )
        for app in apps
    ]


@dataclass(frozen=True)
class DwellMarginResult:
    """Largest uniform dwell inflation an allocation survives."""

    margin: float
    slot_margins: List[float]

    @property
    def critical_slot(self) -> int:
        """Index of the slot that fails first as dwells grow."""
        return min(range(len(self.slot_margins)), key=lambda i: self.slot_margins[i])


def slot_dwell_margin(
    slot: Sequence[AnalyzedApplication],
    method: str = "closed-form",
    hi: float = 16.0,
    tolerance: float = 1e-3,
) -> float:
    """Largest uniform dwell-scale factor keeping one slot schedulable.

    Bisects on the factor; returns at most ``hi``.  A margin below 1.0
    means the slot is *already* unschedulable (should not happen for a
    slot produced by the allocator).
    """

    def ok(factor: float) -> bool:
        return is_slot_schedulable(scale_applications(slot, factor), method=method)

    if not ok(1.0):
        # Find how far the slot already is below feasibility.
        lo_bad, hi_ok = 0.0, 1.0
        while hi_ok - lo_bad > tolerance:
            mid = 0.5 * (lo_bad + hi_ok)
            if ok(mid):
                hi_ok = mid
            else:
                lo_bad = mid
        return hi_ok
    if ok(hi):
        return hi
    lo_ok, hi_bad = 1.0, hi
    while hi_bad - lo_ok > tolerance:
        mid = 0.5 * (lo_ok + hi_bad)
        if ok(mid):
            lo_ok = mid
        else:
            hi_bad = mid
    return lo_ok


def dwell_margin(
    slots: Sequence[Sequence[AnalyzedApplication]],
    method: str = "closed-form",
    hi: float = 16.0,
) -> DwellMarginResult:
    """Robustness margin of a whole allocation (minimum over slots)."""
    slot_margins = [
        slot_dwell_margin(slot, method=method, hi=hi) for slot in slots
    ]
    if not slot_margins:
        raise ValueError("allocation has no slots")
    return DwellMarginResult(margin=min(slot_margins), slot_margins=slot_margins)


__all__ = [
    "DwellMarginResult",
    "dwell_margin",
    "scale_applications",
    "scale_dwell_model",
    "slot_dwell_margin",
]
