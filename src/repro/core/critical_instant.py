"""Critical-instant simulation of a shared TT slot (Sec. IV cross-check).

The fixed-point equation (Eq. 5) encodes a specific worst-case scenario:
at the moment application ``Ci`` requests the slot, the lower-priority
application with the largest dwell has *just* seized it (non-preemption),
and from then on every higher-priority application re-requests as often
as its minimum inter-arrival time allows, each occupying the slot for its
maximum dwell ``xi_M``.

This module *simulates that exact scenario* on a continuous timeline and
measures how long ``Ci`` actually waits.  It provides an independent
check of the analysis: the simulated wait must equal the least fixed
point of Eq. 5 (and therefore sit within the closed-form bounds of
Eqs. 20-21).  The property-based test suite drives this comparison over
randomised application sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.schedulability import AnalyzedApplication, blocking_term
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CriticalInstantResult:
    """Outcome of one critical-instant simulation.

    Attributes
    ----------
    wait_time:
        Time from the subject's request until it seizes the slot.
    busy_intervals:
        The slot occupancy ``(start, end, name)`` triples before the
        subject was served, in chronological order.
    """

    wait_time: float
    busy_intervals: List[Tuple[float, float, str]]


def simulate_critical_instant(
    subject: AnalyzedApplication,
    higher_priority: Sequence[AnalyzedApplication],
    lower_priority: Sequence[AnalyzedApplication],
    max_horizon: float = 1e6,
) -> CriticalInstantResult:
    """Simulate the Eq. 5 worst case and measure the subject's wait.

    The subject requests at ``t = 0``.  The worst lower-priority blocker
    occupies the slot over ``[0, a)``; every higher-priority application
    releases requests at ``t = 0, r_j, 2 r_j, ...`` and holds the slot
    for ``xi_M_j`` when served.  Requests are served non-preemptively in
    priority order whenever the slot frees up.

    Raises
    ------
    RuntimeError
        If the subject is not served before ``max_horizon`` (the slot is
        overloaded, ``m >= 1``).
    """
    check_positive(max_horizon, "max_horizon")
    blocking = blocking_term(lower_priority)
    busy: List[Tuple[float, float, str]] = []
    time = 0.0
    if blocking > 0.0:
        blocker = max(lower_priority, key=lambda app: app.max_dwell)
        busy.append((0.0, blocking, blocker.name))
        time = blocking

    # Pending higher-priority requests as a heap of
    # (priority_key, release_time, index) with per-app next-release state.
    next_release = {app.name: 0.0 for app in higher_priority}
    by_priority = sorted(
        higher_priority, key=lambda app: (app.deadline, app.name)
    )

    while True:
        if time > max_horizon:
            raise RuntimeError(
                f"subject not served within {max_horizon}s; slot overloaded"
            )
        # Higher-priority requests released *strictly* before `time` are
        # waiting; a request landing exactly when the slot frees loses
        # the tie to the subject (this matches the ceiling semantics of
        # Eq. 5, whose job count is the number of releases in
        # [0, kwait)).  Serve the highest-priority waiter; non-preemptive,
        # so the choice happens only when the slot frees.
        ready = [
            app
            for app in by_priority
            if next_release[app.name] < time - 1e-12
            or (time == 0.0 and next_release[app.name] == 0.0)
        ]
        if not ready:
            # The slot is free and no higher-priority work is pending:
            # the subject finally seizes the slot.
            return CriticalInstantResult(wait_time=time, busy_intervals=busy)
        served = ready[0]  # earliest deadline among the ready set
        start = time
        end = start + served.max_dwell
        busy.append((start, end, served.name))
        next_release[served.name] = (
            next_release[served.name] + served.min_inter_arrival
        )
        time = end


def wait_time_matches_fixed_point(
    subject: AnalyzedApplication,
    higher_priority: Sequence[AnalyzedApplication],
    lower_priority: Sequence[AnalyzedApplication],
    tolerance: float = 1e-9,
) -> bool:
    """Whether simulation and analysis agree on the maximum wait time."""
    from repro.core.schedulability import max_wait_fixed_point

    simulated = simulate_critical_instant(
        subject, higher_priority, lower_priority
    ).wait_time
    analytical = max_wait_fixed_point(lower_priority, higher_priority)
    return abs(simulated - analytical) <= tolerance * max(1.0, analytical)


__all__ = [
    "CriticalInstantResult",
    "simulate_critical_instant",
    "wait_time_matches_fixed_point",
]
