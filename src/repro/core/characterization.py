"""End-to-end characterisation: plant -> dwell curve -> timing parameters.

This is the pipeline that turns a physical application into a Table I
row: design both mode controllers, measure the dwell/wait relation by
sweeping the switch instant, fit the conservative PWL models, and read
off the timing parameters used by the schedulability analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.control.controller import SwitchedApplication, design_switched_application
from repro.control.plants import PlantDefinition
from repro.core.pwl import (
    DwellCurve,
    PwlDwellModel,
    fit_conservative_monotonic,
    fit_two_segment,
)
from repro.core.switching import LinearSwitchedSystem, measure_dwell_curve
from repro.core.timing_params import TimingParameters
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CharacterizationResult:
    """Everything produced by characterising one application.

    Attributes
    ----------
    params:
        The derived Table-I-style timing parameters.
    curve:
        The measured dwell/wait relation.
    non_monotonic_model:
        Fitted two-segment upper bound (the paper's model).
    monotonic_model:
        Fitted conservative monotonic upper bound (prior work's model).
    """

    params: TimingParameters
    curve: DwellCurve
    non_monotonic_model: PwlDwellModel
    monotonic_model: PwlDwellModel


def characterize_curve(
    name: str,
    curve: DwellCurve,
    deadline: float,
    min_inter_arrival: float,
) -> CharacterizationResult:
    """Derive timing parameters from an already-measured dwell curve."""
    check_positive(deadline, "deadline")
    check_positive(min_inter_arrival, "min_inter_arrival")
    non_monotonic = fit_two_segment(curve)
    monotonic = fit_conservative_monotonic(curve)
    params = TimingParameters(
        name=name,
        min_inter_arrival=min_inter_arrival,
        deadline=deadline,
        xi_tt=curve.xi_tt,
        xi_et=non_monotonic.xi_et,
        xi_m=non_monotonic.max_dwell,
        k_p=non_monotonic.peak_wait,
        xi_m_mono=monotonic.max_dwell,
    )
    return CharacterizationResult(
        params=params,
        curve=curve,
        non_monotonic_model=non_monotonic,
        monotonic_model=monotonic,
    )


def characterize_application(
    app: SwitchedApplication,
    x0: np.ndarray,
    deadline: float,
    min_inter_arrival: float,
    wait_step: int = 1,
) -> CharacterizationResult:
    """Characterise a designed linear switched application (Eqs. 3-4)."""
    system = LinearSwitchedSystem.from_application(app, x0)
    xi_et = system.pure_et_response()
    curve = measure_dwell_curve(
        system.response_source(),
        pure_et_response=xi_et,
        period=app.period,
        wait_step=wait_step,
    )
    return characterize_curve(
        name=app.name,
        curve=curve,
        deadline=deadline,
        min_inter_arrival=min_inter_arrival,
    )


def characterize_plant(
    name: str,
    plant: PlantDefinition,
    et_delay: float,
    tt_delay: float,
    deadline: float,
    min_inter_arrival: float,
    wait_step: int = 1,
) -> CharacterizationResult:
    """Full pipeline from a plant definition (design + sweep + fit)."""
    app = design_switched_application(
        name=name,
        plant=plant.model,
        period=plant.period,
        et_delay=et_delay,
        tt_delay=tt_delay,
        q=plant.q,
        r=plant.r,
        threshold=plant.threshold,
    )
    return characterize_application(
        app,
        x0=plant.disturbance,
        deadline=deadline,
        min_inter_arrival=min_inter_arrival,
        wait_step=wait_step,
    )


def characterize_response_source(
    name: str,
    response_source: Callable[[int], float],
    pure_et_response: float,
    period: float,
    deadline: float,
    min_inter_arrival: float,
    wait_step: int = 1,
) -> CharacterizationResult:
    """Characterise a black-box testbed (e.g. the nonlinear servo rig)."""
    curve = measure_dwell_curve(
        response_source,
        pure_et_response=pure_et_response,
        period=period,
        wait_step=wait_step,
    )
    return characterize_curve(
        name=name,
        curve=curve,
        deadline=deadline,
        min_inter_arrival=min_inter_arrival,
    )


__all__ = [
    "CharacterizationResult",
    "characterize_application",
    "characterize_curve",
    "characterize_plant",
    "characterize_response_source",
]
