"""Schedulability analysis for shared TT slots (paper Section IV).

Applications contending for one TT slot are served non-preemptively in
deadline order (shorter deadline = higher priority).  For application
``Ci`` the maximum wait time solves the fixed-point equation (Eq. 5)::

    kwait = max_{k > i} xi_M_k  +  sum_{j < i} ceil(kwait / r_j) * xi_M_j

where the first term is the blocking of the (single, non-preemptable)
lower-priority application already holding the slot and the sum is the
interference of higher-priority applications re-requesting the slot.

The paper proves the fixed point exists whenever the interference
utilisation ``m = sum_{j<i} xi_M_j / r_j < 1`` and bounds it by
(Eqs. 20-21)::

    a / (1 - m)  <=  kwait_hat  <  a' / (1 - m)

with ``a = max_{k>i} xi_M_k`` and ``a' = a + sum_{j<i} xi_M_j``.  Section
V uses the closed-form upper bound as the maximum wait time; this module
implements both that bound and the exact fixed-point iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.pwl import PwlDwellModel, from_timing_parameters
from repro.core.timing_params import TimingParameters


@dataclass(frozen=True)
class AnalyzedApplication:
    """An application plus the dwell model used for its analysis."""

    params: TimingParameters
    dwell_model: PwlDwellModel

    @classmethod
    def from_params(
        cls, params: TimingParameters, shape: str = "non-monotonic"
    ) -> "AnalyzedApplication":
        return cls(params=params, dwell_model=from_timing_parameters(params, shape))

    @property
    def name(self) -> str:
        return self.params.name

    @property
    def deadline(self) -> float:
        return self.params.deadline

    @property
    def max_dwell(self) -> float:
        """``xi_M`` as used in the interference analysis.

        Taken from the dwell model (not the raw parameters) so monotonic
        and non-monotonic analyses use their respective peaks.
        """
        return self.dwell_model.max_dwell

    @property
    def min_inter_arrival(self) -> float:
        return self.params.min_inter_arrival


class UnschedulableError(ValueError):
    """Raised when no finite maximum wait time exists (``m >= 1``)."""


def interference_utilization(higher_priority: Sequence[AnalyzedApplication]) -> float:
    """``m = sum xi_M_j / r_j`` over the higher-priority applications."""
    return sum(app.max_dwell / app.min_inter_arrival for app in higher_priority)


def blocking_term(lower_priority: Sequence[AnalyzedApplication]) -> float:
    """``a = max xi_M_k`` over lower-priority slot sharers (0 if none)."""
    return max((app.max_dwell for app in lower_priority), default=0.0)


def max_wait_closed_form(
    lower_priority: Sequence[AnalyzedApplication],
    higher_priority: Sequence[AnalyzedApplication],
) -> float:
    """Closed-form upper bound on the maximum wait time (paper Eq. 20).

    Returns ``a' / (1 - m)``; when there is no higher-priority
    interference this reduces to the exact blocking ``a``.

    Raises
    ------
    UnschedulableError
        If ``m >= 1``: the slot is overloaded and the wait is unbounded.
    """
    a = blocking_term(lower_priority)
    m = interference_utilization(higher_priority)
    if m >= 1.0:
        raise UnschedulableError(
            f"interference utilisation m={m:.3f} >= 1; no finite wait bound exists"
        )
    a_prime = a + sum(app.max_dwell for app in higher_priority)
    return a_prime / (1.0 - m)


def max_wait_lower_bound(
    lower_priority: Sequence[AnalyzedApplication],
    higher_priority: Sequence[AnalyzedApplication],
) -> float:
    """Closed-form lower bound ``a / (1 - m)`` (paper Eq. 21)."""
    a = blocking_term(lower_priority)
    m = interference_utilization(higher_priority)
    if m >= 1.0:
        raise UnschedulableError(
            f"interference utilisation m={m:.3f} >= 1; no finite wait bound exists"
        )
    return a / (1.0 - m)


def max_wait_fixed_point(
    lower_priority: Sequence[AnalyzedApplication],
    higher_priority: Sequence[AnalyzedApplication],
    max_iterations: int = 100_000,
    tolerance: float = 1e-12,
) -> float:
    """Exact worst-case wait as the relevant fixed point of Eq. 5.

    The iteration ``kwait(l+1) = a + sum ceil(kwait(l)/r_j) xi_M_j`` is
    seeded at ``a' = a + sum xi_M_j``: in the critical instant every
    higher-priority application has a request pending the moment the
    subject asks for the slot, so each contributes at least one full
    dwell before the subject is served.  (Seeding at ``a`` would converge
    to the degenerate least fixed point 0 whenever there is no
    lower-priority blocker — e.g. for the paper's C6, whose maximum wait
    is 0.64 s, not 0.)  From ``a'`` the sequence is non-decreasing and
    bounded by the closed form, so it converges; because the ceiling is
    integer-valued it reaches the fixed point in finitely many steps.
    The result always satisfies the paper's bracket
    ``a/(1-m) <= k_hat < a'/(1-m)`` (Eqs. 20-21).

    Raises
    ------
    UnschedulableError
        If ``m >= 1`` (no bound) — detected up front.
    RuntimeError
        If the iteration somehow fails to settle (defensive guard).
    """
    upper = max_wait_closed_form(lower_priority, higher_priority)  # checks m < 1
    a = blocking_term(lower_priority)
    wait = a + sum(app.max_dwell for app in higher_priority)
    for _ in range(max_iterations):
        next_wait = a + sum(
            math.ceil(wait / app.min_inter_arrival - tolerance) * app.max_dwell
            for app in higher_priority
        )
        if next_wait <= wait + tolerance:
            return wait
        if next_wait > upper + tolerance:  # pragma: no cover - theory forbids
            raise RuntimeError(
                f"fixed-point iterate {next_wait} exceeded its upper bound {upper}"
            )
        wait = next_wait
    raise RuntimeError(
        f"fixed-point iteration did not converge in {max_iterations} steps"
    )  # pragma: no cover


@dataclass(frozen=True)
class ResponseAnalysis:
    """Worst-case analysis result for one application on a shared slot."""

    name: str
    max_wait: float
    worst_response: float
    deadline: float

    @property
    def schedulable(self) -> bool:
        return self.worst_response <= self.deadline


def analyze_application(
    app: AnalyzedApplication,
    sharers: Sequence[AnalyzedApplication],
    method: str = "closed-form",
) -> ResponseAnalysis:
    """Worst-case wait and response time of ``app`` on a shared TT slot.

    Parameters
    ----------
    app:
        The application under analysis.
    sharers:
        The other applications assigned to the same slot.
    method:
        Any registered analysis-method name — the built-ins are
        ``"closed-form"`` (paper Sec. V, Eq. 20), ``"fixed-point"``
        (exact Eq. 5 iteration), and ``"lower-bound"`` (Eq. 21, gap
        studies only).  Unknown names raise
        :class:`~repro.solvers.UnknownSolverError` (a
        :class:`ValueError`) listing the registered methods.
    """
    # Dispatched through the pluggable analysis-method registry; the
    # import is deferred to call time because the backend modules import
    # this one.
    from repro.solvers.registry import get_analysis_method

    spec = get_analysis_method(method)
    higher, lower = split_by_priority(app, sharers)
    try:
        max_wait = spec(lower, higher)
    except UnschedulableError:
        return ResponseAnalysis(
            name=app.name,
            max_wait=math.inf,
            worst_response=math.inf,
            deadline=app.deadline,
        )
    worst_response = app.dwell_model.worst_response_time(max_wait)
    return ResponseAnalysis(
        name=app.name,
        max_wait=max_wait,
        worst_response=worst_response,
        deadline=app.deadline,
    )


def split_by_priority(
    app: AnalyzedApplication, sharers: Sequence[AnalyzedApplication]
) -> Tuple[List[AnalyzedApplication], List[AnalyzedApplication]]:
    """Partition slot sharers into (higher, lower) priority than ``app``.

    Priority follows the paper: shorter deadline wins; ties broken by
    name so the order is total and deterministic.
    """
    key = (app.deadline, app.name)
    higher = [s for s in sharers if (s.deadline, s.name) < key]
    lower = [s for s in sharers if (s.deadline, s.name) > key]
    return higher, lower


def analyze_slot(
    apps: Sequence[AnalyzedApplication], method: str = "closed-form"
) -> List[ResponseAnalysis]:
    """Analyse every application sharing one TT slot."""
    return [
        analyze_application(app, [s for s in apps if s is not app], method=method)
        for app in apps
    ]


def is_slot_schedulable(
    apps: Sequence[AnalyzedApplication], method: str = "closed-form"
) -> bool:
    """Whether every application on the slot meets its deadline."""
    return all(result.schedulable for result in analyze_slot(apps, method=method))


__all__ = [
    "AnalyzedApplication",
    "ResponseAnalysis",
    "UnschedulableError",
    "analyze_application",
    "analyze_slot",
    "blocking_term",
    "interference_utilization",
    "is_slot_schedulable",
    "max_wait_closed_form",
    "max_wait_fixed_point",
    "max_wait_lower_bound",
    "split_by_priority",
]
