"""Piecewise-linear dwell-time models (paper Section III, Figure 4).

The relation between the wait time ``kwait`` (time spent in ET mode after
a disturbance) and the dwell time ``kdw`` (time subsequently needed on
the TT slot) is measured pointwise and then *upper-bounded* by a
piecewise-linear (PWL) model.  The paper compares three shapes:

* **non-monotonic** (the contribution): two segments
  ``(0, xi_tt) -> (k_p, xi_m) -> (xi_et, 0)``, rising then falling;
* **conservative monotonic** (prior work, safe): one segment
  ``(0, xi_m_mono) -> (xi_et, 0)`` dominating the measurement;
* **simple monotonic** (prior work, unsafe): one segment
  ``(0, xi_tt) -> (xi_et, 0)``, which *underestimates* real dwell times
  and may therefore produce deadline violations.

Every model used for schedulability must dominate the measured curve
(Figure 4's "the actual curve must be entirely below the model");
the fitting constructors in this module guarantee that by construction
and :meth:`PwlDwellModel.dominates` verifies it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class DwellCurve:
    """A measured dwell/wait relation.

    Attributes
    ----------
    waits:
        Wait times (seconds), strictly increasing, starting at 0.
    dwells:
        Measured dwell times (seconds) for each wait time.
    xi_et:
        Pure-ET response time (the wait beyond which no TT dwell is
        needed at all).
    """

    waits: np.ndarray
    dwells: np.ndarray
    xi_et: float

    def __post_init__(self):
        waits = np.asarray(self.waits, dtype=float)
        dwells = np.asarray(self.dwells, dtype=float)
        if waits.ndim != 1 or dwells.shape != waits.shape:
            raise ValueError("waits and dwells must be 1-D arrays of equal length")
        if waits.size < 2:
            raise ValueError("a dwell curve needs at least two samples")
        if waits[0] != 0.0:
            raise ValueError("the dwell curve must include the zero-wait sample")
        if not np.all(np.diff(waits) > 0):
            raise ValueError("waits must be strictly increasing")
        if np.any(dwells < 0):
            raise ValueError("dwell times cannot be negative")
        check_positive(self.xi_et, "xi_et")
        object.__setattr__(self, "waits", waits)
        object.__setattr__(self, "dwells", dwells)

    @property
    def xi_tt(self) -> float:
        """Zero-wait dwell, i.e. the pure-TT response time."""
        return float(self.dwells[0])

    @property
    def peak(self) -> Tuple[float, float]:
        """``(k_p, xi_m)`` — wait and value of the largest measured dwell.

        Plateau ties resolve to the *last* maximal sample so the falling
        segment of a fitted model starts after the plateau (otherwise the
        fit would need a near-zero second slope and an absurd zero
        crossing to dominate the flat region).
        """
        dwells = self.dwells
        index = int(np.flatnonzero(dwells >= dwells.max() - 1e-12)[-1])
        return float(self.waits[index]), float(self.dwells[index])

    def is_monotonic(self, tolerance: float = 1e-9) -> bool:
        """Whether the measured dwell never increases with the wait time."""
        return bool(np.all(np.diff(self.dwells) <= tolerance))


@dataclass(frozen=True)
class PwlDwellModel:
    """Piecewise-linear dwell model ``kdw = f(kwait)``.

    Breakpoints are ``(wait, dwell)`` pairs with strictly increasing
    waits; between breakpoints the model interpolates linearly, beyond
    the last breakpoint the dwell is 0 (the disturbance has been fully
    rejected in ET mode), and the model is clamped at 0 from below.
    """

    breakpoints: Tuple[Tuple[float, float], ...]
    label: str = "pwl"

    def __post_init__(self):
        points = tuple((float(w), float(d)) for w, d in self.breakpoints)
        if len(points) < 2:
            raise ValueError("a PWL model needs at least two breakpoints")
        waits = [w for w, _ in points]
        if waits[0] != 0.0:
            raise ValueError("the first breakpoint must be at wait 0")
        if any(b >= a for b, a in zip(waits, waits[1:])):
            raise ValueError("breakpoint waits must be strictly increasing")
        if any(d < 0 for _, d in points):
            raise ValueError("breakpoint dwells cannot be negative")
        object.__setattr__(self, "breakpoints", points)

    @property
    def xi_tt(self) -> float:
        """Modelled zero-wait dwell."""
        return self.breakpoints[0][1]

    @property
    def xi_et(self) -> float:
        """Wait beyond which the modelled dwell is zero."""
        return self.breakpoints[-1][0]

    @property
    def max_dwell(self) -> float:
        """Largest modelled dwell ``xi_m`` (attained at a breakpoint)."""
        return max(d for _, d in self.breakpoints)

    @property
    def peak_wait(self) -> float:
        """Wait time ``k_p`` at which :attr:`max_dwell` is attained.

        Ties (flat-topped models) resolve to the latest such breakpoint so
        a degenerate fit on a monotone curve still reports a positive
        ``k_p``.
        """
        return max(self.breakpoints, key=lambda p: (p[1], p[0]))[0]

    def dwell(self, wait: float) -> float:
        """Modelled dwell time for a given wait time (seconds)."""
        wait = check_nonnegative(wait, "wait")
        points = self.breakpoints
        if wait >= points[-1][0]:
            return max(0.0, points[-1][1])
        for (w0, d0), (w1, d1) in zip(points, points[1:]):
            if wait <= w1:
                fraction = (wait - w0) / (w1 - w0)
                return max(0.0, d0 + fraction * (d1 - d0))
        raise AssertionError("unreachable: wait below last breakpoint not matched")

    def response_time(self, wait: float) -> float:
        """Total response time ``xi = kwait + kdw`` for a given wait."""
        return wait + self.dwell(wait)

    def worst_response_time(self, max_wait: float) -> float:
        """``max over w in [0, max_wait] of (w + dwell(w))``.

        For the paper's two-segment model with second-segment gradient in
        ``(-1, 0)`` this maximum is attained at ``max_wait`` itself, but
        evaluating the supremum over the whole interval keeps the analysis
        safe for arbitrary (e.g. many-segment) models whose segments may
        fall faster than -1.
        """
        max_wait = check_nonnegative(max_wait, "max_wait")
        # Piecewise-linear w + dwell(w) attains its max at a breakpoint or
        # at the right edge of the interval.
        candidates = [max_wait]
        candidates.extend(w for w, _ in self.breakpoints if w <= max_wait)
        return max(w + self.dwell(w) for w in candidates)

    def dominates(self, curve: DwellCurve, tolerance: float = 1e-9) -> bool:
        """Whether the model upper-bounds every sample of ``curve``.

        This is the safety requirement of Figure 4: using a model below
        the measurement could certify deadlines that the real system
        misses.
        """
        return all(
            self.dwell(w) >= d - tolerance
            for w, d in zip(curve.waits, curve.dwells)
        )

    def max_violation(self, curve: DwellCurve) -> float:
        """Largest amount by which a sample exceeds the model (0 if none)."""
        return max(
            0.0,
            max(d - self.dwell(w) for w, d in zip(curve.waits, curve.dwells)),
        )


def two_segment(xi_tt: float, k_p: float, xi_m: float, xi_et: float) -> PwlDwellModel:
    """The paper's non-monotonic model from its four parameters."""
    _check_shape(xi_tt, k_p, xi_m, xi_et)
    return PwlDwellModel(
        breakpoints=((0.0, xi_tt), (k_p, xi_m), (xi_et, 0.0)),
        label="non-monotonic",
    )


def conservative_monotonic(xi_m_mono: float, xi_et: float) -> PwlDwellModel:
    """Prior work's safe monotonic model: a line from ``xi'M`` to zero."""
    check_positive(xi_m_mono, "xi_m_mono")
    check_positive(xi_et, "xi_et")
    return PwlDwellModel(
        breakpoints=((0.0, xi_m_mono), (xi_et, 0.0)),
        label="conservative-monotonic",
    )


def simple_monotonic(xi_tt: float, xi_et: float) -> PwlDwellModel:
    """Prior work's unsafe monotonic model: a line from ``xi_TT`` to zero.

    Included for comparison only — it generally *under*-estimates dwell
    times (paper Fig. 4) and must not be used for deadline guarantees.
    """
    check_positive(xi_tt, "xi_tt")
    check_positive(xi_et, "xi_et")
    return PwlDwellModel(
        breakpoints=((0.0, xi_tt), (xi_et, 0.0)),
        label="simple-monotonic",
    )


def from_timing_parameters(params, shape: str = "non-monotonic") -> PwlDwellModel:
    """Build a model from :class:`~repro.core.timing_params.TimingParameters`.

    Parameters
    ----------
    params:
        Timing parameters (e.g. a Table I row).
    shape:
        ``"non-monotonic"``, ``"conservative-monotonic"``, or
        ``"simple-monotonic"``.
    """
    if shape == "non-monotonic":
        return two_segment(params.xi_tt, params.k_p, params.xi_m, params.xi_et)
    if shape == "conservative-monotonic":
        return conservative_monotonic(params.xi_m_mono, params.xi_et)
    if shape == "simple-monotonic":
        return simple_monotonic(params.xi_tt, params.xi_et)
    raise ValueError(
        f"unknown shape {shape!r}; expected 'non-monotonic', "
        "'conservative-monotonic', or 'simple-monotonic'"
    )


def fit_two_segment(curve: DwellCurve) -> PwlDwellModel:
    """Fit the paper's two-segment model as a guaranteed upper bound.

    Construction:

    1. the first segment is anchored at ``(0, xi_tt)``; its slope is the
       steepest chord from the anchor to any sample at or before the
       measured peak, so it dominates the rising phase;
    2. the peak of the model is the first segment evaluated at the
       measured peak wait ``k_p`` (>= the measured peak dwell);
    3. the second segment is anchored at the model peak; its slope is the
       shallowest decline that still dominates every later sample, and it
       is extended to its zero crossing (>= the measured ``xi_et``).
    """
    k_p, _ = curve.peak
    xi_tt = curve.xi_tt
    rising = [
        (w, d) for w, d in zip(curve.waits, curve.dwells) if 0.0 < w <= k_p
    ]
    if rising:
        slope1 = max((d - xi_tt) / w for w, d in rising)
        slope1 = max(slope1, 0.0)
    else:
        slope1 = 0.0
    if k_p == 0.0:
        # Monotone-decreasing measurement: degrade to a single falling
        # segment anchored at (0, xi_tt); keep a tiny rising knee so the
        # model still has the two-segment shape.
        k_p = float(curve.waits[1]) / 2.0
    xi_m = xi_tt + slope1 * k_p

    falling = [
        (w, d) for w, d in zip(curve.waits, curve.dwells) if w > k_p
    ]
    if falling:
        slope2 = max((d - xi_m) / (w - k_p) for w, d in falling)
        slope2 = min(slope2, -1e-12)
    else:
        slope2 = -xi_m / max(curve.xi_et - k_p, 1e-12)
    zero_crossing = k_p - xi_m / slope2
    xi_et = max(zero_crossing, curve.xi_et, k_p * (1 + 1e-9))
    model = PwlDwellModel(
        breakpoints=((0.0, xi_tt), (k_p, xi_m), (xi_et, 0.0)),
        label="non-monotonic",
    )
    if not model.dominates(curve):  # pragma: no cover - guaranteed by construction
        raise AssertionError(
            f"two-segment fit failed to dominate the curve "
            f"(violation={model.max_violation(curve):.3e})"
        )
    return model


def fit_conservative_monotonic(curve: DwellCurve) -> PwlDwellModel:
    """Fit prior work's conservative monotonic line as an upper bound.

    The line runs from ``(0, xi'M)`` to ``(xi_et, 0)``; ``xi'M`` is the
    smallest intercept for which the line dominates every sample.
    """
    xi_et = max(curve.xi_et, float(curve.waits[-1]) * (1 + 1e-9))
    intercepts = [
        d * xi_et / (xi_et - w)
        for w, d in zip(curve.waits, curve.dwells)
        if w < xi_et
    ]
    xi_m_mono = max(max(intercepts), curve.xi_tt)
    model = PwlDwellModel(
        breakpoints=((0.0, xi_m_mono), (xi_et, 0.0)),
        label="conservative-monotonic",
    )
    if not model.dominates(curve):  # pragma: no cover - guaranteed by construction
        raise AssertionError("conservative-monotonic fit failed to dominate")
    return model


def fit_concave_envelope(curve: DwellCurve) -> PwlDwellModel:
    """Upper concave envelope of the samples (the many-segment extension).

    Section III notes the relation "may be modeled with three or more
    piecewise linear curves, to be closer to the actual behavior"; the
    concave majorant is the tightest PWL upper bound whose response time
    remains easy to reason about.  The envelope is extended to a zero
    crossing at or beyond the measured ``xi_et``.
    """
    points = list(zip(curve.waits.tolist(), curve.dwells.tolist()))
    xi_et = max(curve.xi_et, float(curve.waits[-1]) * (1 + 1e-9))
    points.append((xi_et, 0.0))
    hull = _upper_concave_hull(points)
    return PwlDwellModel(breakpoints=tuple(hull), label="concave-envelope")


def _upper_concave_hull(points: Sequence[Tuple[float, float]]):
    """Upper hull (concave majorant) of points sorted by x."""
    points = sorted(points)
    hull: list = []
    for point in points:
        while len(hull) >= 2 and _cross(hull[-2], hull[-1], point) >= 0:
            hull.pop()
        hull.append(point)
    return hull


def _cross(o, a, b) -> float:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def _check_shape(xi_tt: float, k_p: float, xi_m: float, xi_et: float) -> None:
    check_positive(xi_tt, "xi_tt")
    check_positive(k_p, "k_p")
    check_positive(xi_m, "xi_m")
    check_positive(xi_et, "xi_et")
    if xi_m < xi_tt:
        raise ValueError(f"xi_m ({xi_m}) must be >= xi_tt ({xi_tt})")
    if not k_p < xi_et:
        raise ValueError(f"k_p ({k_p}) must be smaller than xi_et ({xi_et})")


__all__ = [
    "DwellCurve",
    "PwlDwellModel",
    "conservative_monotonic",
    "fit_concave_envelope",
    "fit_conservative_monotonic",
    "fit_two_segment",
    "from_timing_parameters",
    "simple_monotonic",
    "two_segment",
]
