"""Sensitivity of the TT-slot demand to design parameters.

The case study fixes one deadline vector; a system integrator wants to
know how close those deadlines sit to a slot-count cliff.  This module
sweeps a multiplicative deadline-tightness factor and reports the number
of TT slots each dwell model needs, plus the utilisation of the static
segment the resulting allocation implies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.core.allocation import first_fit_allocation, make_analyzed
from repro.core.timing_params import TimingParameters
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SensitivityPoint:
    """Slot demand at one deadline-tightness factor."""

    scale: float
    slots_non_monotonic: Optional[int]
    slots_monotonic: Optional[int]

    @property
    def feasible(self) -> bool:
        return self.slots_non_monotonic is not None


def scale_deadlines(
    params: Sequence[TimingParameters], scale: float
) -> List[TimingParameters]:
    """Multiply every deadline by ``scale`` (clamped to the inter-arrival
    time, which the paper requires as an upper bound)."""
    check_positive(scale, "scale")
    return [
        replace(
            p,
            deadline=min(p.deadline * scale, p.min_inter_arrival),
        )
        for p in params
    ]


def deadline_sensitivity(
    params: Sequence[TimingParameters],
    scales: Sequence[float],
    method: str = "closed-form",
) -> List[SensitivityPoint]:
    """Slot demand across a sweep of deadline-tightness factors.

    A ``None`` slot count means some application misses its deadline even
    on a dedicated TT slot at that tightness.
    """
    points = []
    for scale in scales:
        scaled = scale_deadlines(params, scale)
        counts = {}
        for shape in ("non-monotonic", "conservative-monotonic"):
            try:
                result = first_fit_allocation(
                    make_analyzed(scaled, shape), method=method
                )
                counts[shape] = result.slot_count
            except ValueError:
                counts[shape] = None
        points.append(
            SensitivityPoint(
                scale=scale,
                slots_non_monotonic=counts["non-monotonic"],
                slots_monotonic=counts["conservative-monotonic"],
            )
        )
    return points


def critical_scale(
    params: Sequence[TimingParameters],
    shape: str = "non-monotonic",
    lo: float = 0.05,
    hi: float = 1.0,
    tolerance: float = 1e-3,
    method: str = "closed-form",
) -> float:
    """Smallest deadline-tightness factor that remains feasible.

    Bisects on the tightness factor; below the returned value some
    application cannot meet its deadline even alone on a TT slot.

    Raises
    ------
    ValueError
        If even ``hi`` is infeasible or ``lo`` is already feasible
        (no transition inside the bracket).
    """

    def feasible(scale: float) -> bool:
        try:
            first_fit_allocation(
                make_analyzed(scale_deadlines(params, scale), shape), method=method
            )
            return True
        except ValueError:
            return False

    if not feasible(hi):
        raise ValueError(f"deadline scale {hi} is already infeasible")
    if feasible(lo):
        return lo
    low, high = lo, hi
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        if feasible(mid):
            high = mid
        else:
            low = mid
    return high


@dataclass(frozen=True)
class StaticSegmentUsage:
    """How much of the FlexRay static segment an allocation consumes."""

    slots_used: int
    slots_available: int

    @property
    def fraction(self) -> float:
        return self.slots_used / self.slots_available

    @property
    def fits(self) -> bool:
        return self.slots_used <= self.slots_available


def static_segment_usage(slot_count: int, static_slots: int) -> StaticSegmentUsage:
    """Check an allocation against the bus's static-segment capacity."""
    if slot_count < 0:
        raise ValueError(f"slot_count must be non-negative, got {slot_count}")
    check_positive(static_slots, "static_slots")
    return StaticSegmentUsage(slots_used=slot_count, slots_available=int(static_slots))


__all__ = [
    "SensitivityPoint",
    "StaticSegmentUsage",
    "critical_scale",
    "deadline_sensitivity",
    "scale_deadlines",
    "static_segment_usage",
]
