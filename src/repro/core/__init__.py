"""The paper's primary contribution.

* :mod:`repro.core.timing_params` — application timing parameters and the
  verbatim Table I;
* :mod:`repro.core.switching` — switched closed-loop responses (Eqs. 3-4)
  and dwell/wait curve measurement;
* :mod:`repro.core.pwl` — piecewise-linear dwell models and conservative
  upper-bound fitting (Figure 4);
* :mod:`repro.core.schedulability` — maximum-wait fixed point, closed-form
  bounds, and worst-case response times (Section IV, Eqs. 5-21);
* :mod:`repro.core.allocation` — first-fit slot allocation plus optimal
  and dedicated baselines (Sections IV-V);
* :mod:`repro.core.characterization` — the end-to-end pipeline from plant
  to Table-I-style parameters.
"""

from repro.core.allocation import (
    AllocationResult,
    best_fit_allocation,
    compare_resource_usage,
    dedicated_allocation,
    first_fit_allocation,
    make_analyzed,
    optimal_allocation,
    worst_fit_allocation,
)
from repro.core.characterization import (
    CharacterizationResult,
    characterize_application,
    characterize_curve,
    characterize_plant,
    characterize_response_source,
)
from repro.core.pwl import (
    DwellCurve,
    PwlDwellModel,
    conservative_monotonic,
    fit_concave_envelope,
    fit_conservative_monotonic,
    fit_two_segment,
    from_timing_parameters,
    simple_monotonic,
    two_segment,
)
from repro.core.schedulability import (
    AnalyzedApplication,
    ResponseAnalysis,
    UnschedulableError,
    analyze_application,
    analyze_slot,
    blocking_term,
    interference_utilization,
    is_slot_schedulable,
    max_wait_closed_form,
    max_wait_fixed_point,
    max_wait_lower_bound,
    split_by_priority,
)
from repro.core.critical_instant import (
    CriticalInstantResult,
    simulate_critical_instant,
    wait_time_matches_fixed_point,
)
from repro.core.robustness import (
    DwellMarginResult,
    dwell_margin,
    scale_applications,
    scale_dwell_model,
    slot_dwell_margin,
)
from repro.core.sensitivity import (
    SensitivityPoint,
    StaticSegmentUsage,
    critical_scale,
    deadline_sensitivity,
    scale_deadlines,
    static_segment_usage,
)
from repro.core.switching import LinearSwitchedSystem, measure_dwell_curve
from repro.core.timing_params import (
    PAPER_TABLE_I,
    TimingParameters,
    paper_application,
    priority_order,
)

__all__ = [
    "AllocationResult",
    "AnalyzedApplication",
    "CharacterizationResult",
    "DwellCurve",
    "LinearSwitchedSystem",
    "PAPER_TABLE_I",
    "PwlDwellModel",
    "CriticalInstantResult",
    "DwellMarginResult",
    "ResponseAnalysis",
    "dwell_margin",
    "scale_applications",
    "scale_dwell_model",
    "slot_dwell_margin",
    "SensitivityPoint",
    "simulate_critical_instant",
    "wait_time_matches_fixed_point",
    "StaticSegmentUsage",
    "TimingParameters",
    "UnschedulableError",
    "critical_scale",
    "deadline_sensitivity",
    "scale_deadlines",
    "static_segment_usage",
    "analyze_application",
    "analyze_slot",
    "best_fit_allocation",
    "blocking_term",
    "worst_fit_allocation",
    "characterize_application",
    "characterize_curve",
    "characterize_plant",
    "characterize_response_source",
    "compare_resource_usage",
    "conservative_monotonic",
    "dedicated_allocation",
    "first_fit_allocation",
    "fit_concave_envelope",
    "fit_conservative_monotonic",
    "fit_two_segment",
    "from_timing_parameters",
    "interference_utilization",
    "is_slot_schedulable",
    "make_analyzed",
    "max_wait_closed_form",
    "max_wait_fixed_point",
    "max_wait_lower_bound",
    "optimal_allocation",
    "paper_application",
    "priority_order",
    "simple_monotonic",
    "split_by_priority",
    "two_segment",
]
