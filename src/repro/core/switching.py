"""Switched-system responses and dwell/wait curve measurement.

Paper Section III: after a disturbance the closed loop evolves with the
ET dynamics ``A1`` for ``kwait`` samples and with the TT dynamics ``A2``
afterwards (Eqs. 3-4)::

    x1[k]        = A1^k x0
    x2[kwait, k] = A2^k A1^kwait x0

The dwell time ``kdw(kwait)`` is how long the TT phase takes to bring the
plant-state norm at or below ``Eth``.  This module measures the full
``kwait -> kdw`` relation either from closed-loop matrices
(:class:`LinearSwitchedSystem`) or from any black-box response source
such as the nonlinear servo testbed (:func:`measure_dwell_curve`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.control.analysis import settling_time
from repro.control.controller import SwitchedApplication
from repro.core.pwl import DwellCurve
from repro.utils.linalg import is_schur_stable
from repro.utils.validation import check_positive, check_square, check_vector, ensure_matrix


@dataclass(frozen=True)
class LinearSwitchedSystem:
    """The pair ``(A1, A2)`` with the threshold and sampling period.

    Attributes
    ----------
    a1:
        ET closed-loop matrix (active while waiting for the TT slot).
    a2:
        TT closed-loop matrix (active after the slot is granted).
    x0:
        Post-disturbance (augmented) state.
    threshold:
        Steady-state threshold ``Eth`` on the selected-state norm.
    period:
        Sampling period in seconds.
    norm_selector:
        Optional matrix selecting the plant states out of the augmented
        state before the norm is taken.
    """

    a1: np.ndarray
    a2: np.ndarray
    x0: np.ndarray
    threshold: float
    period: float
    norm_selector: Optional[np.ndarray] = None

    def __post_init__(self):
        a1 = check_square(self.a1, "a1")
        a2 = ensure_matrix(self.a2, "a2", rows=a1.shape[0], cols=a1.shape[0])
        x0 = check_vector(self.x0, "x0", size=a1.shape[0])
        check_positive(self.threshold, "threshold")
        check_positive(self.period, "period")
        selector = self.norm_selector
        if selector is not None:
            selector = ensure_matrix(selector, "norm_selector", cols=a1.shape[0])
        object.__setattr__(self, "a1", a1)
        object.__setattr__(self, "a2", a2)
        object.__setattr__(self, "x0", x0)
        object.__setattr__(self, "norm_selector", selector)
        if not is_schur_stable(a1):
            raise ValueError("A1 (ET closed loop) must be Schur stable")
        if not is_schur_stable(a2):
            raise ValueError("A2 (TT closed loop) must be Schur stable")

    @classmethod
    def from_application(
        cls, app: SwitchedApplication, x0: np.ndarray
    ) -> "LinearSwitchedSystem":
        """Build from a designed :class:`SwitchedApplication`."""
        return cls(
            a1=app.a1,
            a2=app.a2,
            x0=app.initial_state(x0),
            threshold=app.threshold,
            period=app.period,
            norm_selector=app.plant_norm_selector(),
        )

    def state_after_wait(self, wait_samples: int) -> np.ndarray:
        """``A1^kwait x0`` — the state at the moment of switching (Eq. 3)."""
        if wait_samples < 0:
            raise ValueError(f"wait_samples must be non-negative, got {wait_samples}")
        return np.linalg.matrix_power(self.a1, wait_samples) @ self.x0

    def dwell_time(self, wait_samples: int) -> float:
        """``kdw(kwait)`` in seconds: TT settling time from the switch state."""
        state = self.state_after_wait(wait_samples)
        return settling_time(
            self.a2,
            state,
            self.threshold,
            norm_selector=self.norm_selector,
            period=self.period,
        )

    def response_time(self, wait_samples: int) -> float:
        """Total response ``xi = kwait + kdw(kwait)`` in seconds."""
        return wait_samples * self.period + self.dwell_time(wait_samples)

    def pure_tt_response(self) -> float:
        """``xi_TT``: settling time with TT communication from the start."""
        return self.dwell_time(0)

    def pure_et_response(self) -> float:
        """``xi_ET``: settling time when only ET communication is used."""
        return settling_time(
            self.a1,
            self.x0,
            self.threshold,
            norm_selector=self.norm_selector,
            period=self.period,
        )

    def response_source(self) -> Callable[[int], float]:
        """Adapter for :func:`measure_dwell_curve`."""
        et_samples = int(round(self.pure_et_response() / self.period))

        def source(wait_samples: int) -> float:
            if wait_samples >= et_samples:
                # Already settled in ET mode: no TT dwell needed.
                return wait_samples * self.period
            return self.response_time(wait_samples)

        return source


def measure_dwell_curve(
    response_source: Callable[[int], float],
    pure_et_response: float,
    period: float,
    wait_step: int = 1,
    max_wait: Optional[float] = None,
) -> DwellCurve:
    """Sweep the wait time and record the dwell/wait relation.

    Parameters
    ----------
    response_source:
        Callable mapping ``wait_samples`` to the *total* response time in
        seconds (wait + dwell).  Both :class:`LinearSwitchedSystem` (via
        :meth:`~LinearSwitchedSystem.response_source`) and the nonlinear
        servo testbed provide this interface.
    pure_et_response:
        ``xi_ET`` in seconds; the sweep stops there because later switches
        never use the TT slot.
    period:
        Sampling period in seconds.
    wait_step:
        Sweep stride in samples (1 = measure every sampling period).
    max_wait:
        Optional override for the sweep end (seconds).
    """
    check_positive(pure_et_response, "pure_et_response")
    check_positive(period, "period")
    if wait_step < 1:
        raise ValueError(f"wait_step must be >= 1, got {wait_step}")
    end = pure_et_response if max_wait is None else max_wait
    last_sample = int(np.ceil(end / period))
    waits, dwells = [], []
    for wait_samples in range(0, last_sample + 1, wait_step):
        response = response_source(wait_samples)
        wait = wait_samples * period
        waits.append(wait)
        dwells.append(max(0.0, response - wait))
    return DwellCurve(
        waits=np.asarray(waits),
        dwells=np.asarray(dwells),
        xi_et=pure_et_response,
    )


__all__ = ["LinearSwitchedSystem", "measure_dwell_curve"]
