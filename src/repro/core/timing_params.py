"""Timing parameters of control applications (paper Table I).

Each application ``Ci`` is characterised for schedulability analysis by
seven numbers (all in seconds):

* ``min_inter_arrival`` (``r_i``) — minimum time between disturbances;
* ``deadline`` (``xi_d_i``) — required response time;
* ``xi_tt`` — response time when only TT communication is used;
* ``xi_et`` — response time when only ET communication is used;
* ``xi_m`` — maximum dwell time under the non-monotonic PWL model;
* ``k_p`` — wait time at which ``xi_m`` occurs;
* ``xi_m_mono`` (``xi'M_i``) — maximum dwell time under the conservative
  monotonic model.

:data:`PAPER_TABLE_I` reproduces the paper's Table I verbatim; it is the
input to the Section V case study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TimingParameters:
    """Per-application timing parameters (all values in seconds)."""

    name: str
    min_inter_arrival: float
    deadline: float
    xi_tt: float
    xi_et: float
    xi_m: float
    k_p: float
    xi_m_mono: float

    def __post_init__(self):
        check_positive(self.min_inter_arrival, "min_inter_arrival")
        check_positive(self.deadline, "deadline")
        check_positive(self.xi_tt, "xi_tt")
        check_positive(self.xi_et, "xi_et")
        check_positive(self.xi_m, "xi_m")
        check_positive(self.k_p, "k_p")
        check_positive(self.xi_m_mono, "xi_m_mono")
        if self.deadline > self.min_inter_arrival:
            raise ValueError(
                f"{self.name}: deadline ({self.deadline}) must not exceed the "
                f"minimum inter-arrival time ({self.min_inter_arrival}) "
                "(paper Sec. II-C)"
            )
        if self.xi_tt > self.xi_et:
            raise ValueError(
                f"{self.name}: xi_tt ({self.xi_tt}) must not exceed xi_et "
                f"({self.xi_et}); TT communication is the higher-quality resource"
            )
        if self.xi_m < self.xi_tt:
            raise ValueError(
                f"{self.name}: xi_m ({self.xi_m}) must be >= xi_tt ({self.xi_tt}); "
                "the maximum dwell time includes the zero-wait dwell"
            )
        if self.xi_m_mono < self.xi_m:
            raise ValueError(
                f"{self.name}: the conservative-monotonic maximum dwell xi_m_mono "
                f"({self.xi_m_mono}) must dominate xi_m ({self.xi_m})"
            )
        if not self.k_p < self.xi_et:
            raise ValueError(
                f"{self.name}: k_p ({self.k_p}) must be smaller than xi_et "
                f"({self.xi_et})"
            )


def _table_row(
    name: str,
    r: float,
    deadline: float,
    xi_tt: float,
    xi_et: float,
    xi_m: float,
    k_p: float,
    xi_m_mono: float,
) -> TimingParameters:
    return TimingParameters(
        name=name,
        min_inter_arrival=r,
        deadline=deadline,
        xi_tt=xi_tt,
        xi_et=xi_et,
        xi_m=xi_m,
        k_p=k_p,
        xi_m_mono=xi_m_mono,
    )


#: Paper Table I, verbatim (values in seconds).
PAPER_TABLE_I: Tuple[TimingParameters, ...] = (
    _table_row("C1", 200.0, 9.50, 1.68, 11.62, 5.30, 2.27, 6.59),
    _table_row("C2", 20.0, 6.25, 2.58, 8.59, 2.95, 1.34, 3.50),
    _table_row("C3", 15.0, 2.00, 0.39, 3.97, 0.64, 0.69, 0.77),
    _table_row("C4", 200.0, 7.50, 2.50, 10.40, 4.03, 1.92, 4.94),
    _table_row("C5", 20.0, 8.50, 2.75, 10.63, 4.58, 1.97, 5.62),
    _table_row("C6", 6.0, 6.00, 0.71, 7.94, 0.92, 0.67, 1.01),
)


def paper_application(name: str) -> TimingParameters:
    """Look up one of the paper's six case-study applications by name."""
    by_name: Dict[str, TimingParameters] = {app.name: app for app in PAPER_TABLE_I}
    try:
        return by_name[name]
    except KeyError:
        raise KeyError(
            f"unknown paper application {name!r}; expected one of {sorted(by_name)}"
        ) from None


def priority_order(apps) -> list:
    """Sort applications by decreasing priority (shortest deadline first).

    The paper assigns TT-slot priorities by deadline (Sec. IV); ties are
    broken by name for determinism.
    """
    return sorted(apps, key=lambda app: (app.deadline, app.name))


__all__ = [
    "PAPER_TABLE_I",
    "TimingParameters",
    "paper_application",
    "priority_order",
]
