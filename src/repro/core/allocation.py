"""TT-slot allocation (paper Section IV, last paragraph, and Section V).

Given analysed applications, pack them onto the minimum number of shared
TT slots such that every application remains schedulable.  The paper
uses a first-fit heuristic over applications sorted by priority
(deadline); finding the optimum is NP-hard.

This module holds the allocation *data model* —
:class:`AllocationResult` and :func:`make_analyzed` — and thin
deprecation shims over the pluggable backends in :mod:`repro.solvers`:
``first_fit_allocation`` et al. delegate to the registered allocator of
the same name.  New code should call the registry directly::

    from repro.solvers import allocate, get_allocator

    result = allocate("branch-and-bound", apps, method="closed-form")
    get_allocator("anneal").to_dict()   # capability metadata

which also unlocks the backends without legacy wrappers
(``branch-and-bound``, ``anneal``, and any third-party registration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.schedulability import (
    AnalyzedApplication,
    ResponseAnalysis,
)
from repro.core.timing_params import TimingParameters
from repro.core.pwl import from_timing_parameters


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of a slot-allocation run.

    Attributes
    ----------
    slots:
        One list of applications per TT slot, in allocation order.
    analyses:
        Final per-application worst-case analysis, keyed by name.
    method:
        Wait-time analysis method used (any registered name, e.g.
        ``closed-form``/``fixed-point``).
    stats:
        Optional JSON-safe backend diagnostics (search nodes, bounds,
        feasibility-cache hit rates); ``None`` for the simple
        heuristics.  Excluded from equality comparison.
    """

    slots: List[List[AnalyzedApplication]]
    analyses: Dict[str, ResponseAnalysis]
    method: str
    stats: Optional[Dict[str, Any]] = field(default=None, compare=False, repr=False)

    @property
    def slot_count(self) -> int:
        return len(self.slots)

    @property
    def slot_names(self) -> List[List[str]]:
        return [[app.name for app in slot] for slot in self.slots]

    def slot_of(self, name: str) -> int:
        """Zero-based slot index hosting the named application."""
        for index, slot in enumerate(self.slots):
            if any(app.name == name for app in slot):
                return index
        raise KeyError(f"application {name!r} is not allocated")

    def all_schedulable(self) -> bool:
        return all(result.schedulable for result in self.analyses.values())


def make_analyzed(
    apps: Sequence[TimingParameters], shape: str = "non-monotonic"
) -> List[AnalyzedApplication]:
    """Wrap timing parameters with the requested dwell-model shape."""
    return [
        AnalyzedApplication(params=params, dwell_model=from_timing_parameters(params, shape))
        for params in apps
    ]


def first_fit_allocation(
    apps: Sequence[AnalyzedApplication],
    method: str = "closed-form",
    max_slots: Optional[int] = None,
) -> AllocationResult:
    """The paper's first-fit heuristic.

    .. deprecated::
        Shim over the registered ``first-fit`` backend; prefer
        ``repro.solvers.allocate("first-fit", apps, ...)``.
    """
    from repro.solvers import allocate

    return allocate("first-fit", apps, method=method, max_slots=max_slots)


def best_fit_allocation(
    apps: Sequence[AnalyzedApplication],
    method: str = "closed-form",
) -> AllocationResult:
    """Best-fit variant: fullest still-schedulable slot wins.

    .. deprecated::
        Shim over the registered ``best-fit`` backend; prefer
        ``repro.solvers.allocate("best-fit", apps, ...)``.
    """
    from repro.solvers import allocate

    return allocate("best-fit", apps, method=method)


def worst_fit_allocation(
    apps: Sequence[AnalyzedApplication],
    method: str = "closed-form",
) -> AllocationResult:
    """Worst-fit variant: emptiest feasible slot wins.

    .. deprecated::
        Shim over the registered ``worst-fit`` backend; prefer
        ``repro.solvers.allocate("worst-fit", apps, ...)``.
    """
    from repro.solvers import allocate

    return allocate("worst-fit", apps, method=method)


def dedicated_allocation(
    apps: Sequence[AnalyzedApplication], method: str = "closed-form"
) -> AllocationResult:
    """Baseline: one dedicated TT slot per application (no sharing).

    .. deprecated::
        Shim over the registered ``dedicated`` backend; prefer
        ``repro.solvers.allocate("dedicated", apps, ...)``.
    """
    from repro.solvers import allocate

    return allocate("dedicated", apps, method=method)


def optimal_allocation(
    apps: Sequence[AnalyzedApplication],
    method: str = "closed-form",
    max_apps: int = 10,
) -> AllocationResult:
    """Exhaustive minimum-slot partition search (small instances only).

    Oversized instances raise
    :class:`~repro.solvers.InstanceTooLargeError` (a :class:`ValueError`
    the CLI maps to a clean exit code 2); the ``branch-and-bound``
    backend proves the same optimum for instances twice this size.

    .. deprecated::
        Shim over the registered ``optimal`` backend; prefer
        ``repro.solvers.allocate("optimal", apps, ...)`` — or
        ``allocate("branch-and-bound", ...)`` for anything beyond toy
        sizes.
    """
    from repro.solvers import allocate

    return allocate("optimal", apps, method=method, max_apps=max_apps)


def compare_resource_usage(
    non_monotonic: AllocationResult, monotonic: AllocationResult
) -> float:
    """Extra TT-slot fraction the monotonic model needs (paper: +67 %)."""
    base = non_monotonic.slot_count
    if base == 0:
        raise ValueError("non-monotonic allocation has no slots")
    return (monotonic.slot_count - base) / base


__all__ = [
    "AllocationResult",
    "best_fit_allocation",
    "compare_resource_usage",
    "dedicated_allocation",
    "first_fit_allocation",
    "make_analyzed",
    "optimal_allocation",
    "worst_fit_allocation",
]
