"""TT-slot allocation (paper Section IV, last paragraph, and Section V).

Given analysed applications, pack them onto the minimum number of shared
TT slots such that every application remains schedulable.  The paper
uses a first-fit heuristic over applications sorted by priority
(deadline); finding the optimum is NP-hard, but for small sets the
exhaustive partition search here confirms the heuristic's quality.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.schedulability import (
    AnalyzedApplication,
    ResponseAnalysis,
    analyze_slot,
    is_slot_schedulable,
)
from repro.core.timing_params import TimingParameters, priority_order
from repro.core.pwl import from_timing_parameters


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of a slot-allocation run.

    Attributes
    ----------
    slots:
        One list of applications per TT slot, in allocation order.
    analyses:
        Final per-application worst-case analysis, keyed by name.
    method:
        Wait-time analysis method used (``closed-form``/``fixed-point``).
    """

    slots: List[List[AnalyzedApplication]]
    analyses: Dict[str, ResponseAnalysis]
    method: str

    @property
    def slot_count(self) -> int:
        return len(self.slots)

    @property
    def slot_names(self) -> List[List[str]]:
        return [[app.name for app in slot] for slot in self.slots]

    def slot_of(self, name: str) -> int:
        """Zero-based slot index hosting the named application."""
        for index, slot in enumerate(self.slots):
            if any(app.name == name for app in slot):
                return index
        raise KeyError(f"application {name!r} is not allocated")

    def all_schedulable(self) -> bool:
        return all(result.schedulable for result in self.analyses.values())


def make_analyzed(
    apps: Sequence[TimingParameters], shape: str = "non-monotonic"
) -> List[AnalyzedApplication]:
    """Wrap timing parameters with the requested dwell-model shape."""
    return [
        AnalyzedApplication(params=params, dwell_model=from_timing_parameters(params, shape))
        for params in apps
    ]


def _require_fits_alone(app: AnalyzedApplication, method: str) -> None:
    """Shared feasibility guard for the packing heuristics.

    Opening a fresh slot only helps if the application is schedulable
    on a slot all of its own; otherwise no packing can succeed.
    """
    if not is_slot_schedulable([app], method=method):
        raise ValueError(
            f"application {app.name} cannot meet its deadline even on "
            "a dedicated TT slot"
        )


def first_fit_allocation(
    apps: Sequence[AnalyzedApplication],
    method: str = "closed-form",
    max_slots: Optional[int] = None,
) -> AllocationResult:
    """The paper's first-fit heuristic.

    Applications are taken in decreasing priority (shortest deadline
    first).  Each is tentatively added to the earliest existing slot; if
    the whole slot (including previously placed applications, whose
    schedulability the newcomer can break) remains schedulable it stays,
    otherwise the next slot is tried, and a fresh slot is opened when
    none fits.

    Parameters
    ----------
    apps:
        Applications to place.
    method:
        Wait-time analysis method.
    max_slots:
        Optional cap; exceeding it raises :class:`ValueError` (the paper
        assumes the result fits within the bus's ``m`` static slots).
    """
    slots: List[List[AnalyzedApplication]] = []
    for app in priority_order(apps):
        placed = False
        for slot in slots:
            candidate = slot + [app]
            if is_slot_schedulable(candidate, method=method):
                slot.append(app)
                placed = True
                break
        if not placed:
            _require_fits_alone(app, method)
            slots.append([app])
            if max_slots is not None and len(slots) > max_slots:
                raise ValueError(
                    f"allocation needs more than the available {max_slots} TT slots"
                )
    return _finalize(slots, method)


def best_fit_allocation(
    apps: Sequence[AnalyzedApplication],
    method: str = "closed-form",
) -> AllocationResult:
    """Best-fit variant: place each application on the *fullest* slot
    (most applications) that still keeps everyone schedulable.

    Packs tighter than first-fit on some instances; provided as an
    alternative heuristic for comparison.
    """
    return _fit_by(apps, method, lambda candidates: max(candidates, key=len))


def worst_fit_allocation(
    apps: Sequence[AnalyzedApplication],
    method: str = "closed-form",
) -> AllocationResult:
    """Worst-fit variant: place each application on the *emptiest*
    feasible slot, spreading load across slots.

    Never beats first-fit on slot count (it only opens slots the other
    heuristics would too) but yields more slack per slot; useful as a
    robustness-oriented baseline.
    """
    return _fit_by(apps, method, lambda candidates: min(candidates, key=len))


def _fit_by(
    apps: Sequence[AnalyzedApplication],
    method: str,
    choose: Callable[[List[List[AnalyzedApplication]]], List[AnalyzedApplication]],
) -> AllocationResult:
    """Shared packing loop for the choose-a-feasible-slot heuristics."""
    slots: List[List[AnalyzedApplication]] = []
    for app in priority_order(apps):
        candidates = [
            slot
            for slot in slots
            if is_slot_schedulable(slot + [app], method=method)
        ]
        if candidates:
            choose(candidates).append(app)
            continue
        _require_fits_alone(app, method)
        slots.append([app])
    return _finalize(slots, method)


def dedicated_allocation(
    apps: Sequence[AnalyzedApplication], method: str = "closed-form"
) -> AllocationResult:
    """Baseline: one dedicated TT slot per application (no sharing)."""
    slots = [[app] for app in priority_order(apps)]
    return _finalize(slots, method)


def optimal_allocation(
    apps: Sequence[AnalyzedApplication],
    method: str = "closed-form",
    max_apps: int = 10,
) -> AllocationResult:
    """Exhaustive minimum-slot partition search (small instances only).

    Enumerates set partitions in order of increasing block count and
    returns the first fully schedulable one.  Complexity is the Bell
    number of ``len(apps)``; refuse anything beyond ``max_apps``.
    """
    apps = list(priority_order(apps))
    if len(apps) > max_apps:
        raise ValueError(
            f"optimal allocation is exponential; refusing {len(apps)} apps "
            f"(max_apps={max_apps})"
        )
    for count in range(1, len(apps) + 1):
        for partition in _partitions_into(apps, count):
            if all(is_slot_schedulable(slot, method=method) for slot in partition):
                return _finalize([list(slot) for slot in partition], method)
    # Dedicated slots are always a valid partition if each app alone is
    # schedulable; reaching here means some app misses even alone.
    raise ValueError("no schedulable allocation exists (some deadline < xi_tt?)")


def _partitions_into(items: List, blocks: int):
    """Yield all partitions of ``items`` into exactly ``blocks`` groups."""
    if blocks == 1:
        yield [items]
        return
    if blocks == len(items):
        yield [[item] for item in items]
        return
    if blocks > len(items):
        return
    first, rest = items[0], items[1:]
    # Either `first` joins an existing block of a (blocks)-partition of rest...
    for partition in _partitions_into(rest, blocks):
        for index in range(len(partition)):
            yield (
                partition[:index]
                + [[first] + partition[index]]
                + partition[index + 1:]
            )
    # ...or forms its own block atop a (blocks-1)-partition of rest.
    for partition in _partitions_into(rest, blocks - 1):
        yield [[first]] + partition


def _finalize(slots: List[List[AnalyzedApplication]], method: str) -> AllocationResult:
    analyses: Dict[str, ResponseAnalysis] = {}
    for slot in slots:
        for result in analyze_slot(slot, method=method):
            analyses[result.name] = result
    return AllocationResult(slots=slots, analyses=analyses, method=method)


def compare_resource_usage(
    non_monotonic: AllocationResult, monotonic: AllocationResult
) -> float:
    """Extra TT-slot fraction the monotonic model needs (paper: +67 %)."""
    base = non_monotonic.slot_count
    if base == 0:
        raise ValueError("non-monotonic allocation has no slots")
    return (monotonic.slot_count - base) / base


__all__ = [
    "AllocationResult",
    "best_fit_allocation",
    "compare_resource_usage",
    "dedicated_allocation",
    "first_fit_allocation",
    "make_analyzed",
    "optimal_allocation",
    "worst_fit_allocation",
]
