"""Experiment drivers: one module per paper artefact plus ablations.

* :mod:`repro.experiments.fig3` — E1, the dwell/wait measurement;
* :mod:`repro.experiments.fig4` — E2, the PWL model comparison;
* :mod:`repro.experiments.table1` — E3, timing parameters;
* :mod:`repro.experiments.allocation` — E4, the slot-allocation case study;
* :mod:`repro.experiments.fig5` — E5, the six-application co-simulation;
* :mod:`repro.experiments.ablations` — E6-E8.
"""

from repro.experiments.allocation import (
    AllocationComparison,
    run_paper_allocation,
    run_simulation_allocation,
)
from repro.experiments.ablations import (
    run_fixed_point_ablation,
    run_jitter_ablation,
    run_kernel_ablation,
    run_segment_ablation,
    run_threshold_sweep,
    traces_bitwise_equal,
)
from repro.experiments.casestudy import (
    MULTIRATE_CASE_STUDY,
    SIMULATION_CASE_STUDY,
    CaseStudyApplication,
    design_case_study_application,
    paper_applications,
    simulation_applications,
)
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.validation import (
    PureEtResult,
    ValidationResult,
    run_bound_validation,
    run_pure_et_baseline,
)
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.reporting import format_series, format_table
from repro.experiments.table1 import Table1Result, run_table1

__all__ = [
    "AllocationComparison",
    "CaseStudyApplication",
    "Fig1Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "PureEtResult",
    "run_fig1",
    "ValidationResult",
    "run_bound_validation",
    "run_pure_et_baseline",
    "MULTIRATE_CASE_STUDY",
    "SIMULATION_CASE_STUDY",
    "Table1Result",
    "design_case_study_application",
    "format_series",
    "format_table",
    "paper_applications",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fixed_point_ablation",
    "run_jitter_ablation",
    "run_kernel_ablation",
    "run_paper_allocation",
    "run_segment_ablation",
    "run_simulation_allocation",
    "run_table1",
    "run_threshold_sweep",
    "traces_bitwise_equal",
]
