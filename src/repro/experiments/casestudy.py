"""Case-study application sets (paper Section V).

Two flavours:

* **paper mode** — the six Table I applications taken verbatim.  The
  paper publishes only their timing parameters, which is all the
  schedulability analysis needs; this mode reproduces Section V
  *exactly*.
* **simulation mode** — six automotive plants from the plant zoo,
  designed and characterised end-to-end with this library.  Their
  absolute numbers differ from Table I (the authors never disclosed
  their plants) but the qualitative result — the non-monotonic model
  needs fewer TT slots than the conservative monotonic one — is
  reproduced from first principles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.control.controller import SwitchedApplication
from repro.control.plants import PlantDefinition
from repro.core.characterization import CharacterizationResult
from repro.core.schedulability import AnalyzedApplication
from repro.core.timing_params import PAPER_TABLE_I, TimingParameters

#: Simulation-mode roster: (plant name, ET detuning factor, min inter-arrival,
#: deadline).  The detuning factor multiplies the LQR input weight of the
#: ET-mode controller, modelling the deliberately low-bandwidth designs
#: used over the jittery dynamic segment.
SIMULATION_CASE_STUDY: Tuple[Tuple[str, float, float, float], ...] = (
    ("cruise-control", 500.0, 200.0, 40.0),
    ("active-suspension", 300.0, 20.0, 10.0),
    ("lateral-dynamics", 2000.0, 15.0, 2.0),
    ("electric-power-steering", 500.0, 200.0, 7.5),
    ("throttle-by-wire", 800.0, 20.0, 8.5),
    ("servo-rig", 1000.0, 6.0, 6.0),
)

#: Multi-rate roster (same tuple layout): a 2 ms motor current loop
#: beside three 20 ms chassis loops.  Exercises the event-driven
#: co-simulation kernel — the legacy fixed-step loop rejects it — while
#: keeping the canonical six-application roster (and every artefact
#: derived from it) untouched.
MULTIRATE_CASE_STUDY: Tuple[Tuple[str, float, float, float], ...] = (
    ("motor-current-loop", 200.0, 2.0, 0.5),
    ("lateral-dynamics", 2000.0, 15.0, 2.0),
    ("throttle-by-wire", 800.0, 20.0, 8.5),
    ("servo-rig", 1000.0, 6.0, 6.0),
)

#: TT-mode sensor-to-actuator delay used throughout (the paper's 0.7 ms);
#: defined alongside the memoized measurement it parameterises.
from repro.pipeline.cache import TT_DELAY  # noqa: E402  (re-export)


def paper_applications() -> List[TimingParameters]:
    """The six Table I applications, verbatim."""
    return list(PAPER_TABLE_I)


@dataclass(frozen=True)
class CaseStudyApplication:
    """A fully designed and characterised simulation-mode application."""

    plant: PlantDefinition
    app: SwitchedApplication
    characterization: CharacterizationResult

    @property
    def name(self) -> str:
        return self.app.name

    @property
    def params(self) -> TimingParameters:
        return self.characterization.params

    def analyzed(self, shape: str = "non-monotonic") -> AnalyzedApplication:
        """Wrap for schedulability with the chosen dwell-model shape."""
        if shape == "non-monotonic":
            model = self.characterization.non_monotonic_model
        elif shape == "conservative-monotonic":
            model = self.characterization.monotonic_model
        else:
            raise ValueError(
                f"unknown shape {shape!r}; expected 'non-monotonic' or "
                "'conservative-monotonic'"
            )
        return AnalyzedApplication(params=self.params, dwell_model=model)


def design_case_study_application(
    plant_name: str,
    et_detuning: float,
    min_inter_arrival: float,
    deadline: float,
    wait_step: int = 2,
) -> CaseStudyApplication:
    """Design, characterise and package one simulation-mode application.

    Thin wrapper over the pipeline's memoized dwell-curve cache: the
    expensive controller design + dwell sweep runs once per
    (plant, detuning, stride) and is shared across repeated calls and
    scenario sweeps.
    """
    from repro.pipeline.cache import GLOBAL_DWELL_CACHE

    return GLOBAL_DWELL_CACHE.characterized(
        plant_name,
        et_detuning=et_detuning,
        min_inter_arrival=min_inter_arrival,
        deadline=deadline,
        wait_step=wait_step,
    )


def simulation_applications(wait_step: int = 2) -> List[CaseStudyApplication]:
    """Design and characterise the full simulation-mode roster."""
    return [
        design_case_study_application(
            plant_name,
            et_detuning=detuning,
            min_inter_arrival=inter_arrival,
            deadline=deadline,
            wait_step=wait_step,
        )
        for plant_name, detuning, inter_arrival, deadline in SIMULATION_CASE_STUDY
    ]


__all__ = [
    "MULTIRATE_CASE_STUDY",
    "SIMULATION_CASE_STUDY",
    "TT_DELAY",
    "CaseStudyApplication",
    "design_case_study_application",
    "paper_applications",
    "simulation_applications",
]
