"""Experiments E9-E10 — soundness validation and the pure-ET motivation.

E9 (**bound validation**): the worst-case response times certified by the
Section IV analysis are upper bounds; no randomised co-simulation run may
ever exceed them.  We fire sporadic disturbances (random offsets and
gaps, honouring each application's minimum inter-arrival time) at the
case-study roster over long horizons and compare every measured response
against the certified bound.

E10 (**pure-ET baseline**): the paper's premise is that ET communication
alone cannot meet all deadlines while dedicating a TT slot to every
application wastes the scarce static segment.  This experiment runs the
same roster (a) purely over ET and (b) with the dynamically shared TT
slots, showing missed deadlines in (a) and none in (b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.control.disturbance import OneShotDisturbance, SporadicDisturbance
from repro.core.allocation import first_fit_allocation
from repro.experiments.casestudy import CaseStudyApplication, simulation_applications
from repro.experiments.reporting import format_table
from repro.flexray.frame import FrameSpec
from repro.sim.cosim import AnalyticNetwork, CoSimApplication, CoSimulator


def _cosim_apps(
    applications: List[CaseStudyApplication],
    slot_of: Dict[str, int],
    seed: Optional[int],
    horizon: float,
) -> List[CoSimApplication]:
    apps = []
    rng = np.random.default_rng(seed) if seed is not None else None
    for index, case_app in enumerate(applications):
        if rng is None:
            disturbances = OneShotDisturbance(time=0.0)
        else:
            r = case_app.params.min_inter_arrival
            disturbances = SporadicDisturbance(
                min_inter_arrival=r,
                mean_extra_gap=0.5 * r,
                offset=float(rng.uniform(0.0, min(r, horizon / 4))),
                seed=int(rng.integers(0, 2**31)),
            )
        apps.append(
            CoSimApplication(
                app=case_app.app,
                dynamics=case_app.plant.model,
                disturbance_state=case_app.plant.disturbance,
                disturbances=disturbances,
                deadline=case_app.params.deadline,
                slot=slot_of[case_app.name],
                frame=FrameSpec(frame_id=index + 1, sender=case_app.name),
            )
        )
    return apps


@dataclass(frozen=True)
class ValidationResult:
    """E9 outcome: measured-vs-certified response times per application."""

    rows: List[Tuple[str, float, float]]  # (app, worst measured, certified bound)
    runs: int
    violations: int

    def sound(self) -> bool:
        return self.violations == 0

    def report(self) -> str:
        table = format_table(
            ["app", "worst measured [s]", "certified bound [s]"],
            [list(row) for row in self.rows],
        )
        verdict = "SOUND" if self.sound() else f"{self.violations} VIOLATIONS"
        return (
            f"Bound validation over {self.runs} randomised runs\n{table}\n"
            f"analysis bounds: {verdict}"
        )


def run_bound_validation(
    applications: Optional[List[CaseStudyApplication]] = None,
    seeds: int = 5,
    horizon: float = 150.0,
    wait_step: int = 4,
) -> ValidationResult:
    """E9: no simulated response may exceed its certified bound."""
    if applications is None:
        applications = simulation_applications(wait_step=wait_step)
    allocation = first_fit_allocation(
        [app.analyzed("non-monotonic") for app in applications]
    )
    slot_of = {app.name: allocation.slot_of(app.name) for app in applications}
    bounds = {
        name: analysis.worst_response
        for name, analysis in allocation.analyses.items()
    }
    worst: Dict[str, float] = {app.name: 0.0 for app in applications}
    violations = 0
    for seed in range(seeds):
        cosim_apps = _cosim_apps(applications, slot_of, seed=seed, horizon=horizon)
        trace = CoSimulator(cosim_apps, AnalyticNetwork()).run(horizon)
        for app in applications:
            responses = trace[app.name].response_times
            if not responses:
                continue
            measured = max(responses)
            worst[app.name] = max(worst[app.name], measured)
            if measured > bounds[app.name] + 1e-9:
                violations += 1
    rows = [
        (app.name, worst[app.name], bounds[app.name]) for app in applications
    ]
    return ValidationResult(rows=rows, runs=seeds, violations=violations)


@dataclass(frozen=True)
class PureEtResult:
    """E10 outcome: deadline performance with and without the TT slots."""

    pure_et_misses: List[str]
    hybrid_misses: List[str]
    rows: List[Tuple[str, float, float, float]]
    # (app, pure-ET response, hybrid response, deadline)

    def report(self) -> str:
        table = format_table(
            ["app", "pure-ET response [s]", "hybrid response [s]", "deadline [s]"],
            [list(row) for row in self.rows],
        )
        return (
            "Pure-ET baseline vs dynamic TT sharing (disturbances at t=0)\n"
            f"{table}\n"
            f"pure-ET deadline misses : {self.pure_et_misses or 'none'}\n"
            f"hybrid deadline misses  : {self.hybrid_misses or 'none'}"
        )


def run_pure_et_baseline(
    applications: Optional[List[CaseStudyApplication]] = None,
    wait_step: int = 4,
    horizon: Optional[float] = None,
) -> PureEtResult:
    """E10: ET alone misses deadlines that the hybrid scheme meets."""
    if applications is None:
        applications = simulation_applications(wait_step=wait_step)
    allocation = first_fit_allocation(
        [app.analyzed("non-monotonic") for app in applications]
    )
    slot_of = {app.name: allocation.slot_of(app.name) for app in applications}
    if horizon is None:
        horizon = 2.0 * max(app.params.xi_et for app in applications)

    responses: Dict[bool, Dict[str, float]] = {}
    for tt_allowed in (False, True):
        cosim_apps = _cosim_apps(applications, slot_of, seed=None, horizon=horizon)
        sim = CoSimulator(cosim_apps, AnalyticNetwork(), tt_allowed=tt_allowed)
        trace = sim.run(horizon)
        responses[tt_allowed] = {
            app.name: (
                max(trace[app.name].response_times)
                if trace[app.name].response_times
                else float("inf")
            )
            for app in applications
        }
    rows = []
    pure_misses, hybrid_misses = [], []
    for app in applications:
        deadline = app.params.deadline
        pure = responses[False][app.name]
        hybrid = responses[True][app.name]
        rows.append((app.name, pure, hybrid, deadline))
        if pure > deadline + 1e-9:
            pure_misses.append(app.name)
        if hybrid > deadline + 1e-9:
            hybrid_misses.append(app.name)
    return PureEtResult(
        pure_et_misses=pure_misses, hybrid_misses=hybrid_misses, rows=rows
    )


__all__ = [
    "PureEtResult",
    "ValidationResult",
    "run_bound_validation",
    "run_pure_et_baseline",
]
