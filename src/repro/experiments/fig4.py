"""Experiment E2 — Figure 4: PWL dwell-model comparison.

Builds the three model shapes of the paper's Figure 4 from a measured
dwell curve and verifies their defining properties:

* the **non-monotonic** two-segment model and the **conservative
  monotonic** line both dominate the measurement (safe);
* the **simple monotonic** line does *not* (it under-estimates the dwell
  around the peak — the unsafety the paper warns about);
* the non-monotonic model is everywhere at or below the conservative
  monotonic one (tighter, hence the resource saving).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.pwl import (
    DwellCurve,
    PwlDwellModel,
    fit_concave_envelope,
    fit_conservative_monotonic,
    fit_two_segment,
    simple_monotonic,
)
from repro.experiments.fig3 import run_fig3
from repro.experiments.reporting import format_table
from repro.testbed.servo import ServoTestbed


@dataclass(frozen=True)
class Fig4Result:
    """The three Figure 4 models (plus the N-segment extension)."""

    curve: DwellCurve
    non_monotonic: PwlDwellModel
    conservative_monotonic: PwlDwellModel
    simple: PwlDwellModel
    concave_envelope: PwlDwellModel

    def safety_table(self) -> list:
        """Rows: (model, dominates measurement?, max dwell, peak wait)."""
        rows = []
        for model in (
            self.non_monotonic,
            self.conservative_monotonic,
            self.simple,
            self.concave_envelope,
        ):
            rows.append(
                [
                    model.label,
                    model.dominates(self.curve),
                    model.max_dwell,
                    model.peak_wait,
                ]
            )
        return rows

    def tightness_gap(self) -> float:
        """Mean dwell overestimate of the monotonic model relative to the
        non-monotonic one, over the measured waits (seconds)."""
        gaps = [
            self.conservative_monotonic.dwell(w) - self.non_monotonic.dwell(w)
            for w in self.curve.waits
        ]
        return float(np.mean(gaps))

    def report(self) -> str:
        table = format_table(
            ["model", "dominates", "max dwell [s]", "peak wait [s]"],
            self.safety_table(),
        )
        return (
            "Figure 4 — PWL dwell models\n"
            f"{table}\n"
            f"mean monotonic over-estimate: {self.tightness_gap():.3f} s"
        )


def run_fig4(
    curve: Optional[DwellCurve] = None,
    testbed: Optional[ServoTestbed] = None,
    wait_step: int = 2,
) -> Fig4Result:
    """Build the Figure 4 models (measuring the curve if not supplied)."""
    if curve is None:
        curve = run_fig3(testbed=testbed, wait_step=wait_step).curve
    non_monotonic = fit_two_segment(curve)
    conservative = fit_conservative_monotonic(curve)
    simple = simple_monotonic(curve.xi_tt, curve.xi_et)
    envelope = fit_concave_envelope(curve)
    return Fig4Result(
        curve=curve,
        non_monotonic=non_monotonic,
        conservative_monotonic=conservative,
        simple=simple,
        concave_envelope=envelope,
    )


__all__ = ["Fig4Result", "run_fig4"]
