"""Experiment E1 — Figure 3: measured dwell/wait relation on the servo rig.

Sweeps the ET-to-TT switch instant on the (simulated) servo testbed and
records the dwell time needed after each wait, reproducing the paper's
experimental Figure 3.  The paper's measured anchors are
``xi_TT = 0.68 s`` and ``xi_ET = 2.16 s`` with the dwell peak around
``kwait = 0.3 s``; the reproduction target is the *shape* — dwell first
grows with the wait time, then falls to zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.characterization import (
    CharacterizationResult,
    characterize_response_source,
)
from repro.experiments.reporting import format_series, format_table
from repro.testbed.servo import ServoTestbed

#: The paper's measured reference values (seconds).
PAPER_XI_TT = 0.68
PAPER_XI_ET = 2.16
PAPER_PEAK_WAIT = 0.3


@dataclass(frozen=True)
class Fig3Result:
    """Output of the Figure 3 experiment."""

    characterization: CharacterizationResult
    xi_tt: float
    xi_et: float

    @property
    def curve(self):
        return self.characterization.curve

    def is_non_monotonic(self) -> bool:
        """Whether an interior wait needs a longer dwell than zero wait
        (the paper's headline observation)."""
        return self.curve.dwells.max() > self.curve.xi_tt + 1e-9

    def report(self) -> str:
        curve = self.curve
        k_p, xi_m = curve.peak
        table = format_table(
            ["quantity", "paper", "measured"],
            [
                ["xi_TT [s]", PAPER_XI_TT, self.xi_tt],
                ["xi_ET [s]", PAPER_XI_ET, self.xi_et],
                ["peak dwell wait k_p [s]", PAPER_PEAK_WAIT, k_p],
                ["peak dwell xi_M [s]", "~0.95", xi_m],
                ["non-monotonic?", "yes", self.is_non_monotonic()],
            ],
        )
        plot = format_series(
            curve.waits,
            curve.dwells,
            x_label="kwait [s]",
            y_label="kdw [s]",
        )
        return f"Figure 3 — dwell vs wait (servo rig)\n{table}\n\n{plot}"


def run_fig3(
    testbed: Optional[ServoTestbed] = None,
    wait_step: int = 2,
    max_samples: int = 400,
) -> Fig3Result:
    """Run the Figure 3 sweep on the servo testbed.

    Parameters
    ----------
    testbed:
        Rig + controllers; defaults to the tuned paper-matching setup.
    wait_step:
        Sweep stride in samples (2 = every 40 ms).
    max_samples:
        Simulation horizon per run.
    """
    if testbed is None:
        # Default rig: serve the sweep from the pipeline's memoized cache
        # so repeated fig3/fig4 runs and scenario sweeps measure once.
        from repro.core.characterization import characterize_curve
        from repro.pipeline.cache import GLOBAL_DWELL_CACHE

        measured = GLOBAL_DWELL_CACHE.servo_measurement(
            wait_step=wait_step, max_samples=max_samples
        )
        characterization = characterize_curve(
            name="servo-rig",
            curve=measured.curve,
            deadline=6.0,
            min_inter_arrival=6.0,
        )
        return Fig3Result(
            characterization=characterization,
            xi_tt=measured.xi_tt,
            xi_et=measured.xi_et,
        )
    period = testbed.config.period
    xi_tt = testbed.response_time(0, max_samples=max_samples)
    xi_et = testbed.response_time(10**9, max_samples=max_samples)

    def source(wait_samples: int) -> float:
        return testbed.response_time(wait_samples, max_samples=max_samples)

    characterization = characterize_response_source(
        name="servo-rig",
        response_source=source,
        pure_et_response=xi_et,
        period=period,
        deadline=6.0,
        min_inter_arrival=6.0,
        wait_step=wait_step,
    )
    return Fig3Result(characterization=characterization, xi_tt=xi_tt, xi_et=xi_et)


__all__ = [
    "Fig3Result",
    "PAPER_PEAK_WAIT",
    "PAPER_XI_ET",
    "PAPER_XI_TT",
    "run_fig3",
]
